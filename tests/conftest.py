"""Shared fixtures: reference graphs and machines used across the suite."""

from __future__ import annotations

import pytest

from repro.ddg import Ddg, Opcode, build_ddg
from repro.machine import (
    four_cluster_fs,
    four_cluster_gp,
    four_cluster_grid,
    two_cluster_fs,
    two_cluster_gp,
    unified_gp,
)


@pytest.fixture
def intro_example() -> Ddg:
    """The paper's Section 3 example: six unit-latency ops (C is a
    2-cycle load) with recurrence D -> B at distance 1.

    RecMII = (1 + 2 + 1) / 1 = 4 per the paper's walk-through.
    """
    return build_ddg(
        ops=[
            ("a", Opcode.ALU),
            ("b", Opcode.ALU),
            ("c", Opcode.LOAD),
            ("d", Opcode.ALU),
            ("e", Opcode.ALU),
            ("f", Opcode.ALU),
        ],
        deps=[
            ("a", "b", 0),
            ("b", "c", 0),
            ("c", "d", 0),
            ("d", "b", 1),
            ("d", "e", 0),
            ("e", "f", 0),
        ],
        name="intro",
    )


@pytest.fixture
def chain3() -> Ddg:
    """A three-op dependence chain: load -> fp_mult -> store."""
    return build_ddg(
        ops=[("ld", Opcode.LOAD), ("mul", Opcode.FP_MULT),
             ("st", Opcode.STORE)],
        deps=[("ld", "mul", 0), ("mul", "st", 0)],
        name="chain3",
    )


@pytest.fixture
def accumulator() -> Ddg:
    """A self-recurrent accumulator: add depends on itself at distance 1."""
    graph = Ddg(name="accumulator")
    load = graph.add_node(Opcode.LOAD, name="ld")
    acc = graph.add_node(Opcode.FP_ADD, name="acc")
    graph.add_edge(load, acc, distance=0)
    graph.add_edge(acc, acc, distance=1)
    return graph


@pytest.fixture
def two_gp():
    """Paper baseline: 2 clusters x 4 GP units, 2 buses, 1 port."""
    return two_cluster_gp()


@pytest.fixture
def four_gp():
    """Paper baseline: 4 clusters x 4 GP units, 4 buses, 2 ports."""
    return four_cluster_gp()


@pytest.fixture
def two_fs():
    """2 clusters x 4 FS units (1 mem, 2 int, 1 fp), 2 buses, 1 port."""
    return two_cluster_fs()


@pytest.fixture
def four_fs():
    """4 clusters x 4 FS units, 4 buses, 2 ports."""
    return four_cluster_fs()


@pytest.fixture
def grid():
    """The 2x2 grid of 3-FS-unit clusters with point-to-point links."""
    return four_cluster_grid()


@pytest.fixture
def uni8():
    """Unified 8-wide GP machine (baseline for the 2-cluster setups)."""
    return unified_gp(8)


@pytest.fixture(
    params=["two_gp", "four_gp", "two_fs", "four_fs", "grid"]
)
def any_clustered_machine(request):
    """Every clustered machine configuration of the paper."""
    return request.getfixturevalue(request.param)
