"""Deviation histograms."""

import pytest

from repro.analysis import DeviationHistogram, histogram_of


class TestHistogram:
    def test_add_and_count(self):
        histogram = histogram_of([0, 0, 1, 2])
        assert histogram.n_loops == 4
        assert histogram.counts == {0: 2, 1: 1, 2: 1}

    def test_percentage(self):
        histogram = histogram_of([0, 0, 0, 1])
        assert histogram.percentage(0) == 75.0
        assert histogram.percentage(1) == 25.0
        assert histogram.percentage(5) == 0.0

    def test_percentage_at_most(self):
        histogram = histogram_of([0, 1, 1, 3])
        assert histogram.percentage_at_most(0) == 25.0
        assert histogram.percentage_at_most(1) == 75.0
        assert histogram.percentage_at_most(3) == 100.0

    def test_match_percentage(self):
        assert histogram_of([0, 1]).match_percentage == 50.0

    def test_mean_and_max(self):
        histogram = histogram_of([0, 2, 4])
        assert histogram.mean_deviation == pytest.approx(2.0)
        assert histogram.max_deviation == 4

    def test_empty_histogram(self):
        histogram = DeviationHistogram()
        assert histogram.n_loops == 0
        assert histogram.percentage(0) == 0.0
        assert histogram.percentage_at_most(3) == 0.0
        assert histogram.mean_deviation == 0.0
        assert histogram.max_deviation == 0

    def test_buckets_figure_layout(self):
        histogram = histogram_of([0] * 90 + [1] * 5 + [2] * 3 + [7] * 2)
        buckets = histogram.buckets(max_bucket=3)
        assert buckets[0] == ("0", 90.0)
        assert buckets[1] == ("1", 5.0)
        assert buckets[2] == ("2", 3.0)
        label, pct = buckets[3]
        assert label == "3+"
        assert pct == pytest.approx(2.0)

    def test_buckets_empty(self):
        buckets = DeviationHistogram().buckets(2)
        assert all(pct == 0.0 for _, pct in buckets)
