"""The per-loop wall-time budget: itimer save/restore + thread fallback.

Satellites 1–2 of ISSUE 7: ``_TimeBudget.__exit__`` used to disarm
ITIMER_REAL unconditionally, silently killing any ambient or outer
timer; and off the main thread the SIGALRM budget was a silent no-op.
These tests pin the fixed contract: the ambient timer is restored with
its remaining interval, nested budgets compose, and off-main-thread
budgets are enforced by the watchdog fallback (counted via
``engine.budget_fallback``).
"""

from __future__ import annotations

import signal
import threading
import time

import pytest

from repro import obs
from repro.analysis.engine import _LoopTimeout, _TimeBudget


@pytest.fixture(autouse=True)
def clean_itimer():
    """Never leak an armed ITIMER_REAL or SIGALRM handler to the rest
    of the suite, even when an assertion fails mid-test."""
    yield
    signal.setitimer(signal.ITIMER_REAL, 0.0)
    signal.signal(signal.SIGALRM, signal.SIG_DFL)


def _busy_wait(seconds: float) -> None:
    deadline = time.monotonic() + seconds
    while time.monotonic() < deadline:
        pass


class TestMainThreadBudget:
    def test_budget_fires(self):
        with pytest.raises(_LoopTimeout):
            with _TimeBudget(0.05):
                _busy_wait(2.0)

    def test_fast_body_passes(self):
        with _TimeBudget(5.0):
            pass
        # Fully disarmed afterwards (no ambient timer to restore).
        assert signal.getitimer(signal.ITIMER_REAL) == (0.0, 0.0)

    def test_zero_budget_is_a_no_op(self):
        before = signal.getsignal(signal.SIGALRM)
        with _TimeBudget(0.0):
            assert signal.getitimer(signal.ITIMER_REAL) == (0.0, 0.0)
        assert signal.getsignal(signal.SIGALRM) is before


class TestAmbientTimerRestore:
    def test_ambient_itimer_survives_a_budget(self):
        # A host process (profiler, supervisor...) armed ITIMER_REAL
        # before the engine ran a budget; the old __exit__ silently
        # disarmed it.
        def ambient_handler(signum, frame):  # pragma: no cover
            raise AssertionError("ambient alarm must not fire here")

        previous = signal.signal(signal.SIGALRM, ambient_handler)
        try:
            signal.setitimer(signal.ITIMER_REAL, 30.0)
            with _TimeBudget(5.0):
                pass
            remaining, interval = signal.getitimer(signal.ITIMER_REAL)
            assert 0.0 < remaining <= 30.0
            assert interval == 0.0
            assert signal.getsignal(signal.SIGALRM) is ambient_handler
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)

    def test_restored_timer_accounts_for_elapsed_time(self):
        signal.signal(signal.SIGALRM, signal.SIG_IGN)
        signal.setitimer(signal.ITIMER_REAL, 30.0)
        with _TimeBudget(5.0):
            _busy_wait(0.2)
        remaining, _ = signal.getitimer(signal.ITIMER_REAL)
        assert remaining <= 30.0 - 0.2 + 0.05  # elapsed was deducted

    def test_nested_budgets_compose(self):
        with _TimeBudget(30.0):
            with pytest.raises(_LoopTimeout):
                with _TimeBudget(0.05):
                    _busy_wait(2.0)
            # The inner exit re-armed the outer budget's timer.
            remaining, _ = signal.getitimer(signal.ITIMER_REAL)
            assert 0.0 < remaining <= 30.0
        assert signal.getitimer(signal.ITIMER_REAL) == (0.0, 0.0)


class TestWatchdogFallback:
    def _run_budgeted(self, budget_s, body_s):
        """Run a budgeted busy-wait off the main thread; report whether
        the budget fired and the thread's fallback counter."""
        report = {}

        def body():
            trace = obs.Trace()
            obs.install(trace)
            try:
                try:
                    with _TimeBudget(budget_s):
                        _busy_wait(body_s)
                    report["fired"] = False
                except _LoopTimeout:
                    report["fired"] = True
            finally:
                report["fallback_count"] = trace.counter(
                    "engine.budget_fallback"
                )
                obs.uninstall()

        thread = threading.Thread(target=body)
        thread.start()
        thread.join(timeout=30)
        assert not thread.is_alive(), "budgeted thread never finished"
        return report

    def test_off_main_thread_budget_is_enforced(self):
        report = self._run_budgeted(budget_s=0.1, body_s=10.0)
        assert report["fired"] is True
        assert report["fallback_count"] == 1

    def test_fast_body_does_not_trip_the_watchdog(self):
        report = self._run_budgeted(budget_s=10.0, body_s=0.01)
        assert report["fired"] is False
        assert report["fallback_count"] == 0
