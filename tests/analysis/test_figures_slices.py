"""Grouped charts, CSV exports, population slices."""

import pytest

from repro.analysis import (
    ExperimentResult,
    LoopOutcome,
    by_recurrence,
    by_size,
    grouped_bar_chart,
    outcomes_to_csv,
    results_to_csv,
    slice_result,
)
from repro.workloads import build_kernel, paper_suite


def _result(label, deviations):
    result = ExperimentResult(
        label=label, machine_name="m", config_name="c"
    )
    for index, deviation in enumerate(deviations):
        result.outcomes.append(
            LoopOutcome(
                loop_name=f"loop{index}",
                unified_ii=3,
                clustered_ii=3 + deviation,
                copies=0,
            )
        )
    return result


class TestGroupedBarChart:
    def test_axis_and_legend(self):
        chart = grouped_bar_chart([_result("A", [0, 0, 1])])
        assert "x = II deviation" in chart
        assert "# = A" in chart
        assert "66.7% at x=0" in chart

    def test_multiple_series_distinct_glyphs(self):
        chart = grouped_bar_chart(
            [_result("A", [0]), _result("B", [1])]
        )
        assert "# = A" in chart
        assert "* = B" in chart

    def test_empty(self):
        assert grouped_bar_chart([]) == "(no results)"

    def test_bar_heights_scale(self):
        chart = grouped_bar_chart([_result("A", [0] * 9 + [1])], height=10)
        # 90% bar: 9 of 10 rows; 10% bar: 1 row.
        hash_rows = [line for line in chart.splitlines() if "#" in line
                     and "=" not in line]
        assert len(hash_rows) == 9


class TestCsvExports:
    def test_results_csv_shape(self):
        csv = results_to_csv([_result("A", [0, 1, 5])], max_bucket=3)
        lines = csv.strip().splitlines()
        assert lines[0] == "label,machine,config,deviation,percent,loops"
        assert len(lines) == 1 + 4  # buckets 0,1,2,3+

    def test_outcomes_csv_rows(self):
        csv = outcomes_to_csv(_result("A", [0, 2]))
        lines = csv.strip().splitlines()
        assert len(lines) == 3
        assert lines[1] == "loop0,3,3,0,0,ok"
        assert lines[2] == "loop1,3,5,2,0,ok"


class TestSlices:
    def test_slice_by_recurrence(self):
        loops = paper_suite(30)
        result = ExperimentResult(label="t", machine_name="m",
                                  config_name="c")
        for loop in loops:
            result.outcomes.append(LoopOutcome(
                loop_name=loop.name, unified_ii=2, clustered_ii=2, copies=0,
            ))
        sliced = slice_result(result, loops, by_recurrence)
        total = sum(sliced.size(label) for label in sliced.slices)
        assert total == 30
        assert sliced.match_percentage("with recurrences") == 100.0

    def test_classifiers(self):
        assert by_recurrence(build_kernel("lk5_tridiag")) == (
            "with recurrences"
        )
        assert by_recurrence(build_kernel("lk1_hydro")) == (
            "streaming only"
        )
        assert by_size(build_kernel("lk11_first_sum")) == "small (<=8 ops)"
        assert by_size(build_kernel("butterfly_fft")) == "medium (9-24 ops)"

    def test_unknown_loop_rejected(self):
        result = _result("A", [0])
        with pytest.raises(KeyError):
            slice_result(result, [], by_recurrence)

    def test_format_table(self):
        loops = paper_suite(10)
        result = ExperimentResult(label="t", machine_name="m",
                                  config_name="c")
        for loop in loops:
            result.outcomes.append(LoopOutcome(
                loop_name=loop.name, unified_ii=1, clustered_ii=1, copies=0,
            ))
        text = slice_result(result, loops, by_size).format_table()
        assert "loops" in text
        assert "match" in text

    def test_empty_slice_percentage(self):
        sliced = slice_result(
            _result("A", []), [], by_recurrence
        )
        assert sliced.match_percentage("nope") == 0.0
