"""Register pressure (MaxLive) analysis."""


from repro.analysis.registers import (
    format_pressure,
    register_pressure,
)
from repro.core import compile_loop
from repro.ddg import Ddg, Opcode, trivial_annotation
from repro.machine import two_cluster_gp, unified_gp
from repro.scheduling import Schedule


def _schedule(graph, machine, ii, starts):
    annotated = trivial_annotation(graph, machine)
    return Schedule(annotated=annotated, ii=ii, start=starts)


class TestSimpleLifetimes:
    def test_back_to_back_value(self):
        graph = Ddg()
        a = graph.add_node(Opcode.ALU)  # latency 1
        b = graph.add_node(Opcode.ALU)
        graph.add_edge(a, b, distance=0)
        schedule = _schedule(graph, unified_gp(4), 2, {a: 0, b: 1})
        pressure = register_pressure(schedule)
        # a's value born cycle 1, read cycle 1: one register, briefly.
        assert pressure.max_live(0) == 1

    def test_long_lifetime_overlaps_itself(self):
        graph = Ddg()
        a = graph.add_node(Opcode.ALU)
        b = graph.add_node(Opcode.ALU)
        graph.add_edge(a, b, distance=0)
        # Value lives from cycle 1 to cycle 7 (length 6) at II 2:
        # ceil(6/2) = 3 simultaneous instances.
        schedule = _schedule(graph, unified_gp(4), 2, {a: 0, b: 7})
        assert register_pressure(schedule).max_live(0) == 3

    def test_store_produces_no_value(self):
        graph = Ddg()
        st = graph.add_node(Opcode.STORE)
        ld = graph.add_node(Opcode.LOAD)
        graph.add_edge(st, ld, distance=1)
        schedule = _schedule(graph, unified_gp(4), 2, {st: 0, ld: 0})
        assert register_pressure(schedule).total_max_live == 0

    def test_value_without_consumers_free(self):
        graph = Ddg()
        graph.add_node(Opcode.ALU)
        schedule = _schedule(graph, unified_gp(4), 1, {0: 0})
        assert register_pressure(schedule).total_max_live == 0

    def test_loop_carried_use_extends_lifetime(self):
        graph = Ddg()
        a = graph.add_node(Opcode.ALU)
        b = graph.add_node(Opcode.ALU)
        graph.add_edge(a, b, distance=2)  # read two iterations later
        schedule = _schedule(graph, unified_gp(4), 3, {a: 0, b: 1})
        # Lifetime 1 .. 1 + 2*3 = 7: length 6 -> ceil(6/3) = 2 instances.
        assert register_pressure(schedule).max_live(0) == 2


class TestClusteredPressure:
    def test_pressure_split_across_clusters(self):
        graph = Ddg()
        src = graph.add_node(Opcode.ALU, name="src")
        for i in range(15):
            node = graph.add_node(Opcode.ALU)
            graph.add_edge(src, node, distance=0)
        machine = two_cluster_gp()
        result = compile_loop(graph, machine, verify=True)
        pressure = register_pressure(result.schedule)
        assert set(pressure.per_cluster) == {0, 1}
        assert pressure.total_max_live >= 1

    def test_kernel_pressure_reasonable(self):
        from repro.workloads import build_kernel
        result = compile_loop(
            build_kernel("lk7_equation_of_state"), two_cluster_gp(),
            verify=True,
        )
        pressure = register_pressure(result.schedule)
        # A 14-op kernel cannot need hundreds of registers.
        assert 1 <= pressure.total_max_live <= 40


class TestFormatting:
    def test_format_pressure(self):
        graph = Ddg()
        a = graph.add_node(Opcode.ALU)
        b = graph.add_node(Opcode.ALU)
        graph.add_edge(a, b, distance=0)
        schedule = _schedule(graph, unified_gp(4), 2, {a: 0, b: 1})
        text = format_pressure(register_pressure(schedule))
        assert "C0: 1" in text
        assert "total 1" in text


class TestMveUnrollFactor:
    def test_short_lifetimes_need_no_unrolling(self, chain3, uni8):
        from repro.analysis import mve_unroll_factor
        from repro.ddg import trivial_annotation
        from repro.scheduling import modulo_schedule
        schedule = modulo_schedule(trivial_annotation(chain3, uni8), ii=6)
        assert mve_unroll_factor(schedule) == 1

    def test_long_lifetime_forces_unrolling(self, uni8):
        from repro.analysis import mve_unroll_factor
        graph = Ddg()
        a = graph.add_node(Opcode.ALU)
        b = graph.add_node(Opcode.ALU)
        graph.add_edge(a, b, distance=0)
        schedule = _schedule(graph, unified_gp(4), 2, {a: 0, b: 7})
        # Lifetime 6 at II 2 -> 3 overlapping instances.
        assert mve_unroll_factor(schedule) == 3

    def test_kernel_factors_reasonable(self):
        from repro.analysis import mve_unroll_factor
        from repro.workloads import build_kernel
        result = compile_loop(build_kernel("daxpy"), two_cluster_gp())
        assert 1 <= mve_unroll_factor(result.schedule) <= 8
