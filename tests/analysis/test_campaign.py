"""The one-call evaluation campaign."""

import pytest

from repro.analysis import campaign_to_markdown, run_campaign
from repro.workloads import paper_suite


@pytest.fixture(scope="module")
def small_campaign():
    return run_campaign(n_loops=12, include_table3=False)


class TestRunCampaign:
    def test_all_figures_populated(self, small_campaign):
        for title, results in small_campaign.sections():
            assert results, title

    def test_figure_series_counts(self, small_campaign):
        assert len(small_campaign.fig12) == 4
        assert len(small_campaign.fig13) == 4
        assert len(small_campaign.fig14) == 3
        assert len(small_campaign.fig15) == 2
        assert len(small_campaign.fig16) == 3
        assert len(small_campaign.fig17) == 3
        assert len(small_campaign.fig18) == 3
        assert len(small_campaign.fig19) == 3

    def test_grid_present(self, small_campaign):
        assert small_campaign.grid is not None
        assert small_campaign.grid.n_loops == 12

    def test_table3_skipped(self, small_campaign):
        assert small_campaign.table3 == []

    def test_table3_included_when_requested(self):
        campaign = run_campaign(n_loops=4, include_table3=True)
        assert len(campaign.table3) == 4

    def test_progress_callback_invoked(self):
        messages = []
        run_campaign(n_loops=3, include_table3=False,
                     progress=messages.append)
        assert any("grid" in message for message in messages)

    def test_explicit_loops_respected(self):
        loops = paper_suite(5)
        campaign = run_campaign(loops=loops, include_table3=False)
        assert campaign.n_loops == 5


class TestMarkdownRendering:
    def test_report_structure(self, small_campaign):
        report = campaign_to_markdown(small_campaign)
        assert "# Evaluation campaign" in report
        assert "## Table 1" in report
        assert "## Figure 12" in report
        assert "## Figure 19" in report
        assert "## Grid" in report

    def test_report_contains_histograms(self, small_campaign):
        report = campaign_to_markdown(small_campaign)
        assert "x = 0" in report
        assert "x <= 1" in report

    def test_table3_rendered_when_present(self):
        campaign = run_campaign(n_loops=3, include_table3=True)
        report = campaign_to_markdown(campaign)
        assert "## Table 3" in report
        assert "Clusters" in report
