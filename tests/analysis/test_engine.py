"""The parallel fault-tolerant experiment engine."""

import os

import pytest

from repro import obs
from repro.analysis import (
    EngineOptions,
    ExperimentError,
    ResultCache,
    STATUS_FAILED,
    STATUS_TIMEOUT,
    UnifiedBaseline,
    outcome_cache_key,
    run_engine_experiment,
    run_experiment,
)
from repro.analysis.engine import (
    config_fingerprint,
    machine_fingerprint,
)
from repro.core import HEURISTIC_ITERATIVE, SIMPLE
from repro.ddg import Opcode, build_ddg
from repro.machine import two_cluster_gp, four_cluster_gp
from repro.workloads import paper_suite


@pytest.fixture(scope="module")
def small_suite():
    return paper_suite(20)


@pytest.fixture(scope="module")
def slice50():
    return paper_suite(50)


def _bad_loop(name="bad_loop"):
    """A malformed loop (zero-distance cycle) that cannot compile."""
    return build_ddg(
        ops=[("a", Opcode.ALU), ("b", Opcode.ALU)],
        deps=[("a", "b", 0), ("b", "a", 0)],
        name=name,
    )


class TestSerialParallelEquality:
    def test_parallel_matches_serial_on_50_loops(self, slice50):
        machine = two_cluster_gp()
        serial = run_experiment(slice50, machine)
        parallel = run_engine_experiment(
            slice50, machine, options=EngineOptions(workers=4)
        )
        assert parallel.outcomes == serial.outcomes

    def test_inline_engine_matches_serial(self, small_suite):
        machine = four_cluster_gp()
        serial = run_experiment(small_suite, machine)
        inline = run_engine_experiment(small_suite, machine)
        assert inline.outcomes == serial.outcomes

    def test_equality_holds_with_injected_failure(self, small_suite):
        machine = two_cluster_gp()
        suite = (list(small_suite[:7]) + [_bad_loop()]
                 + list(small_suite[7:14]))
        serial = run_experiment(suite, machine)
        parallel = run_engine_experiment(
            suite, machine, options=EngineOptions(workers=3)
        )
        assert parallel.outcomes == serial.outcomes
        assert parallel.n_failed == 1

    def test_merge_preserves_suite_order(self, small_suite):
        machine = two_cluster_gp()
        result = run_engine_experiment(
            small_suite, machine,
            options=EngineOptions(workers=4, chunk_size=1),
        )
        assert [o.loop_name for o in result.outcomes] == [
            loop.name for loop in small_suite
        ]


class TestWorkerFailurePaths:
    def test_bad_loop_marked_failed_suite_completes(self, small_suite):
        suite = list(small_suite[:6]) + [_bad_loop()]
        result = run_engine_experiment(
            suite, two_cluster_gp(), options=EngineOptions(workers=2)
        )
        assert result.n_loops == 7
        assert [o.loop_name for o in result.failures] == ["bad_loop"]
        assert result.failures[0].status == STATUS_FAILED
        assert "invalid loop" in result.failures[0].error

    def test_strict_mode_aborts_with_partial_result(self, small_suite):
        suite = list(small_suite[:4]) + [_bad_loop()] + \
            list(small_suite[4:8])
        with pytest.raises(ExperimentError) as exc_info:
            run_engine_experiment(
                suite, two_cluster_gp(),
                options=EngineOptions(workers=2, strict=True),
            )
        assert exc_info.value.loop_name == "bad_loop"
        partial = exc_info.value.partial_result
        assert partial.n_loops == 4
        assert all(outcome.ok for outcome in partial.outcomes)

    def test_compilation_error_recorded(self, small_suite, monkeypatch):
        import repro.analysis.engine as engine_module
        from repro.core import CompilationError

        real = engine_module.compile_loop
        doomed = small_suite[3].name

        def flaky(ddg, machine, *args, **kwargs):
            if ddg.name == doomed and not machine.is_unified:
                raise CompilationError("injected")
            return real(ddg, machine, *args, **kwargs)

        monkeypatch.setattr(engine_module, "compile_loop", flaky)
        result = run_engine_experiment(
            small_suite[:6], two_cluster_gp()
        )
        failed = result.failures
        assert [o.loop_name for o in failed] == [doomed]
        assert failed[0].status == STATUS_FAILED
        # The unified baseline succeeded before the clustered failure.
        assert failed[0].unified_ii > 0


class TestTimeout:
    def test_slow_loop_skipped_as_timeout(self, small_suite,
                                          monkeypatch):
        import time

        import repro.analysis.engine as engine_module

        real = engine_module.compile_loop
        slow = small_suite[2].name

        def sluggish(ddg, machine, *args, **kwargs):
            if ddg.name == slow and not machine.is_unified:
                time.sleep(0.5)
            return real(ddg, machine, *args, **kwargs)

        monkeypatch.setattr(engine_module, "compile_loop", sluggish)
        result = run_engine_experiment(
            small_suite[:5], two_cluster_gp(),
            options=EngineOptions(timeout_seconds=0.2),
        )
        assert result.n_loops == 5
        assert [o.loop_name for o in result.failures] == [slow]
        assert result.failures[0].status == STATUS_TIMEOUT
        assert "budget" in result.failures[0].error

    def test_no_budget_means_no_timeouts(self, small_suite):
        result = run_engine_experiment(
            small_suite[:5], two_cluster_gp(),
            options=EngineOptions(timeout_seconds=0.0),
        )
        assert result.n_failed == 0


class TestResultCache:
    def test_miss_then_hit(self, small_suite, tmp_path):
        machine = two_cluster_gp()
        options = EngineOptions(cache_dir=str(tmp_path), resume=True)
        first = run_engine_experiment(small_suite[:8], machine,
                                      options=options)
        assert first.cache_hits == 0
        assert len(os.listdir(tmp_path)) == 8
        second = run_engine_experiment(small_suite[:8], machine,
                                       options=options)
        assert second.cache_hits == 8
        assert second.outcomes == first.outcomes

    def test_resume_only_computes_the_tail(self, small_suite, tmp_path):
        machine = two_cluster_gp()
        options = EngineOptions(cache_dir=str(tmp_path), resume=True)
        run_engine_experiment(small_suite[:5], machine, options=options)
        # An "interrupted" sweep restarted over a longer prefix of the
        # same suite recomputes only the new loops.
        result = run_engine_experiment(small_suite[:9], machine,
                                       options=options)
        assert result.cache_hits == 5
        assert result.n_loops == 9
        serial = run_experiment(small_suite[:9], machine)
        assert result.outcomes == serial.outcomes

    def test_without_resume_cache_is_write_only(self, small_suite,
                                                tmp_path):
        machine = two_cluster_gp()
        write_only = EngineOptions(cache_dir=str(tmp_path))
        run_engine_experiment(small_suite[:4], machine,
                              options=write_only)
        again = run_engine_experiment(small_suite[:4], machine,
                                      options=write_only)
        assert again.cache_hits == 0
        assert len(os.listdir(tmp_path)) == 4

    def test_key_depends_on_machine_and_config(self, small_suite):
        loop = small_suite[0]
        base = outcome_cache_key(loop, two_cluster_gp(),
                                 HEURISTIC_ITERATIVE)
        assert base == outcome_cache_key(loop, two_cluster_gp(),
                                         HEURISTIC_ITERATIVE)
        assert base != outcome_cache_key(loop, four_cluster_gp(),
                                         HEURISTIC_ITERATIVE)
        assert base != outcome_cache_key(loop, two_cluster_gp(), SIMPLE)
        assert base != outcome_cache_key(
            small_suite[1], two_cluster_gp(), HEURISTIC_ITERATIVE
        )

    def test_machine_fingerprint_sees_resources(self):
        assert (machine_fingerprint(two_cluster_gp(buses=1))
                != machine_fingerprint(two_cluster_gp(buses=2)))

    def test_config_fingerprint_sees_knobs(self):
        assert (config_fingerprint(SIMPLE)
                != config_fingerprint(HEURISTIC_ITERATIVE))

    def test_failed_outcomes_are_cached(self, tmp_path, small_suite):
        machine = two_cluster_gp()
        suite = list(small_suite[:3]) + [_bad_loop()]
        options = EngineOptions(cache_dir=str(tmp_path), resume=True)
        run_engine_experiment(suite, machine, options=options)
        replay = run_engine_experiment(suite, machine, options=options)
        assert replay.cache_hits == 4
        assert replay.failures[0].status == STATUS_FAILED

    def test_corrupt_cache_entry_is_a_miss(self, tmp_path, small_suite):
        machine = two_cluster_gp()
        options = EngineOptions(cache_dir=str(tmp_path), resume=True)
        run_engine_experiment(small_suite[:3], machine, options=options)
        for entry in os.listdir(tmp_path):
            (tmp_path / entry).write_text("{not json")
        result = run_engine_experiment(small_suite[:3], machine,
                                       options=options)
        assert result.cache_hits == 0
        assert result.n_failed == 0

    def test_cache_object_len(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        assert len(cache) == 0


class TestBaselineSharing:
    def test_parallel_run_seeds_shared_baseline(self, small_suite):
        baseline = UnifiedBaseline()
        machine = two_cluster_gp()
        run_engine_experiment(
            small_suite[:10], machine, baseline=baseline,
            options=EngineOptions(workers=2),
        )
        assert len(baseline) == 10
        # A second sweep entry of the same width reuses every entry.
        reuse = run_engine_experiment(
            small_suite[:10], machine, config=SIMPLE, baseline=baseline,
            options=EngineOptions(workers=2),
        )
        assert reuse.baseline_seconds == 0.0


class TestObsMerge:
    def test_worker_counters_and_spans_merged(self, small_suite):
        with obs.tracing() as trace:
            run_engine_experiment(
                small_suite[:10], two_cluster_gp(),
                options=EngineOptions(workers=2),
            )
        assert trace.counter("experiment.loops") == 10
        assert trace.counter("assign.placements") > 0
        assert len(trace.find("loop")) == 10
        assert len(trace.find("worker")) >= 1
        # Worker spans hang off the parent experiment span.
        experiment_span = trace.find("experiment")[0]
        hosts = [child for child in experiment_span.children
                 if child.name == "worker"]
        assert hosts

    def test_untraced_run_stays_untraced(self, small_suite):
        result = run_engine_experiment(
            small_suite[:4], two_cluster_gp(),
            options=EngineOptions(workers=2),
        )
        assert obs.current_trace() is None
        assert result.n_loops == 4
