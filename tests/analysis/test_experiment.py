"""Experiment runner and unified baseline cache."""

import pytest

from repro.analysis import (
    ExperimentError,
    UnifiedBaseline,
    run_experiment,
    run_sweep,
    run_variant_comparison,
)
from repro.core import CompilationError
from repro.core import HEURISTIC_ITERATIVE, SIMPLE
from repro.machine import two_cluster_gp
from repro.workloads import paper_suite


@pytest.fixture(scope="module")
def small_suite():
    return paper_suite(20)


class TestRunExperiment:
    def test_outcomes_cover_all_loops(self, small_suite):
        result = run_experiment(small_suite, two_cluster_gp(), verify=True)
        assert result.n_loops == 20
        names = {outcome.loop_name for outcome in result.outcomes}
        assert len(names) == 20

    def test_deviation_non_negative_in_practice(self, small_suite):
        result = run_experiment(small_suite, two_cluster_gp())
        assert all(outcome.deviation >= 0 for outcome in result.outcomes)

    def test_match_percentage_consistent(self, small_suite):
        result = run_experiment(small_suite, two_cluster_gp())
        matches = sum(1 for o in result.outcomes if o.deviation == 0)
        assert result.match_percentage == pytest.approx(
            100.0 * matches / 20
        )

    def test_label_defaults_to_machine_and_config(self, small_suite):
        result = run_experiment(small_suite[:2], two_cluster_gp())
        assert "2cl-gp" in result.label
        assert "Heuristic Iterative" in result.label

    def test_elapsed_recorded(self, small_suite):
        result = run_experiment(small_suite[:2], two_cluster_gp())
        assert result.elapsed_seconds > 0


class TestFailurePaths:
    @pytest.fixture
    def failing_compile(self, small_suite, monkeypatch):
        """compile_loop that fails on the third distinct loop."""
        import repro.analysis.experiment as experiment_module

        real = experiment_module.compile_loop
        doomed = small_suite[2].name

        def flaky(ddg, machine, *args, **kwargs):
            if ddg.name == doomed and not machine.is_unified:
                raise CompilationError(f"injected failure on {ddg.name}")
            return real(ddg, machine, *args, **kwargs)

        monkeypatch.setattr(experiment_module, "compile_loop", flaky)
        return doomed

    def test_elapsed_set_on_failure(self, small_suite, failing_compile):
        with pytest.raises(ExperimentError) as exc_info:
            run_experiment(small_suite[:5], two_cluster_gp())
        partial = exc_info.value.partial_result
        assert partial.elapsed_seconds > 0
        assert exc_info.value.loop_name == failing_compile
        # The two loops before the failure were measured.
        assert partial.n_loops == 2

    def test_failure_is_still_a_compilation_error(self, small_suite,
                                                  failing_compile):
        # Existing handlers that catch CompilationError keep working.
        with pytest.raises(CompilationError):
            run_experiment(small_suite[:5], two_cluster_gp())


class TestBaselineCache:
    def test_cache_shared_across_experiments(self, small_suite):
        baseline = UnifiedBaseline()
        machine = two_cluster_gp()
        run_experiment(small_suite, machine, baseline=baseline)
        assert len(baseline) == 20
        run_experiment(small_suite, machine, config=SIMPLE,
                       baseline=baseline)
        assert len(baseline) == 20  # no recomputation

    def test_cache_is_correct(self, small_suite):
        from repro.core import compile_loop
        baseline = UnifiedBaseline()
        machine = two_cluster_gp()
        unified = machine.unified_equivalent()
        ddg = small_suite[0]
        cached = baseline.ii_for(ddg, unified)
        assert cached == compile_loop(ddg, unified).ii


class TestSweepAndComparison:
    def test_sweep_one_result_per_machine(self, small_suite):
        machines = [two_cluster_gp(buses=b) for b in (1, 2)]
        results = run_sweep(small_suite[:5], machines,
                            labels=["1 bus", "2 buses"])
        assert [r.label for r in results] == ["1 bus", "2 buses"]

    def test_sweep_label_mismatch_rejected(self, small_suite):
        with pytest.raises(ValueError):
            run_sweep(small_suite[:2], [two_cluster_gp()], labels=["a", "b"])

    def test_variant_comparison_labels_by_config(self, small_suite):
        results = run_variant_comparison(
            small_suite[:5], two_cluster_gp(), [SIMPLE, HEURISTIC_ITERATIVE]
        )
        assert [r.label for r in results] == [
            "Simple", "Heuristic Iterative",
        ]

    def test_more_buses_never_hurt(self, small_suite):
        results = run_sweep(
            small_suite,
            [two_cluster_gp(buses=1), two_cluster_gp(buses=4)],
        )
        assert (results[1].match_percentage
                >= results[0].match_percentage - 1e-9)
