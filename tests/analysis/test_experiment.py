"""Experiment runner and unified baseline cache."""

import pytest

from repro.analysis import (
    ExperimentError,
    UnifiedBaseline,
    run_experiment,
    run_sweep,
    run_variant_comparison,
)
from repro.core import CompilationError
from repro.core import HEURISTIC_ITERATIVE, SIMPLE
from repro.machine import two_cluster_gp
from repro.workloads import paper_suite


@pytest.fixture(scope="module")
def small_suite():
    return paper_suite(20)


class TestRunExperiment:
    def test_outcomes_cover_all_loops(self, small_suite):
        result = run_experiment(small_suite, two_cluster_gp(), verify=True)
        assert result.n_loops == 20
        names = {outcome.loop_name for outcome in result.outcomes}
        assert len(names) == 20

    def test_deviation_non_negative_in_practice(self, small_suite):
        result = run_experiment(small_suite, two_cluster_gp())
        assert all(outcome.deviation >= 0 for outcome in result.outcomes)

    def test_match_percentage_consistent(self, small_suite):
        result = run_experiment(small_suite, two_cluster_gp())
        matches = sum(1 for o in result.outcomes if o.deviation == 0)
        assert result.match_percentage == pytest.approx(
            100.0 * matches / 20
        )

    def test_label_defaults_to_machine_and_config(self, small_suite):
        result = run_experiment(small_suite[:2], two_cluster_gp())
        assert "2cl-gp" in result.label
        assert "Heuristic Iterative" in result.label

    def test_elapsed_recorded(self, small_suite):
        result = run_experiment(small_suite[:2], two_cluster_gp())
        assert result.elapsed_seconds > 0


class TestFailurePaths:
    @pytest.fixture
    def failing_compile(self, small_suite, monkeypatch):
        """compile_loop that fails on the third distinct loop."""
        import repro.analysis.experiment as experiment_module

        real = experiment_module.compile_loop
        doomed = small_suite[2].name

        def flaky(ddg, machine, *args, **kwargs):
            if ddg.name == doomed and not machine.is_unified:
                raise CompilationError(f"injected failure on {ddg.name}")
            return real(ddg, machine, *args, **kwargs)

        monkeypatch.setattr(experiment_module, "compile_loop", flaky)
        return doomed

    def test_lenient_records_failure_and_continues(self, small_suite,
                                                   failing_compile):
        result = run_experiment(small_suite[:5], two_cluster_gp())
        assert result.n_loops == 5
        assert result.n_failed == 1
        failed = result.failures[0]
        assert failed.loop_name == failing_compile
        assert failed.status == "failed"
        assert "injected failure" in failed.error
        # The baseline II was computed before the clustered failure.
        assert failed.unified_ii > 0
        # Measured loops are unaffected, figures skip the failure.
        assert len(result.measured) == 4
        assert result.histogram.n_loops == 4

    def test_lenient_records_malformed_loop(self, small_suite):
        from repro.ddg import Opcode, build_ddg

        bad = build_ddg(
            ops=[("a", Opcode.ALU), ("b", Opcode.ALU)],
            deps=[("a", "b", 0), ("b", "a", 0)],
            name="zero_distance_cycle",
        )
        suite = list(small_suite[:3]) + [bad] + list(small_suite[3:5])
        result = run_experiment(suite, two_cluster_gp())
        assert result.n_loops == 6
        assert [o.loop_name for o in result.failures] == [
            "zero_distance_cycle"
        ]
        assert "invalid loop" in result.failures[0].error

    def test_strict_elapsed_set_on_failure(self, small_suite,
                                           failing_compile):
        with pytest.raises(ExperimentError) as exc_info:
            run_experiment(small_suite[:5], two_cluster_gp(),
                           strict=True)
        partial = exc_info.value.partial_result
        assert partial.elapsed_seconds > 0
        assert exc_info.value.loop_name == failing_compile
        # The two loops before the failure were measured.
        assert partial.n_loops == 2
        assert all(outcome.ok for outcome in partial.outcomes)

    def test_strict_failure_is_still_a_compilation_error(
            self, small_suite, failing_compile):
        # Existing handlers that catch CompilationError keep working.
        with pytest.raises(CompilationError):
            run_experiment(small_suite[:5], two_cluster_gp(),
                           strict=True)

    def test_failure_counter_bumped(self, small_suite, failing_compile):
        from repro import obs

        with obs.tracing() as trace:
            run_experiment(small_suite[:5], two_cluster_gp())
        assert trace.counter("experiment.failures") == 1
        assert trace.counter("experiment.loops") == 4


class TestBaselineCache:
    def test_cache_shared_across_experiments(self, small_suite):
        baseline = UnifiedBaseline()
        machine = two_cluster_gp()
        run_experiment(small_suite, machine, baseline=baseline)
        assert len(baseline) == 20
        run_experiment(small_suite, machine, config=SIMPLE,
                       baseline=baseline)
        assert len(baseline) == 20  # no recomputation

    def test_cache_is_correct(self, small_suite):
        from repro.core import compile_loop
        baseline = UnifiedBaseline()
        machine = two_cluster_gp()
        unified = machine.unified_equivalent()
        ddg = small_suite[0]
        cached = baseline.ii_for(ddg, unified)
        assert cached == compile_loop(ddg, unified).ii

    def test_duplicate_name_different_content_rejected(self, small_suite):
        baseline = UnifiedBaseline()
        unified = two_cluster_gp().unified_equivalent()
        first = small_suite[0]
        impostor = small_suite[1].copy(name=first.name)
        baseline.ii_for(first, unified)
        with pytest.raises(ValueError, match="duplicate loop name"):
            baseline.ii_for(impostor, unified)
        with pytest.raises(ValueError, match="duplicate loop name"):
            baseline.seed(unified.name, impostor, 3)

    def test_same_loop_twice_is_fine(self, small_suite):
        baseline = UnifiedBaseline()
        unified = two_cluster_gp().unified_equivalent()
        first = baseline.ii_for(small_suite[0], unified)
        again = baseline.ii_for(small_suite[0].copy(), unified)
        assert first == again
        assert len(baseline) == 1

    def test_baseline_time_tracked_separately(self, small_suite):
        baseline = UnifiedBaseline()
        machine = two_cluster_gp()
        first = run_experiment(small_suite, machine, baseline=baseline)
        assert first.baseline_seconds > 0
        assert baseline.elapsed_seconds == pytest.approx(
            first.baseline_seconds
        )
        # A second experiment reusing the cache pays no baseline time,
        # so its elapsed_seconds is no longer skewed by cache misses
        # charged to whichever experiment ran first.
        second = run_experiment(small_suite, machine, config=SIMPLE,
                                baseline=baseline)
        assert second.baseline_seconds == 0.0


class TestSweepAndComparison:
    def test_sweep_one_result_per_machine(self, small_suite):
        machines = [two_cluster_gp(buses=b) for b in (1, 2)]
        results = run_sweep(small_suite[:5], machines,
                            labels=["1 bus", "2 buses"])
        assert [r.label for r in results] == ["1 bus", "2 buses"]

    def test_sweep_label_mismatch_rejected(self, small_suite):
        with pytest.raises(ValueError):
            run_sweep(small_suite[:2], [two_cluster_gp()], labels=["a", "b"])

    def test_variant_comparison_labels_by_config(self, small_suite):
        results = run_variant_comparison(
            small_suite[:5], two_cluster_gp(), [SIMPLE, HEURISTIC_ITERATIVE]
        )
        assert [r.label for r in results] == [
            "Simple", "Heuristic Iterative",
        ]

    def test_more_buses_never_hurt(self, small_suite):
        results = run_sweep(
            small_suite,
            [two_cluster_gp(buses=1), two_cluster_gp(buses=4)],
        )
        assert (results[1].match_percentage
                >= results[0].match_percentage - 1e-9)
