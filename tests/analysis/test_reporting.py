"""Text report rendering."""


from repro.analysis import (
    ExperimentResult,
    LoopOutcome,
    cumulative_table,
    deviation_table,
    experiment_summary,
    match_bar_chart,
    table3_rows,
)


def _result(label, deviations):
    result = ExperimentResult(
        label=label, machine_name="m", config_name="c"
    )
    for index, deviation in enumerate(deviations):
        result.outcomes.append(
            LoopOutcome(
                loop_name=f"loop{index}",
                unified_ii=4,
                clustered_ii=4 + deviation,
                copies=deviation,
            )
        )
    return result


class TestDeviationTable:
    def test_columns_per_series(self):
        text = deviation_table(
            [_result("A", [0, 0, 1]), _result("B", [0, 2, 5])]
        )
        assert "A" in text and "B" in text
        assert "x = 0" in text
        assert "x = 3+" in text
        assert "66.7%" in text  # A's match rate

    def test_empty(self):
        assert deviation_table([]) == "(no results)"


class TestBarChart:
    def test_bar_lengths_scale(self):
        text = match_bar_chart(
            [_result("full", [0, 0]), _result("half", [0, 1])]
        )
        lines = text.splitlines()
        assert lines[0].count("#") > lines[1].count("#")
        assert "100.0%" in lines[0]
        assert "50.0%" in lines[1]

    def test_empty(self):
        assert match_bar_chart([]) == "(no results)"


class TestCumulativeTable:
    def test_monotone_rows(self):
        text = cumulative_table([_result("A", [0, 1, 2, 3, 4])])
        assert "x <= 0" in text
        assert "x <= 3" in text

    def test_empty(self):
        assert cumulative_table([]) == "(no results)"


class TestTable3:
    def test_rows_render(self):
        text = table3_rows([(2, 2, 1, 99.7), (4, 4, 2, 97.5)])
        assert "Clusters" in text
        assert "99.7%" in text
        assert "97.5%" in text


class TestSummary:
    def test_one_line_summary(self):
        result = _result("A", [0, 0, 1])
        line = experiment_summary(result)
        assert "A:" in line
        assert "match=66.7%" in line
        assert "loops=3" in line
