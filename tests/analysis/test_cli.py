"""Command-line interface."""

import pytest

from repro.cli import main

LOOP_TEXT = """
ld:  load
mul: fp_mult <- ld
acc: fp_add  <- mul, acc@1
st:  store   <- acc
"""


@pytest.fixture
def loop_file(tmp_path):
    path = tmp_path / "loop.txt"
    path.write_text(LOOP_TEXT)
    return str(path)


class TestCompileCommand:
    def test_compile_default_machine(self, loop_file, capsys):
        assert main(["compile", loop_file]) == 0
        out = capsys.readouterr().out
        assert "II = " in out
        assert "assignment:" in out
        assert "MaxLive" in out

    def test_compile_each_machine(self, loop_file, capsys):
        for machine in ("2gp", "4gp", "2fs", "4fs", "grid"):
            assert main(["compile", loop_file, "--machine", machine]) == 0

    def test_compile_with_variant(self, loop_file, capsys):
        assert main(
            ["compile", loop_file, "--variant", "simple"]
        ) == 0

    def test_compile_writes_dot(self, loop_file, tmp_path, capsys):
        dot_path = tmp_path / "out.dot"
        assert main(["compile", loop_file, "--dot", str(dot_path)]) == 0
        assert dot_path.read_text().startswith("digraph")

    def test_unknown_machine_exits(self, loop_file):
        with pytest.raises(SystemExit):
            main(["compile", loop_file, "--machine", "warp9"])

    def test_stdin_input(self, loop_file, capsys, monkeypatch):
        import io
        monkeypatch.setattr("sys.stdin", io.StringIO(LOOP_TEXT))
        assert main(["compile", "-"]) == 0


class TestStatsCommand:
    def test_stats(self, capsys):
        assert main(["stats", "--loops", "60"]) == 0
        out = capsys.readouterr().out
        assert "Nodes" in out
        assert "60 loops" in out


class TestExperimentCommand:
    def test_experiment(self, capsys):
        assert main(
            ["experiment", "--machine", "2gp", "--loops", "15"]
        ) == 0
        out = capsys.readouterr().out
        assert "x = 0" in out
        assert "match=" in out

    def test_experiment_json(self, capsys):
        import json

        assert main(
            ["experiment", "--machine", "2gp", "--loops", "10", "--json"]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["n_loops"] == 10
        assert sum(doc["histogram"].values()) == 10
        assert doc["elapsed_seconds"] > 0
        assert doc["counters"]["experiment.loops"] == 10
        assert doc["counters"]["assign.placements"] > 0
        assert doc["phases"]["loop"]["count"] == 10

    def test_experiment_trace(self, capsys):
        assert main(
            ["experiment", "--loops", "5", "--trace"]
        ) == 0
        out = capsys.readouterr().out
        assert "phase profile:" in out
        assert "experiment" in out


class TestExperimentEngineFlags:
    def test_workers_matches_serial_output(self, capsys):
        import json

        assert main(
            ["experiment", "--machine", "2gp", "--loops", "12", "--json"]
        ) == 0
        serial = json.loads(capsys.readouterr().out)
        assert main(
            ["experiment", "--machine", "2gp", "--loops", "12",
             "--workers", "2", "--json"]
        ) == 0
        parallel = json.loads(capsys.readouterr().out)
        assert parallel["histogram"] == serial["histogram"]
        assert parallel["total_copies"] == serial["total_copies"]
        assert parallel["n_failed"] == 0

    def test_json_reports_failure_fields(self, capsys):
        import json

        assert main(
            ["experiment", "--machine", "2gp", "--loops", "8", "--json"]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["n_failed"] == 0
        assert doc["cache_hits"] == 0
        assert doc["baseline_seconds"] >= 0
        assert "failures" not in doc

    def test_cache_dir_and_resume_round_trip(self, tmp_path, capsys):
        import json
        import os

        cache = str(tmp_path / "cache")
        os.makedirs(cache)
        args = ["experiment", "--machine", "2gp", "--loops", "10",
                "--cache-dir", cache, "--resume", "--json"]
        assert main(args) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["cache_hits"] == 0
        assert main(args) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["cache_hits"] == 10
        assert second["histogram"] == first["histogram"]

    def test_strict_flag_accepted_on_clean_suite(self, capsys):
        assert main(
            ["experiment", "--machine", "2gp", "--loops", "6",
             "--workers", "2", "--strict"]
        ) == 0
        assert "match=" in capsys.readouterr().out

    def test_timeout_flag_accepted(self, capsys):
        assert main(
            ["experiment", "--machine", "2gp", "--loops", "6",
             "--timeout", "30"]
        ) == 0
        assert "match=" in capsys.readouterr().out

    def test_campaign_accepts_engine_flags(self, capsys):
        assert main(
            ["campaign", "--loops", "8", "--skip-table3",
             "--workers", "2"]
        ) == 0
        assert "Figure" in capsys.readouterr().out


class TestTraceOutputs:
    def test_compile_trace_prints_span_tree(self, loop_file, capsys):
        assert main(["compile", loop_file, "--trace"]) == 0
        out = capsys.readouterr().out
        assert "trace:" in out
        assert "compile" in out
        assert "schedule" in out
        assert "counters:" in out
        assert "assign.placements" in out

    def test_compile_trace_out_writes_valid_jsonl(self, loop_file,
                                                  tmp_path, capsys):
        import json

        from repro import obs

        path = tmp_path / "trace.jsonl"
        assert main(
            ["compile", loop_file, "--trace-out", str(path)]
        ) == 0
        lines = path.read_text().splitlines()
        assert lines, "trace file is empty"
        events = [json.loads(line) for line in lines]
        assert all("ev" in event for event in events)
        rebuilt = obs.trace_from_events(obs.read_jsonl(str(path)))
        assert rebuilt.counter("sched.placements") > 0

    def test_compile_without_flags_does_not_trace(self, loop_file,
                                                  capsys):
        assert main(["compile", loop_file]) == 0
        assert "phase profile:" not in capsys.readouterr().out

    def test_trace_subcommand(self, loop_file, capsys):
        assert main(["trace", loop_file, "--machine", "4gp"]) == 0
        out = capsys.readouterr().out
        assert "II = " in out
        assert "trace:" in out
        assert "phase profile:" in out
        assert "driver.attempts" in out

    def test_trace_subcommand_writes_jsonl(self, loop_file, tmp_path,
                                           capsys):
        path = tmp_path / "out.jsonl"
        assert main(["trace", loop_file, "--out", str(path)]) == 0
        assert path.read_text().startswith('{"ev": "trace"')


class TestAssignmentStatsSurfaced:
    def test_compile_prints_assignment_stats(self, loop_file, capsys):
        assert main(["compile", loop_file]) == 0
        out = capsys.readouterr().out
        assert "assignment stats:" in out
        assert "placements=" in out
        assert "evictions=" in out
        assert "forced=" in out
        assert "scheduler stats:" in out


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])


class TestProfileCommand:
    def test_profile_prints_cpu_report(self, loop_file, capsys):
        assert main(["profile", loop_file]) == 0
        out = capsys.readouterr().out
        assert "II = " in out
        assert "cpu by phase:" in out
        assert "cpu/wall" in out
        assert "top functions (by cpu):" in out

    def test_profile_sort_and_top(self, loop_file, capsys):
        assert main(
            ["profile", loop_file, "--sort", "calls", "--top", "5"]
        ) == 0
        assert "top functions (by calls):" in capsys.readouterr().out

    def test_profile_tree(self, loop_file, capsys):
        assert main(["profile", loop_file, "--tree"]) == 0
        out = capsys.readouterr().out
        assert "trace:" in out
        assert "(cpu " in out

    def test_profile_out_writes_profiled_jsonl(self, loop_file,
                                               tmp_path, capsys):
        from repro import obs

        path = tmp_path / "profiled.jsonl"
        assert main(["profile", loop_file, "--out", str(path)]) == 0
        rebuilt = obs.read_trace(str(path))
        profiled = [
            node for node in rebuilt.walk() if node.cpu is not None
        ]
        assert profiled, "no span carried a CPU measurement"

    def test_profile_cprofile_dump(self, loop_file, tmp_path, capsys):
        import pstats

        path = tmp_path / "compile.pstats"
        assert main(
            ["profile", loop_file, "--cprofile", str(path)]
        ) == 0
        assert pstats.Stats(str(path)).total_calls > 0


class TestBenchCommand:
    @pytest.fixture
    def history(self, tmp_path):
        from repro.obs import bench

        path = str(tmp_path / "history.jsonl")
        for value in (1.0, 1.02, 0.98):
            bench.append_history(
                bench.make_artifact(
                    "trace_smoke",
                    metrics={"untraced_s": value},
                    regression_metrics=["untraced_s"],
                ),
                path,
            )
        return path

    def test_report_renders_history(self, history, capsys):
        assert main(["bench", "report", "--history", history]) == 0
        out = capsys.readouterr().out
        assert "trace_smoke (3 run(s))" in out
        assert "untraced_s" in out

    def test_check_passes_clean_history(self, history, capsys):
        assert main(["bench", "check", "--history", history]) == 0
        assert "within budgets" in capsys.readouterr().out

    def test_check_catches_injected_regression(self, history, capsys):
        from repro.obs import bench

        bench.append_history(
            bench.make_artifact(
                "trace_smoke",
                metrics={"untraced_s": 1.20},  # +20% vs ~1.0 baseline
                regression_metrics=["untraced_s"],
            ),
            history,
        )
        assert main(["bench", "check", "--history", history]) == 1
        out = capsys.readouterr().out
        assert "perf violation" in out
        assert "untraced_s" in out

    def test_check_exit_zero_reports_without_failing(self, history,
                                                     capsys):
        from repro.obs import bench

        bench.append_history(
            bench.make_artifact(
                "trace_smoke",
                metrics={"untraced_s": 9.0},
                regression_metrics=["untraced_s"],
            ),
            history,
        )
        assert main(
            ["bench", "check", "--history", history, "--exit-zero"]
        ) == 0
        assert "perf violation" in capsys.readouterr().out

    def test_check_empty_history_fails(self, tmp_path, capsys):
        missing = str(tmp_path / "none.jsonl")
        assert main(["bench", "check", "--history", missing]) == 1
        assert main(
            ["bench", "check", "--history", missing, "--exit-zero"]
        ) == 0

    def test_check_custom_tolerance(self, history, capsys):
        from repro.obs import bench

        bench.append_history(
            bench.make_artifact(
                "trace_smoke",
                metrics={"untraced_s": 1.20},
                regression_metrics=["untraced_s"],
            ),
            history,
        )
        assert main(
            ["bench", "check", "--history", history,
             "--tolerance", "0.5"]
        ) == 0

    def test_run_rejects_unknown_benchmark(self, tmp_path):
        with pytest.raises(ValueError):
            main(["bench", "run", "warp9",
                  "--history", str(tmp_path / "h.jsonl")])


class TestChromeTraceFlag:
    def test_compile_trace_chrome_writes_envelope(self, loop_file,
                                                  tmp_path, capsys):
        import json

        path = tmp_path / "trace.chrome.json"
        assert main(
            ["compile", loop_file, "--trace-chrome", str(path)]
        ) == 0
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]
        phases = {event["ph"] for event in doc["traceEvents"]}
        assert phases <= {"X", "C", "M"}
        assert "trace_id" in doc["otherData"]

    def test_parallel_experiment_chrome_has_worker_lanes(self, tmp_path,
                                                         capsys):
        import json

        path = tmp_path / "experiment.chrome.json"
        assert main(
            ["experiment", "--loops", "8", "--workers", "2",
             "--trace-chrome", str(path)]
        ) == 0
        doc = json.loads(path.read_text())
        x_tids = {
            event["tid"] for event in doc["traceEvents"]
            if event["ph"] == "X"
        }
        assert x_tids - {0}, "no worker lanes in the chrome trace"

    def test_trace_flag_prints_lane_table_for_workers(self, capsys):
        assert main(
            ["experiment", "--loops", "8", "--workers", "2", "--trace"]
        ) == 0
        out = capsys.readouterr().out
        assert "worker lanes:" in out
        assert "q-wait" in out


class TestEmitAndSimulate:
    def test_emit_prints_pipelined_code(self, loop_file, capsys):
        assert main(["compile", loop_file, "--emit"]) == 0
        out = capsys.readouterr().out
        assert "PROLOGUE" in out
        assert "PREDICATED KERNEL" in out

    def test_simulate_reports_match(self, loop_file, capsys):
        assert main(["compile", loop_file, "--simulate", "5"]) == 0
        out = capsys.readouterr().out
        assert "ALL MATCH" in out

    def test_emit_and_simulate_on_grid(self, loop_file, capsys):
        assert main(
            ["compile", loop_file, "--machine", "grid",
             "--emit", "--simulate", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "ALL MATCH" in out
