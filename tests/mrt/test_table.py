"""Time-indexed modulo reservation table (scheduling-phase MRT)."""

import pytest

from repro.mrt import ModuloReservationTable
from repro.machine import two_cluster_gp


@pytest.fixture
def mrt(uni8):
    """MRT of the unified 8-wide machine at II = 4."""
    return ModuloReservationTable(uni8, ii=4)


ISSUE = ("issue", 0, "gp")


class TestPlacement:
    def test_place_and_query(self, mrt):
        mrt.place("op1", [ISSUE], cycle=2)
        assert mrt.is_placed("op1")
        assert "op1" in mrt.placed_ops()

    def test_row_wraps_modulo_ii(self, mrt):
        assert mrt.row(0) == 0
        assert mrt.row(4) == 0
        assert mrt.row(7) == 3

    def test_cycles_congruent_mod_ii_share_rows(self, mrt):
        for i in range(8):
            mrt.place(f"op{i}", [ISSUE], cycle=1)  # row 1 holds 8 slots
        assert not mrt.available([ISSUE], 1)
        assert not mrt.available([ISSUE], 5)  # same row
        assert mrt.available([ISSUE], 2)

    def test_double_place_rejected(self, mrt):
        mrt.place("op1", [ISSUE], cycle=0)
        with pytest.raises(ValueError):
            mrt.place("op1", [ISSUE], cycle=1)

    def test_place_when_full_raises(self, mrt):
        for i in range(8):
            mrt.place(f"op{i}", [ISSUE], cycle=0)
        with pytest.raises(RuntimeError):
            mrt.place("late", [ISSUE], cycle=0)

    def test_unknown_key_raises(self, mrt):
        with pytest.raises(KeyError):
            mrt.available([("nope",)], 0)

    def test_ii_must_be_positive(self, uni8):
        with pytest.raises(ValueError):
            ModuloReservationTable(uni8, ii=0)


class TestRemoval:
    def test_remove_frees_slots(self, mrt):
        mrt.place("op1", [ISSUE], cycle=3)
        mrt.remove("op1")
        assert not mrt.is_placed("op1")
        assert mrt.available([ISSUE] * 8, 3)

    def test_remove_unplaced_raises(self, mrt):
        with pytest.raises(ValueError):
            mrt.remove("ghost")


class TestConflicts:
    def test_conflicting_ops_in_saturated_row(self, mrt):
        for i in range(8):
            mrt.place(f"op{i}", [ISSUE], cycle=1)
        conflicts = mrt.conflicting_ops([ISSUE], 5)  # row 1
        assert conflicts == {f"op{i}" for i in range(8)}

    def test_no_conflicts_when_room_remains(self, mrt):
        mrt.place("op0", [ISSUE], cycle=0)
        assert mrt.conflicting_ops([ISSUE], 0) == set()

    def test_multi_resource_conflicts(self):
        machine = two_cluster_gp()  # 1 rd port per cluster
        mrt = ModuloReservationTable(machine, ii=2)
        copy_keys = [("rd", 0), ("wr", 1), "bus"]
        mrt.place("cp0", copy_keys, cycle=0)
        conflicts = mrt.conflicting_ops(copy_keys, 0)
        assert conflicts == {"cp0"}
        # Other row is free.
        assert mrt.available(copy_keys, 1)


class TestUtilization:
    def test_utilization_fractions(self, mrt):
        mrt.place("op0", [ISSUE], cycle=0)
        mrt.place("op1", [ISSUE], cycle=1)
        # 2 used of 8 units x 4 rows = 32 slots.
        assert mrt.utilization()[ISSUE] == pytest.approx(2 / 32)


class TestDemandProfiles:
    def test_compile_demand_aggregates_duplicates(self, mrt):
        profile = mrt.compile_demand([ISSUE, ISSUE, ISSUE])
        assert len(profile) == 1
        usage, capacity, count = profile[0]
        assert capacity == 8 and count == 3
        for i in range(6):
            mrt.place(f"op{i}", [ISSUE], cycle=0)
        assert not mrt.probe(profile, 0)  # 6 + 3 > 8
        assert mrt.probe(profile, 1)

    def test_compile_demand_unknown_key_raises(self, mrt):
        with pytest.raises(KeyError):
            mrt.compile_demand([("issue", 9, "nope")])

    def test_probe_matches_available(self, mrt):
        profile = mrt.compile_demand([ISSUE])
        for i in range(8):
            mrt.place(f"op{i}", [ISSUE], cycle=2)
        for cycle in range(8):
            assert mrt.probe(profile, cycle) == mrt.available([ISSUE], cycle)


class TestUncheckedPlacement:
    def test_place_unchecked_skips_validation(self, mrt):
        for i in range(8):
            mrt.place(f"op{i}", [ISSUE], cycle=0)
        # check=False trusts the caller's prior probe; it must not raise
        # even though the row is full (the scheduler displaces conflicts
        # before placing, so this state never occurs on the hot path).
        mrt.place("late", [ISSUE], cycle=0, check=False)
        mrt.remove("late")
        assert mrt.available([ISSUE], 4) is False  # row 0 still full

    def test_forced_validation_env(self, uni8, monkeypatch):
        import repro.mrt.table as table
        monkeypatch.setattr(table, "_FORCE_VALIDATE", True)
        mrt = ModuloReservationTable(uni8, ii=4)
        for i in range(8):
            mrt.place(f"op{i}", [ISSUE], cycle=0)
        with pytest.raises(RuntimeError):
            mrt.place("late", [ISSUE], cycle=0, check=False)


class TestSlotHygiene:
    def test_remove_drops_empty_holder_lists(self, mrt):
        mrt.place("op1", [ISSUE], cycle=3)
        mrt.remove("op1")
        assert (ISSUE, 3) not in mrt._slots

    def test_usage_counters_track_slots(self, mrt):
        mrt.place("a", [ISSUE], cycle=0)
        mrt.place("b", [ISSUE], cycle=0)
        mrt.place("c", [ISSUE], cycle=1)
        assert mrt._usage[ISSUE][0] == 2
        assert mrt._usage[ISSUE][1] == 1
        mrt.remove("a")
        assert mrt._usage[ISSUE][0] == 1
        assert len(mrt._slots[(ISSUE, 0)]) == 1
