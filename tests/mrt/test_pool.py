"""Counting resource pools (assignment-phase MRT)."""

import pytest

from repro.mrt import PoolOverflowError, ResourcePools
from repro.machine import four_cluster_grid, unified_gp


@pytest.fixture
def pools(two_gp):
    """Pools of the 2-cluster GP machine at II = 3."""
    return ResourcePools(two_gp, ii=3)


class TestCapacities:
    def test_capacity_scales_with_ii(self, pools):
        assert pools.capacity(("issue", 0, "gp")) == 4 * 3
        assert pools.capacity("bus") == 2 * 3
        assert pools.capacity(("rd", 0)) == 1 * 3

    def test_ii_must_be_positive(self, two_gp):
        with pytest.raises(ValueError):
            ResourcePools(two_gp, ii=0)

    def test_initially_all_free(self, pools):
        for key in pools.keys():
            assert pools.used(key) == 0
            assert pools.free(key) == pools.capacity(key)


class TestReserveRelease:
    def test_reserve_decrements_free(self, pools):
        pools.reserve([("issue", 0, "gp")])
        assert pools.used(("issue", 0, "gp")) == 1
        assert pools.free(("issue", 0, "gp")) == 11

    def test_reserve_repeated_key_in_one_call(self, pools):
        pools.reserve([("rd", 0), ("rd", 0), ("rd", 0)])
        assert pools.used(("rd", 0)) == 3

    def test_overflow_raises_and_preserves_state(self, pools):
        pools.reserve([("rd", 0)] * 3)  # capacity exactly 3
        with pytest.raises(PoolOverflowError):
            pools.reserve([("rd", 0)])
        assert pools.used(("rd", 0)) == 3

    def test_overflow_from_repetition_detected(self, pools):
        with pytest.raises(PoolOverflowError):
            pools.reserve([("rd", 0)] * 4)
        assert pools.used(("rd", 0)) == 0  # nothing leaked

    def test_release_returns_capacity(self, pools):
        pools.reserve(["bus", "bus"])
        pools.release(["bus"])
        assert pools.used("bus") == 1

    def test_release_unreserved_raises(self, pools):
        with pytest.raises(ValueError):
            pools.release(["bus"])

    def test_can_reserve_counts_repetitions(self, pools):
        assert pools.can_reserve([("rd", 0)] * 3)
        assert not pools.can_reserve([("rd", 0)] * 4)


class TestTransactions:
    def test_checkpoint_restore_roundtrip(self, pools):
        snap = pools.checkpoint()
        pools.reserve(["bus", ("rd", 0), ("issue", 1, "gp")])
        pools.restore(snap)
        assert pools.used("bus") == 0
        assert pools.used(("rd", 0)) == 0

    def test_checkpoint_is_isolated_from_later_changes(self, pools):
        snap = pools.checkpoint()
        pools.reserve(["bus"])
        assert snap["bus"] == 0


class TestClusterSummaries:
    def test_free_issue_slots(self, pools):
        assert pools.free_issue_slots(0) == 12
        pools.reserve([("issue", 0, "gp")] * 5)
        assert pools.free_issue_slots(0) == 7

    def test_free_cluster_slots_includes_ports(self, pools):
        # 12 issue + 3 rd + 3 wr.
        assert pools.free_cluster_slots(0) == 18

    def test_unified_cluster_slots_exclude_ports(self):
        pools = ResourcePools(unified_gp(8), ii=2)
        assert pools.free_cluster_slots(0) == 16

    def test_max_reservable_copies_bused(self, pools):
        # min(free rd = 3, free bus = 6) = 3.
        assert pools.max_reservable_copies(0) == 3
        pools.reserve(["bus"] * 5)
        assert pools.max_reservable_copies(0) == 1

    def test_max_reservable_copies_unified_is_zero(self):
        pools = ResourcePools(unified_gp(8), ii=4)
        assert pools.max_reservable_copies(0) == 0

    def test_grid_channel_slots_sum_incident_links(self):
        pools = ResourcePools(four_cluster_grid(), ii=2)
        # Cluster 0 touches links (0,1) and (0,2): 2 links x II 2 = 4.
        assert pools.free_channel_slots_from(0) == 4
        pools.reserve([("link", 0, 1)])
        assert pools.free_channel_slots_from(0) == 3

    def test_grid_max_reservable_copies_port_bound(self):
        pools = ResourcePools(four_cluster_grid(), ii=2)
        # rd ports: 2 per cluster x II 2 = 4; links from 0: 4 -> min = 4.
        assert pools.max_reservable_copies(0) == 4
