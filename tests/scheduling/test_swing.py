"""Swing Modulo Scheduling node ordering."""


from repro.ddg import Ddg, Opcode, find_sccs
from repro.scheduling import assignment_order, compute_metrics, swing_order
from repro.scheduling.swing import ordering_sets


class TestOrderingSets:
    def test_scc_sets_before_rest(self, intro_example):
        partition = find_sccs(intro_example)
        sets = ordering_sets(intro_example, partition)
        assert len(sets) == 2
        b, c, d = intro_example.node_ids[1:4]
        assert sets[0] == {b, c, d}
        a, e, f = (intro_example.node_ids[0], *intro_example.node_ids[4:])
        assert sets[1] == {a, e, f}

    def test_acyclic_graph_single_set(self, chain3):
        sets = ordering_sets(chain3, find_sccs(chain3))
        assert sets == [set(chain3.node_ids)]

    def test_sets_ordered_by_criticality(self):
        graph = Ddg()
        slow = [graph.add_node(Opcode.FP_DIV) for _ in range(2)]
        graph.add_edge(slow[0], slow[1], distance=0)
        graph.add_edge(slow[1], slow[0], distance=1)
        fast = [graph.add_node(Opcode.ALU) for _ in range(2)]
        graph.add_edge(fast[0], fast[1], distance=0)
        graph.add_edge(fast[1], fast[0], distance=1)
        sets = ordering_sets(graph, find_sccs(graph))
        assert sets[0] == set(slow)
        assert sets[1] == set(fast)


class TestSwingOrder:
    def test_covers_every_node_once(self, intro_example):
        order = assignment_order(intro_example, ii=4)
        assert sorted(order) == sorted(intro_example.node_ids)

    def test_scc_nodes_listed_first(self, intro_example):
        order = assignment_order(intro_example, ii=4)
        scc_nodes = set(intro_example.node_ids[1:4])
        assert set(order[:3]) == scc_nodes

    def test_paper_ordering_property(self, intro_example):
        """Section 4.1: a node is listed after all its predecessors or
        after all its successors whenever possible."""
        order = assignment_order(intro_example, ii=4)
        position = {node: i for i, node in enumerate(order)}
        violations = 0
        for node in intro_example.node_ids:
            preds = intro_example.predecessors(node)
            succs = intro_example.successors(node)
            after_all_preds = all(position[p] < position[node] for p in preds)
            after_all_succs = all(position[s] < position[node] for s in succs)
            if preds or succs:
                if not (after_all_preds or after_all_succs):
                    violations += 1
        # The recurrence makes one violation unavoidable at most.
        assert violations <= 1

    def test_chain_ordered_topologically_or_reverse(self, chain3):
        metrics = compute_metrics(chain3, ii=1)
        order = swing_order(chain3, [set(chain3.node_ids)], metrics)
        assert order in (
            list(chain3.node_ids), list(reversed(chain3.node_ids)),
        )

    def test_disconnected_components_all_ordered(self):
        graph = Ddg()
        a = graph.add_node(Opcode.ALU)
        b = graph.add_node(Opcode.FP_ADD)  # no edges at all
        c = graph.add_node(Opcode.LOAD)
        graph.add_edge(a, c, distance=0)
        order = assignment_order(graph, ii=1)
        assert sorted(order) == [a, b, c]

    def test_deterministic(self, intro_example):
        first = assignment_order(intro_example, ii=4)
        second = assignment_order(intro_example, ii=4)
        assert first == second

    def test_empty_sets_skipped(self, chain3):
        metrics = compute_metrics(chain3, ii=1)
        order = swing_order(
            chain3, [set(), set(chain3.node_ids), set()], metrics
        )
        assert sorted(order) == sorted(chain3.node_ids)


class TestCriticalityFirst:
    def test_most_critical_scc_assigned_first(self):
        graph = Ddg()
        fast = [graph.add_node(Opcode.ALU) for _ in range(2)]
        graph.add_edge(fast[0], fast[1], distance=0)
        graph.add_edge(fast[1], fast[0], distance=1)
        slow = [graph.add_node(Opcode.FP_DIV) for _ in range(2)]
        graph.add_edge(slow[0], slow[1], distance=0)
        graph.add_edge(slow[1], slow[0], distance=1)
        order = assignment_order(graph, ii=19)
        assert set(order[:2]) == set(slow)
        assert set(order[2:]) == set(fast)
