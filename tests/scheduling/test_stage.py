"""Stage scheduling (register-pressure post-pass)."""


from repro.analysis.registers import register_pressure
from repro.core import compile_loop
from repro.ddg import Ddg, Opcode, trivial_annotation
from repro.machine import two_cluster_gp
from repro.scheduling import Schedule, assert_valid, modulo_schedule
from repro.scheduling.stage import (
    stage_schedule,
    total_lifetime,
)


class TestTotalLifetime:
    def test_chain_lifetimes(self, chain3, uni8):
        schedule = modulo_schedule(trivial_annotation(chain3, uni8), ii=1)
        # ld born 2 read 2 (0), mul born 5 read 5 (0): tight chain = 0.
        assert total_lifetime(schedule) == 0

    def test_stretched_value(self, uni8):
        graph = Ddg()
        a = graph.add_node(Opcode.ALU)
        b = graph.add_node(Opcode.ALU)
        graph.add_edge(a, b, distance=0)
        annotated = trivial_annotation(graph, uni8)
        schedule = Schedule(annotated=annotated, ii=2, start={a: 0, b: 9})
        assert total_lifetime(schedule) == 8  # born 1, read 9


class TestStageScheduling:
    def _slack_graph(self):
        """A value produced early but consumed late: one op has stage
        slack that stage scheduling should exploit."""
        graph = Ddg()
        early = graph.add_node(Opcode.ALU, name="early")
        slow1 = graph.add_node(Opcode.FP_DIV, name="slow1")
        slow2 = graph.add_node(Opcode.FP_DIV, name="slow2")
        sink = graph.add_node(Opcode.FP_ADD, name="sink")
        graph.add_edge(early, sink, distance=0)
        graph.add_edge(slow1, slow2, distance=0)
        graph.add_edge(slow2, sink, distance=0)
        return graph

    def test_moves_reduce_lifetime(self, uni8):
        graph = self._slack_graph()
        schedule = modulo_schedule(trivial_annotation(graph, uni8), ii=2)
        result = stage_schedule(schedule)
        assert result.lifetime_after <= result.lifetime_before
        assert result.schedule is not schedule

    def test_result_schedule_still_valid(self, uni8):
        graph = self._slack_graph()
        schedule = modulo_schedule(trivial_annotation(graph, uni8), ii=2)
        result = stage_schedule(schedule)
        assert_valid(result.schedule)

    def test_rows_preserved(self, uni8):
        graph = self._slack_graph()
        schedule = modulo_schedule(trivial_annotation(graph, uni8), ii=3)
        result = stage_schedule(schedule)
        for node_id in graph.node_ids:
            assert result.schedule.row(node_id) == schedule.row(node_id)

    def test_input_schedule_untouched(self, uni8):
        graph = self._slack_graph()
        schedule = modulo_schedule(trivial_annotation(graph, uni8), ii=2)
        starts_before = dict(schedule.start)
        stage_schedule(schedule)
        assert schedule.start == starts_before

    def test_tight_chain_is_fixed_point(self, chain3, uni8):
        schedule = modulo_schedule(trivial_annotation(chain3, uni8), ii=1)
        result = stage_schedule(schedule)
        assert result.lifetime_after == result.lifetime_before

    def test_recurrence_respected(self, intro_example, uni8):
        schedule = modulo_schedule(
            trivial_annotation(intro_example, uni8), ii=4
        )
        result = stage_schedule(schedule)
        assert_valid(result.schedule)

    def test_register_pressure_never_worse_on_kernels(self):
        from repro.workloads import all_kernels
        machine = two_cluster_gp()
        for graph in all_kernels():
            compiled = compile_loop(graph, machine)
            staged = stage_schedule(compiled.schedule)
            assert_valid(staged.schedule)
            before = register_pressure(compiled.schedule).total_max_live
            after = register_pressure(staged.schedule).total_max_live
            # Total-lifetime descent is a proxy; allow tiny regressions
            # but the aggregate direction must hold per-kernel.
            assert after <= before + 1, graph.name

    def test_clustered_schedule_supported(self, two_gp):
        graph = Ddg()
        src = graph.add_node(Opcode.ALU)
        for _ in range(15):
            node = graph.add_node(Opcode.ALU)
            graph.add_edge(src, node, distance=0)
        compiled = compile_loop(graph, two_gp, verify=True)
        result = stage_schedule(compiled.schedule)
        assert_valid(result.schedule)
