"""Independent schedule checker."""

import pytest

from repro.ddg import trivial_annotation
from repro.scheduling import (
    Schedule,
    assert_valid,
    check_schedule,
    modulo_schedule,
)


@pytest.fixture
def valid_schedule(chain3, uni8):
    schedule = modulo_schedule(trivial_annotation(chain3, uni8), ii=2)
    assert schedule is not None
    return schedule


class TestCleanSchedules:
    def test_no_violations(self, valid_schedule):
        assert check_schedule(valid_schedule) == []

    def test_assert_valid_passes(self, valid_schedule):
        assert_valid(valid_schedule)


class TestDependenceViolations:
    def test_latency_violation_detected(self, chain3, uni8):
        annotated = trivial_annotation(chain3, uni8)
        ld, mul, st = chain3.node_ids
        bad = Schedule(
            annotated=annotated, ii=4,
            start={ld: 0, mul: 1, st: 10},  # mul starts before load done
        )
        violations = check_schedule(bad)
        assert any(v.kind == "dependence" for v in violations)

    def test_loop_carried_slack_allows_earlier_start(
        self, accumulator, uni8
    ):
        annotated = trivial_annotation(accumulator, uni8)
        ld, acc = accumulator.node_ids
        # acc -> acc at distance 1 with II 2: needs start >= start+1-2, ok.
        schedule = Schedule(
            annotated=annotated, ii=2, start={ld: 0, acc: 2}
        )
        assert check_schedule(schedule) == []

    def test_assert_valid_raises_with_details(self, chain3, uni8):
        annotated = trivial_annotation(chain3, uni8)
        ld, mul, st = chain3.node_ids
        bad = Schedule(
            annotated=annotated, ii=4, start={ld: 0, mul: 0, st: 0}
        )
        with pytest.raises(AssertionError) as exc:
            assert_valid(bad)
        assert "dependence" in str(exc.value)


class TestResourceViolations:
    def test_oversubscribed_row_detected(self, uni8):
        from repro.ddg import Ddg, Opcode
        graph = Ddg()
        nodes = [graph.add_node(Opcode.ALU) for _ in range(9)]
        annotated = trivial_annotation(graph, uni8)
        # All 9 ALUs in the same row of an 8-wide machine.
        bad = Schedule(
            annotated=annotated, ii=2, start={n: 0 for n in nodes}
        )
        violations = check_schedule(bad)
        assert any(v.kind == "resource" for v in violations)

    def test_wrapped_rows_checked_modulo_ii(self, uni8):
        from repro.ddg import Ddg, Opcode
        graph = Ddg()
        nodes = [graph.add_node(Opcode.ALU) for _ in range(9)]
        annotated = trivial_annotation(graph, uni8)
        # Cycles 0 and 2 share row 0 at II 2.
        starts = {n: (0 if i < 5 else 2) for i, n in enumerate(nodes)}
        bad = Schedule(annotated=annotated, ii=2, start=starts)
        assert any(v.kind == "resource" for v in check_schedule(bad))

    def test_violation_str_is_informative(self, uni8):
        from repro.ddg import Ddg, Opcode
        graph = Ddg()
        nodes = [graph.add_node(Opcode.ALU) for _ in range(9)]
        annotated = trivial_annotation(graph, uni8)
        bad = Schedule(annotated=annotated, ii=1, start={n: 0 for n in nodes})
        violation = check_schedule(bad)[0]
        assert "issue" in str(violation)
