"""Stable diagnostic codes on the independent schedule checker.

Each defect class produces exactly one violation carrying its stable
``SCHED4xx`` code, and ``assert_valid`` surfaces the code in its
message -- so tests match on codes, not prose.
"""

import pytest

from repro.ddg import Ddg, Opcode, trivial_annotation
from repro.scheduling import Schedule, assert_valid, check_schedule
from repro.scheduling.verify import Violation


class TestOversubscribedRow:
    def test_exactly_one_resource_diagnostic(self, uni8):
        graph = Ddg(name="wide")
        nodes = [graph.add_node(Opcode.ALU) for _ in range(9)]
        schedule = Schedule(
            annotated=trivial_annotation(graph, uni8),
            ii=2,
            start={n: 0 for n in nodes},
        )
        violations = check_schedule(schedule)
        assert len(violations) == 1
        assert violations[0].code == "SCHED402"
        assert violations[0].kind == "resource"


class TestViolatedBackEdge:
    def test_exactly_one_dependence_diagnostic(self, uni8):
        # A 3-cycle FP multiply feeding itself one iteration later:
        # at II 1 its start must trail itself by latency - II = 2.
        graph = Ddg(name="self-recurrence")
        mul = graph.add_node(Opcode.FP_MULT, name="mul")
        graph.add_edge(mul, mul, distance=1)
        schedule = Schedule(
            annotated=trivial_annotation(graph, uni8),
            ii=1,
            start={mul: 0},
        )
        violations = check_schedule(schedule)
        assert len(violations) == 1
        assert violations[0].code == "SCHED401"
        assert violations[0].kind == "dependence"
        assert "distance 1" in violations[0].detail


class TestStructurallyInvalidGraph:
    def test_exactly_one_structure_diagnostic(self, chain3, two_gp):
        from repro.core import compile_loop

        compiled = compile_loop(chain3, two_gp)
        annotated = compiled.schedule.annotated
        # Tear one node off its cluster onto the other: the value now
        # crosses clusters with no copy, failing structural validation.
        victim = next(
            e.dst for e in annotated.ddg.edges
            if annotated.cluster_of[e.src] == annotated.cluster_of[e.dst]
            and annotated.ddg.node(e.src).produces_value
        )
        annotated.cluster_of[victim] = (
            1 - annotated.cluster_of[victim]
        )
        violations = [
            v for v in check_schedule(compiled.schedule)
            if v.code == "SCHED403"
        ]
        assert len(violations) == 1
        assert violations[0].kind == "structure"


class TestCodesInMessages:
    def test_assert_valid_message_carries_codes(self, uni8):
        graph = Ddg(name="wide")
        nodes = [graph.add_node(Opcode.ALU) for _ in range(9)]
        schedule = Schedule(
            annotated=trivial_annotation(graph, uni8),
            ii=2,
            start={n: 0 for n in nodes},
        )
        with pytest.raises(AssertionError) as exc:
            assert_valid(schedule)
        assert "SCHED402" in str(exc.value)
        assert "resource" in str(exc.value)

    def test_handmade_violation_str_without_code(self):
        v = Violation(kind="resource", detail="d")
        assert str(v) == "[resource] d"

    def test_violation_str_with_code(self):
        v = Violation(kind="dependence", detail="d", code="SCHED401")
        assert str(v) == "[dependence:SCHED401] d"
