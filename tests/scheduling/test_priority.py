"""ASAP/ALAP/height/mobility metrics."""

import pytest

from repro.ddg import Ddg, Opcode
from repro.scheduling import PriorityDivergenceError, compute_metrics


class TestChainMetrics:
    def test_asap_accumulates_latencies(self, chain3):
        metrics = compute_metrics(chain3, ii=1)
        ld, mul, st = chain3.node_ids
        assert metrics.asap[ld] == 0
        assert metrics.asap[mul] == 2  # after the 2-cycle load
        assert metrics.asap[st] == 5  # after the 3-cycle multiply

    def test_height_counts_downstream_chain(self, chain3):
        metrics = compute_metrics(chain3, ii=1)
        ld, mul, st = chain3.node_ids
        assert metrics.height[st] == 1
        assert metrics.height[mul] == 4
        assert metrics.height[ld] == 6

    def test_critical_path(self, chain3):
        metrics = compute_metrics(chain3, ii=1)
        assert metrics.critical_path == 6

    def test_alap_consistent_with_asap(self, chain3):
        metrics = compute_metrics(chain3, ii=1)
        for node_id in chain3.node_ids:
            assert metrics.alap[node_id] >= metrics.asap[node_id]

    def test_chain_has_zero_mobility(self, chain3):
        metrics = compute_metrics(chain3, ii=1)
        for node_id in chain3.node_ids:
            assert metrics.mobility(node_id) == 0


class TestMobility:
    def test_off_critical_path_node_has_slack(self):
        graph = Ddg()
        src = graph.add_node(Opcode.ALU)
        slow = graph.add_node(Opcode.FP_DIV)  # 9 cycles
        fast = graph.add_node(Opcode.ALU)  # 1 cycle
        sink = graph.add_node(Opcode.FP_ADD)
        graph.add_edge(src, slow, distance=0)
        graph.add_edge(src, fast, distance=0)
        graph.add_edge(slow, sink, distance=0)
        graph.add_edge(fast, sink, distance=0)
        metrics = compute_metrics(graph, ii=1)
        assert metrics.mobility(fast) == 8
        assert metrics.mobility(slow) == 0


class TestRecurrences:
    def test_loop_carried_edges_relax_at_feasible_ii(self, intro_example):
        metrics = compute_metrics(intro_example, ii=4)  # RecMII = 4
        # The recurrence closes exactly: no divergence, finite values.
        assert all(v >= 0 for v in metrics.asap.values())

    def test_divergence_below_recmii(self, intro_example):
        with pytest.raises(PriorityDivergenceError):
            compute_metrics(intro_example, ii=3)

    def test_depth_alias(self, chain3):
        metrics = compute_metrics(chain3, ii=1)
        for node_id in chain3.node_ids:
            assert metrics.depth(node_id) == metrics.asap[node_id]

    def test_empty_graph(self):
        metrics = compute_metrics(Ddg(), ii=1)
        assert metrics.critical_path == 0
        assert metrics.asap == {}
