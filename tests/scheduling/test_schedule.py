"""Schedule record: rows, stages, formatting."""

import pytest

from repro.ddg import trivial_annotation
from repro.scheduling import Schedule, modulo_schedule


@pytest.fixture
def chain_schedule(chain3, uni8):
    schedule = modulo_schedule(trivial_annotation(chain3, uni8), ii=2)
    assert schedule is not None
    return schedule


class TestGeometry:
    def test_row_is_start_mod_ii(self, chain_schedule):
        for node_id, start in chain_schedule.start.items():
            assert chain_schedule.row(node_id) == start % 2

    def test_stage_is_start_div_ii(self, chain_schedule):
        for node_id, start in chain_schedule.start.items():
            assert chain_schedule.stage(node_id) == start // 2

    def test_stage_count_positive(self, chain_schedule):
        assert chain_schedule.stage_count >= 1

    def test_chain_pipeline_depth(self, chain3, uni8):
        # ld(2) -> mul(3) -> st at II 1: starts 0, 2, 5 -> 6 stages.
        schedule = modulo_schedule(trivial_annotation(chain3, uni8), ii=1)
        assert schedule.stage_count == 6

    def test_makespan(self, chain3, uni8):
        schedule = modulo_schedule(trivial_annotation(chain3, uni8), ii=1)
        assert schedule.makespan == 6  # 0 .. 5+1


class TestKernelRows:
    def test_every_op_in_exactly_one_row(self, chain_schedule):
        rows = chain_schedule.kernel_rows()
        flattened = [op for row in rows for op in row]
        assert sorted(flattened) == sorted(chain_schedule.start)

    def test_row_count_equals_ii(self, chain_schedule):
        assert len(chain_schedule.kernel_rows()) == 2

    def test_format_kernel_mentions_every_op(self, chain_schedule):
        text = chain_schedule.format_kernel()
        ddg = chain_schedule.annotated.ddg
        for node in ddg.nodes:
            assert node.name in text


class TestValidation:
    def test_incomplete_schedule_rejected(self, chain3, uni8):
        annotated = trivial_annotation(chain3, uni8)
        with pytest.raises(ValueError):
            Schedule(annotated=annotated, ii=2, start={0: 0})
