"""Bidirectional placement behavior of the iterative modulo scheduler."""


from repro.ddg import Ddg, Opcode, trivial_annotation
from repro.machine import unified_fs, unified_gp
from repro.scheduling import assert_valid, modulo_schedule
from repro.scheduling.modulo import SchedulerStats


class TestBidirectionalWindows:
    def test_successor_first_order_converges(self):
        """SMS ordering can list a consumer before its producer; the
        downward window must place the producer early enough without
        endless displacement (the livelock this design fixes)."""
        graph = Ddg()
        # A tight recurrence whose SMS order interleaves directions.
        nodes = [graph.add_node(Opcode.ALU) for _ in range(6)]
        for a, b in zip(nodes, nodes[1:]):
            graph.add_edge(a, b, distance=0)
        graph.add_edge(nodes[-1], nodes[0], distance=1)  # RecMII 6
        annotated = trivial_annotation(graph, unified_gp(2))
        stats = SchedulerStats(ii=6)
        schedule = modulo_schedule(annotated, ii=6, stats=stats)
        assert schedule is not None
        assert_valid(schedule)

    def test_tight_scc_schedules_at_exact_recmii(self):
        graph = Ddg()
        a = graph.add_node(Opcode.FP_MULT)  # 3
        b = graph.add_node(Opcode.FP_ADD)  # 1
        graph.add_edge(a, b, distance=0)
        graph.add_edge(b, a, distance=1)  # RecMII 4
        annotated = trivial_annotation(graph, unified_gp(4))
        schedule = modulo_schedule(annotated, ii=4)
        assert schedule is not None
        # The cycle is tight: b must start exactly 3 after a, and a
        # exactly 1 + (II*1) - ... i.e. both constraints are equalities.
        assert schedule.start[b] == schedule.start[a] + 3

    def test_normalization_keeps_rows(self):
        """Downward placement can go negative; normalization shifts by a
        multiple of II so rows (and thus resources) are unchanged."""
        graph = Ddg()
        nodes = [graph.add_node(Opcode.FP_DIV) for _ in range(3)]
        graph.add_edge(nodes[0], nodes[1], distance=0)
        graph.add_edge(nodes[1], nodes[2], distance=0)
        graph.add_edge(nodes[2], nodes[0], distance=2)
        annotated = trivial_annotation(graph, unified_gp(4))
        from repro.ddg import rec_mii
        ii = rec_mii(graph)
        schedule = modulo_schedule(annotated, ii=ii)
        assert schedule is not None
        assert all(t >= 0 for t in schedule.start.values())
        assert_valid(schedule)

    def test_window_clipped_by_scheduled_successor(self):
        """With both neighbors placed, the op must land between them."""
        graph = Ddg()
        a = graph.add_node(Opcode.ALU)
        b = graph.add_node(Opcode.ALU)
        c = graph.add_node(Opcode.ALU)
        graph.add_edge(a, b, distance=0)
        graph.add_edge(b, c, distance=0)
        annotated = trivial_annotation(graph, unified_gp(1))
        schedule = modulo_schedule(annotated, ii=3)
        assert schedule is not None
        assert (schedule.start[a] < schedule.start[b]
                < schedule.start[c])


class TestDisplacementAccounting:
    def test_stats_track_displacements_under_pressure(self):
        graph = Ddg()
        # 12 loads on 2 memory units at II 6: heavy contention.
        loads = [graph.add_node(Opcode.LOAD) for _ in range(12)]
        chain = [graph.add_node(Opcode.FP_ADD) for _ in range(4)]
        for load, add in zip(loads, chain * 3):
            graph.add_edge(load, add, distance=0)
        machine = unified_fs(memory=2, integer=2, floating=2)
        annotated = trivial_annotation(graph, machine)
        stats = SchedulerStats(ii=6)
        schedule = modulo_schedule(annotated, ii=6, stats=stats)
        assert schedule is not None
        assert stats.placements >= len(graph)
        assert_valid(schedule)

    def test_budget_exhaustion_returns_none(self):
        graph = Ddg()
        loads = [graph.add_node(Opcode.LOAD) for _ in range(8)]
        machine = unified_fs(memory=1, integer=1, floating=1)
        annotated = trivial_annotation(graph, machine)
        # II 7 < ResMII 8: impossible; must fail cleanly, not hang.
        assert modulo_schedule(annotated, ii=7) is None
