"""Iterative modulo scheduler."""

import pytest

from repro.ddg import Ddg, Opcode, build_ddg, mii, trivial_annotation
from repro.machine import unified_fs, unified_gp
from repro.scheduling import (
    SchedulerStats,
    assert_valid,
    modulo_schedule,
    schedule_with_ii_search,
)


def _annotate(graph, machine):
    return trivial_annotation(graph, machine)


class TestBasicScheduling:
    def test_chain_schedules_at_ii_one(self, chain3, uni8):
        schedule = modulo_schedule(_annotate(chain3, uni8), ii=1)
        assert schedule is not None
        assert_valid(schedule)
        ld, mul, st = chain3.node_ids
        assert schedule.start[mul] >= schedule.start[ld] + 2
        assert schedule.start[st] >= schedule.start[mul] + 3

    def test_recurrence_respected(self, intro_example, uni8):
        schedule = modulo_schedule(_annotate(intro_example, uni8), ii=4)
        assert schedule is not None
        assert_valid(schedule)

    def test_below_recmii_fails_cleanly(self, intro_example, uni8):
        assert modulo_schedule(_annotate(intro_example, uni8), ii=3) is None

    def test_accumulator_self_loop(self, accumulator, uni8):
        schedule = modulo_schedule(_annotate(accumulator, uni8), ii=1)
        assert schedule is not None
        assert_valid(schedule)

    def test_empty_graph_rejected(self, uni8):
        annotated = trivial_annotation(Ddg(), uni8)
        with pytest.raises(ValueError):
            modulo_schedule(annotated, ii=1)


class TestResourceContention:
    def test_narrow_machine_forces_spread(self):
        # 8 independent ALUs on a 2-wide machine need II >= 4.
        graph = Ddg()
        for _ in range(8):
            graph.add_node(Opcode.ALU)
        machine = unified_gp(2)
        annotated = _annotate(graph, machine)
        assert modulo_schedule(annotated, ii=3) is None
        schedule = modulo_schedule(annotated, ii=4)
        assert schedule is not None
        assert_valid(schedule)

    def test_fs_class_contention(self):
        graph = build_ddg(
            ops=[(f"l{i}", Opcode.LOAD) for i in range(4)], deps=[]
        )
        machine = unified_fs(memory=2, integer=1, floating=1)
        annotated = _annotate(graph, machine)
        assert modulo_schedule(annotated, ii=1) is None
        schedule = modulo_schedule(annotated, ii=2)
        assert schedule is not None
        assert_valid(schedule)

    def test_eviction_counts_reported(self):
        # Saturated machine exercises displacement.
        graph = Ddg()
        prev = graph.add_node(Opcode.ALU)
        for _ in range(7):
            node = graph.add_node(Opcode.ALU)
            graph.add_edge(prev, node, distance=0)
            prev = node
        stats = SchedulerStats(ii=4)
        schedule = modulo_schedule(
            _annotate(graph, unified_gp(2)), ii=4, stats=stats
        )
        assert schedule is not None
        assert stats.succeeded
        assert stats.placements >= len(graph)


class TestIiSearch:
    def test_search_finds_minimum(self, intro_example, uni8):
        annotated = _annotate(intro_example, uni8)
        schedule = schedule_with_ii_search(annotated, min_ii=1, max_ii=10)
        assert schedule is not None
        assert schedule.ii == 4  # RecMII of the intro example

    def test_search_respects_bounds(self, intro_example, uni8):
        annotated = _annotate(intro_example, uni8)
        assert schedule_with_ii_search(annotated, 1, 3) is None

    def test_search_matches_mii_for_kernels(self, uni8):
        from repro.workloads import all_kernels
        for graph in all_kernels():
            annotated = _annotate(graph, uni8)
            lower = mii(graph, uni8)
            schedule = schedule_with_ii_search(annotated, lower, lower + 8)
            assert schedule is not None
            assert_valid(schedule)


class TestBudget:
    def test_tiny_budget_fails_gracefully(self, intro_example, uni8):
        annotated = _annotate(intro_example, uni8)
        # budget_ratio floor keeps it at len+1; use a machine too narrow
        # to finish in that many placements at the minimum II.
        machine = unified_gp(1)
        annotated = _annotate(intro_example, machine)
        result = modulo_schedule(annotated, ii=6, budget_ratio=0)
        # Either schedules within the floor budget or returns None;
        # must not raise or loop forever.
        if result is not None:
            assert_valid(result)
