"""Seeded-defect fixtures: one corrupted artifact per rule family.

Each test plants exactly one defect, lints the artifact, and asserts
the run reports *exactly* the expected stable code with a nonzero exit
-- the acceptance contract for the diagnostic catalog.
"""

from repro.ddg import Ddg, Opcode, trivial_annotation
from repro.lint import LintTarget, lint_target
from repro.machine import Machine
from repro.machine.interconnect import BusInterconnect
from repro.regalloc.lifetimes import Lifetime
from repro.regalloc.mve import MveAllocation
from repro.scheduling import Schedule, modulo_schedule


def _error_codes(report):
    return sorted({d.code for d in report.errors})


class TestSeededDefects:
    def test_ddg_family_zero_distance_cycle(self):
        graph = Ddg(name="combinational")
        a = graph.add_node(Opcode.ALU, name="a")
        b = graph.add_node(Opcode.ALU, name="b")
        graph.add_edge(a, b, distance=0)
        graph.add_edge(b, a, distance=0)
        report = lint_target(LintTarget(name=graph.name, ddg=graph))
        assert _error_codes(report) == ["DDG103"]
        assert len(report.errors) == 1
        assert report.exit_code != 0

    def test_mach_family_zero_capacity_channel(self, two_gp):
        class ZeroCapacityBus(BusInterconnect):
            def channel_resources(self):
                return {"bus": 0}

        machine = Machine(
            clusters=two_gp.clusters,
            interconnect=ZeroCapacityBus(bus_count=1),
            name="broken-bus",
        )
        report = lint_target(
            LintTarget(name=machine.name, machine=machine)
        )
        assert _error_codes(report) == ["MACH206"]
        assert len(report.errors) == 1
        assert report.exit_code != 0

    def test_assign_family_unassigned_node(self, chain3, uni8):
        annotated = trivial_annotation(chain3, uni8)
        missing = chain3.node_ids[1]
        del annotated.cluster_of[missing]
        report = lint_target(
            LintTarget(name=chain3.name, annotated=annotated)
        )
        assert _error_codes(report) == ["ASSIGN301"]
        assert len(report.errors) == 1
        assert f"node {missing}" == report.errors[0].location
        assert report.exit_code != 0

    def test_sched_family_oversubscribed_row(self, uni8):
        graph = Ddg(name="wide")
        nodes = [graph.add_node(Opcode.ALU) for _ in range(9)]
        annotated = trivial_annotation(graph, uni8)
        # Nine ALU ops in row 0 of an 8-wide machine.
        schedule = Schedule(
            annotated=annotated, ii=2, start={n: 0 for n in nodes}
        )
        report = lint_target(
            LintTarget(name=graph.name, schedule=schedule)
        )
        assert _error_codes(report) == ["SCHED402"]
        assert len(report.errors) == 1
        assert "row 0" in report.errors[0].message
        assert report.exit_code != 0

    def test_reg_family_negative_lifetime(self, chain3, uni8):
        schedule = modulo_schedule(
            trivial_annotation(chain3, uni8), ii=2
        )
        assert schedule is not None
        target = LintTarget(name=chain3.name, schedule=schedule)
        # Seed the memo caches with a corrupted lifetime set (value
        # read before it is produced) and a matching benign allocation,
        # exactly the hook the REG rules document for tests.
        target.cache["lifetimes"] = [
            Lifetime(producer=0, cluster=0, birth=5, death=3)
        ]
        target.cache["allocation"] = MveAllocation(
            ii=schedule.ii, unroll=1
        )
        report = lint_target(target)
        assert _error_codes(report) == ["REG504"]
        assert len(report.errors) == 1
        assert report.exit_code != 0
