"""The SCHED490 differential cross-check against repro.baselines."""

import zlib

from repro.lint import LintConfig, LintTarget, lint_target

DIFFERENTIAL = LintConfig(enable=frozenset({"SCHED490"}))


class TestDifferentialRule:
    def test_agreeing_pipelines_stay_silent(self, chain3, two_gp):
        report = lint_target(
            LintTarget(name=chain3.name, ddg=chain3, machine=two_gp),
            DIFFERENTIAL,
        )
        assert report.ok
        assert "SCHED490" not in report.codes()

    def test_rule_off_by_default(self, chain3, two_gp):
        target = LintTarget(
            name=chain3.name, ddg=chain3, machine=two_gp
        )
        baseline = lint_target(target)
        enabled = lint_target(target, DIFFERENTIAL)
        assert enabled.rules_run == baseline.rules_run + 1

    def test_sampling_skips_off_residue_loops(self, chain3, two_gp):
        # Pick a sample size that excludes this loop's CRC residue:
        # the rule still runs but must yield nothing without compiling.
        sample = 1000003
        assert zlib.crc32(chain3.name.encode()) % sample != 0
        config = LintConfig(
            enable=frozenset({"SCHED490"}),
            differential_sample=sample,
        )
        report = lint_target(
            LintTarget(name=chain3.name, ddg=chain3, machine=two_gp),
            config,
        )
        assert "SCHED490" not in report.codes()

    def test_divergence_reported(self, chain3, two_gp, monkeypatch):
        import dataclasses

        import repro.baselines as baselines

        real = baselines.reference_compile_loop

        def lie(ddg, machine, *args, **kwargs):
            result = real(ddg, machine, *args, **kwargs)
            return dataclasses.replace(result, ii=result.ii + 1)

        monkeypatch.setattr(
            baselines, "reference_compile_loop", lie
        )
        report = lint_target(
            LintTarget(name=chain3.name, ddg=chain3, machine=two_gp),
            DIFFERENTIAL,
        )
        assert "SCHED490" in [d.code for d in report.errors]
