"""Seeded defects for the DF7xx dataflow rule family.

Each test plants exactly one defect class and asserts the matching
stable code fires (and nothing else from the family).  Where sibling
families would legitimately fire on the same corrupt artifact, the run
is scoped with ``LintConfig(select=...)`` — which doubles as coverage
for prefix selection.
"""

from repro.core import compile_loop
from repro.ddg import AnnotatedDdg, Ddg, Opcode, build_ddg
from repro.lint import LintConfig, LintTarget, lint_target
from repro.machine import (
    ClusterSpec,
    Machine,
    NoInterconnect,
    PointToPointInterconnect,
    fs_units,
    gp_units,
)


def _codes(diagnostics):
    return sorted({d.code for d in diagnostics})


class TestDeadValue:
    def test_df701_flags_dead_chain(self, two_gp):
        graph = Ddg(name="half-dead")
        load = graph.add_node(Opcode.LOAD, name="ld")
        live = graph.add_node(Opcode.ALU, name="live")
        dead = graph.add_node(Opcode.ALU, name="dead")
        store = graph.add_node(Opcode.STORE, name="st")
        graph.add_edge(load, live)
        graph.add_edge(live, store)
        graph.add_edge(load, dead)
        report = lint_target(
            LintTarget(name=graph.name, ddg=graph, machine=two_gp)
        )
        assert report.ok  # dead code is informational, not gating
        assert _codes(report.infos) == ["DF701"]
        assert f"node {dead}" == report.infos[0].location

    def test_clean_graph_stays_silent(self, chain3, two_gp):
        report = lint_target(
            LintTarget(name=chain3.name, ddg=chain3, machine=two_gp)
        )
        assert "DF701" not in report.codes()


class TestUnreachableConsumer:
    def _islanded_fs_machine(self):
        """The float-only cluster 1 is off the fabric: the only link
        connects the memory cluster 0 to the integer cluster 2."""
        return Machine(
            clusters=(
                ClusterSpec(0, fs_units(1, 1, 0)),
                ClusterSpec(1, fs_units(0, 0, 1)),
                ClusterSpec(2, fs_units(0, 2, 0)),
            ),
            interconnect=PointToPointInterconnect(links=[(0, 2)]),
            name="islanded-fs",
        )

    def test_df702_fires_before_assignment(self):
        graph = build_ddg(
            ops=[("ld", Opcode.LOAD), ("fma", Opcode.FP_ADD)],
            deps=[("ld", "fma", 0)],
            name="doomed",
        )
        machine = self._islanded_fs_machine()
        report = lint_target(
            LintTarget(name=graph.name, ddg=graph, machine=machine),
            LintConfig(select=frozenset({"DF702"})),
        )
        assert _codes(report.errors) == ["DF702"]
        assert len(report.errors) == 1
        assert "can never reach" in report.errors[0].message

    def test_connected_pair_passes(self, two_fs):
        graph = build_ddg(
            ops=[("ld", Opcode.LOAD), ("fma", Opcode.FP_ADD)],
            deps=[("ld", "fma", 0)],
            name="routable",
        )
        report = lint_target(
            LintTarget(name=graph.name, ddg=graph, machine=two_fs),
            LintConfig(select=frozenset({"DF702"})),
        )
        assert report.ok and not report.diagnostics


class TestCopyReach:
    def _machine(self):
        return Machine(
            clusters=(
                ClusterSpec(0, gp_units(4)),
                ClusterSpec(1, gp_units(4)),
            ),
            interconnect=PointToPointInterconnect(links=[(0, 1)]),
            name="pair-p2p",
        )

    def test_df703_unfed_copy(self):
        # The copy claims to carry 'a' but no value path feeds it.
        graph = Ddg(name="orphan-copy")
        a = graph.add_node(Opcode.ALU, name="a")
        cp = graph.add_node(Opcode.COPY, name="cp")
        b = graph.add_node(Opcode.ALU, name="b")
        graph.add_edge(cp, b)
        annotated = AnnotatedDdg(
            ddg=graph,
            machine=self._machine(),
            cluster_of={a: 0, cp: 0, b: 1},
            copy_targets={cp: (1,)},
            copy_value_of={cp: a},
        )
        report = lint_target(
            LintTarget(name=graph.name, annotated=annotated),
            LintConfig(select=frozenset({"DF703"})),
        )
        assert _codes(report.errors) == ["DF703"]
        assert any(
            "no value path feeds it" in d.message for d in report.errors
        )

    def test_df703_undelivered_consumer(self):
        # Consumer reads on cluster 1 but the chain's only carrier
        # delivers into cluster 0.
        graph = Ddg(name="undelivered")
        a = graph.add_node(Opcode.ALU, name="a")
        b = graph.add_node(Opcode.ALU, name="b")
        graph.add_edge(a, b)
        annotated = AnnotatedDdg(
            ddg=graph,
            machine=self._machine(),
            cluster_of={a: 0, b: 1},
        )
        # No copies at all: nothing carries 'a' into cluster 1.  The
        # chain analysis keys off copy_value_of, so register a phantom
        # copy-free chain by faking one unconsumed copy of 'a'.
        cp = graph.add_node(Opcode.COPY, name="cp")
        graph.add_edge(a, cp)
        annotated.cluster_of[cp] = 0
        annotated.copy_targets[cp] = (0,)
        annotated.copy_value_of[cp] = a
        report = lint_target(
            LintTarget(name=graph.name, annotated=annotated),
            LintConfig(select=frozenset({"DF703"})),
        )
        codes = _codes(report.errors)
        assert codes == ["DF703"]
        assert any(
            "which no carrier delivers to" in d.message
            for d in report.errors
        )

    def test_df703_unreachable_hop(self):
        graph = Ddg(name="bad-hop")
        a = graph.add_node(Opcode.ALU, name="a")
        cp = graph.add_node(Opcode.COPY, name="cp")
        b = graph.add_node(Opcode.ALU, name="b")
        graph.add_edge(a, cp)
        graph.add_edge(cp, b)
        machine = Machine(
            clusters=(
                ClusterSpec(0, gp_units(4)),
                ClusterSpec(1, gp_units(4)),
                ClusterSpec(2, gp_units(4)),
            ),
            interconnect=PointToPointInterconnect(links=[(0, 1)]),
            name="triple",
        )
        annotated = AnnotatedDdg(
            ddg=graph,
            machine=machine,
            cluster_of={a: 0, cp: 0, b: 2},
            copy_targets={cp: (2,)},
            copy_value_of={cp: a},
        )
        report = lint_target(
            LintTarget(name=graph.name, annotated=annotated),
            LintConfig(select=frozenset({"DF703"})),
        )
        assert _codes(report.errors) == ["DF703"]
        assert any(
            "interconnect cannot carry" in d.message
            for d in report.errors
        )

    def test_df703_clean_on_compiled_corpus_loop(self, chain3, two_gp):
        compiled = compile_loop(chain3, two_gp)
        report = lint_target(
            LintTarget(name=chain3.name, annotated=compiled.annotated),
            LintConfig(select=frozenset({"DF703"})),
        )
        assert report.ok and not report.diagnostics


class TestRegisterPressure:
    def _tiny_regfile_machine(self, registers):
        return Machine(
            clusters=(
                ClusterSpec(0, gp_units(8), register_file=registers),
            ),
            interconnect=NoInterconnect(),
            name=f"uni8-r{registers}",
        )

    def test_df704_overflow_is_an_error(self, chain3):
        machine = self._tiny_regfile_machine(1)
        compiled = compile_loop(chain3, machine)
        report = lint_target(
            LintTarget(name=chain3.name, schedule=compiled.schedule),
            LintConfig(select=frozenset({"DF704"})),
        )
        assert _codes(report.errors) == ["DF704"]
        assert "cluster 0" == report.errors[0].location

    def test_df704_silent_when_file_fits(self, chain3):
        machine = self._tiny_regfile_machine(64)
        compiled = compile_loop(chain3, machine)
        report = lint_target(
            LintTarget(name=chain3.name, schedule=compiled.schedule),
            LintConfig(select=frozenset({"DF704"})),
        )
        assert report.ok and not report.diagnostics

    def test_df704_exempts_unbounded_files(self, chain3, uni8):
        compiled = compile_loop(chain3, uni8)
        report = lint_target(
            LintTarget(name=chain3.name, schedule=compiled.schedule),
            LintConfig(select=frozenset({"DF704"})),
        )
        assert report.ok and not report.diagnostics


class TestIiBelowFloor:
    def test_df705_fires_on_cached_floor_mismatch(
        self, compiled_chain
    ):
        # Pre-seed the memoized floor above the achieved II: the rule
        # must trust the (corrupted) cache and flag the schedule.
        target = LintTarget(
            name="chain3", schedule=compiled_chain.schedule
        )
        target.cache["df_mii_floor"] = compiled_chain.ii + 1
        report = lint_target(
            target, LintConfig(select=frozenset({"DF705"}))
        )
        assert _codes(report.errors) == ["DF705"]

    def test_df705_clean_on_real_compile(self, compiled_chain):
        report = lint_target(
            LintTarget(
                name="chain3", schedule=compiled_chain.schedule
            ),
            LintConfig(select=frozenset({"DF705"})),
        )
        assert report.ok and not report.diagnostics
