"""The ``repro lint`` subcommand and the ``--lint`` pipeline gates."""

import json

import pytest

from repro.cli import main

CLEAN_LOOP = """\
ld:  load
mul: fp_mult <- ld
st:  store   <- mul
"""

#: A combinational cycle: both edges at distance 0 (DDG103).
DEFECTIVE_LOOP = """\
a: alu <- b
b: alu <- a
"""


@pytest.fixture
def clean_loop_file(tmp_path):
    path = tmp_path / "clean.loop"
    path.write_text(CLEAN_LOOP)
    return str(path)


@pytest.fixture
def defective_loop_file(tmp_path):
    path = tmp_path / "cycle.loop"
    path.write_text(DEFECTIVE_LOOP)
    return str(path)


class TestLintCommand:
    def test_clean_loop_exits_zero(self, clean_loop_file, capsys):
        rc = main(["lint", clean_loop_file, "--machine", "2gp"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "0 error(s)" in out

    def test_defective_loop_exits_nonzero(
        self, defective_loop_file, capsys
    ):
        rc = main([
            "lint", defective_loop_file, "--format", "json",
        ])
        assert rc == 1
        doc = json.loads(capsys.readouterr().out)
        codes = {d["code"] for d in doc["diagnostics"]}
        assert "DDG103" in codes
        assert doc["summary"]["ok"] is False

    def test_disable_silences_a_rule(self, defective_loop_file, capsys):
        rc = main([
            "lint", defective_loop_file, "--fast",
            "--disable", "DDG103",
        ])
        capsys.readouterr()
        assert rc == 0

    def test_severity_demotion_unblocks_exit(
        self, defective_loop_file, capsys
    ):
        rc = main([
            "lint", defective_loop_file, "--fast",
            "--severity", "DDG103=warning", "--format", "json",
        ])
        doc = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert doc["summary"]["warnings"] >= 1

    def test_malformed_severity_flag_rejected(self, clean_loop_file):
        with pytest.raises(SystemExit):
            main([
                "lint", clean_loop_file, "--fast",
                "--severity", "DDG103",
            ])

    def test_fast_pass_emits_json(self, clean_loop_file, capsys):
        rc = main([
            "lint", clean_loop_file, "--fast", "--format", "json",
        ])
        doc = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert doc["summary"]["ok"] is True

    def test_sarif_output_file(self, clean_loop_file, tmp_path, capsys):
        out_file = tmp_path / "report.sarif"
        rc = main([
            "lint", clean_loop_file, "--format", "sarif",
            "--output", str(out_file),
        ])
        assert rc == 0
        assert "wrote" in capsys.readouterr().out
        doc = json.loads(out_file.read_text())
        assert doc["version"] == "2.1.0"

    def test_kernels_on_both_preset_machines(self, capsys):
        # The acceptance sweep (bused + point-to-point) over the
        # hand-written paper kernels; the full bundled corpus runs in
        # CI where the wall-time budget is larger.
        for machine in ("2gp", "grid"):
            rc = main([
                "lint", "--kernels", "--suite", "2",
                "--machine", machine, "--format", "json",
            ])
            doc = json.loads(capsys.readouterr().out)
            assert rc == 0, doc
            assert doc["summary"]["errors"] == 0


class TestCompileGate:
    def test_compile_with_lint_reports(self, clean_loop_file, capsys):
        rc = main([
            "compile", clean_loop_file, "--machine", "2gp", "--lint",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "lint:" in out

    def test_strict_gate_rejects(self, tmp_path, capsys):
        # Promote the dead-value info rule to an error: the ALU result
        # is never read, so the strict gate must refuse the compile.
        path = tmp_path / "dead.loop"
        path.write_text("ld: load\nsum: alu <- ld\n")
        rc = main([
            "compile", str(path), "--lint", "strict",
            "--severity", "REG503=error",
        ])
        captured = capsys.readouterr()
        assert rc == 1
        assert "lint gate rejected" in captured.err
        assert "REG503" in captured.err


class TestExperimentGate:
    def test_experiment_with_lint_gate(self, capsys):
        rc = main([
            "experiment", "--loops", "4", "--machine", "2gp", "--lint",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "lint gate: 0 error(s)" in out

    def test_experiment_json_carries_lint_block(self, capsys):
        rc = main([
            "experiment", "--loops", "4", "--machine", "2gp",
            "--lint", "--json",
        ])
        doc = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert doc["lint"]["errors"] == 0
