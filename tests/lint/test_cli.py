"""The ``repro lint`` subcommand and the ``--lint`` pipeline gates."""

import json

import pytest

from repro.cli import main

CLEAN_LOOP = """\
ld:  load
mul: fp_mult <- ld
st:  store   <- mul
"""

#: A combinational cycle: both edges at distance 0 (DDG103).
DEFECTIVE_LOOP = """\
a: alu <- b
b: alu <- a
"""


@pytest.fixture
def clean_loop_file(tmp_path):
    path = tmp_path / "clean.loop"
    path.write_text(CLEAN_LOOP)
    return str(path)


@pytest.fixture
def defective_loop_file(tmp_path):
    path = tmp_path / "cycle.loop"
    path.write_text(DEFECTIVE_LOOP)
    return str(path)


class TestLintCommand:
    def test_clean_loop_exits_zero(self, clean_loop_file, capsys):
        rc = main(["lint", clean_loop_file, "--machine", "2gp"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "0 error(s)" in out

    def test_defective_loop_exits_nonzero(
        self, defective_loop_file, capsys
    ):
        rc = main([
            "lint", defective_loop_file, "--format", "json",
        ])
        assert rc == 1
        doc = json.loads(capsys.readouterr().out)
        codes = {d["code"] for d in doc["diagnostics"]}
        assert "DDG103" in codes
        assert doc["summary"]["ok"] is False

    def test_disable_silences_a_rule(self, defective_loop_file, capsys):
        rc = main([
            "lint", defective_loop_file, "--fast",
            "--disable", "DDG103",
        ])
        capsys.readouterr()
        assert rc == 0

    def test_severity_demotion_unblocks_exit(
        self, defective_loop_file, capsys
    ):
        rc = main([
            "lint", defective_loop_file, "--fast",
            "--severity", "DDG103=warning", "--format", "json",
        ])
        doc = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert doc["summary"]["warnings"] >= 1

    def test_malformed_severity_flag_rejected(self, clean_loop_file):
        with pytest.raises(SystemExit):
            main([
                "lint", clean_loop_file, "--fast",
                "--severity", "DDG103",
            ])

    def test_fast_pass_emits_json(self, clean_loop_file, capsys):
        rc = main([
            "lint", clean_loop_file, "--fast", "--format", "json",
        ])
        doc = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert doc["summary"]["ok"] is True

    def test_sarif_output_file(self, clean_loop_file, tmp_path, capsys):
        out_file = tmp_path / "report.sarif"
        rc = main([
            "lint", clean_loop_file, "--format", "sarif",
            "--output", str(out_file),
        ])
        assert rc == 0
        assert "wrote" in capsys.readouterr().out
        doc = json.loads(out_file.read_text())
        assert doc["version"] == "2.1.0"

    def test_kernels_on_both_preset_machines(self, capsys):
        # The acceptance sweep (bused + point-to-point) over the
        # hand-written paper kernels; the full bundled corpus runs in
        # CI where the wall-time budget is larger.
        for machine in ("2gp", "grid"):
            rc = main([
                "lint", "--kernels", "--suite", "2",
                "--machine", machine, "--format", "json",
            ])
            doc = json.loads(capsys.readouterr().out)
            assert rc == 0, doc
            assert doc["summary"]["errors"] == 0


BAD_SOURCE = """\
_CACHE = {}


def refresh():
    global _CACHE
    _CACHE = {}
"""


class TestRuleSelection:
    def test_rule_prefix_scopes_the_run(
        self, defective_loop_file, capsys
    ):
        # The loop carries a DDG103 defect, but a DF7-only run must
        # not see it...
        rc = main([
            "lint", defective_loop_file, "--fast", "--rule", "DF7",
        ])
        capsys.readouterr()
        assert rc == 0
        # ...while selecting its own family keeps the gate shut.
        rc = main([
            "lint", defective_loop_file, "--fast", "--rule", "DDG1",
        ])
        capsys.readouterr()
        assert rc == 1

    def test_rule_accepts_exact_codes_and_repeats(
        self, defective_loop_file, capsys
    ):
        rc = main([
            "lint", defective_loop_file, "--fast", "--format", "json",
            "--rule", "DDG103", "--rule", "DF701",
        ])
        doc = json.loads(capsys.readouterr().out)
        assert rc == 1
        by_severity = {}
        for d in doc["diagnostics"]:
            by_severity.setdefault(d["severity"], set()).add(d["code"])
        # Both selected codes ran -- and nothing else did: the cycle is
        # a DDG103 error, and its never-stored values are DF701 infos.
        assert by_severity == {
            "error": {"DDG103"}, "info": {"DF701"},
        }


class TestSourceLint:
    def test_src_flag_lints_python_files(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(BAD_SOURCE)
        rc = main([
            "lint", "--src", str(bad), "--format", "json",
        ])
        doc = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert {d["code"] for d in doc["diagnostics"]} == {"SRC801"}
        # A source-only run must not balloon into a corpus lint: the
        # file itself plus the one interprocedural "project" target.
        assert doc["summary"]["targets"] == 2

    def test_src_directory_walk(self, tmp_path, capsys):
        package = tmp_path / "pkg"
        package.mkdir()
        (package / "good.py").write_text("WIDTH = 4\n")
        (package / "bad.py").write_text(BAD_SOURCE)
        rc = main(["lint", "--src", str(package)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "SRC801" in out
        # Two files plus the interprocedural "project" target.
        assert "3 target(s)" in out


#: Coroutine calling a sync helper that blocks: CONC901, not SRC804.
CONC_HANDLER = """\
from pkg import helper


async def handle(request):
    return helper.slow(request)
"""

CONC_HELPER = """\
import time


def slow(request):
    time.sleep(2)
    return request
"""


class TestProjectLint:
    def _tree(self, tmp_path):
        # Under a ``src`` component so module names resolve the same
        # way they do for the real tree (pkg.handler, pkg.helper).
        package = tmp_path / "src" / "pkg"
        package.mkdir(parents=True)
        (package / "handler.py").write_text(CONC_HANDLER)
        (package / "helper.py").write_text(CONC_HELPER)
        return str(package)

    def test_rule_conc9_runs_the_interprocedural_pass(
        self, tmp_path, capsys
    ):
        rc = main([
            "lint", "--src", self._tree(tmp_path),
            "--rule", "CONC9", "--format", "json",
        ])
        doc = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert {d["code"] for d in doc["diagnostics"]} == {"CONC901"}

    def test_write_then_apply_baseline_round_trip(
        self, tmp_path, capsys
    ):
        tree = self._tree(tmp_path)
        baseline = str(tmp_path / "lint-baseline.json")
        rc = main([
            "lint", "--src", tree, "--rule", "CONC9",
            "--write-baseline", baseline,
        ])
        capsys.readouterr()
        assert rc == 0

        rc = main([
            "lint", "--src", tree, "--rule", "CONC9",
            "--baseline", baseline,
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "CONC901" in out  # demoted, but still visible

    def test_analysis_cache_warms_across_invocations(
        self, tmp_path, capsys
    ):
        tree = self._tree(tmp_path)
        cache = str(tmp_path / "cache")
        args = [
            "lint", "--src", tree, "--rule", "CONC9",
            "--analysis-cache", cache,
        ]
        main(args)
        capsys.readouterr()
        import os

        assert os.path.exists(
            os.path.join(cache, "callgraph-cache.json")
        )
        # Second run must behave identically off the warm cache.
        rc = main(args + ["--format", "json"])
        doc = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert {d["code"] for d in doc["diagnostics"]} == {"CONC901"}


@pytest.fixture
def scratch_repo(tmp_path, monkeypatch):
    """An initialized git repo with one committed clean source file."""
    import subprocess

    monkeypatch.chdir(tmp_path)
    env = {
        "GIT_AUTHOR_NAME": "t", "GIT_AUTHOR_EMAIL": "t@t",
        "GIT_COMMITTER_NAME": "t", "GIT_COMMITTER_EMAIL": "t@t",
    }
    subprocess.run(["git", "init", "-q"], check=True)
    (tmp_path / "clean.py").write_text("WIDTH = 4\n")
    subprocess.run(["git", "add", "clean.py"], check=True)
    subprocess.run(
        ["git", "commit", "-q", "-m", "seed"],
        check=True,
        env={**__import__("os").environ, **env},
    )
    return tmp_path


class TestChangedScope:
    def test_changed_lints_modified_python(self, scratch_repo, capsys):
        (scratch_repo / "clean.py").write_text(BAD_SOURCE)
        rc = main(["lint", "--changed", "--format", "json"])
        doc = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert {d["code"] for d in doc["diagnostics"]} == {"SRC801"}

    def test_changed_picks_up_untracked_loops(
        self, scratch_repo, capsys
    ):
        (scratch_repo / "cycle.loop").write_text(DEFECTIVE_LOOP)
        rc = main([
            "lint", "--changed", "--fast", "--format", "json",
        ])
        doc = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert "DDG103" in {d["code"] for d in doc["diagnostics"]}

    def test_clean_diff_short_circuits(self, scratch_repo, capsys):
        rc = main(["lint", "--changed"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "nothing lintable" in out

    def test_changed_against_explicit_ref(self, scratch_repo, capsys):
        (scratch_repo / "clean.py").write_text(BAD_SOURCE)
        rc = main(["lint", "--changed", "HEAD", "--format", "json"])
        doc = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert {d["code"] for d in doc["diagnostics"]} == {"SRC801"}


class TestCompileGate:
    def test_compile_with_lint_reports(self, clean_loop_file, capsys):
        rc = main([
            "compile", clean_loop_file, "--machine", "2gp", "--lint",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "lint:" in out

    def test_strict_gate_rejects(self, tmp_path, capsys):
        # Promote the dead-value info rule to an error: the ALU result
        # is never read, so the strict gate must refuse the compile.
        path = tmp_path / "dead.loop"
        path.write_text("ld: load\nsum: alu <- ld\n")
        rc = main([
            "compile", str(path), "--lint", "strict",
            "--severity", "REG503=error",
        ])
        captured = capsys.readouterr()
        assert rc == 1
        assert "lint gate rejected" in captured.err
        assert "REG503" in captured.err


class TestExperimentGate:
    def test_experiment_with_lint_gate(self, capsys):
        rc = main([
            "experiment", "--loops", "4", "--machine", "2gp", "--lint",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "lint gate: 0 error(s)" in out

    def test_experiment_json_carries_lint_block(self, capsys):
        rc = main([
            "experiment", "--loops", "4", "--machine", "2gp",
            "--lint", "--json",
        ])
        doc = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert doc["lint"]["errors"] == 0
