"""Exit-code semantics: nonzero only for surviving errors.

A report is "failing" exactly when error-severity diagnostics remain
after config overrides — demoting LINT001/LINT002 (rule crash, compile
failure) to warnings must unblock the exit code, and ``--exit-zero``
reports without ever gating.
"""

import pytest

from repro.cli import main
from repro.core import CompilationError
from repro.lint import (
    CODE_COMPILE_FAILURE,
    CODE_RULE_CRASH,
    LintConfig,
    LintTarget,
    lint_loop_deep,
    lint_target,
)
from repro.lint.registry import RULES, Rule, invalidate_rule_caches

DEFECTIVE_LOOP = """\
a: alu <- b
b: alu <- a
"""


@pytest.fixture
def defective_loop_file(tmp_path):
    path = tmp_path / "cycle.loop"
    path.write_text(DEFECTIVE_LOOP)
    return str(path)


@pytest.fixture
def crashing_rule():
    def explode(target, config):
        raise RuntimeError("boom")

    rule = Rule(
        code="DDG198", name="crash-demotion-test",
        default_severity="error", description="always crashes",
        requires=frozenset({"graph"}), check=explode, artifact="ddg",
    )
    RULES[rule.code] = rule
    invalidate_rule_caches()
    yield rule
    del RULES[rule.code]
    invalidate_rule_caches()


class TestSeverityDemotion:
    def test_rule_crash_demoted_to_warning(self, chain3, crashing_rule):
        config = LintConfig(severity={CODE_RULE_CRASH: "warning"})
        report = lint_target(
            LintTarget(name="x", ddg=chain3), config
        )
        crashes = [
            d for d in report.diagnostics if d.code == CODE_RULE_CRASH
        ]
        assert len(crashes) == 1
        assert crashes[0].severity == "warning"
        assert report.ok
        assert report.exit_code == 0

    def test_rule_crash_is_error_by_default(self, chain3, crashing_rule):
        report = lint_target(LintTarget(name="x", ddg=chain3))
        assert not report.ok
        assert report.exit_code == 1

    def test_compile_failure_demoted_to_warning(
        self, chain3, two_gp, monkeypatch
    ):
        import repro.core.driver as driver

        def refuse(*args, **kwargs):
            raise CompilationError("no schedule found")

        monkeypatch.setattr(driver, "compile_loop", refuse)
        config = LintConfig(
            severity={CODE_COMPILE_FAILURE: "warning"}
        )
        report = lint_loop_deep(chain3, two_gp, config)
        assert [d.code for d in report.warnings] == \
            [CODE_COMPILE_FAILURE]
        assert report.ok
        assert report.exit_code == 0


class TestExitZero:
    def test_lint_exit_zero_on_defective_loop(
        self, defective_loop_file, capsys
    ):
        rc = main(["lint", defective_loop_file, "--exit-zero"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "DDG103" in out  # still reported, just not gating

    def test_lint_still_fails_without_it(
        self, defective_loop_file, capsys
    ):
        rc = main(["lint", defective_loop_file])
        capsys.readouterr()
        assert rc == 1

    def test_cli_severity_demotion_of_lint002(
        self, defective_loop_file, capsys
    ):
        # The cyclic loop fails DDG lint; silence the graph rule and
        # demote the resulting compile failure: report-only run.
        rc = main([
            "lint", defective_loop_file,
            "--disable", "DDG103",
            "--severity", "LINT002=warning",
            "--format", "json",
        ])
        import json

        doc = json.loads(capsys.readouterr().out)
        assert rc == 0, doc
        assert doc["summary"]["errors"] == 0
