"""Seeded defects for the SRC8xx self-analysis rule family.

One deliberately bad module exercises every rule; the surrounding
tests pin the escape hatches (lock guards, pragmas, ``__main__.py``)
and the acceptance contract that the real ``src/`` tree self-lints
clean.
"""

import textwrap
from pathlib import Path

from repro.lint import (
    LintConfig,
    SourceFile,
    lint_source_file,
    lint_source_paths,
)

_SRC_ROOT = str(Path(__file__).resolve().parents[2] / "src")


def _lint_text(text, path="module.py"):
    return lint_source_file(
        SourceFile(path=path, text=textwrap.dedent(text))
    )


def _codes(report):
    return sorted({d.code for d in report.errors})


class TestForkUnsafeGlobal:
    def test_unguarded_rebind_fires(self):
        report = _lint_text(
            """
            _CACHE = {}


            def refresh():
                global _CACHE
                _CACHE = {}
            """
        )
        assert _codes(report) == ["SRC801"]
        assert "_CACHE" in report.errors[0].message

    def test_lock_guarded_rebind_passes(self):
        report = _lint_text(
            """
            import threading

            _CACHE = {}
            _LOCK = threading.Lock()


            def refresh():
                global _CACHE
                with _LOCK:
                    _CACHE = {}
            """
        )
        assert report.ok and not report.diagnostics

    def test_pragma_suppresses_with_justification(self):
        report = _lint_text(
            """
            _MODE = "idle"


            def set_mode(mode):
                global _MODE
                # single-threaded CLI startup  # lint: allow SRC801
                _MODE = mode
            """
        )
        assert report.ok and not report.diagnostics

    def test_nested_function_rebind_attributed_to_inner(self):
        report = _lint_text(
            """
            _N = 0


            def outer():
                def inner():
                    global _N
                    _N = 1
                return inner
            """
        )
        assert _codes(report) == ["SRC801"]
        assert "'inner'" in report.errors[0].message


class TestUnpicklablePayload:
    def test_lambda_and_generator_payloads_fire(self):
        report = _lint_text(
            """
            def schedule(pool, loops):
                pool.submit("task", lambda x: x + 1)
                pool.map_tasks("task", (l for l in loops))
            """
        )
        assert _codes(report) == ["SRC802"]
        assert len(report.errors) == 2
        assert "lambda" in report.errors[0].message
        assert "generator" in report.errors[1].message

    def test_open_handle_payload_fires(self):
        report = _lint_text(
            """
            def schedule(pool):
                pool.run_task("task", open("data.bin", "rb"))
            """
        )
        assert _codes(report) == ["SRC802"]
        assert "open file handle" in report.errors[0].message

    def test_plain_data_payload_passes(self):
        report = _lint_text(
            """
            def schedule(pool, loops):
                pool.map_tasks("task", [(l.name, l) for l in loops])
            """
        )
        assert report.ok and not report.diagnostics


class TestMissingMainGuard:
    def test_bare_main_call_fires(self):
        report = _lint_text(
            """
            import sys


            def main():
                return 0


            sys.exit(main())
            """
        )
        assert _codes(report) == ["SRC803"]

    def test_guarded_entry_passes(self):
        report = _lint_text(
            """
            import sys


            def main():
                return 0


            if __name__ == "__main__":
                sys.exit(main())
            """
        )
        assert report.ok and not report.diagnostics

    def test_dunder_main_module_is_exempt(self):
        report = _lint_text(
            """
            import sys


            def main():
                return 0


            sys.exit(main())
            """,
            path="repro/__main__.py",
        )
        assert report.ok and not report.diagnostics

    def test_plain_module_constants_pass(self):
        report = _lint_text(
            """
            WIDTH = 4
            NAMES = sorted(["a", "b"])
            """
        )
        assert report.ok and not report.diagnostics


class TestBlockingInAsync:
    def test_time_sleep_in_coroutine_fires(self):
        report = _lint_text(
            """
            import time


            async def serve(queue):
                time.sleep(0.1)
            """
        )
        assert _codes(report) == ["SRC804"]
        assert "time.sleep()" in report.errors[0].message

    def test_future_result_wait_fires(self):
        report = _lint_text(
            """
            async def gather(handle):
                return handle.result()
            """
        )
        assert _codes(report) == ["SRC804"]
        assert ".result()" in report.errors[0].message

    def test_bare_sleep_alias_fires(self):
        report = _lint_text(
            """
            from time import sleep


            async def serve():
                sleep(1)
            """
        )
        assert _codes(report) == ["SRC804"]

    def test_sync_helper_nested_in_coroutine_is_exempt(self):
        report = _lint_text(
            """
            import time


            async def serve():
                def warm():
                    time.sleep(0.1)
                return warm
            """
        )
        assert report.ok and not report.diagnostics

    def test_sleep_in_plain_function_passes(self):
        report = _lint_text(
            """
            import time


            def pace():
                time.sleep(0.1)
            """
        )
        assert report.ok and not report.diagnostics


class TestPragmaMatching:
    _REBIND = """
        _MODE = "idle"


        def set_mode(mode):
            global _MODE
            {pragma}
            _MODE = mode
        """

    def _with_pragma(self, pragma):
        return _lint_text(self._REBIND.format(pragma=pragma))

    def test_multi_code_pragma_silences_each_listed_code(self):
        report = self._with_pragma("# lint: allow SRC801, CONC902")
        assert report.ok and not report.diagnostics
        report = self._with_pragma("# lint: allow CONC902 SRC801")
        assert report.ok and not report.diagnostics

    def test_near_miss_code_does_not_silence(self):
        # SRC8014 is not SRC801: tokens compare exactly, never by
        # substring (the bug this pins down).
        report = self._with_pragma("# lint: allow SRC8014")
        assert _codes(report) == ["SRC801"]

    def test_prefix_of_flagged_code_does_not_silence(self):
        report = self._with_pragma("# lint: allow SRC80")
        assert _codes(report) == ["SRC801"]

    def test_unrelated_code_does_not_silence(self):
        report = self._with_pragma("# lint: allow SRC802")
        assert _codes(report) == ["SRC801"]

    def test_suppressed_api_directly(self):
        source = SourceFile(
            path="m.py",
            text="# lint: allow SRC801,SRC802\nx = 1\n",
        )
        assert source.suppressed(2, "SRC801")
        assert source.suppressed(2, "SRC802")
        assert not source.suppressed(2, "SRC80")
        assert not source.suppressed(2, "SRC8012")


class TestPragmaAboveDecorator:
    def test_pragma_above_decorator_covers_the_def(self):
        # The pragma sits above the *decorator*, two lines from the
        # ``async def`` the finding anchors to — function-level
        # coverage must look at the decorated definition's first line.
        text = """
            import functools
            import time


            def traced(f):
                @functools.wraps(f)
                def wrap(*a, **k):
                    return f(*a, **k)
                return wrap


            # lint: allow SRC804
            @traced
            async def serve():
                time.sleep(0.1)
            """
        report = _lint_text(text)
        assert report.ok and not report.diagnostics


class TestSourceCollection:
    def _tree(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "mod.py").write_text("X = 1\n")
        for junk in (
            ".git", ".venv", "venv", "build", "dist",
            "pkg.egg-info", "__pycache__", ".hidden",
        ):
            (tmp_path / junk).mkdir()
            (tmp_path / junk / "junk.py").write_text("Y = 2\n")
        return tmp_path

    def test_junk_and_hidden_directories_are_skipped(self, tmp_path):
        from repro.lint import collect_source_files

        sources = collect_source_files([str(self._tree(tmp_path))])
        assert [s.path.rsplit("/", 1)[-1] for s in sources] == ["mod.py"]
        assert all("pkg/mod.py" in s.path.replace("\\", "/") for s in sources)

    def test_explicit_file_path_is_always_taken(self, tmp_path):
        from repro.lint import collect_source_files

        tree = self._tree(tmp_path)
        explicit = str(tree / "build" / "junk.py")
        sources = collect_source_files([explicit])
        assert len(sources) == 1


class TestSyntaxErrorContainment:
    def test_unparsable_file_is_a_rule_crash_not_an_exception(self):
        report = lint_source_file(
            SourceFile(path="broken.py", text="def broken(:\n")
        )
        assert not report.ok
        assert all(d.code == "LINT001" for d in report.errors)


class TestSelfLint:
    def test_repro_sources_are_src_clean(self):
        # The acceptance criterion: the SRC8xx family passes on the
        # codebase that motivated it.
        report = lint_source_paths(
            [_SRC_ROOT],
            LintConfig(select=frozenset({"SRC8"})),
        )
        assert report.n_targets > 50  # the walk actually found the tree
        assert report.ok, [
            f"{d.loop}:{d.location} {d.code} {d.message}"
            for d in report.errors
        ]
