"""Seeded defects for the CONC9xx interprocedural concurrency family.

One seeded-defect test per rule, each built from small multi-file
projects the intraprocedural SRC8xx family cannot judge — plus the
acceptance contract that the real ``src/`` tree self-analyzes clean.
"""

import textwrap
from pathlib import Path

from repro.lint import (
    LintConfig,
    SourceFile,
    collect_source_files,
    lint_project,
    lint_source_file,
)

_SRC_ROOT = str(Path(__file__).resolve().parents[2] / "src")

_CONC = LintConfig(select=frozenset({"CONC9"}))


def _src(path, text):
    return SourceFile(path=path, text=textwrap.dedent(text))


def _lint(*sources, config=_CONC):
    return lint_project(list(sources), config)


def _codes(report):
    return sorted(d.code for d in report.diagnostics)


class TestTransitiveBlocking:
    # The case SRC804 provably misses: the coroutine itself contains no
    # blocking call — time.sleep hides one sync hop away, in another
    # file.
    _HANDLER = """
        from app import helper


        async def handle(request):
            return helper.slow(request)
        """
    _HELPER = """
        import time


        def slow(request):
            time.sleep(2)
            return request
        """

    def test_src804_misses_the_cross_module_case(self):
        report = lint_source_file(
            _src("src/app/handler.py", self._HANDLER),
            LintConfig(select=frozenset({"SRC8"})),
        )
        assert report.ok and not report.diagnostics

    def test_conc901_catches_it(self):
        report = _lint(
            _src("src/app/handler.py", self._HANDLER),
            _src("src/app/helper.py", self._HELPER),
        )
        assert _codes(report) == ["CONC901"]
        [diag] = report.errors
        assert "app.helper.slow" in diag.message
        assert "time.sleep" in diag.message
        assert diag.location.startswith("src/app/handler.py:")

    def test_await_of_async_chain_passes(self):
        report = _lint(
            _src(
                "src/app/handler.py",
                """
                from app import helper


                async def handle(request):
                    return await helper.slow(request)
                """,
            ),
            _src(
                "src/app/helper.py",
                """
                import asyncio


                async def slow(request):
                    await asyncio.sleep(2)
                    return request
                """,
            ),
        )
        assert report.ok and not report.diagnostics

    def test_pragma_above_decorator_covers_the_def(self):
        report = _lint(
            _src(
                "src/app/handler.py",
                """
                import functools

                from app import helper


                def traced(f):
                    @functools.wraps(f)
                    def wrap(*a, **k):
                        return f(*a, **k)
                    return wrap


                # lint: allow CONC901
                @traced
                async def handle(request):
                    return helper.slow(request)
                """,
            ),
            _src("src/app/helper.py", self._HELPER),
        )
        assert report.ok and not report.diagnostics

    def test_pragma_at_call_site_suppresses(self):
        report = _lint(
            _src(
                "src/app/handler.py",
                """
                from app import helper


                async def handle(request):
                    # lint: allow CONC901
                    return helper.slow(request)
                """,
            ),
            _src("src/app/helper.py", self._HELPER),
        )
        assert report.ok and not report.diagnostics


class TestWorkerGlobalEscape:
    _TASKS = """
        from app import state


        def ping(payload):
            state.bump()
            return payload


        TASKS = {"ping": ping}
        """
    _STATE = """
        _COUNT = 0


        def bump():
            global _COUNT
            _COUNT = _COUNT + 1
        """

    def test_global_write_reachable_from_entry_fires(self):
        report = _lint(
            _src("src/app/tasks.py", self._TASKS),
            _src("src/app/state.py", self._STATE),
        )
        assert _codes(report) == ["CONC902"]
        [diag] = report.diagnostics
        assert diag.severity == "warning"
        assert "_COUNT" in diag.message
        assert "app.tasks.ping" in diag.message

    def test_unreachable_global_write_passes(self):
        # Same write, but nothing registers a task entry — parent-side
        # module state is SRC801's (intraprocedural) business, not ours.
        report = _lint(_src("src/app/state.py", self._STATE))
        assert report.ok and not report.diagnostics

    def test_function_level_pragma_suppresses(self):
        report = _lint(
            _src("src/app/tasks.py", self._TASKS),
            _src(
                "src/app/state.py",
                """
                _COUNT = 0


                # lint: allow CONC902
                def bump():
                    global _COUNT
                    _COUNT = _COUNT + 1
                """,
            ),
        )
        assert report.ok and not report.diagnostics


class TestTransitiveUnpicklablePayload:
    def test_payload_calling_lambda_factory_fires(self):
        report = _lint(
            _src(
                "src/app/dispatch.py",
                """
                from app import factory


                def schedule(pool):
                    pool.submit("task", factory.make_filter())
                """,
            ),
            _src(
                "src/app/factory.py",
                """
                def make_filter():
                    return lambda x: x > 0
                """,
            ),
        )
        assert _codes(report) == ["CONC903"]
        [diag] = report.errors
        assert "app.factory.make_filter" in diag.message
        assert "lambda" in diag.message

    def test_payload_naming_nested_function_fires(self):
        report = _lint(
            _src(
                "src/app/dispatch.py",
                """
                def schedule(pool, n):
                    def scaled(x):
                        return x * n
                    pool.submit("task", scaled)
                """,
            )
        )
        assert _codes(report) == ["CONC903"]
        assert "nested function" in report.errors[0].message

    def test_factory_returning_plain_data_passes(self):
        report = _lint(
            _src(
                "src/app/dispatch.py",
                """
                from app import factory


                def schedule(pool):
                    pool.submit("task", factory.make_config())
                """,
            ),
            _src(
                "src/app/factory.py",
                """
                def make_config():
                    return {"width": 4}
                """,
            ),
        )
        assert report.ok and not report.diagnostics


class TestLockReleaseDiscipline:
    def test_release_outside_finally_fires(self):
        report = _lint(
            _src(
                "src/app/locks.py",
                """
                import threading

                _lock = threading.Lock()


                def update(value):
                    _lock.acquire()
                    do_write(value)
                    _lock.release()


                def do_write(value):
                    pass
                """,
            )
        )
        assert _codes(report) == ["CONC904"]
        assert "exception leaks the lock" in report.errors[0].message

    def test_release_in_finally_passes(self):
        report = _lint(
            _src(
                "src/app/locks.py",
                """
                import threading

                _lock = threading.Lock()


                def update(value):
                    _lock.acquire()
                    try:
                        do_write(value)
                    finally:
                        _lock.release()


                def do_write(value):
                    pass
                """,
            )
        )
        assert report.ok and not report.diagnostics

    def test_with_statement_passes(self):
        report = _lint(
            _src(
                "src/app/locks.py",
                """
                import threading

                _lock = threading.Lock()


                def update(value):
                    with _lock:
                        pass
                """,
            )
        )
        assert report.ok and not report.diagnostics


class TestLockOrderInversion:
    def test_direct_abba_nesting_fires_both_witnesses(self):
        report = _lint(
            _src(
                "src/app/locks.py",
                """
                import threading

                a_lock = threading.Lock()
                b_lock = threading.Lock()


                def forward():
                    with a_lock:
                        with b_lock:
                            pass


                def backward():
                    with b_lock:
                        with a_lock:
                            pass
                """,
            )
        )
        assert _codes(report) == ["CONC905", "CONC905"]
        messages = " ".join(d.message for d in report.diagnostics)
        assert "ABBA" in messages

    def test_inversion_via_cross_module_call_fires(self):
        report = _lint(
            _src(
                "src/app/a.py",
                """
                import threading

                from app import b

                a_lock = threading.Lock()


                def forward():
                    with a_lock:
                        b.take_b_then_a()
                """,
            ),
            _src(
                "src/app/b.py",
                """
                import threading

                from app import a

                b_lock = threading.Lock()


                def take_b_then_a():
                    with b_lock:
                        with a.a_lock:
                            pass
                """,
            ),
        )
        assert "CONC905" in _codes(report)
        messages = " ".join(d.message for d in report.diagnostics)
        assert "via call to" in messages

    def test_consistent_order_everywhere_passes(self):
        report = _lint(
            _src(
                "src/app/locks.py",
                """
                import threading

                a_lock = threading.Lock()
                b_lock = threading.Lock()


                def one():
                    with a_lock:
                        with b_lock:
                            pass


                def two():
                    with a_lock:
                        with b_lock:
                            pass
                """,
            )
        )
        assert report.ok and not report.diagnostics


class TestSeverityPlumbing:
    def test_severity_override_applies_to_conc_rules(self):
        report = _lint(
            _src(
                "src/app/tasks.py",
                TestWorkerGlobalEscape._TASKS,
            ),
            _src(
                "src/app/state.py",
                TestWorkerGlobalEscape._STATE,
            ),
            config=LintConfig(
                select=frozenset({"CONC9"}),
                severity={"CONC902": "error"},
            ),
        )
        assert not report.ok
        assert report.errors[0].code == "CONC902"


class TestSelfAnalysis:
    def test_repro_sources_are_conc_clean(self):
        # The acceptance criterion: after triage (pragmas + baseline),
        # the interprocedural family passes on its own codebase.
        sources = list(collect_source_files([_SRC_ROOT]))
        assert len(sources) > 50
        report = lint_project(sources, _CONC)
        assert report.ok, [
            f"{d.location} {d.code} {d.message}"
            for d in report.errors
        ]
        assert report.rules_run > 0
