"""Warn-first baselines and the incremental analysis cache contract."""

import textwrap

from repro.lint import (
    LintConfig,
    SourceFile,
    apply_baseline,
    fingerprint,
    lint_project,
    load_baseline,
    write_baseline,
)

_CONC = LintConfig(select=frozenset({"CONC9"}))

#: A project with one CONC901 error: coroutine -> sync helper -> sleep.
_SOURCES = [
    ("src/app/handler.py", """
        from app import helper


        async def handle(request):
            return helper.slow(request)
        """),
    ("src/app/helper.py", """
        import time


        def slow(request):
            time.sleep(2)
            return request
        """),
]


def _sources():
    return [
        SourceFile(path=path, text=textwrap.dedent(text))
        for path, text in _SOURCES
    ]


def _report():
    return lint_project(_sources(), _CONC)


class TestFingerprint:
    def test_stable_across_runs(self):
        [a] = _report().errors
        [b] = _report().errors
        assert fingerprint(a) == fingerprint(b)

    def test_ignores_line_position_but_not_message(self):
        from dataclasses import replace

        [diag] = _report().errors
        moved = replace(diag, location="src/app/handler.py:99")
        assert fingerprint(moved) == fingerprint(diag)
        reworded = replace(diag, message=diag.message + "!")
        assert fingerprint(reworded) != fingerprint(diag)


class TestBaselineRoundTrip:
    def test_write_then_apply_demotes_to_warning(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        report = _report()
        assert not report.ok
        assert write_baseline(path, report.diagnostics) == 1

        fresh = _report()
        demoted = apply_baseline(fresh, load_baseline(path))
        assert len(demoted) == 1
        assert fresh.ok
        assert [d.severity for d in fresh.diagnostics] == ["warning"]

    def test_new_finding_still_gates(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        write_baseline(path, _report().diagnostics)

        extra = _sources() + [
            SourceFile(
                path="src/app/extra.py",
                text=textwrap.dedent(
                    """
                    from app import helper


                    async def poll(request):
                        return helper.slow(request)
                    """
                ),
            )
        ]
        report = lint_project(extra, _CONC)
        apply_baseline(report, load_baseline(path))
        # The old finding is demoted; the new one gates at full severity.
        assert not report.ok
        assert len(report.errors) == 1
        assert "app.extra.poll" in report.errors[0].message

    def test_warnings_are_never_baselined(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        report = _report()
        demoted = apply_baseline(report, load_baseline(path))
        assert demoted == []  # empty/missing baseline is a no-op
        assert write_baseline(path, report.warnings) == 0

    def test_missing_or_corrupt_file_is_empty(self, tmp_path):
        assert load_baseline(str(tmp_path / "nope.json")) == frozenset()
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert load_baseline(str(bad)) == frozenset()


class TestCacheContract:
    def test_warm_rerun_with_no_changes_skips_everything(self, tmp_path):
        cache_dir = str(tmp_path)
        cold = lint_project(_sources(), _CONC, cache_dir=cache_dir)
        assert cold.project.stats.files_parsed == len(_SOURCES)
        assert cold.project.stats.sccs_solved > 0

        warm = lint_project(_sources(), _CONC, cache_dir=cache_dir)
        # The cache hit: nothing re-parses and no SCC re-solves.
        assert warm.project.stats.files_parsed == 0
        assert warm.project.stats.files_cached == len(_SOURCES)
        assert warm.project.stats.sccs_solved == 0
        assert warm.project.stats.sccs_reused == (
            cold.project.stats.sccs_solved
        )

    def test_warm_run_reports_identical_findings(self, tmp_path):
        cache_dir = str(tmp_path)
        cold = lint_project(_sources(), _CONC, cache_dir=cache_dir)
        warm = lint_project(_sources(), _CONC, cache_dir=cache_dir)
        assert [
            (d.code, d.location, d.message) for d in cold.diagnostics
        ] == [
            (d.code, d.location, d.message) for d in warm.diagnostics
        ]
