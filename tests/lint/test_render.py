"""Renderers: text, the stable JSON document, and SARIF 2.1.0."""

import json

import pytest

from repro.lint import (
    LintReport,
    all_rules,
    format_json,
    format_sarif,
    format_text,
    lint_compiled,
    render,
    to_json_doc,
    to_sarif,
)
from repro.lint.diagnostics import Diagnostic

#: Draft-07 subset of the SARIF 2.1.0 schema covering everything the
#: renderer emits.  The full OASIS schema is not vendored; this pins
#: the exact structural contract GitHub-style SARIF ingesters rely on.
SARIF_SCHEMA = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "type": "object",
    "required": ["$schema", "version", "runs"],
    "properties": {
        "version": {"const": "2.1.0"},
        "runs": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["tool", "results"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name", "rules"],
                                "properties": {
                                    "name": {"type": "string"},
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": [
                                                "id",
                                                "shortDescription",
                                                "defaultConfiguration",
                                            ],
                                            "properties": {
                                                "id": {
                                                    "type": "string",
                                                    "pattern": (
                                                        "^(DDG1|MACH2|"
                                                        "ASSIGN3|SCHED4|"
                                                        "REG5|CERT6|"
                                                        "DF7|SRC8|CONC9)"
                                                        "[0-9]{2}$"
                                                    ),
                                                },
                                                "shortDescription": {
                                                    "type": "object",
                                                    "required": ["text"],
                                                },
                                                "defaultConfiguration": {
                                                    "type": "object",
                                                    "required": ["level"],
                                                    "properties": {
                                                        "level": {
                                                            "enum": [
                                                                "note",
                                                                "warning",
                                                                "error",
                                                            ]
                                                        }
                                                    },
                                                },
                                            },
                                        },
                                    },
                                },
                            }
                        },
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": [
                                "ruleId",
                                "level",
                                "message",
                                "locations",
                            ],
                            "properties": {
                                "level": {
                                    "enum": ["none", "note",
                                             "warning", "error"]
                                },
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                },
                                "locations": {
                                    "type": "array",
                                    "minItems": 1,
                                    "items": {
                                        "type": "object",
                                        "required": ["logicalLocations"],
                                    },
                                },
                            },
                        },
                    },
                },
            },
        },
    },
}


@pytest.fixture
def dirty_report():
    """A report with one diagnostic per severity level."""
    return LintReport(
        diagnostics=[
            Diagnostic(
                code="DDG103", severity="error", message="cycle",
                rule="zero-distance-cycle", loop="bad", artifact="ddg",
                location="nodes [0, 1]",
                hint="add a distance somewhere",
            ),
            Diagnostic(
                code="DDG102", severity="warning", message="dup",
                rule="duplicate-edge", loop="bad", artifact="ddg",
                location="edge 0->1@0",
            ),
            Diagnostic(
                code="REG503", severity="info", message="dead",
                rule="dead-value", loop="bad", artifact="regalloc",
                location="node 2",
            ),
        ],
        n_targets=1,
        rules_run=10,
    )


class TestText:
    def test_lists_diagnostics_and_summary(self, dirty_report):
        text = format_text(dirty_report)
        assert "[DDG103 error]" in text
        assert "hint: add a distance somewhere" in text
        assert dirty_report.summary() in text

    def test_clean_report_is_just_the_summary(self):
        report = LintReport(n_targets=2, rules_run=8)
        assert format_text(report) == report.summary()


class TestJson:
    def test_document_shape(self, dirty_report):
        doc = json.loads(format_json(dirty_report))
        assert doc["tool"] == "repro-lint"
        assert doc["summary"] == {
            "targets": 1, "rules_run": 10, "errors": 1,
            "warnings": 1, "infos": 1, "ok": False,
        }
        assert len(doc["diagnostics"]) == 3
        first = doc["diagnostics"][0]
        assert first["code"] == "DDG103"
        assert first["severity"] == "error"
        assert first["hint"] == "add a distance somewhere"

    def test_hint_omitted_when_absent(self, dirty_report):
        doc = to_json_doc(dirty_report)
        assert "hint" not in doc["diagnostics"][1]

    def test_compiled_loop_report_serializes(self, compiled_chain):
        doc = json.loads(format_json(lint_compiled(compiled_chain)))
        assert doc["summary"]["ok"] is True


class TestSarif:
    def test_structure(self, dirty_report):
        sarif = to_sarif(dirty_report)
        assert sarif["version"] == "2.1.0"
        driver = sarif["runs"][0]["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        assert len(driver["rules"]) == len(all_rules())
        results = sarif["runs"][0]["results"]
        assert [r["level"] for r in results] == [
            "error", "warning", "note",
        ]
        for result in results:
            index = result["ruleIndex"]
            assert driver["rules"][index]["id"] == result["ruleId"]

    def test_hint_folded_into_message(self, dirty_report):
        result = to_sarif(dirty_report)["runs"][0]["results"][0]
        assert "hint: add a distance somewhere" in \
            result["message"]["text"]
        logical = result["locations"][0]["logicalLocations"][0]
        assert logical["fullyQualifiedName"] == "bad::nodes [0, 1]"

    def test_validates_against_schema(self, dirty_report, compiled_chain):
        jsonschema = pytest.importorskip("jsonschema")
        for report in (dirty_report, lint_compiled(compiled_chain)):
            doc = json.loads(format_sarif(report))
            jsonschema.validate(doc, SARIF_SCHEMA)


class TestRenderDispatch:
    def test_known_formats(self, dirty_report):
        assert render(dirty_report, "text") == format_text(dirty_report)
        assert render(dirty_report, "json") == format_json(dirty_report)
        assert render(dirty_report, "sarif") == \
            format_sarif(dirty_report)

    def test_unknown_format_rejected(self, dirty_report):
        with pytest.raises(ValueError):
            render(dirty_report, "xml")
