"""Lint-suite plumbing: the auto-applied ``lint`` marker plus shared
compiled artifacts every rule test inspects."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core import compile_loop

_LINT_DIR = Path(__file__).resolve().parent


def pytest_collection_modifyitems(items):
    """Everything under tests/lint/ carries the ``lint`` marker.

    The hook sees the whole collection, so filter by path (mirroring
    the ``bench`` marker in benchmarks/conftest.py, which owns its own
    rootdir and does not need to).
    """
    for item in items:
        path = Path(str(item.fspath)).resolve()
        if _LINT_DIR in path.parents:
            item.add_marker(pytest.mark.lint)


@pytest.fixture
def compiled_chain(chain3, two_gp):
    """chain3 compiled end to end on the 2-cluster bused machine."""
    return compile_loop(chain3, two_gp)
