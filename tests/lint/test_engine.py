"""The lint engine: target availability, rule execution, reports."""

import pytest

from repro.core import CompilationError
from repro.lint import (
    CODE_COMPILE_FAILURE,
    CODE_RULE_CRASH,
    LintConfig,
    LintReport,
    LintTarget,
    lint_compiled,
    lint_corpus_deep,
    lint_loop_deep,
    lint_machine,
    lint_target,
)
from repro.lint.diagnostics import Diagnostic
from repro.lint.registry import (
    RULES,
    Rule,
    all_rules,
    invalidate_rule_caches,
)


class TestTargetAvailability:
    def test_empty_target(self):
        assert LintTarget().available == set()

    def test_ddg_only(self, chain3):
        assert LintTarget(ddg=chain3).available == {"graph"}

    def test_machine_only(self, two_gp):
        assert LintTarget(machine=two_gp).available == {"machine"}

    def test_annotated_exposes_graph_and_machine(self, compiled_chain):
        target = LintTarget(annotated=compiled_chain.annotated)
        assert target.available == {"graph", "machine", "annotated"}
        assert target.graph is compiled_chain.annotated.ddg
        assert target.effective_machine is compiled_chain.machine

    def test_schedule_exposes_machine_but_not_graph(self, compiled_chain):
        # A schedule-only target runs the SCHED/REG rules (plus the
        # machine family) without re-running the DDG family: the
        # annotated graph differs from the input graph (copies).
        target = LintTarget(schedule=compiled_chain.schedule)
        assert target.available == {"machine", "schedule"}


class TestLintTarget:
    def test_clean_compiled_loop_is_ok(self, compiled_chain):
        report = lint_compiled(compiled_chain)
        assert report.ok
        assert report.exit_code == 0
        assert report.rules_run > 0

    def test_clean_machines(self, two_gp, grid, uni8):
        for machine in (two_gp, grid, uni8):
            report = lint_machine(machine)
            assert report.ok, report.diagnostics

    def test_disabled_rules_do_not_run(self, chain3):
        config = LintConfig(
            disable=frozenset(r.code for r in all_rules())
        )
        report = lint_target(LintTarget(ddg=chain3), config)
        assert report.rules_run == 0

    def test_rule_crash_is_contained(self, chain3):
        def explode(target, config):
            raise RuntimeError("boom")

        crashing = Rule(
            code="DDG199", name="crash-test", default_severity="error",
            description="always crashes", requires=frozenset({"graph"}),
            check=explode, artifact="ddg",
        )
        RULES[crashing.code] = crashing
        invalidate_rule_caches()
        try:
            report = lint_target(LintTarget(name="x", ddg=chain3))
        finally:
            del RULES[crashing.code]
            invalidate_rule_caches()
        crashes = [
            d for d in report.diagnostics if d.code == CODE_RULE_CRASH
        ]
        assert len(crashes) == 1
        assert "DDG199" in crashes[0].message
        assert not report.ok


class TestLintReport:
    def _diag(self, code, severity):
        return Diagnostic(code=code, severity=severity, message="m")

    def test_severity_buckets_and_codes(self):
        report = LintReport(
            diagnostics=[
                self._diag("DDG101", "error"),
                self._diag("DDG102", "warning"),
                self._diag("REG503", "info"),
            ],
            n_targets=1, rules_run=3,
        )
        assert [d.code for d in report.errors] == ["DDG101"]
        assert [d.code for d in report.warnings] == ["DDG102"]
        assert [d.code for d in report.infos] == ["REG503"]
        assert report.codes() == ["DDG101", "DDG102", "REG503"]
        assert not report.ok
        assert report.exit_code == 1

    def test_extend_merges(self):
        a = LintReport(
            diagnostics=[self._diag("DDG101", "error")],
            n_targets=1, rules_run=2,
        )
        b = LintReport(n_targets=2, rules_run=5)
        a.extend(b)
        assert a.n_targets == 3
        assert a.rules_run == 7
        assert len(a.diagnostics) == 1

    def test_summary_mentions_counts(self):
        report = LintReport(n_targets=4, rules_run=9)
        text = report.summary()
        assert "4 target(s)" in text
        assert "9 rule" in text
        assert "0 error(s)" in text

    def test_bad_severity_rejected(self):
        with pytest.raises(ValueError):
            Diagnostic(code="DDG101", severity="fatal", message="m")


class TestDeepLint:
    def test_clean_loop_single_logical_target(self, chain3, two_gp):
        report = lint_loop_deep(chain3, two_gp)
        assert report.ok
        assert report.n_targets == 1

    def test_graph_errors_skip_compilation(self, two_gp):
        from repro.ddg import Ddg, Opcode

        graph = Ddg(name="combinational")
        a = graph.add_node(Opcode.ALU)
        b = graph.add_node(Opcode.ALU)
        graph.add_edge(a, b, distance=0)
        graph.add_edge(b, a, distance=0)
        report = lint_loop_deep(graph, two_gp)
        assert [d.code for d in report.errors] == ["DDG103"]
        # No SCHED/REG diagnostics: the pipeline never ran.
        assert not any(
            d.code.startswith(("SCHED4", "REG5", "ASSIGN3"))
            for d in report.diagnostics
        )

    def test_compile_failure_becomes_lint002(
        self, chain3, two_gp, monkeypatch
    ):
        import repro.core.driver as driver

        def refuse(*args, **kwargs):
            raise CompilationError("no schedule found")

        monkeypatch.setattr(driver, "compile_loop", refuse)
        report = lint_loop_deep(chain3, two_gp)
        assert [d.code for d in report.errors] == [CODE_COMPILE_FAILURE]

    def test_corpus_lints_machine_once(self, chain3, accumulator, two_gp):
        report = lint_corpus_deep([chain3, accumulator], two_gp)
        assert report.ok
        # machine target + one logical target per loop
        assert report.n_targets == 3
