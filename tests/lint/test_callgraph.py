"""The project call graph: extraction, linking, fixed points, cache.

These tests exercise :mod:`repro.lint.callgraph` directly — the
CONC9xx rules that consume it are covered in ``test_rules_conc.py``.
"""

import textwrap

from repro.lint import (
    AnalysisCache,
    SourceFile,
    build_project,
    extract_module,
    module_name_for,
)


def _src(path, text):
    return SourceFile(path=path, text=textwrap.dedent(text))


def _project(*sources, cache=None):
    return build_project(list(sources), cache=cache)


class TestModuleNames:
    def test_src_prefix_is_stripped(self):
        assert module_name_for("src/repro/lint/engine.py") == (
            "repro.lint.engine"
        )

    def test_last_src_component_wins(self):
        assert module_name_for("src/vendor/src/pkg/mod.py") == "pkg.mod"

    def test_init_names_the_package(self):
        assert module_name_for("src/repro/lint/__init__.py") == "repro.lint"

    def test_plain_relative_path(self):
        assert module_name_for("app/handlers.py") == "app.handlers"


class TestExtraction:
    def _functions(self, text):
        mod = extract_module(_src("src/app/mod.py", text))
        return {fn.qualname: fn for fn in mod.functions}

    def test_defs_methods_and_nesting(self):
        fns = self._functions(
            """
            def top():
                def inner():
                    pass
                return inner


            class Box:
                def get(self):
                    return 1
            """
        )
        assert set(fns) == {
            "app.mod.top", "app.mod.top.inner", "app.mod.Box.get",
        }
        assert fns["app.mod.top.inner"].nested
        assert not fns["app.mod.top"].nested
        assert not fns["app.mod.Box.get"].nested

    def test_async_flag_and_blocking_sites(self):
        fns = self._functions(
            """
            import time


            async def serve():
                pass


            def pace():
                time.sleep(0.5)
            """
        )
        assert fns["app.mod.serve"].is_async
        assert not fns["app.mod.pace"].is_async
        reasons = [reason for _ln, reason in fns["app.mod.pace"].blocking]
        assert reasons == ["time.sleep() blocks"]

    def test_executor_shield_hides_argument_callables(self):
        fns = self._functions(
            """
            import time


            async def serve(loop):
                await loop.run_in_executor(None, time.sleep, 1)
            """
        )
        fn = fns["app.mod.serve"]
        assert fn.blocking == []
        # The dispatcher call itself is recorded, but the shielded
        # callable argument (time.sleep) never becomes a call site.
        assert all(ref[-1] != "sleep" for _ln, ref in fn.calls)

    def test_pragma_lineno_covers_decorators(self):
        fns = self._functions(
            """
            def deco(f):
                return f


            @deco
            def task():
                pass
            """
        )
        fn = fns["app.mod.task"]
        assert fn.pragma_lineno < fn.lineno

    def test_summary_round_trips_through_json_doc(self):
        mod = extract_module(
            _src(
                "src/app/mod.py",
                """
                import threading

                _LOCK = threading.Lock()
                _STATE = {}


                def refresh():
                    global _STATE
                    with _LOCK:
                        _STATE = {}
                """,
            )
        )
        from repro.lint import ModuleSummary

        clone = ModuleSummary.from_doc(mod.to_doc())
        assert clone.to_doc() == mod.to_doc()
        assert [fn.qualname for fn in clone.functions] == [
            "app.mod.refresh"
        ]


class TestLinking:
    def test_cross_module_call_resolves_through_import(self):
        project = _project(
            _src(
                "src/app/a.py",
                """
                from app import b


                def caller():
                    b.helper()
                """,
            ),
            _src(
                "src/app/b.py",
                """
                def helper():
                    pass
                """,
            ),
        )
        assert ("app.a.caller", "app.b.helper") in {
            (caller, callee) for caller, callee, _ln in project.call_edges
        }

    def test_bare_name_resolves_through_enclosing_scope(self):
        project = _project(
            _src(
                "src/app/a.py",
                """
                def outer():
                    def inner():
                        pass
                    inner()
                """,
            )
        )
        assert ("app.a.outer", "app.a.outer.inner") in {
            (caller, callee) for caller, callee, _ln in project.call_edges
        }

    def test_registry_dict_values_become_task_entries(self):
        project = _project(
            _src(
                "src/app/tasks.py",
                """
                from typing import Callable, Dict


                def ping(payload):
                    return payload


                TASKS: Dict[str, Callable] = {"ping": ping}
                """,
            )
        )
        assert "app.tasks.ping" in project.entries


class TestFixedPoints:
    def test_blocking_propagates_transitively(self):
        project = _project(
            _src(
                "src/app/a.py",
                """
                from app import b


                def outer():
                    b.middle()
                """,
            ),
            _src(
                "src/app/b.py",
                """
                import time


                def middle():
                    leaf()


                def leaf():
                    time.sleep(1)
                """,
            ),
        )
        assert project.blocking.get("app.a.outer")
        assert project.blocking.get("app.b.middle")

    def test_mutual_recursion_converges(self):
        project = _project(
            _src(
                "src/app/a.py",
                """
                import time


                def even(n):
                    return odd(n - 1)


                def odd(n):
                    time.sleep(0)
                    return even(n - 1)
                """,
            )
        )
        # Both members of the SCC see the blocking fact.
        assert project.blocking.get("app.a.even")
        assert project.blocking.get("app.a.odd")


class TestIncrementalCache:
    _A = """
        from app import b


        def caller():
            b.helper()
        """
    _B = """
        import time


        def helper():
            time.sleep(1)
        """

    def test_warm_run_parses_and_solves_nothing(self, tmp_path):
        sources = [
            _src("src/app/a.py", self._A),
            _src("src/app/b.py", self._B),
        ]
        cold = _project(*sources, cache=AnalysisCache(str(tmp_path)))
        assert cold.stats.files_parsed == 2
        assert cold.stats.sccs_solved > 0

        warm = _project(*sources, cache=AnalysisCache(str(tmp_path)))
        assert warm.stats.files_parsed == 0
        assert warm.stats.files_cached == 2
        assert warm.stats.sccs_solved == 0
        assert warm.stats.sccs_reused == cold.stats.sccs_solved
        assert warm.blocking == cold.blocking
        assert warm.call_edges == cold.call_edges

    def test_edited_file_dirties_only_its_sccs(self, tmp_path):
        sources = [
            _src("src/app/a.py", self._A),
            _src("src/app/b.py", self._B),
        ]
        _project(*sources, cache=AnalysisCache(str(tmp_path)))

        edited = [
            _src("src/app/a.py", self._A + "\n        X = 1\n"),
            _src("src/app/b.py", self._B),
        ]
        rerun = _project(*edited, cache=AnalysisCache(str(tmp_path)))
        assert rerun.stats.files_parsed == 1
        assert rerun.stats.files_cached == 1
        # b.py's facts did not change, so its components stay cached.
        assert rerun.stats.sccs_reused > 0
        assert rerun.blocking.get("app.a.caller")

    def test_corrupt_cache_file_degrades_to_cold_run(self, tmp_path):
        from repro.lint.anacache import CACHE_FILENAME

        (tmp_path / CACHE_FILENAME).write_text("{not json")
        project = _project(
            _src("src/app/b.py", self._B),
            cache=AnalysisCache(str(tmp_path)),
        )
        assert project.stats.files_parsed == 1

    def test_syntax_error_file_is_skipped_not_fatal(self):
        project = _project(
            _src("src/app/bad.py", "def broken(:\n"),
            _src("src/app/b.py", self._B),
        )
        assert "app.b.helper" in project.functions
        assert "src/app/bad.py" not in {
            fn.path for fn in project.functions.values()
        }
