"""The ``--lint`` pipeline gates: driver, experiment, parallel engine."""

import pytest

from repro.analysis import (
    EngineOptions,
    ResultCache,
    outcome_cache_key,
    run_engine_experiment,
    run_experiment,
)
from repro.analysis.engine import lint_fingerprint
from repro.analysis.experiment import LoopOutcome
from repro.core import CompilationError, compile_loop
from repro.ddg import Ddg, Opcode
from repro.lint import DEFAULT_CONFIG, LintConfig
from repro.workloads import paper_suite


@pytest.fixture
def dead_value_loop():
    """A loop whose ALU result is never read (REG503 info)."""
    graph = Ddg(name="dead-value")
    load = graph.add_node(Opcode.LOAD, name="ld")
    alu = graph.add_node(Opcode.ALU, name="sum")
    graph.add_edge(load, alu, distance=0)
    return graph


class TestDriverGate:
    def test_report_attached(self, chain3, two_gp):
        compiled = compile_loop(
            chain3, two_gp, lint_config=DEFAULT_CONFIG
        )
        assert compiled.lint_report is not None
        assert compiled.lint_report.ok

    def test_no_gate_no_report(self, chain3, two_gp):
        assert compile_loop(chain3, two_gp).lint_report is None

    def test_strict_gate_rejects_promoted_error(
        self, dead_value_loop, two_gp
    ):
        config = LintConfig(
            strict=True, severity={"REG503": "error"}
        )
        with pytest.raises(CompilationError) as exc:
            compile_loop(dead_value_loop, two_gp, lint_config=config)
        assert "lint gate rejected" in str(exc.value)
        assert "REG503" in str(exc.value)

    def test_lenient_gate_records_but_compiles(
        self, dead_value_loop, two_gp
    ):
        config = LintConfig(severity={"REG503": "error"})
        compiled = compile_loop(
            dead_value_loop, two_gp, lint_config=config
        )
        assert not compiled.lint_report.ok
        assert "REG503" in compiled.lint_report.codes()


class TestExperimentGate:
    def test_outcomes_carry_lint_fields(self, two_gp):
        loops = paper_suite(4)
        result = run_experiment(
            loops, two_gp, lint_config=DEFAULT_CONFIG
        )
        assert result.total_lint_errors == 0
        for outcome in result.outcomes:
            assert outcome.lint_errors == 0
        # At least the codes tuple is populated when diagnostics fired;
        # a fully clean loop legitimately reports an empty tuple.
        assert result.lint_code_counts() == {
            code: count
            for code, count in result.lint_code_counts().items()
            if count > 0
        }

    def test_strict_lint_failure_recorded(
        self, dead_value_loop, two_gp
    ):
        config = LintConfig(
            strict=True, severity={"REG503": "error"}
        )
        result = run_experiment(
            [dead_value_loop], two_gp, lint_config=config
        )
        assert result.n_failed == 1
        assert "lint gate rejected" in result.outcomes[0].error

    def test_without_gate_fields_stay_zero(self, two_gp):
        result = run_experiment(paper_suite(2), two_gp)
        for outcome in result.outcomes:
            assert outcome.lint_errors == 0
            assert outcome.lint_codes == ()


class TestEngineGate:
    def test_inline_engine_honours_lint_config(
        self, dead_value_loop, two_gp
    ):
        options = EngineOptions(
            lint_config=LintConfig(severity={"REG503": "error"})
        )
        result = run_engine_experiment(
            [dead_value_loop], two_gp, options=options
        )
        (outcome,) = result.outcomes
        assert outcome.lint_errors >= 1
        assert "REG503" in outcome.lint_codes

    def test_fingerprint_distinguishes_configs(self):
        assert lint_fingerprint(None) is None
        a = lint_fingerprint(DEFAULT_CONFIG)
        b = lint_fingerprint(LintConfig(disable=frozenset({"DDG105"})))
        assert a is not None and b is not None
        assert a != b
        assert lint_fingerprint(LintConfig()) == a

    def test_cache_key_varies_with_lint_config(self, chain3, two_gp):
        from repro.core import HEURISTIC_ITERATIVE

        plain = outcome_cache_key(chain3, two_gp, HEURISTIC_ITERATIVE)
        gated = outcome_cache_key(
            chain3, two_gp, HEURISTIC_ITERATIVE,
            lint_config=DEFAULT_CONFIG,
        )
        assert plain != gated

    def test_cache_roundtrips_lint_fields(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        outcome = LoopOutcome(
            loop_name="x", unified_ii=3, clustered_ii=4, copies=2,
            lint_errors=1, lint_warnings=2,
            lint_codes=("DDG102", "SCHED402"),
        )
        cache.store("key", outcome)
        loaded = cache.load("key")
        assert loaded is not None
        assert loaded.lint_errors == 1
        assert loaded.lint_warnings == 2
        assert loaded.lint_codes == ("DDG102", "SCHED402")

    def test_cached_run_replays_lint_fields(
        self, dead_value_loop, two_gp, tmp_path
    ):
        options = EngineOptions(
            lint_config=LintConfig(severity={"REG503": "error"}),
            cache_dir=str(tmp_path),
            resume=True,
        )
        first = run_engine_experiment(
            [dead_value_loop], two_gp, options=options
        )
        second = run_engine_experiment(
            [dead_value_loop], two_gp, options=options
        )
        assert second.cache_hits == 1
        assert (
            second.outcomes[0].lint_codes
            == first.outcomes[0].lint_codes
        )
