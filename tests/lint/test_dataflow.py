"""The fixed-point dataflow engine and the static bounds built on it.

Three layers of evidence:

* unit tests drive the worklist engine directly (directions, may/must
  confluence, widening, and a pinned visit count on a pathological
  multi-SCC kernel);
* the re-derived analyses are compared against the pipeline's own
  computations (``df_rec_mii`` vs :func:`repro.ddg.mii.rec_mii`);
* the static bounds are differentially validated on the bundled corpus
  — ``df_mii_floor`` against the exact tightness oracle and
  ``pressure_floor`` against the real MVE allocator.
"""

import pytest

from repro.certify import STATUS_TIGHT, emit_certificate, probe_tightness
from repro.core import compile_loop
from repro.ddg import Ddg, Opcode, build_ddg, rec_mii, trivial_annotation
from repro.lint.dataflow import (
    BACKWARD,
    NEG_INF,
    POS_INF,
    BoolLattice,
    DataflowProblem,
    LongestPathLattice,
    SetLattice,
    cluster_reachability,
    dead_values,
    df_mii_floor,
    df_rec_mii,
    df_res_mii,
    forced_row_groups,
    longest_paths,
    pressure_floor,
    solve,
    solve_ddg,
)
from repro.machine import (
    ClusterSpec,
    Machine,
    PointToPointInterconnect,
    gp_units,
    unified_gp,
)
from repro.regalloc.mve import allocate_mve
from repro.workloads import bundled_corpus


class TestEngine:
    def test_forward_reachability(self):
        # 0 -> 1 -> 2, 3 isolated: reachability from node 0.
        edges = [(0, 1, 1, 0), (1, 2, 1, 0)]
        problem = DataflowProblem(
            lattice=BoolLattice, init=lambda n: n == 0
        )
        values = solve([0, 1, 2, 3], edges, problem).values
        assert values == {0: True, 1: True, 2: True, 3: False}

    def test_backward_direction_flips_the_flow(self):
        edges = [(0, 1, 1, 0), (1, 2, 1, 0)]
        problem = DataflowProblem(
            lattice=BoolLattice, direction=BACKWARD,
            init=lambda n: n == 2,
        )
        values = solve([0, 1, 2], edges, problem).values
        assert values == {0: True, 1: True, 2: True}

    def test_must_confluence_meets_over_paths(self):
        # Diamond 0 -> {1, 2} -> 3; the edge out of 2 kills fact 1, so
        # a must-analysis denies it at the join point while the path
        # through 1 alone would have kept it.
        edges = [(0, 1, 1, 0), (0, 2, 1, 0), (1, 3, 1, 0), (2, 3, 1, 0)]
        problem = DataflowProblem(
            lattice=SetLattice((0, 1)),
            may=False,
            init=lambda n: frozenset((0, 1)),
            transfer=lambda spec, value: (
                value if spec[0] != 2 else value - {1}
            ),
        )
        values = solve([0, 1, 2, 3], edges, problem).values
        assert values[1] == frozenset((0, 1))
        assert values[2] == frozenset((0, 1))
        assert values[3] == frozenset((0,))

    def test_widening_detects_positive_cycle(self):
        # A self-loop of weight +1 pumps the path length forever.
        edges = [(0, 0, 1, 0)]
        problem = DataflowProblem(
            lattice=LongestPathLattice,
            init=lambda n: 0,
            transfer=lambda spec, value: value + 1,
            widen=True,
        )
        result = solve([0], edges, problem)
        assert not result.converged
        assert result.values[0] == POS_INF

    def test_scc_ordering_feeds_downstream_components(self):
        # Two 2-cycles bridged by one edge; the downstream SCC must see
        # the upstream fixed point, not its initial value.
        edges = [
            (0, 1, 1, 0), (1, 0, 1, 1),
            (1, 2, 1, 0),
            (2, 3, 1, 0), (3, 2, 1, 1),
        ]
        values = longest_paths([0, 1, 2, 3], edges, (0,), ii=2)
        assert values == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_visit_count_pinned_on_pathological_multi_scc_kernel(self):
        # Three 3-cycles in a chain, solved at the II where every cycle
        # has weight exactly zero -- the worst convergent case: values
        # keep circulating until each SCC's longest entry path wins.
        # The FIFO worklist (seeded in ascending node order) makes the
        # visit count a deterministic function of the graph, so pin it:
        # a regression here means the iteration strategy changed.
        graph = Ddg(name="pathological")
        nodes = [graph.add_node(Opcode.ALU) for _ in range(9)]
        for base in (0, 3, 6):
            graph.add_edge(nodes[base], nodes[base + 1], distance=0)
            graph.add_edge(nodes[base + 1], nodes[base + 2], distance=0)
            graph.add_edge(nodes[base + 2], nodes[base], distance=1)
        graph.add_edge(nodes[2], nodes[3], distance=0)
        graph.add_edge(nodes[5], nodes[6], distance=0)

        view = graph.view()
        source = {nodes[0]}
        problem = DataflowProblem(
            lattice=LongestPathLattice,
            init=lambda n: 0 if n in source else NEG_INF,
            transfer=lambda spec, value: (
                NEG_INF if value == NEG_INF
                else value + spec[2] - 3 * spec[3]
            ),
            widen=True,
        )
        result = solve_ddg(graph, problem)
        assert result.converged
        assert result.scc_count == 3
        assert result.values[nodes[8]] == 8
        assert result.node_visits == 12
        # And again: the count is deterministic, not merely stable.
        repeat = solve(view.node_ids, view.edge_array, problem)
        assert repeat.node_visits == result.node_visits


class TestLiveness:
    def test_dead_chain_is_flagged_whole(self):
        graph = Ddg(name="dead-chain")
        load = graph.add_node(Opcode.LOAD, name="ld")
        alu = graph.add_node(Opcode.ALU, name="a")
        dead1 = graph.add_node(Opcode.ALU, name="d1")
        dead2 = graph.add_node(Opcode.ALU, name="d2")
        store = graph.add_node(Opcode.STORE, name="st")
        graph.add_edge(load, alu)
        graph.add_edge(alu, store)
        graph.add_edge(load, dead1)
        graph.add_edge(dead1, dead2)
        assert sorted(dead_values(graph)) == [dead1, dead2]

    def test_unread_accumulator_is_dead(self):
        # A self-recurrence alone does not keep a value alive.
        graph = Ddg(name="spinner")
        acc = graph.add_node(Opcode.FP_ADD, name="acc")
        graph.add_edge(acc, acc, distance=1)
        assert dead_values(graph) == [acc]

    def test_stored_accumulator_is_live(self, accumulator):
        graph = accumulator
        store = graph.add_node(Opcode.STORE, name="st")
        acc = graph.node_ids[1]
        graph.add_edge(acc, store)
        assert dead_values(graph) == []

    def test_corpus_loops_mostly_live(self, two_gp):
        flagged = sum(
            1 for ddg in bundled_corpus() if dead_values(ddg)
        )
        # The synthetic generator leaves a few dangling producers; the
        # analysis must not blow that up into whole-corpus noise.
        assert flagged < len(list(bundled_corpus())) / 2


class TestClusterReachability:
    def test_bus_reaches_everything(self, two_gp):
        senders = cluster_reachability(two_gp)
        assert senders[0] == frozenset((0, 1))
        assert senders[1] == frozenset((0, 1))

    def test_point_to_point_closure_is_transitive(self):
        machine = Machine(
            clusters=tuple(
                ClusterSpec(i, gp_units(2)) for i in range(3)
            ),
            interconnect=PointToPointInterconnect(
                links=[(0, 1), (1, 2)]
            ),
            name="chain3p2p",
        )
        senders = cluster_reachability(machine)
        assert 0 in senders[2]  # two hops, carried by a copy chain

    def test_disconnected_cluster_reaches_only_itself(self):
        machine = Machine(
            clusters=tuple(
                ClusterSpec(i, gp_units(2)) for i in range(3)
            ),
            interconnect=PointToPointInterconnect(links=[(0, 1)]),
            name="islanded",
        )
        senders = cluster_reachability(machine)
        assert senders[2] == frozenset((2,))


class TestRecMii:
    def test_agrees_with_pipeline_on_fixtures(
        self, intro_example, chain3, accumulator
    ):
        for graph in (intro_example, chain3, accumulator):
            assert df_rec_mii(graph) == rec_mii(graph), graph.name

    def test_agrees_with_pipeline_on_corpus(self):
        for ddg in list(bundled_corpus())[:16]:
            assert df_rec_mii(ddg) == rec_mii(ddg), ddg.name

    def test_zero_distance_cycle_rejected(self):
        graph = Ddg(name="combinational")
        a = graph.add_node(Opcode.ALU)
        b = graph.add_node(Opcode.ALU)
        graph.add_edge(a, b, distance=0)
        graph.add_edge(b, a, distance=0)
        with pytest.raises(ValueError):
            df_rec_mii(graph)


@pytest.fixture
def two_load_recurrence():
    """ld1 -> ld2 -> ld1 at distance 2: RecMII = (2+2)/2 = 2, but at
    II=2 both loads are forced into the same kernel row."""
    return build_ddg(
        ops=[("ld1", Opcode.LOAD), ("ld2", Opcode.LOAD)],
        deps=[("ld1", "ld2", 0), ("ld2", "ld1", 2)],
        name="two-load",
    )


class TestMiiFloor:
    def test_forced_rows_tighten_past_base_mii(self, two_load_recurrence):
        machine = unified_gp(1)
        graph = two_load_recurrence
        assert max(df_rec_mii(graph), df_res_mii(graph, machine)) == 2
        # At II=2 the recurrence is zero-slack: rows are forced 2 apart,
        # i.e. the SAME row mod 2 -- two loads in one row of a 1-wide
        # machine.  The floor must rise to 3, and 3 must be achievable.
        groups = forced_row_groups(graph, 2)
        assert any(len(group) == 2 for group in groups)
        assert df_mii_floor(graph, machine) == 3
        assert compile_loop(graph, machine).ii == 3

    def test_floor_matches_base_when_rows_fit(
        self, intro_example, two_gp
    ):
        base = max(
            df_rec_mii(intro_example),
            df_res_mii(intro_example, two_gp),
        )
        assert df_mii_floor(intro_example, two_gp) == base

    def test_floor_never_exceeds_achieved_ii_on_corpus(self, two_gp):
        # Soundness, differentially: compile every sampled loop, and
        # wherever the exact oracle PROVES the achieved II minimal, the
        # static floor may not exceed it.
        proved = 0
        for ddg in list(bundled_corpus())[:20]:
            compiled = compile_loop(ddg, two_gp)
            floor = df_mii_floor(ddg, two_gp)
            assert floor <= compiled.ii, ddg.name
            cert = emit_certificate(compiled)
            result = probe_tightness(cert, ddg, two_gp)
            if result.status == STATUS_TIGHT:
                proved += 1
        assert proved  # the differential actually bit somewhere


class TestPressureFloor:
    def test_simple_chain_floor(self, chain3, uni8):
        annotated = trivial_annotation(chain3, uni8)
        floors = pressure_floor(annotated, ii=1)
        # ld (latency 2) feeds mul, mul (latency 3) feeds st: two live
        # values on cluster 0; each holds >= 1 full II.
        assert floors is not None
        assert floors[0] >= 2

    def test_infeasible_ii_returns_none(self, accumulator, uni8):
        annotated = trivial_annotation(accumulator, uni8)
        assert pressure_floor(annotated, ii=0) is None

    def test_floor_below_real_allocation_on_corpus(self, two_gp):
        # The floor holds for EVERY schedule at the II, so the real
        # allocator's per-cluster usage can never dip beneath it.
        checked = 0
        for ddg in list(bundled_corpus())[:16]:
            compiled = compile_loop(ddg, two_gp)
            floors = pressure_floor(compiled.annotated, compiled.ii)
            assert floors is not None, ddg.name
            allocation = allocate_mve(compiled.schedule)
            for cluster, floor in floors.items():
                assert floor <= allocation.registers(cluster), (
                    f"{ddg.name}: cluster {cluster} floor {floor} > "
                    f"allocated {allocation.registers(cluster)}"
                )
                checked += 1
        assert checked
