"""The rule registry: stable codes, families, configuration policy."""

import re

import pytest

from repro.lint import (
    DEFAULT_CONFIG,
    FAMILIES,
    LintConfig,
    all_rules,
    rules_in_family,
)

CODE_PATTERN = re.compile(
    r"^(DDG1|MACH2|ASSIGN3|SCHED4|REG5|CERT6|DF7|SRC8|CONC9)\d\d$"
)

KNOWN_ARTIFACTS = {
    "graph", "machine", "annotated", "schedule", "source", "project",
}


class TestRegistry:
    def test_every_code_is_well_formed(self):
        for rule in all_rules():
            assert CODE_PATTERN.match(rule.code), rule.code

    def test_codes_are_unique_and_sorted(self):
        codes = [rule.code for rule in all_rules()]
        assert codes == sorted(codes)
        assert len(codes) == len(set(codes))

    def test_every_family_has_rules(self):
        for prefix in FAMILIES:
            assert rules_in_family(prefix), f"no rules under {prefix}"

    def test_rule_count_is_stable(self):
        # Adding a rule is fine -- bump this count alongside the
        # docs/LINTING.md catalog so they cannot drift apart.
        assert len(all_rules()) == 59

    def test_family_property_matches_prefix(self):
        for rule in all_rules():
            assert rule.code.startswith(rule.family)
            assert rule.family in FAMILIES

    def test_requirements_name_known_artifacts(self):
        for rule in all_rules():
            assert rule.requires <= KNOWN_ARTIFACTS, rule.code

    def test_descriptions_and_names_present(self):
        for rule in all_rules():
            assert rule.name
            assert rule.description

    def test_default_off_rules(self):
        # The differential cross-check, the whole certificate family,
        # and the dataflow MII-floor cross-check are opt-in (all
        # recompile / re-derive everything).
        off = {r.code for r in all_rules() if not r.default_enabled}
        assert "SCHED490" in off
        assert "DF705" in off
        assert off - {"SCHED490", "DF705"} == {
            code for code in off if code.startswith("CERT6")
        }
        assert len(off) == 10


class TestLintConfig:
    def _rule(self, code):
        return next(r for r in all_rules() if r.code == code)

    def test_default_runs_default_on_rules(self):
        assert DEFAULT_CONFIG.is_enabled(self._rule("DDG101"))
        assert not DEFAULT_CONFIG.is_enabled(self._rule("SCHED490"))

    def test_enable_opts_default_off_rules_in(self):
        config = LintConfig(enable=frozenset({"SCHED490"}))
        assert config.is_enabled(self._rule("SCHED490"))

    def test_disable_wins_over_enable(self):
        config = LintConfig(
            disable=frozenset({"SCHED490"}),
            enable=frozenset({"SCHED490"}),
        )
        assert not config.is_enabled(self._rule("SCHED490"))

    def test_select_restricts_to_prefix(self):
        config = LintConfig(select=frozenset({"DF7"}))
        assert config.is_enabled(self._rule("DF701"))
        assert not config.is_enabled(self._rule("DDG101"))

    def test_select_matches_exact_code(self):
        config = LintConfig(select=frozenset({"DF705"}))
        assert config.is_enabled(self._rule("DF705"))
        assert not config.is_enabled(self._rule("DF701"))

    def test_select_implies_enablement_but_disable_wins(self):
        config = LintConfig(select=frozenset({"SCHED490"}))
        assert config.is_enabled(self._rule("SCHED490"))
        config = LintConfig(
            select=frozenset({"DF7"}), disable=frozenset({"DF701"})
        )
        assert not config.is_enabled(self._rule("DF701"))

    def test_severity_override(self):
        config = LintConfig(severity={"DDG105": "error"})
        assert config.severity_for(self._rule("DDG105")) == "error"
        assert config.severity_for(self._rule("DDG101")) == "error"

    def test_unknown_severity_rejected(self):
        with pytest.raises(ValueError):
            LintConfig(severity={"DDG101": "fatal"})

    def test_bad_differential_sample_rejected(self):
        with pytest.raises(ValueError):
            LintConfig(differential_sample=0)

    def test_config_is_hashable_and_picklable(self):
        import pickle

        config = LintConfig(
            disable=frozenset({"DDG105"}), strict=True
        )
        clone = pickle.loads(pickle.dumps(config))
        assert clone == config
