"""The exact II-tightness oracle: every verdict class, on purpose."""

import pytest

from repro.certify import (
    STATUS_BUDGET,
    STATUS_LOOSE,
    STATUS_SKIPPED,
    STATUS_TIGHT,
    ExactBudget,
    emit_certificate,
    probe_tightness,
)
from repro.core import compile_loop
from repro.ddg import Opcode, build_ddg


@pytest.fixture
def loose_compiled(chain3, two_gp):
    """chain3 schedules at II=1; forcing min_ii=2 makes the achieved
    II provably loose."""
    return compile_loop(chain3, two_gp, min_ii=2)


class TestTight:
    def test_recurrence_bound(self, compiled_intro):
        # intro_example: RecMII=4 == II, so II-1 is blocked by the
        # critical cycle without any search.
        cert = emit_certificate(compiled_intro)
        result = probe_tightness(
            cert, compiled_intro.ddg, compiled_intro.machine
        )
        assert result.status == STATUS_TIGHT
        assert result.reason == "recurrence_bound"
        assert result.proved
        assert result.backtracks == 0

    def test_ii_is_minimal(self, compiled_chain):
        assert compiled_chain.ii == 1
        cert = emit_certificate(compiled_chain)
        result = probe_tightness(
            cert, compiled_chain.ddg, compiled_chain.machine
        )
        assert result.status == STATUS_TIGHT
        assert result.reason == "ii_is_minimal"

    def test_resource_bound(self, two_gp):
        # Nine independent alu ops on a 2x4-issue machine: one cluster
        # holds >= 5, so ceil(5/4) = 2 > II-1 = 1.  Caught by counting
        # alone, no search.
        ddg = build_ddg(
            ops=[(f"n{i}", Opcode.ALU) for i in range(9)], deps=[]
        )
        compiled = compile_loop(ddg, two_gp)
        assert compiled.ii == 2
        cert = emit_certificate(compiled)
        result = probe_tightness(cert, ddg, two_gp)
        assert result.status == STATUS_TIGHT
        assert result.reason == "resource_bound"
        assert result.proved


class TestLoose:
    def test_finds_schedule_at_lower_ii(self, loose_compiled):
        assert loose_compiled.ii == 2
        cert = emit_certificate(loose_compiled)
        result = probe_tightness(
            cert, loose_compiled.ddg, loose_compiled.machine
        )
        assert result.status == STATUS_LOOSE
        assert result.probed_ii == 1
        assert result.proved  # "loose" is a definite verdict too

    def test_returned_schedule_is_valid(self, loose_compiled):
        cert = emit_certificate(loose_compiled)
        result = probe_tightness(
            cert, loose_compiled.ddg, loose_compiled.machine
        )
        assert result.schedule is not None
        start = dict(result.schedule)
        ii = result.probed_ii
        latency = {
            n.node_id: n.latency for n in loose_compiled.ddg.nodes
        }
        assert set(start) >= set(latency)
        for edge in loose_compiled.ddg.edges:
            assert (
                start[edge.dst] + edge.distance * ii
                >= start[edge.src] + latency[edge.src]
            ), f"edge {edge.src}->{edge.dst} violated at II={ii}"


class TestBudgets:
    def test_node_budget_skips(self, compiled_intro):
        cert = emit_certificate(compiled_intro)
        result = probe_tightness(
            cert, compiled_intro.ddg, compiled_intro.machine,
            budget=ExactBudget(node_budget=1),
        )
        assert result.status == STATUS_SKIPPED
        assert not result.proved

    def test_backtrack_budget_exhausts(self, two_gp):
        # A loop the oracle must actually search on (not pre-check):
        # compile at an inflated II so the target II is feasible-ish
        # but the search is cut off after a single backtrack.
        ddg = build_ddg(
            ops=[(f"n{i}", Opcode.ALU) for i in range(8)],
            deps=[(f"n{i}", f"n{i+1}", 0) for i in range(7)],
        )
        compiled = compile_loop(ddg, two_gp, min_ii=3)
        cert = emit_certificate(compiled)
        result = probe_tightness(
            cert, ddg, two_gp,
            budget=ExactBudget(backtrack_budget=0),
        )
        assert result.status in (STATUS_BUDGET, STATUS_LOOSE)
        if result.status == STATUS_BUDGET:
            assert not result.proved

    def test_generous_budget_settles_the_question(self, two_gp):
        ddg = build_ddg(
            ops=[(f"n{i}", Opcode.ALU) for i in range(8)],
            deps=[(f"n{i}", f"n{i+1}", 0) for i in range(7)],
        )
        compiled = compile_loop(ddg, two_gp, min_ii=3)
        cert = emit_certificate(compiled)
        result = probe_tightness(
            cert, ddg, two_gp,
            budget=ExactBudget(node_budget=16,
                               backtrack_budget=200000),
        )
        # An 8-op chain of unit-latency alu ops fits at II=2 easily.
        assert result.status == STATUS_LOOSE
        assert result.probed_ii == 2


class TestDefaults:
    def test_default_budget_on_corpus_sample(self, two_gp):
        from repro.workloads import bundled_corpus

        statuses = set()
        for ddg in list(bundled_corpus())[:8]:
            compiled = compile_loop(ddg, two_gp)
            cert = emit_certificate(compiled)
            result = probe_tightness(cert, ddg, two_gp)
            statuses.add(result.status)
            # Whatever the verdict, it must be one of the contract's.
            assert result.status in (
                STATUS_TIGHT, STATUS_LOOSE, STATUS_BUDGET,
                STATUS_SKIPPED,
            )
        assert statuses  # at least one loop probed
