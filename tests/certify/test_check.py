"""The independent checker: clean compiles verify, forgeries do not.

The seeded-defect classes mirror the acceptance criteria: one forgery
per certificate kind (RecMII cycle, copy route, occupancy slot,
lifetime interval) must be caught, and the full bundled corpus must
verify with zero issues on both preset machines.
"""

import dataclasses

import pytest

from repro.certify import emit_certificate
from repro.certify.check import check_certificate
from repro.core import compile_loop
from repro.machine import four_cluster_grid, two_cluster_gp
from repro.workloads import bundled_corpus


def codes(issues):
    return {issue.code for issue in issues}


class TestCleanCompiles:
    def test_intro_example_verifies(self, compiled_intro):
        cert = emit_certificate(compiled_intro)
        assert check_certificate(
            cert, compiled_intro.ddg, compiled_intro.machine
        ) == []

    def test_acyclic_loop_verifies(self, compiled_chain):
        cert = emit_certificate(compiled_chain)
        assert check_certificate(
            cert, compiled_chain.ddg, compiled_chain.machine
        ) == []

    def test_every_machine_verifies(
        self, intro_example, any_clustered_machine
    ):
        compiled = compile_loop(intro_example, any_clustered_machine)
        cert = emit_certificate(compiled)
        assert check_certificate(
            cert, intro_example, any_clustered_machine
        ) == []

    @pytest.mark.parametrize(
        "machine_factory", [two_cluster_gp, four_cluster_grid],
        ids=["2gp", "grid"],
    )
    def test_bundled_corpus_verifies(self, machine_factory):
        machine = machine_factory()
        for ddg in bundled_corpus():
            compiled = compile_loop(ddg, machine)
            cert = emit_certificate(compiled)
            issues = check_certificate(cert, ddg, machine)
            assert issues == [], f"{ddg.name}: {issues[:3]}"


class TestSeededDefects:
    """Each forgery class must be caught by its checker section."""

    def test_forged_recmii_value(self, compiled_intro):
        cert = emit_certificate(compiled_intro)
        forged = dataclasses.replace(
            cert,
            recmii=dataclasses.replace(
                cert.recmii, value=cert.recmii.value + 1
            ),
        )
        issues = check_certificate(
            forged, compiled_intro.ddg, compiled_intro.machine
        )
        assert "CERT601" in codes(issues)

    def test_forged_recmii_cycle_edge(self, compiled_intro):
        cert = emit_certificate(compiled_intro)
        # Point the first cycle edge at a dependence that does not
        # exist in the graph.
        src, dst, latency, distance = cert.recmii.cycle[0]
        fake = ((src, dst, latency, distance + 7),) + cert.recmii.cycle[1:]
        forged = dataclasses.replace(
            cert, recmii=dataclasses.replace(cert.recmii, cycle=fake)
        )
        issues = check_certificate(
            forged, compiled_intro.ddg, compiled_intro.machine
        )
        assert "CERT601" in codes(issues)

    def test_forged_resmii_count(self, compiled_intro):
        cert = emit_certificate(compiled_intro)
        pool, uses, capacity = cert.resmii.demand[0]
        forged = dataclasses.replace(
            cert,
            resmii=dataclasses.replace(
                cert.resmii, demand=((pool, uses + 1, capacity),)
                + cert.resmii.demand[1:],
            ),
        )
        issues = check_certificate(
            forged, compiled_intro.ddg, compiled_intro.machine
        )
        assert "CERT602" in codes(issues)

    def test_illegal_copy_route(self, two_gp):
        # Find a corpus loop whose compile inserts at least one copy,
        # then teleport a copy's source cluster so its witnessed route
        # becomes illegal.
        for ddg in bundled_corpus():
            compiled = compile_loop(ddg, two_gp)
            if compiled.copy_count:
                break
        else:  # pragma: no cover - corpus always has copies
            pytest.fail("no corpus loop with copies")
        cert = emit_certificate(compiled)
        copy = cert.assignment.copies[0]
        moved = dataclasses.replace(
            copy, src_cluster=(copy.src_cluster + 1) % 2
        )
        forged = dataclasses.replace(
            cert,
            assignment=dataclasses.replace(
                cert.assignment,
                copies=(moved,) + cert.assignment.copies[1:],
            ),
        )
        issues = check_certificate(forged, ddg, two_gp)
        assert "CERT603" in codes(issues)

    def test_tampered_cluster_assignment(self, compiled_intro):
        cert = emit_certificate(compiled_intro)
        pairs = cert.assignment.cluster_of
        node, cluster = pairs[0]
        forged = dataclasses.replace(
            cert,
            assignment=dataclasses.replace(
                cert.assignment,
                cluster_of=((node, (cluster + 1) % 2),) + pairs[1:],
            ),
        )
        issues = check_certificate(
            forged, compiled_intro.ddg, compiled_intro.machine
        )
        assert issues, "moving a node across clusters must be caught"

    def test_double_booked_slot(self, two_gp):
        # Collapse every start cycle onto row 0: with more ops than
        # one row's capacity the recount must report a double-booked
        # slot (the slack/occupancy witnesses also stop matching).
        for ddg in bundled_corpus():
            compiled = compile_loop(ddg, two_gp)
            if len(ddg) > 8 and compiled.ii >= 2:
                break
        else:  # pragma: no cover
            pytest.fail("no corpus loop large enough")
        cert = emit_certificate(compiled)
        flat = tuple(
            (node, 0) for node, _ in cert.schedule.start
        )
        forged = dataclasses.replace(
            cert,
            schedule=dataclasses.replace(cert.schedule, start=flat),
        )
        issues = check_certificate(forged, ddg, two_gp)
        assert "CERT605" in codes(issues)
        assert any(
            "double-booked" in issue.message
            for issue in issues if issue.code == "CERT605"
        )

    def test_negative_slack_is_caught(self, compiled_intro):
        cert = emit_certificate(compiled_intro)
        # Swap two distinct start cycles without touching the slack
        # witnesses: the timing section must notice.
        start = dict(cert.schedule.start)
        a, b = sorted(start)[:2]
        start[a], start[b] = start[b], start[a]
        forged = dataclasses.replace(
            cert,
            schedule=dataclasses.replace(
                cert.schedule, start=tuple(sorted(start.items()))
            ),
        )
        issues = check_certificate(
            forged, compiled_intro.ddg, compiled_intro.machine
        )
        assert "CERT604" in codes(issues)

    def test_overlapping_lifetime(self, two_gp):
        # Force two register assignments onto the same register of the
        # same cluster: the bitmask overlap check must fire (or the
        # assignment stops matching its lifetime instance).
        for ddg in bundled_corpus():
            compiled = compile_loop(ddg, two_gp)
            cert = emit_certificate(compiled)
            per_cluster = {}
            for entry in cert.regalloc.assignments:
                producer, cluster, inst, reg, start, length = entry
                if length == 0:
                    continue
                per_cluster.setdefault(cluster, []).append(entry)
            pair = next(
                (
                    entries for entries in per_cluster.values()
                    if len(entries) >= 2
                ),
                None,
            )
            if pair is not None:
                break
        else:  # pragma: no cover
            pytest.fail("no loop with two live values on one cluster")
        first, second = pair[0], pair[1]
        # Move the second assignment onto the first's register and
        # start cycle so their intervals collide.
        clash = (
            second[0], second[1], second[2], first[3], first[4],
            max(first[5], second[5]),
        )
        assignments = tuple(
            clash if entry == second else entry
            for entry in cert.regalloc.assignments
        )
        forged = dataclasses.replace(
            cert,
            regalloc=dataclasses.replace(
                cert.regalloc, assignments=assignments
            ),
        )
        issues = check_certificate(forged, ddg, two_gp)
        assert "CERT606" in codes(issues)

    def test_dropped_dependence(self, compiled_intro):
        cert = emit_certificate(compiled_intro)
        forged = dataclasses.replace(
            cert,
            graph=dataclasses.replace(
                cert.graph, edges=cert.graph.edges[1:]
            ),
        )
        issues = check_certificate(
            forged, compiled_intro.ddg, compiled_intro.machine
        )
        assert "CERT600" in codes(issues)

    def test_malformed_section_is_contained(self, compiled_intro):
        cert = emit_certificate(compiled_intro)
        forged = dataclasses.replace(
            cert,
            regalloc=dataclasses.replace(
                cert.regalloc, lifetimes=(("garbage",),)
            ),
        )
        issues = check_certificate(
            forged, compiled_intro.ddg, compiled_intro.machine
        )
        assert "CERT606" in codes(issues)
        assert all(
            issue.code.startswith("CERT") for issue in issues
        )
