"""The certify gate: driver attach, strict rejection, experiment and
engine threading, cache round-trips."""

import dataclasses

import pytest

from repro.analysis import run_experiment
from repro.analysis.engine import (
    EngineOptions,
    ResultCache,
    certify_fingerprint,
    outcome_cache_key,
    run_engine_experiment,
)
from repro.certify import (
    CertifyConfig,
    DEFAULT_CERTIFY,
    artifact_diagnostics,
    certify_compiled,
)
from repro.certify.check import CertIssue
from repro.core import CompilationError, compile_loop
from repro.workloads import bundled_corpus


def small_corpus(n=6):
    return list(bundled_corpus())[:n]


class TestCertifyCompiled:
    def test_clean_compile_yields_ok_artifact(self, compiled_intro):
        artifact = certify_compiled(compiled_intro, DEFAULT_CERTIFY)
        assert artifact.ok
        assert len(artifact.issues) == 0
        assert artifact.exact is None  # oracle is opt-in
        assert artifact.exact_status == ""
        assert artifact.codes() == ()

    def test_exact_opt_in(self, compiled_intro):
        config = CertifyConfig(exact=True)
        artifact = certify_compiled(compiled_intro, config)
        assert artifact.exact is not None
        assert artifact.exact_status == "tight"

    def test_diagnostics_empty_for_clean_artifact(self, compiled_intro):
        artifact = certify_compiled(compiled_intro, DEFAULT_CERTIFY)
        assert artifact_diagnostics(artifact) == []

    def test_loose_ii_becomes_warning(self, chain3, two_gp):
        compiled = compile_loop(chain3, two_gp, min_ii=2)
        artifact = certify_compiled(
            compiled, CertifyConfig(exact=True)
        )
        assert artifact.ok  # loose is a warning, not a failure
        diags = artifact_diagnostics(artifact)
        assert [d.code for d in diags] == ["CERT690"]
        assert diags[0].severity == "warning"
        assert "II=1" in diags[0].message


class TestDriverGate:
    def test_certificate_attached(self, intro_example, two_gp):
        compiled = compile_loop(
            intro_example, two_gp, certify_config=DEFAULT_CERTIFY
        )
        assert compiled.certified is not None
        assert compiled.certified.ok
        assert compiled.certificate is compiled.certified.certificate
        assert compiled.certificate.ii == compiled.ii

    def test_no_config_no_certificate(self, compiled_intro):
        assert compiled_intro.certified is None
        assert compiled_intro.certificate is None

    def test_strict_gate_rejects(
        self, intro_example, two_gp, monkeypatch
    ):
        import repro.certify.gate as gate_mod

        def forge(cert, ddg, machine):
            return [CertIssue(
                code="CERT605", location="row 0",
                message="slot double-booked (forged for test)",
            )]

        monkeypatch.setattr(gate_mod, "check_certificate", forge)
        with pytest.raises(CompilationError, match="certify gate"):
            compile_loop(
                intro_example, two_gp,
                certify_config=CertifyConfig(strict=True),
            )
        # Non-strict records the failure but does not raise.
        compiled = compile_loop(
            intro_example, two_gp, certify_config=DEFAULT_CERTIFY
        )
        assert not compiled.certified.ok
        assert compiled.certified.codes() == ("CERT605",)


class TestExperimentThreading:
    def test_outcomes_carry_cert_fields(self, two_gp):
        result = run_experiment(
            small_corpus(), two_gp,
            certify_config=CertifyConfig(exact=True),
        )
        assert result.total_cert_errors == 0
        assert result.cert_code_counts() == {}
        statuses = result.exact_status_counts()
        assert statuses and all(
            s in ("tight", "loose", "budget_exhausted", "skipped")
            for s in statuses
        )

    def test_without_config_fields_stay_default(self, two_gp):
        result = run_experiment(small_corpus(3), two_gp)
        for outcome in result.outcomes:
            assert outcome.cert_errors == 0
            assert outcome.cert_codes == ()
            assert outcome.exact_status == ""

    def test_engine_matches_serial(self, two_gp):
        config = CertifyConfig(exact=True)
        serial = run_experiment(
            small_corpus(), two_gp, certify_config=config
        )
        engine = run_engine_experiment(
            small_corpus(), two_gp,
            options=EngineOptions(workers=2, certify_config=config),
        )
        for a, b in zip(serial.outcomes, engine.outcomes):
            assert a.loop_name == b.loop_name
            assert a.cert_errors == b.cert_errors
            assert a.cert_codes == b.cert_codes
            assert a.exact_status == b.exact_status


class TestCacheKeys:
    def test_fingerprint_covers_every_knob(self):
        base = CertifyConfig()
        assert certify_fingerprint(None) is None
        prints = {
            certify_fingerprint(base),
            certify_fingerprint(dataclasses.replace(base, strict=True)),
            certify_fingerprint(dataclasses.replace(base, exact=True)),
            certify_fingerprint(
                dataclasses.replace(base, exact_node_budget=99)
            ),
            certify_fingerprint(
                dataclasses.replace(base, exact_backtrack_budget=1)
            ),
        }
        assert len(prints) == 5

    def test_cache_key_depends_on_certify_config(
        self, intro_example, two_gp
    ):
        from repro.core import HEURISTIC_ITERATIVE

        plain = outcome_cache_key(
            intro_example, two_gp, HEURISTIC_ITERATIVE
        )
        gated = outcome_cache_key(
            intro_example, two_gp, HEURISTIC_ITERATIVE,
            certify_config=DEFAULT_CERTIFY,
        )
        assert plain != gated

    def test_cache_round_trips_cert_fields(self, two_gp, tmp_path):
        options = EngineOptions(
            cache_dir=str(tmp_path), resume=True,
            certify_config=CertifyConfig(exact=True),
        )
        first = run_engine_experiment(
            small_corpus(4), two_gp, options=options
        )
        second = run_engine_experiment(
            small_corpus(4), two_gp, options=options
        )
        for a, b in zip(first.outcomes, second.outcomes):
            assert a.cert_errors == b.cert_errors
            assert a.cert_codes == b.cert_codes
            assert a.exact_status == b.exact_status

    def test_result_cache_store_load(self, two_gp, tmp_path):
        cache = ResultCache(str(tmp_path))
        result = run_experiment(
            small_corpus(1), two_gp,
            certify_config=CertifyConfig(exact=True),
        )
        outcome = result.outcomes[0]
        cache.store("k", outcome)
        loaded = cache.load("k")
        assert loaded.cert_errors == outcome.cert_errors
        assert loaded.cert_codes == outcome.cert_codes
        assert loaded.exact_status == outcome.exact_status
