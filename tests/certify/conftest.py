"""Shared compiled artifacts for the certificate tests."""

from __future__ import annotations

import pytest

from repro.certify import emit_certificate
from repro.core import compile_loop


@pytest.fixture
def compiled_intro(intro_example, two_gp):
    """The paper's intro example compiled on the 2-cluster machine
    (RecMII = 4, so the recurrence witness carries a real cycle)."""
    return compile_loop(intro_example, two_gp)


@pytest.fixture
def intro_certificate(compiled_intro):
    return emit_certificate(compiled_intro)


@pytest.fixture
def compiled_chain(chain3, two_gp):
    """An acyclic loop: RecMII = 0, exercises the empty-cycle path."""
    return compile_loop(chain3, two_gp)
