"""The ``repro certify`` subcommand and the ``--certify`` gates."""

import json

import pytest

from repro.cli import main

CLEAN_LOOP = """\
ld:  load
mul: fp_mult <- ld
st:  store   <- mul
"""

#: A combinational cycle: the loop does not compile (LINT002).
DEFECTIVE_LOOP = """\
a: alu <- b
b: alu <- a
"""

SMALL_CORPUS = """\
== alpha ==
ld:  load
mul: fp_mult <- ld
st:  store   <- mul

== beta ==
a: alu
b: alu <- a
c: alu <- b
d: store <- c

== gamma ==
x: load
y: fp_div <- x
z: store <- y
"""


@pytest.fixture
def clean_loop_file(tmp_path):
    path = tmp_path / "clean.loop"
    path.write_text(CLEAN_LOOP)
    return str(path)


@pytest.fixture
def defective_loop_file(tmp_path):
    path = tmp_path / "cycle.loop"
    path.write_text(DEFECTIVE_LOOP)
    return str(path)


@pytest.fixture
def corpus_file(tmp_path):
    path = tmp_path / "small.corpus"
    path.write_text(SMALL_CORPUS)
    return str(path)


class TestCertifyCommand:
    def test_clean_loop_exits_zero(self, clean_loop_file, capsys):
        rc = main(["certify", clean_loop_file, "--machine", "2gp"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "0 error(s)" in out

    def test_json_report(self, clean_loop_file, capsys):
        rc = main([
            "certify", clean_loop_file, "--format", "json",
        ])
        doc = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert doc["summary"]["errors"] == 0
        assert doc["summary"]["ok"] is True

    def test_sarif_has_cert_rules(self, clean_loop_file, capsys):
        rc = main([
            "certify", clean_loop_file, "--format", "sarif",
        ])
        doc = json.loads(capsys.readouterr().out)
        assert rc == 0
        rules = doc["runs"][0]["tool"]["driver"]["rules"]
        assert any(r["id"].startswith("CERT6") for r in rules)

    def test_uncompilable_loop_exits_nonzero(
        self, defective_loop_file, capsys
    ):
        rc = main([
            "certify", defective_loop_file, "--format", "json",
        ])
        doc = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert "LINT002" in {d["code"] for d in doc["diagnostics"]}

    def test_exit_zero_forces_success(
        self, defective_loop_file, capsys
    ):
        rc = main([
            "certify", defective_loop_file, "--exit-zero",
        ])
        capsys.readouterr()
        assert rc == 0

    def test_fast_overrides_exact(self, clean_loop_file, capsys):
        rc = main([
            "certify", clean_loop_file, "--fast", "--exact",
            "--format", "json",
        ])
        doc = json.loads(capsys.readouterr().out)
        assert rc == 0
        # --fast suppresses the oracle: no CERT690 can appear and the
        # run still verifies everything else.
        assert doc["summary"]["errors"] == 0

    def test_exact_flags_accepted(self, clean_loop_file, capsys):
        rc = main([
            "certify", clean_loop_file, "--exact",
            "--exact-budget", "20", "--exact-backtracks", "5000",
        ])
        capsys.readouterr()
        assert rc == 0

    def test_kernels_on_both_machines(self, capsys):
        for machine in ("2gp", "grid"):
            rc = main([
                "certify", "--kernels", "--suite", "2",
                "--machine", machine, "--format", "json",
            ])
            doc = json.loads(capsys.readouterr().out)
            assert rc == 0, doc
            assert doc["summary"]["errors"] == 0

    def test_output_file(self, clean_loop_file, tmp_path, capsys):
        out_file = tmp_path / "report.json"
        rc = main([
            "certify", clean_loop_file, "--format", "json",
            "--output", str(out_file),
        ])
        assert rc == 0
        assert "wrote" in capsys.readouterr().out
        doc = json.loads(out_file.read_text())
        assert doc["summary"]["ok"] is True


class TestDeterministicFanOut:
    """Satellite 2: --workers N must be byte-identical to serial."""

    @pytest.mark.parametrize("fmt", ["json", "sarif"])
    def test_certify_workers_byte_identical(
        self, corpus_file, fmt, capsys
    ):
        rc = main(["certify", corpus_file, "--format", fmt])
        serial = capsys.readouterr().out
        assert rc == 0
        rc = main([
            "certify", corpus_file, "--format", fmt,
            "--workers", "2",
        ])
        fanned = capsys.readouterr().out
        assert rc == 0
        assert fanned == serial

    @pytest.mark.parametrize("fmt", ["json", "sarif"])
    def test_lint_workers_byte_identical(
        self, corpus_file, fmt, capsys
    ):
        rc = main(["lint", corpus_file, "--format", fmt])
        serial = capsys.readouterr().out
        assert rc == 0
        rc = main([
            "lint", corpus_file, "--format", fmt, "--workers", "2",
        ])
        fanned = capsys.readouterr().out
        assert rc == 0
        assert fanned == serial


class TestPipelineGates:
    def test_compile_certify_reports(self, clean_loop_file, capsys):
        rc = main([
            "compile", clean_loop_file, "--machine", "2gp",
            "--certify",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "certificate: verified" in out

    def test_experiment_certify_gate(self, capsys):
        rc = main([
            "experiment", "--loops", "4", "--machine", "2gp",
            "--certify",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "certify gate: 0 certificate failure(s)" in out

    def test_experiment_json_carries_certify_block(self, capsys):
        rc = main([
            "experiment", "--loops", "4", "--machine", "2gp",
            "--certify", "--json",
        ])
        doc = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert doc["certify"]["errors"] == 0
