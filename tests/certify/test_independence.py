"""The verifier must stand alone.

The whole value of a certificate is that the checker does not share
code with the pipeline that produced it.  This test walks the static
import graph of ``repro.certify.check`` and ``repro.certify.exact``
and asserts the transitive closure inside ``repro`` never leaves the
certify package's independent core (witness + check + exact).  Any
import of ``repro.core``, ``repro.scheduling``, ``repro.mrt`` &c. is
a contract violation, even an unused one.
"""

import ast
from pathlib import Path

import repro.certify

CERTIFY_DIR = Path(repro.certify.__file__).resolve().parent

#: The only repro modules the independent core may reach.
ALLOWED = {
    "repro.certify",
    "repro.certify.witness",
    "repro.certify.check",
    "repro.certify.exact",
}

ROOTS = ["repro.certify.check", "repro.certify.exact"]


def _module_path(module):
    name = module.rsplit(".", 1)[-1]
    candidate = CERTIFY_DIR / f"{name}.py"
    if module == "repro.certify":
        candidate = CERTIFY_DIR / "__init__.py"
    return candidate if candidate.exists() else None


def _imports_of(module):
    """Absolute repro-module names statically imported by ``module``."""
    path = _module_path(module)
    if path is None:
        return set()
    tree = ast.parse(path.read_text())
    package = module.rsplit(".", 1)[0]
    found = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                found.add(alias.name)
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0:
                base = node.module or ""
            else:
                parts = package.split(".")
                if node.level > 1:
                    parts = parts[: len(parts) - (node.level - 1)]
                base = ".".join(parts)
                if node.module:
                    base = f"{base}.{node.module}"
            found.add(base)
            for alias in node.names:
                found.add(f"{base}.{alias.name}")
    return {name for name in found if name.startswith("repro")}


def _closure(roots):
    seen = set()
    frontier = list(roots)
    while frontier:
        module = frontier.pop()
        if module in seen:
            continue
        seen.add(module)
        frontier.extend(_imports_of(module))
    return seen


class TestCheckerIndependence:
    def test_closure_stays_inside_the_independent_core(self):
        closure = _closure(ROOTS)
        # Keep only names that resolve to real modules (the walk also
        # collects `from .witness import Certificate`-style symbols).
        modules = {m for m in closure if _module_path(m) is not None
                   or m in ALLOWED}
        offenders = modules - ALLOWED
        assert not offenders, (
            "verifier imports pipeline code: "
            f"{sorted(offenders)}"
        )

    def test_no_pipeline_packages_anywhere_in_closure(self):
        closure = _closure(ROOTS)
        banned = ("repro.core", "repro.scheduling", "repro.mrt",
                  "repro.regalloc", "repro.assign", "repro.ddg",
                  "repro.machine", "repro.lint", "repro.analysis")
        for module in closure:
            assert not module.startswith(banned), module

    def test_witness_is_also_standalone(self):
        closure = _closure(["repro.certify.witness"])
        assert {m for m in closure if m != "repro.certify.witness"
                and _module_path(m) is not None} == set()

    def test_emit_is_not_in_the_checker_closure(self):
        # emit.py is allowed (required, even) to import the pipeline;
        # the point is that check/exact never reach it.
        closure = _closure(ROOTS)
        assert "repro.certify.emit" not in closure
        assert "repro.certify.gate" not in closure

    def test_package_init_lazy_loads_pipeline_half(self):
        # Importing repro.certify eagerly must not drag emit/gate in:
        # the __init__ exposes them via module __getattr__ only.
        import importlib
        import subprocess
        import sys

        assert importlib  # silence unused in case of refactor
        # (The parent `repro` package eagerly imports the pipeline,
        # so only the certify-local modules are meaningful here.)
        code = (
            "import sys; import repro.certify; "
            "assert 'repro.certify.check' in sys.modules; "
            "assert 'repro.certify.exact' in sys.modules; "
            "assert 'repro.certify.emit' not in sys.modules; "
            "assert 'repro.certify.gate' not in sys.modules"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True,
            env={"PYTHONPATH": str(CERTIFY_DIR.parents[1])},
        )
        assert proc.returncode == 0, proc.stderr
