"""The certificate schema: pure data, JSON round-trippable."""

import dataclasses
import json

from repro.certify import (
    Certificate,
    RecMiiWitness,
    ResMiiWitness,
    emit_certificate,
    from_dict,
)
from repro.certify.check import check_certificate


class TestSchema:
    def test_certificate_is_frozen(self, intro_certificate):
        try:
            intro_certificate.ii = 99
        except dataclasses.FrozenInstanceError:
            pass
        else:  # pragma: no cover
            raise AssertionError("certificate must be immutable")

    def test_recmii_witness_sums(self):
        witness = RecMiiWitness(
            value=4, cycle=((1, 2, 1, 0), (2, 3, 2, 0), (3, 1, 1, 1))
        )
        assert witness.cycle_latency == 4
        assert witness.cycle_distance == 1

    def test_ii_floor(self, intro_certificate):
        cert = intro_certificate
        assert cert.ii_floor == max(
            cert.sched_recmii.value, cert.sched_resources.value, 1
        )
        assert cert.ii >= cert.ii_floor

    def test_mii_fields(self, intro_certificate):
        cert = intro_certificate
        assert cert.recmii.value == 4  # the paper's walk-through
        assert cert.mii == max(cert.recmii.value, cert.resmii.value, 1)


class TestRoundTrip:
    def test_dict_round_trip(self, intro_certificate):
        doc = intro_certificate.to_dict()
        assert from_dict(doc) == intro_certificate

    def test_json_round_trip(self, intro_certificate):
        text = json.dumps(intro_certificate.to_dict(), sort_keys=True)
        rebuilt = from_dict(json.loads(text))
        assert rebuilt == intro_certificate
        assert (
            json.dumps(rebuilt.to_dict(), sort_keys=True) == text
        )

    def test_rebuilt_certificate_still_verifies(
        self, compiled_intro, intro_certificate
    ):
        rebuilt = from_dict(
            json.loads(json.dumps(intro_certificate.to_dict()))
        )
        issues = check_certificate(
            rebuilt, compiled_intro.ddg, compiled_intro.machine
        )
        assert issues == []

    def test_empty_witnesses_round_trip(self, compiled_chain):
        cert = emit_certificate(compiled_chain)
        assert cert.recmii.value == 0
        assert cert.recmii.cycle == ()
        assert from_dict(cert.to_dict()) == cert

    def test_to_dict_is_json_plain(self, intro_certificate):
        doc = intro_certificate.to_dict()
        assert isinstance(doc, dict)
        # No tuples or dataclasses may survive into the plain form.
        json.dumps(doc)
        assert isinstance(doc["graph"]["nodes"], list)
        assert not isinstance(
            doc["schedule"]["slots"][0], type(intro_certificate)
        )

    def test_types_exported(self):
        assert Certificate.__name__ == "Certificate"
        assert ResMiiWitness(value=1).demand == ()
