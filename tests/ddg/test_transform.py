"""Annotated DDGs: cluster tags, copy metadata, structural validation."""

import pytest

from repro.ddg import AnnotatedDdg, Ddg, Opcode, build_ddg, trivial_annotation
from repro.machine import two_cluster_gp, unified_gp


def _two_cluster_annotated(chain3):
    """A chain3-shaped graph split across the two clusters: the direct
    mul -> st edge is replaced by mul -> copy -> st."""
    machine = two_cluster_gp()
    graph = Ddg(name="chain3-split")
    ld = graph.add_node(Opcode.LOAD, name="ld")
    mul = graph.add_node(Opcode.FP_MULT, name="mul")
    st = graph.add_node(Opcode.STORE, name="st")
    cp = graph.add_node(Opcode.COPY, name="cp")
    graph.add_edge(ld, mul, distance=0)
    graph.add_edge(mul, cp, distance=0)
    graph.add_edge(cp, st, distance=0)
    return AnnotatedDdg(
        ddg=graph,
        machine=machine,
        cluster_of={ld: 0, mul: 0, st: 1, cp: 0},
        copy_targets={cp: (1,)},
        copy_value_of={cp: mul},
    )


class TestTrivialAnnotation:
    def test_everything_on_cluster_zero(self, chain3):
        annotated = trivial_annotation(chain3, unified_gp(4))
        assert set(annotated.cluster_of.values()) == {0}
        assert annotated.copy_count == 0

    def test_requires_unified_machine(self, chain3):
        with pytest.raises(ValueError):
            trivial_annotation(chain3, two_cluster_gp())


class TestResources:
    def test_op_resources_are_issue_slots(self, chain3):
        annotated = trivial_annotation(chain3, unified_gp(4))
        assert annotated.resources_of(0) == [("issue", 0, "gp")]

    def test_copy_resources_include_ports_and_bus(self, chain3):
        annotated = _two_cluster_annotated(chain3)
        cp = annotated.copy_nodes[0]
        resources = annotated.resources_of(cp)
        assert ("rd", 0) in resources
        assert ("wr", 1) in resources
        assert "bus" in resources


class TestValidation:
    def test_missing_cluster_assignment_rejected(self, chain3):
        with pytest.raises(ValueError):
            AnnotatedDdg(
                ddg=chain3,
                machine=unified_gp(4),
                cluster_of={0: 0, 1: 0},  # node 2 missing
            )

    def test_copy_targets_must_reference_copies(self, chain3):
        with pytest.raises(ValueError):
            AnnotatedDdg(
                ddg=chain3,
                machine=unified_gp(4),
                cluster_of={0: 0, 1: 0, 2: 0},
                copy_targets={0: (1,)},  # node 0 is a load
            )

    def test_valid_split_graph_passes(self, chain3):
        annotated = _two_cluster_annotated(chain3)
        annotated.validate()  # should not raise

    def test_uncopied_cross_cluster_value_edge_rejected(self, chain3):
        machine = two_cluster_gp()
        annotated = AnnotatedDdg(
            ddg=chain3,
            machine=machine,
            cluster_of={0: 0, 1: 1, 2: 1},  # load on C0 feeds mult on C1
        )
        with pytest.raises(ValueError):
            annotated.validate()

    def test_memory_ordering_edge_crosses_freely(self):
        graph = build_ddg(
            ops=[("st", Opcode.STORE), ("ld", Opcode.LOAD)],
            deps=[("st", "ld", 1)],  # loop-carried memory dependence
        )
        annotated = AnnotatedDdg(
            ddg=graph,
            machine=two_cluster_gp(),
            cluster_of={0: 0, 1: 1},
        )
        annotated.validate()  # stores produce no value: no copy needed

    def test_copy_feeding_untargeted_cluster_rejected(self, chain3):
        annotated = _two_cluster_annotated(chain3)
        # Corrupt: claim the copy only targets cluster 0.
        annotated.copy_targets[annotated.copy_nodes[0]] = (0,)
        with pytest.raises(ValueError):
            annotated.validate()


class TestCopyMetadata:
    def test_copy_nodes_and_count(self, chain3):
        annotated = _two_cluster_annotated(chain3)
        assert annotated.copy_count == 1
        assert len(annotated.copy_nodes) == 1

    def test_copy_value_of_tracks_producer(self, chain3):
        annotated = _two_cluster_annotated(chain3)
        cp = annotated.copy_nodes[0]
        assert annotated.copy_value_of[cp] == 1  # the multiply
