"""Operation set and latency table (paper Table 2)."""

import pytest

from repro.ddg.opcodes import (
    FuClass,
    Opcode,
    OpcodeInfo,
    all_opcode_info,
    fu_class_of,
    latency_of,
    produces_value,
)


class TestLatencies:
    """Table 2: exact latency of every operation class."""

    @pytest.mark.parametrize(
        "opcode",
        [Opcode.ALU, Opcode.SHIFT, Opcode.BRANCH, Opcode.STORE,
         Opcode.FP_ADD, Opcode.COPY],
    )
    def test_single_cycle_ops(self, opcode):
        assert latency_of(opcode) == 1

    def test_load_is_two_cycles(self):
        assert latency_of(Opcode.LOAD) == 2

    def test_fp_mult_is_three_cycles(self):
        assert latency_of(Opcode.FP_MULT) == 3

    @pytest.mark.parametrize("opcode", [Opcode.FP_DIV, Opcode.FP_SQRT])
    def test_long_latency_fp(self, opcode):
        assert latency_of(opcode) == 9

    def test_every_opcode_has_a_latency(self):
        for opcode in Opcode:
            assert latency_of(opcode) >= 1


class TestFuClasses:
    """Unit classes for fully specified machines."""

    @pytest.mark.parametrize("opcode", [Opcode.LOAD, Opcode.STORE])
    def test_memory_ops(self, opcode):
        assert fu_class_of(opcode) is FuClass.MEMORY

    @pytest.mark.parametrize(
        "opcode", [Opcode.ALU, Opcode.SHIFT, Opcode.BRANCH]
    )
    def test_integer_ops(self, opcode):
        assert fu_class_of(opcode) is FuClass.INTEGER

    @pytest.mark.parametrize(
        "opcode",
        [Opcode.FP_ADD, Opcode.FP_MULT, Opcode.FP_DIV, Opcode.FP_SQRT],
    )
    def test_float_ops(self, opcode):
        assert fu_class_of(opcode) is FuClass.FLOAT

    def test_copy_needs_no_unit(self):
        assert fu_class_of(Opcode.COPY) is FuClass.NONE


class TestValueProduction:
    """Stores and branches never produce register values."""

    @pytest.mark.parametrize("opcode", [Opcode.STORE, Opcode.BRANCH])
    def test_non_value_producing(self, opcode):
        assert not produces_value(opcode)

    @pytest.mark.parametrize(
        "opcode",
        [Opcode.ALU, Opcode.SHIFT, Opcode.LOAD, Opcode.FP_ADD,
         Opcode.FP_MULT, Opcode.FP_DIV, Opcode.FP_SQRT, Opcode.COPY],
    )
    def test_value_producing(self, opcode):
        assert produces_value(opcode)


class TestOpcodeInfo:
    """The bundled info record."""

    def test_info_of_load(self):
        info = OpcodeInfo.of(Opcode.LOAD)
        assert info.latency == 2
        assert info.fu_class is FuClass.MEMORY
        assert info.produces_value

    def test_all_opcode_info_covers_every_opcode(self):
        infos = all_opcode_info()
        assert {info.opcode for info in infos} == set(Opcode)

    def test_info_is_frozen(self):
        info = OpcodeInfo.of(Opcode.ALU)
        with pytest.raises(AttributeError):
            info.latency = 5
