"""Compiled DDG views: caching, invalidation, and adjacency content."""

import pytest

from repro import obs
from repro.ddg import Ddg, Opcode, build_ddg, scc_components
from repro.ddg.mii import rec_mii, rec_mii_exceeds


@pytest.fixture
def recurrence():
    """a -> b -> c with recurrence c -> a at distance 1, plus a free d."""
    return build_ddg(
        ops=[
            ("a", Opcode.ALU),
            ("b", Opcode.LOAD),
            ("c", Opcode.ALU),
            ("d", Opcode.ALU),
        ],
        deps=[
            ("a", "b", 0),
            ("b", "c", 0),
            ("c", "a", 1),
            ("a", "d", 0),
        ],
    )


class TestViewCaching:
    def test_view_is_cached_until_mutation(self, recurrence):
        first = recurrence.view()
        assert recurrence.view() is first

    def test_add_node_invalidates(self, recurrence):
        first = recurrence.view()
        recurrence.add_node(Opcode.ALU)
        second = recurrence.view()
        assert second is not first
        assert second.version != first.version

    def test_add_edge_invalidates(self, recurrence):
        first = recurrence.view()
        recurrence.add_edge(1, 3, distance=0)
        assert recurrence.view() is not first

    def test_rebuild_counter(self, recurrence):
        with obs.tracing() as trace:
            recurrence.view()
            recurrence.view()  # cached, no rebuild
            recurrence.add_node(Opcode.ALU)
            recurrence.view()
        assert trace.counter("ddg.view_rebuilds") == 2

    def test_copy_does_not_share_view(self, recurrence):
        original = recurrence.view()
        clone = recurrence.copy()
        assert clone.view() is not original


class TestViewContent:
    def test_adjacency_matches_graph_accessors(self, recurrence):
        view = recurrence.view()
        for node_id in recurrence.node_ids:
            assert list(view.successors[node_id]) == \
                recurrence.successors(node_id)
            assert list(view.predecessors[node_id]) == \
                recurrence.predecessors(node_id)

    def test_edge_array_preserves_insertion_order(self, recurrence):
        view = recurrence.view()
        expected = [
            (e.src, e.dst, recurrence.latency(e.src), e.distance)
            for e in recurrence.edges
        ]
        assert list(view.edge_array) == expected

    def test_latency_and_value_maps(self, recurrence):
        view = recurrence.view()
        for node_id in recurrence.node_ids:
            assert view.latency[node_id] == recurrence.latency(node_id)
            node = recurrence.node(node_id)
            assert view.produces_value[node_id] == node.produces_value


class TestSccComponents:
    def test_components_found(self, recurrence):
        components = scc_components(recurrence)
        assert [frozenset(c) for c in components] == [frozenset({0, 1, 2})]

    def test_self_loop_is_component(self):
        graph = Ddg()
        a = graph.add_node(Opcode.ALU)
        graph.add_edge(a, a, distance=1)
        assert [frozenset(c) for c in scc_components(graph)] == [
            frozenset({a})
        ]

    def test_components_cached_on_view(self, recurrence):
        first = scc_components(recurrence)
        assert scc_components(recurrence) is first


class TestRecMiiMemoization:
    def test_repeat_rec_mii_hits_cache(self, recurrence):
        with obs.tracing() as trace:
            first = rec_mii(recurrence)
            second = rec_mii(recurrence)
        assert first == second == 4  # (1 + 2 + 1) / 1
        assert trace.counter("mii.recmii_cache_hits") >= 1

    def test_exceeds_agrees_with_exact(self, recurrence):
        exact = rec_mii(recurrence)
        fresh = recurrence.copy()
        for ii in range(1, exact + 3):
            assert rec_mii_exceeds(fresh, ii) == (exact > ii)

    def test_exceeds_probes_promote_to_exact(self, recurrence):
        # Walk candidate IIs upward like the Figure-5 driver does; by the
        # time the exact value is requested the bounds are decisive.
        for ii in range(1, 5):
            rec_mii_exceeds(recurrence, ii)
        with obs.tracing() as trace:
            assert rec_mii(recurrence) == 4
        assert trace.counter("mii.recmii_cache_hits") >= 1

    def test_mutation_invalidates_memo(self, recurrence):
        assert rec_mii(recurrence) == 4
        # Second recurrence b -> b over the load doubles nothing but the
        # graph version; the memo must not leak across versions.
        recurrence.add_edge(1, 1, distance=2)
        assert rec_mii(recurrence) == 4

    def test_zero_distance_cycle_still_raises(self):
        graph = Ddg()
        a = graph.add_node(Opcode.ALU)
        b = graph.add_node(Opcode.ALU)
        graph.add_edge(a, b, distance=0)
        graph.add_edge(b, a, distance=0)
        with pytest.raises(ValueError):
            rec_mii(graph)
        with pytest.raises(ValueError):
            rec_mii_exceeds(graph, 1)
