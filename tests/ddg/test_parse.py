"""The textual loop format."""

import pytest

from repro.ddg import Opcode, rec_mii
from repro.ddg.parse import LoopParseError, format_loop, parse_loop

LK5 = """
# tridiagonal elimination
ld_y: load
ld_z: load
sub:  fp_add  <- ld_y, mul@1
mul:  fp_mult <- ld_z, sub
st:   store   <- mul
"""


class TestParsing:
    def test_basic_loop(self):
        graph = parse_loop(LK5, name="lk5")
        assert len(graph) == 5
        assert graph.edge_count() == 5
        assert graph.name == "lk5"

    def test_opcodes_resolved(self):
        graph = parse_loop(LK5)
        opcodes = [node.opcode for node in graph.nodes]
        assert opcodes == [
            Opcode.LOAD, Opcode.LOAD, Opcode.FP_ADD, Opcode.FP_MULT,
            Opcode.STORE,
        ]

    def test_loop_carried_distance(self):
        graph = parse_loop(LK5)
        carried = [e for e in graph.edges if e.distance > 0]
        assert len(carried) == 1
        assert carried[0].distance == 1
        # mul feeds sub across the iteration: RecMII 1 + 3 = 4.
        assert rec_mii(graph) == 4

    def test_forward_references_allowed(self):
        graph = parse_loop("a: alu <- b\nb: alu <- a@1\n")
        assert graph.edge_count() == 2

    def test_comments_and_blank_lines_ignored(self):
        graph = parse_loop("\n# hi\na: alu  # trailing comment\n\n")
        assert len(graph) == 1

    def test_no_deps(self):
        graph = parse_loop("a: load\nb: store <- a\n")
        assert graph.edge_count() == 1


class TestErrors:
    def test_unknown_opcode(self):
        with pytest.raises(LoopParseError) as exc:
            parse_loop("a: fmadd\n")
        assert exc.value.line_number == 1

    def test_duplicate_name(self):
        with pytest.raises(LoopParseError) as exc:
            parse_loop("a: alu\na: load\n")
        assert exc.value.line_number == 2

    def test_undefined_dependence(self):
        with pytest.raises(LoopParseError):
            parse_loop("a: alu <- ghost\n")

    def test_garbage_line(self):
        with pytest.raises(LoopParseError) as exc:
            parse_loop("a: alu\n???\n")
        assert exc.value.line_number == 2

    def test_bad_dep_token(self):
        with pytest.raises(LoopParseError):
            parse_loop("a: alu\nb: alu <- a@@2\n")


class TestRoundTrip:
    def test_format_then_parse_is_identity(self):
        graph = parse_loop(LK5)
        text = format_loop(graph)
        again = parse_loop(text)
        assert len(again) == len(graph)
        assert [(n.name, n.opcode) for n in again.nodes] == [
            (n.name, n.opcode) for n in graph.nodes
        ]
        assert sorted(
            (e.src, e.dst, e.distance) for e in again.edges
        ) == sorted((e.src, e.dst, e.distance) for e in graph.edges)

    def test_kernels_round_trip(self):
        from repro.workloads import all_kernels
        for graph in all_kernels():
            again = parse_loop(format_loop(graph), name=graph.name)
            assert len(again) == len(graph)
            assert rec_mii(again) == rec_mii(graph)

    def test_duplicate_names_rejected_on_format(self):
        from repro.ddg import Ddg
        graph = Ddg()
        graph.add_node(Opcode.ALU, name="x")
        graph.add_node(Opcode.ALU, name="x")
        with pytest.raises(ValueError):
            format_loop(graph)
