"""SCC detection and criticality ordering."""


from repro.ddg import Ddg, Opcode, find_sccs


class TestDetection:
    def test_intro_example_has_one_scc(self, intro_example):
        partition = find_sccs(intro_example)
        assert len(partition) == 1
        b, c, d = intro_example.node_ids[1:4]
        assert partition.sccs[0].nodes == {b, c, d}

    def test_acyclic_graph_has_no_sccs(self, chain3):
        assert len(find_sccs(chain3)) == 0

    def test_self_loop_is_nontrivial_scc(self, accumulator):
        partition = find_sccs(accumulator)
        assert len(partition) == 1
        assert len(partition.sccs[0]) == 1

    def test_single_node_without_self_loop_is_trivial(self):
        graph = Ddg()
        graph.add_node(Opcode.ALU)
        assert len(find_sccs(graph)) == 0

    def test_two_disjoint_sccs(self):
        graph = Ddg()
        a = graph.add_node(Opcode.ALU)
        b = graph.add_node(Opcode.ALU)
        c = graph.add_node(Opcode.FP_MULT)
        d = graph.add_node(Opcode.FP_ADD)
        graph.add_edge(a, b, distance=0)
        graph.add_edge(b, a, distance=1)
        graph.add_edge(c, d, distance=0)
        graph.add_edge(d, c, distance=1)
        partition = find_sccs(graph)
        assert len(partition) == 2
        assert partition.scc_node_count == 4


class TestCriticalityOrdering:
    def test_most_constraining_scc_first(self):
        graph = Ddg()
        # SCC 1: two ALUs, cycle latency 2 over distance 1 -> RecMII 2.
        a = graph.add_node(Opcode.ALU)
        b = graph.add_node(Opcode.ALU)
        graph.add_edge(a, b, distance=0)
        graph.add_edge(b, a, distance=1)
        # SCC 2: divide chain, RecMII 9 + 1 = 10.
        c = graph.add_node(Opcode.FP_DIV)
        d = graph.add_node(Opcode.FP_ADD)
        graph.add_edge(c, d, distance=0)
        graph.add_edge(d, c, distance=1)
        partition = find_sccs(graph)
        assert partition.sccs[0].nodes == {c, d}
        assert partition.sccs[0].rec_mii == 10
        assert partition.sccs[1].rec_mii == 2

    def test_ties_broken_by_size(self):
        graph = Ddg()
        # Both SCCs have RecMII 1; the 3-node one should come first.
        nodes3 = [graph.add_node(Opcode.ALU) for _ in range(3)]
        graph.add_edge(nodes3[0], nodes3[1], distance=0)
        graph.add_edge(nodes3[1], nodes3[2], distance=0)
        graph.add_edge(nodes3[2], nodes3[0], distance=3)
        solo = graph.add_node(Opcode.ALU)
        graph.add_edge(solo, solo, distance=1)
        partition = find_sccs(graph)
        assert len(partition.sccs[0]) == 3
        assert len(partition.sccs[1]) == 1

    def test_indices_match_position(self, intro_example):
        partition = find_sccs(intro_example)
        for position, scc in enumerate(partition.sccs):
            assert scc.index == position


class TestMembership:
    def test_scc_of_and_in_scc(self, intro_example):
        partition = find_sccs(intro_example)
        a, b = intro_example.node_ids[0], intro_example.node_ids[1]
        assert partition.scc_of(a) is None
        assert not partition.in_scc(a)
        assert partition.scc_of(b) is partition.sccs[0]
        assert partition.in_scc(b)

    def test_contains_protocol(self, intro_example):
        partition = find_sccs(intro_example)
        b = intro_example.node_ids[1]
        assert b in partition.sccs[0]

    def test_iteration_yields_sccs(self, intro_example):
        partition = find_sccs(intro_example)
        assert list(partition) == partition.sccs
