"""RecMII / ResMII / MII computation."""

import pytest

from repro.ddg import Ddg, Opcode, build_ddg, mii, rec_mii, res_mii
from repro.ddg.mii import op_demand, rec_mii_of_subgraph
from repro.ddg.opcodes import FuClass
from repro.machine import two_cluster_fs, unified_fs, unified_gp


class TestZeroLatencyCycles:
    """Regression: a cycle whose ops all have latency 0 has weight 0 at
    every candidate II, so the positive-cycle probes cannot see it.  A
    zero-distance one used to be silently reported as acyclic instead
    of rejected as unschedulable."""

    @staticmethod
    def _cycle(distance_back):
        graph = Ddg()
        a = graph.add_node(Opcode.ALU, latency=0)
        b = graph.add_node(Opcode.ALU, latency=0)
        graph.add_edge(a, b, distance=0)
        graph.add_edge(b, a, distance=distance_back)
        return graph

    def test_zero_latency_zero_distance_cycle_rejected(self):
        with pytest.raises(ValueError, match="zero total distance"):
            rec_mii(self._cycle(distance_back=0))

    def test_zero_latency_carried_cycle_imposes_no_bound(self):
        # With distance >= 1 the recurrence bound is ceil(0 / 1) = 0:
        # legitimate, and explicitly handled rather than accidental.
        assert rec_mii(self._cycle(distance_back=1)) == 0

    def test_zero_latency_cycle_beside_a_real_recurrence(self):
        graph = self._cycle(distance_back=1)
        c = graph.add_node(Opcode.FP_MULT)  # latency 3
        d = graph.add_node(Opcode.FP_ADD)   # latency 1
        graph.add_edge(c, d, distance=0)
        graph.add_edge(d, c, distance=1)
        # The positive-latency cycle still dominates: (3 + 1) / 1 = 4.
        assert rec_mii(graph) == 4

    def test_zero_latency_node_on_positive_cycle_still_counted(self):
        graph = Ddg()
        a = graph.add_node(Opcode.ALU, latency=0)
        b = graph.add_node(Opcode.FP_MULT)  # latency 3
        graph.add_edge(a, b, distance=0)
        graph.add_edge(b, a, distance=1)
        assert rec_mii(graph) == 3

    def test_mixed_latency_zero_distance_cycle_still_rejected(self):
        graph = Ddg()
        a = graph.add_node(Opcode.ALU, latency=0)
        b = graph.add_node(Opcode.ALU)  # latency 1
        graph.add_edge(a, b, distance=0)
        graph.add_edge(b, a, distance=0)
        with pytest.raises(ValueError, match="zero total distance"):
            rec_mii(graph)


class TestRecMii:
    def test_paper_intro_example(self, intro_example):
        # RecMII = (1 + 2 + 1) / 1 = 4 per the paper's Section 3.
        assert rec_mii(intro_example) == 4

    def test_acyclic_graph_has_zero_rec_mii(self, chain3):
        assert rec_mii(chain3) == 0

    def test_self_loop_accumulator(self, accumulator):
        # FP add latency 1 over distance 1.
        assert rec_mii(accumulator) == 1

    def test_distance_two_halves_the_bound(self):
        graph = Ddg()
        a = graph.add_node(Opcode.FP_MULT)  # latency 3
        b = graph.add_node(Opcode.FP_ADD)  # latency 1
        graph.add_edge(a, b, distance=0)
        graph.add_edge(b, a, distance=2)
        # (3 + 1) / 2 = 2
        assert rec_mii(graph) == 2

    def test_ceiling_of_fractional_ratio(self):
        graph = Ddg()
        a = graph.add_node(Opcode.FP_MULT)  # 3
        b = graph.add_node(Opcode.LOAD)  # 2
        graph.add_edge(a, b, distance=0)
        graph.add_edge(b, a, distance=2)
        # (3 + 2) / 2 = 2.5 -> 3
        assert rec_mii(graph) == 3

    def test_max_over_multiple_cycles(self):
        graph = Ddg()
        a = graph.add_node(Opcode.ALU)
        b = graph.add_node(Opcode.ALU)
        c = graph.add_node(Opcode.FP_DIV)  # latency 9
        graph.add_edge(a, b, distance=0)
        graph.add_edge(b, a, distance=1)  # cycle of latency 2
        graph.add_edge(c, c, distance=1)  # cycle of latency 9
        assert rec_mii(graph) == 9

    def test_zero_distance_cycle_rejected(self):
        graph = Ddg()
        a = graph.add_node(Opcode.ALU)
        b = graph.add_node(Opcode.ALU)
        graph.add_edge(a, b, distance=0)
        graph.add_edge(b, a, distance=0)
        with pytest.raises(ValueError):
            rec_mii(graph)

    def test_subgraph_restriction_ignores_outside_cycles(self):
        graph = Ddg()
        a = graph.add_node(Opcode.ALU)
        b = graph.add_node(Opcode.FP_DIV)
        graph.add_edge(a, a, distance=1)
        graph.add_edge(b, b, distance=1)
        assert rec_mii_of_subgraph(graph, {a}) == 1
        assert rec_mii_of_subgraph(graph, {b}) == 9

    def test_empty_subgraph(self, chain3):
        assert rec_mii_of_subgraph(chain3, set()) == 0


class TestResMii:
    def test_gp_width_division(self, intro_example):
        # 6 ops on an 8-wide GP machine: ceil(6/8) = 1.
        assert res_mii(intro_example, unified_gp(8)) == 1
        # On a 2-wide machine: ceil(6/2) = 3 (the paper's example).
        assert res_mii(intro_example, unified_gp(2)) == 3

    def test_fs_per_class_bound(self):
        graph = build_ddg(
            ops=[(f"l{i}", Opcode.LOAD) for i in range(5)]
            + [("a", Opcode.FP_ADD)],
            deps=[("l0", "a", 0)],
        )
        machine = unified_fs(memory=1, integer=2, floating=1)
        # 5 memory ops on 1 memory unit dominate: ResMII = 5.
        assert res_mii(graph, machine) == 5

    def test_copies_do_not_consume_issue_slots(self):
        graph = Ddg()
        a = graph.add_node(Opcode.ALU)
        for _ in range(10):
            cp = graph.add_node(Opcode.COPY)
            graph.add_edge(a, cp, distance=0)
        assert res_mii(graph, unified_gp(1)) == 1

    def test_fs_machine_missing_class_raises(self):
        graph = build_ddg(ops=[("f", Opcode.FP_ADD)], deps=[])
        machine = unified_fs(memory=1, integer=1, floating=0)
        with pytest.raises(ValueError):
            res_mii(graph, machine)

    def test_op_demand_groups_by_class(self, chain3):
        demand = op_demand(chain3)
        assert demand[FuClass.MEMORY] == 2  # load + store
        assert demand[FuClass.FLOAT] == 1

    def test_clustered_machine_capacity_sums_clusters(self, intro_example):
        machine = two_cluster_fs()
        # 2 clusters x 2 integer units = 4; 5 int ops + 1 load.
        assert res_mii(intro_example, machine) == 2


class TestMii:
    def test_mii_is_max_of_bounds(self, intro_example):
        # RecMII 4 dominates ResMII 3 on a 2-wide machine (paper: MII 4).
        assert mii(intro_example, unified_gp(2)) == 4

    def test_mii_resource_dominated(self, chain3):
        machine = unified_fs(memory=1, integer=1, floating=1)
        # 2 memory ops / 1 memory unit = 2 > RecMII 0.
        assert mii(chain3, machine) == 2

    def test_mii_at_least_one(self):
        graph = build_ddg(ops=[("a", Opcode.ALU)], deps=[])
        assert mii(graph, unified_gp(16)) == 1
