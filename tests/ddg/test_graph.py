"""DDG construction and structural queries."""

import time

import pytest

from repro.ddg import Ddg, Edge, Opcode, build_ddg


class TestConstruction:
    def test_add_node_returns_sequential_ids(self):
        graph = Ddg()
        assert graph.add_node(Opcode.ALU) == 0
        assert graph.add_node(Opcode.LOAD) == 1
        assert graph.add_node(Opcode.STORE) == 2

    def test_node_records_opcode_and_default_latency(self):
        graph = Ddg()
        node_id = graph.add_node(Opcode.FP_MULT, name="m")
        node = graph.node(node_id)
        assert node.opcode is Opcode.FP_MULT
        assert node.latency == 3
        assert node.name == "m"

    def test_latency_override(self):
        graph = Ddg()
        node_id = graph.add_node(Opcode.LOAD, latency=5)
        assert graph.latency(node_id) == 5

    def test_add_edge_requires_existing_endpoints(self):
        graph = Ddg()
        a = graph.add_node(Opcode.ALU)
        with pytest.raises(KeyError):
            graph.add_edge(a, 99)
        with pytest.raises(KeyError):
            graph.add_edge(99, a)

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            Edge(src=0, dst=1, distance=-1)

    def test_len_and_contains(self):
        graph = Ddg()
        a = graph.add_node(Opcode.ALU)
        assert len(graph) == 1
        assert a in graph
        assert 42 not in graph


class TestAdjacency:
    def test_successors_and_predecessors(self, chain3):
        ld, mul, st = chain3.node_ids
        assert chain3.successors(ld) == [mul]
        assert chain3.predecessors(st) == [mul]
        assert chain3.predecessors(ld) == []
        assert chain3.successors(st) == []

    def test_parallel_edges_counted_once_in_successors(self):
        graph = Ddg()
        a = graph.add_node(Opcode.ALU)
        b = graph.add_node(Opcode.ALU)
        graph.add_edge(a, b, distance=0)
        graph.add_edge(a, b, distance=1)
        assert graph.successors(a) == [b]
        assert len(graph.out_edges(a)) == 2

    def test_self_loop(self, accumulator):
        acc = accumulator.node_ids[1]
        assert acc in accumulator.successors(acc)
        assert acc in accumulator.predecessors(acc)

    def test_high_fan_out_dedup_order_and_speed(self):
        # One producer with thousands of parallel edges to each of a few
        # consumers: dedup must stay first-occurrence-ordered and linear
        # (the seed's `not in list` scan was quadratic in fan-out).
        graph = Ddg()
        producer = graph.add_node(Opcode.ALU)
        consumers = [graph.add_node(Opcode.ALU) for _ in range(8)]
        for distance in range(500):
            for consumer in consumers:
                graph.add_edge(producer, consumer, distance=distance)
        start = time.perf_counter()
        succs = graph.successors(producer)
        elapsed = time.perf_counter() - start
        assert succs == consumers  # first-occurrence order, one each
        assert graph.predecessors(consumers[0]) == [producer]
        assert elapsed < 0.5  # 4000 edges: linear dedup is microseconds

    def test_edge_count(self, intro_example):
        assert intro_example.edge_count() == 6


class TestDerivedViews:
    def test_to_networkx_preserves_shape(self, intro_example):
        nx_graph = intro_example.to_networkx()
        assert nx_graph.number_of_nodes() == 6
        assert nx_graph.number_of_edges() == 6

    def test_to_networkx_edge_attributes(self, chain3):
        nx_graph = chain3.to_networkx()
        ld, mul, _ = chain3.node_ids
        data = list(nx_graph.get_edge_data(ld, mul).values())[0]
        assert data["distance"] == 0
        assert data["latency"] == 2  # load latency

    def test_copy_is_independent(self, chain3):
        clone = chain3.copy()
        clone.add_node(Opcode.ALU)
        assert len(clone) == len(chain3) + 1
        assert clone.edge_count() == chain3.edge_count()

    def test_copy_preserves_edges_and_adjacency(self, intro_example):
        clone = intro_example.copy()
        for node_id in intro_example.node_ids:
            assert clone.successors(node_id) == intro_example.successors(
                node_id
            )

    def test_total_latency(self, chain3):
        assert chain3.total_latency() == 2 + 3 + 1

    def test_op_histogram(self, chain3):
        histogram = chain3.op_histogram()
        assert histogram == {
            Opcode.LOAD: 1, Opcode.FP_MULT: 1, Opcode.STORE: 1,
        }


class TestBuildDdg:
    def test_symbolic_construction(self):
        graph = build_ddg(
            ops=[("x", Opcode.LOAD), ("y", Opcode.ALU)],
            deps=[("x", "y", 0)],
            name="tiny",
        )
        assert graph.name == "tiny"
        assert len(graph) == 2
        assert graph.edge_count() == 1

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            build_ddg(
                ops=[("x", Opcode.ALU), ("x", Opcode.ALU)],
                deps=[],
            )

    def test_unknown_dep_name_raises(self):
        with pytest.raises(KeyError):
            build_ddg(ops=[("x", Opcode.ALU)], deps=[("x", "nope", 0)])
