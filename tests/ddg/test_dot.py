"""DOT export."""

import pytest

from repro.core import assign_clusters
from repro.ddg.dot import annotated_to_dot, ddg_to_dot
from repro.machine import two_cluster_gp


class TestDdgToDot:
    def test_contains_every_node_and_edge(self, intro_example):
        dot = ddg_to_dot(intro_example)
        for node_id in intro_example.node_ids:
            assert f"n{node_id}" in dot
        assert dot.count("->") == intro_example.edge_count()

    def test_loop_carried_edges_are_dashed_and_labelled(
        self, intro_example
    ):
        dot = ddg_to_dot(intro_example)
        assert "style=dashed" in dot
        assert 'label="1"' in dot

    def test_latency_in_label(self, chain3):
        dot = ddg_to_dot(chain3)
        assert "load (2)" in dot
        assert "fp_mult (3)" in dot

    def test_title_override(self, chain3):
        assert 'digraph "custom"' in ddg_to_dot(chain3, title="custom")

    def test_valid_braces(self, intro_example):
        dot = ddg_to_dot(intro_example)
        assert dot.count("{") == dot.count("}")


class TestAnnotatedToDot:
    @pytest.fixture
    def annotated(self):
        from repro.ddg import Ddg, Opcode
        graph = Ddg(name="wide")
        src = graph.add_node(Opcode.ALU, name="src")
        for i in range(15):
            node = graph.add_node(Opcode.ALU, name=f"op{i}")
            graph.add_edge(src, node, distance=0)
        result = assign_clusters(graph, two_cluster_gp(), ii=2)
        assert result is not None
        return result

    def test_one_subgraph_per_cluster(self, annotated):
        dot = annotated_to_dot(annotated)
        assert "subgraph cluster_0" in dot
        assert "subgraph cluster_1" in dot

    def test_copies_rendered_as_diamonds(self, annotated):
        dot = annotated_to_dot(annotated)
        assert annotated.copy_count >= 1
        assert "shape=diamond" in dot

    def test_copy_targets_in_label(self, annotated):
        dot = annotated_to_dot(annotated)
        assert "copy\\n-> C" in dot

    def test_valid_braces(self, annotated):
        dot = annotated_to_dot(annotated)
        assert dot.count("{") == dot.count("}")
