"""Buses, point-to-point links, routing."""

import pytest

from repro.machine import (
    BusInterconnect,
    NoInterconnect,
    PointToPointInterconnect,
    grid_links,
)


class TestBus:
    def test_broadcast_reaches_everything(self):
        bus = BusInterconnect(bus_count=2)
        assert bus.broadcast
        assert bus.reachable(0, 3)
        assert bus.route(0, 3) == [0, 3]
        assert bus.hop_distance(0, 3) == 1

    def test_route_to_self(self):
        bus = BusInterconnect(bus_count=1)
        assert bus.route(2, 2) == [2]

    def test_channel_pool(self):
        assert BusInterconnect(bus_count=4).channel_resources() == {"bus": 4}

    def test_hop_channel_is_the_bus(self):
        assert BusInterconnect(bus_count=2).channel_for_hop(0, 1) == "bus"

    def test_zero_buses_rejected(self):
        with pytest.raises(ValueError):
            BusInterconnect(bus_count=0)


class TestPointToPoint:
    @pytest.fixture
    def square(self):
        """The paper's 2x2 grid: 0-1, 0-2, 1-3, 2-3."""
        return PointToPointInterconnect(grid_links(2, 2))

    def test_not_broadcast(self, square):
        assert not square.broadcast

    def test_neighbors_reachable_one_hop(self, square):
        assert square.reachable(0, 1)
        assert square.reachable(0, 2)
        assert not square.reachable(0, 3)  # diagonal

    def test_diagonal_routes_in_two_hops(self, square):
        route = square.route(0, 3)
        assert len(route) == 3
        assert route[0] == 0 and route[-1] == 3
        assert route[1] in (1, 2)

    def test_hop_distance(self, square):
        assert square.hop_distance(0, 1) == 1
        assert square.hop_distance(0, 3) == 2
        assert square.hop_distance(2, 2) == 0

    def test_channel_pools_one_per_link(self, square):
        pools = square.channel_resources()
        assert len(pools) == 4
        assert all(capacity == 1 for capacity in pools.values())

    def test_channel_for_hop_is_direction_agnostic(self, square):
        assert square.channel_for_hop(0, 1) == square.channel_for_hop(1, 0)

    def test_channel_for_missing_link_raises(self, square):
        with pytest.raises(ValueError):
            square.channel_for_hop(0, 3)

    def test_unroutable_pair_raises(self):
        fabric = PointToPointInterconnect([(0, 1), (2, 3)])
        with pytest.raises(ValueError):
            fabric.route(0, 3)

    def test_self_link_rejected(self):
        with pytest.raises(ValueError):
            PointToPointInterconnect([(1, 1)])

    def test_duplicate_links_deduplicated(self):
        fabric = PointToPointInterconnect([(0, 1), (1, 0)])
        assert len(fabric.links) == 1

    def test_empty_fabric_rejected(self):
        with pytest.raises(ValueError):
            PointToPointInterconnect([])


class TestGridLinks:
    def test_two_by_two(self):
        links = set(grid_links(2, 2))
        assert links == {(0, 1), (0, 2), (1, 3), (2, 3)}

    def test_one_by_three_chain(self):
        assert set(grid_links(1, 3)) == {(0, 1), (1, 2)}

    def test_three_by_three_count(self):
        # 3x3 mesh: 2*3 horizontal + 3*2 vertical = 12 links.
        assert len(grid_links(3, 3)) == 12


class TestNoInterconnect:
    def test_only_self_reachable(self):
        fabric = NoInterconnect()
        assert fabric.reachable(0, 0)
        assert not fabric.reachable(0, 1)

    def test_cross_route_raises(self):
        with pytest.raises(ValueError):
            NoInterconnect().route(0, 1)

    def test_no_channels(self):
        assert NoInterconnect().channel_resources() == {}

    def test_hop_channel_raises(self):
        with pytest.raises(ValueError):
            NoInterconnect().channel_for_hop(0, 1)
