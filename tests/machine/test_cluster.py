"""Cluster specifications."""

import pytest

from repro.ddg.opcodes import FuClass
from repro.machine import ClusterSpec, fs_units, gp_units


class TestClusterSpec:
    def test_width_and_capacity(self):
        cluster = ClusterSpec(index=0, units=gp_units(4))
        assert cluster.width == 4
        assert cluster.issue_capacity(FuClass.FLOAT) == 4

    def test_fs_capacity(self):
        cluster = ClusterSpec(index=0, units=fs_units(1, 2, 1))
        assert cluster.issue_capacity(FuClass.INTEGER) == 2
        assert cluster.issue_capacity(FuClass.MEMORY) == 1

    def test_default_ports(self):
        cluster = ClusterSpec(index=0, units=gp_units(4))
        assert cluster.read_ports == 1
        assert cluster.write_ports == 1

    def test_name(self):
        assert ClusterSpec(index=3, units=gp_units(1)).name == "C3"

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            ClusterSpec(index=-1, units=gp_units(1))

    def test_negative_ports_rejected(self):
        with pytest.raises(ValueError):
            ClusterSpec(index=0, units=gp_units(1), read_ports=-1)

    def test_register_file_defaults_to_unbounded(self):
        cluster = ClusterSpec(index=0, units=gp_units(4))
        assert cluster.register_file == 0  # the paper's model

    def test_finite_register_file(self):
        cluster = ClusterSpec(
            index=0, units=gp_units(4), register_file=32
        )
        assert cluster.register_file == 32

    def test_negative_register_file_rejected(self):
        with pytest.raises(ValueError):
            ClusterSpec(index=0, units=gp_units(1), register_file=-1)

    def test_frozen(self):
        cluster = ClusterSpec(index=0, units=gp_units(4))
        with pytest.raises(AttributeError):
            cluster.read_ports = 2
