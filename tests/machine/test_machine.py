"""Machine descriptions: resource keys, capacities, unified equivalents."""

import pytest

from repro.ddg.opcodes import FuClass, Opcode
from repro.machine import (
    ClusterSpec,
    Machine,
    NoInterconnect,
    fs_units,
    gp_units,
)


class TestShape:
    def test_cluster_count_and_width(self, two_gp):
        assert two_gp.n_clusters == 2
        assert two_gp.total_width == 8
        assert not two_gp.is_unified
        assert two_gp.general_purpose

    def test_unified_flag(self, uni8):
        assert uni8.is_unified
        assert uni8.n_clusters == 1

    def test_cluster_indices(self, four_gp):
        assert four_gp.cluster_indices == [0, 1, 2, 3]

    def test_indices_must_be_sequential(self):
        cluster = ClusterSpec(index=1, units=gp_units(2))
        with pytest.raises(ValueError):
            Machine(clusters=(cluster,), interconnect=NoInterconnect())

    def test_empty_machine_rejected(self):
        with pytest.raises(ValueError):
            Machine(clusters=(), interconnect=NoInterconnect())

    def test_mixed_disciplines_rejected(self):
        c0 = ClusterSpec(index=0, units=gp_units(4))
        c1 = ClusterSpec(index=1, units=fs_units(1, 2, 1))
        with pytest.raises(ValueError):
            Machine(clusters=(c0, c1), interconnect=NoInterconnect())


class TestIssueCapacity:
    def test_gp_capacity_is_total_width(self, two_gp):
        for fu_class in (FuClass.MEMORY, FuClass.INTEGER, FuClass.FLOAT):
            assert two_gp.issue_capacity(fu_class) == 8

    def test_fs_capacity_sums_clusters(self, two_fs):
        assert two_fs.issue_capacity(FuClass.MEMORY) == 2
        assert two_fs.issue_capacity(FuClass.INTEGER) == 4
        assert two_fs.issue_capacity(FuClass.FLOAT) == 2


class TestResourceKeys:
    def test_gp_issue_key(self, two_gp):
        assert two_gp.issue_key(1, FuClass.FLOAT) == ("issue", 1, "gp")

    def test_fs_issue_key(self, two_fs):
        assert two_fs.issue_key(0, FuClass.MEMORY) == (
            "issue", 0, FuClass.MEMORY,
        )

    def test_capacities_of_two_cluster_gp(self, two_gp):
        caps = two_gp.resource_capacities()
        assert caps[("issue", 0, "gp")] == 4
        assert caps[("rd", 0)] == 1
        assert caps[("wr", 1)] == 1
        assert caps["bus"] == 2

    def test_unified_machine_has_no_ports(self, uni8):
        caps = uni8.resource_capacities()
        assert ("rd", 0) not in caps
        assert ("wr", 0) not in caps
        assert "bus" not in caps

    def test_grid_capacities_have_links(self, grid):
        caps = grid.resource_capacities()
        link_keys = [k for k in caps if isinstance(k, tuple) and k[0] == "link"]
        assert len(link_keys) == 4
        assert all(caps[k] == 1 for k in link_keys)


class TestOpResources:
    def test_plain_op_takes_one_issue_slot(self, two_gp):
        assert two_gp.op_resources(Opcode.FP_MULT, 1) == [("issue", 1, "gp")]

    def test_fs_op_takes_class_slot(self, two_fs):
        assert two_fs.op_resources(Opcode.LOAD, 0) == [
            ("issue", 0, FuClass.MEMORY)
        ]

    def test_copy_rejected_here(self, two_gp):
        with pytest.raises(ValueError):
            two_gp.op_resources(Opcode.COPY, 0)

    def test_class_missing_on_cluster_raises(self):
        cluster = ClusterSpec(index=0, units=fs_units(1, 1, 0))
        machine = Machine(clusters=(cluster,), interconnect=NoInterconnect())
        with pytest.raises(ValueError):
            machine.op_resources(Opcode.FP_ADD, 0)


class TestCopyResources:
    def test_bus_copy_single_target(self, two_gp):
        resources = two_gp.copy_hop_resources(0, [1])
        assert sorted(map(str, resources)) == sorted(
            map(str, [("rd", 0), ("wr", 1), "bus"])
        )

    def test_bus_broadcast_multiple_targets(self, four_gp):
        resources = four_gp.copy_hop_resources(0, [1, 2, 3])
        assert resources.count("bus") == 1
        assert ("rd", 0) in resources
        for target in (1, 2, 3):
            assert ("wr", target) in resources

    def test_p2p_copy_requires_single_neighbor(self, grid):
        with pytest.raises(ValueError):
            grid.copy_hop_resources(0, [1, 2])

    def test_p2p_copy_to_non_neighbor_rejected(self, grid):
        with pytest.raises(ValueError):
            grid.copy_hop_resources(0, [3])

    def test_p2p_copy_resources(self, grid):
        resources = grid.copy_hop_resources(0, [1])
        assert ("rd", 0) in resources
        assert ("wr", 1) in resources
        assert ("link", 0, 1) in resources

    def test_copy_to_self_rejected(self, two_gp):
        with pytest.raises(ValueError):
            two_gp.copy_hop_resources(0, [0])

    def test_empty_targets_rejected(self, two_gp):
        with pytest.raises(ValueError):
            two_gp.copy_hop_resources(0, [])


class TestUnifiedEquivalent:
    def test_gp_equivalent_merges_width(self, four_gp):
        unified = four_gp.unified_equivalent()
        assert unified.is_unified
        assert unified.total_width == 16
        assert unified.general_purpose

    def test_fs_equivalent_merges_classes(self, four_fs):
        unified = four_fs.unified_equivalent()
        assert unified.issue_capacity(FuClass.MEMORY) == 4
        assert unified.issue_capacity(FuClass.INTEGER) == 8
        assert unified.issue_capacity(FuClass.FLOAT) == 4

    def test_grid_equivalent(self, grid):
        unified = grid.unified_equivalent()
        assert unified.total_width == 12
        assert unified.issue_capacity(FuClass.MEMORY) == 4

    def test_unified_of_unified_is_itself(self, uni8):
        assert uni8.unified_equivalent() is uni8
