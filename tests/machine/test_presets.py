"""The paper's preset machine configurations."""

import pytest

from repro.ddg.opcodes import FuClass
from repro.machine import (
    TABLE3_CONFIGS,
    bused_machine,
    four_cluster_fs,
    four_cluster_gp,
    four_cluster_grid,
    gp_units,
    n_cluster_gp,
    two_cluster_fs,
    two_cluster_gp,
    unified_fs,
    unified_gp,
)
from repro.machine.interconnect import (
    BusInterconnect,
    PointToPointInterconnect,
)


class TestBusedPresets:
    def test_two_cluster_gp_defaults(self):
        machine = two_cluster_gp()
        assert machine.n_clusters == 2
        assert machine.clusters[0].width == 4
        assert machine.interconnect.bus_count == 2
        assert machine.clusters[0].read_ports == 1
        assert machine.clusters[0].write_ports == 1

    def test_four_cluster_gp_defaults(self):
        machine = four_cluster_gp()
        assert machine.n_clusters == 4
        assert machine.interconnect.bus_count == 4
        assert machine.clusters[0].read_ports == 2

    def test_bus_and_port_overrides(self):
        machine = two_cluster_gp(buses=4, ports=2)
        assert machine.interconnect.bus_count == 4
        assert machine.clusters[1].read_ports == 2

    def test_fs_presets_use_paper_mix(self):
        for machine in (two_cluster_fs(), four_cluster_fs()):
            cluster = machine.clusters[0]
            assert cluster.issue_capacity(FuClass.MEMORY) == 1
            assert cluster.issue_capacity(FuClass.INTEGER) == 2
            assert cluster.issue_capacity(FuClass.FLOAT) == 1

    def test_n_cluster_gp_scales(self):
        machine = n_cluster_gp(8, buses=7, ports=3)
        assert machine.n_clusters == 8
        assert machine.total_width == 32
        assert machine.interconnect.bus_count == 7

    def test_single_cluster_bused_rejected(self):
        with pytest.raises(ValueError):
            bused_machine(1, gp_units(4), buses=1, ports=1)


class TestGridPreset:
    def test_grid_shape(self):
        machine = four_cluster_grid()
        assert machine.n_clusters == 4
        assert isinstance(machine.interconnect, PointToPointInterconnect)
        assert machine.clusters[0].width == 3

    def test_grid_links_are_the_square(self):
        machine = four_cluster_grid()
        assert set(machine.interconnect.links) == {
            (0, 1), (0, 2), (1, 3), (2, 3),
        }

    def test_grid_has_no_broadcast(self):
        assert not four_cluster_grid().interconnect.broadcast


class TestUnifiedPresets:
    def test_unified_gp(self):
        machine = unified_gp(16)
        assert machine.is_unified
        assert machine.total_width == 16

    def test_unified_fs(self):
        machine = unified_fs(memory=4, integer=8, floating=4)
        assert machine.issue_capacity(FuClass.INTEGER) == 8


class TestTable3Configs:
    def test_paper_sweet_spots(self):
        assert TABLE3_CONFIGS == [(2, 2, 1), (4, 4, 2), (6, 6, 3), (8, 7, 3)]

    def test_all_configs_buildable(self):
        for clusters, buses, ports in TABLE3_CONFIGS:
            machine = n_cluster_gp(clusters, buses, ports)
            assert machine.n_clusters == clusters
            assert isinstance(machine.interconnect, BusInterconnect)


class TestHeterogeneousPreset:
    def test_widths_respected(self):
        from repro.machine import heterogeneous_gp
        machine = heterogeneous_gp([6, 2], buses=2, ports=1)
        assert machine.clusters[0].width == 6
        assert machine.clusters[1].width == 2
        assert machine.total_width == 8

    def test_unified_equivalent_merges(self):
        from repro.machine import heterogeneous_gp
        machine = heterogeneous_gp([6, 2], buses=2, ports=1)
        assert machine.unified_equivalent().total_width == 8

    def test_single_cluster_rejected(self):
        from repro.machine import heterogeneous_gp
        with pytest.raises(ValueError):
            heterogeneous_gp([8], buses=1, ports=1)

    def test_compiles_loops(self):
        from repro.core import compile_loop
        from repro.machine import heterogeneous_gp
        from repro.workloads import build_kernel
        machine = heterogeneous_gp([5, 3], buses=2, ports=1)
        result = compile_loop(
            build_kernel("lk7_equation_of_state"), machine, verify=True
        )
        assert result.ii >= 1


class TestRingPreset:
    def test_ring_links(self):
        from repro.machine import ring_machine
        from repro.machine.units import PAPER_GRID_MIX
        machine = ring_machine(5, PAPER_GRID_MIX)
        assert set(machine.interconnect.links) == {
            (0, 1), (1, 2), (2, 3), (3, 4), (0, 4),
        }

    def test_ring_diameter_routing(self):
        from repro.machine import ring_machine
        from repro.machine.units import PAPER_GRID_MIX
        machine = ring_machine(6, PAPER_GRID_MIX)
        # Opposite clusters are 3 hops apart.
        assert machine.interconnect.hop_distance(0, 3) == 3

    def test_too_small_ring_rejected(self):
        from repro.machine import ring_machine
        from repro.machine.units import PAPER_GRID_MIX
        with pytest.raises(ValueError):
            ring_machine(2, PAPER_GRID_MIX)
