"""Function-unit mixes."""

import pytest

from repro.ddg.opcodes import FuClass
from repro.machine import UnitMix, fs_units, gp_units
from repro.machine.units import PAPER_FS_MIX, PAPER_GP_MIX, PAPER_GRID_MIX


class TestGpMix:
    def test_width_and_capacity(self):
        mix = gp_units(4)
        assert mix.general_purpose
        assert mix.width == 4
        for fu_class in (FuClass.MEMORY, FuClass.INTEGER, FuClass.FLOAT):
            assert mix.capacity(fu_class) == 4

    def test_copy_class_has_no_capacity(self):
        assert gp_units(4).capacity(FuClass.NONE) == 0

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            gp_units(0)


class TestFsMix:
    def test_per_class_capacity(self):
        mix = fs_units(memory=1, integer=2, floating=1)
        assert not mix.general_purpose
        assert mix.width == 4
        assert mix.capacity(FuClass.MEMORY) == 1
        assert mix.capacity(FuClass.INTEGER) == 2
        assert mix.capacity(FuClass.FLOAT) == 1

    def test_empty_mix_rejected(self):
        with pytest.raises(ValueError):
            fs_units(0, 0, 0)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            fs_units(-1, 2, 1)

    def test_mixed_gp_and_fs_rejected(self):
        with pytest.raises(ValueError):
            UnitMix(gp_width=2, per_class={FuClass.MEMORY: 1})


class TestMerging:
    def test_gp_merge_adds_widths(self):
        merged = gp_units(4).merged_with(gp_units(4))
        assert merged.width == 8

    def test_fs_merge_adds_per_class(self):
        merged = PAPER_FS_MIX.merged_with(PAPER_FS_MIX)
        assert merged.capacity(FuClass.MEMORY) == 2
        assert merged.capacity(FuClass.INTEGER) == 4
        assert merged.capacity(FuClass.FLOAT) == 2

    def test_cross_discipline_merge_rejected(self):
        with pytest.raises(ValueError):
            gp_units(4).merged_with(PAPER_FS_MIX)


class TestPaperMixes:
    def test_paper_gp_cluster_is_four_wide(self):
        assert PAPER_GP_MIX.width == 4

    def test_paper_fs_cluster_shape(self):
        # 1 memory, 2 integer, 1 float (Section 2.1).
        assert PAPER_FS_MIX.capacity(FuClass.MEMORY) == 1
        assert PAPER_FS_MIX.capacity(FuClass.INTEGER) == 2
        assert PAPER_FS_MIX.capacity(FuClass.FLOAT) == 1

    def test_paper_grid_cluster_shape(self):
        # 1 of each class (three units per grid cluster).
        assert PAPER_GRID_MIX.width == 3
        for fu_class in (FuClass.MEMORY, FuClass.INTEGER, FuClass.FLOAT):
            assert PAPER_GRID_MIX.capacity(fu_class) == 1
