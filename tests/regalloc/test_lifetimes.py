"""Lifetime extraction."""


from repro.core import compile_loop
from repro.ddg import Ddg, Opcode, trivial_annotation
from repro.machine import unified_gp
from repro.regalloc import extract_lifetimes
from repro.scheduling import Schedule


def _manual_schedule(graph, machine, ii, starts):
    return Schedule(
        annotated=trivial_annotation(graph, machine), ii=ii, start=starts
    )


class TestExtraction:
    def test_chain_lifetimes(self, uni8):
        graph = Ddg()
        a = graph.add_node(Opcode.LOAD)   # latency 2
        b = graph.add_node(Opcode.ALU)
        graph.add_edge(a, b, distance=0)
        schedule = _manual_schedule(graph, unified_gp(8), 2, {a: 0, b: 5})
        (lifetime,) = extract_lifetimes(schedule)
        assert lifetime.producer == a
        assert lifetime.birth == 2
        assert lifetime.death == 5
        assert lifetime.length == 3
        assert lifetime.instances(2) == 2

    def test_unconsumed_value_omitted(self, uni8):
        graph = Ddg()
        graph.add_node(Opcode.ALU)
        schedule = _manual_schedule(graph, unified_gp(8), 1, {0: 0})
        assert extract_lifetimes(schedule) == []

    def test_store_produces_no_lifetime(self, uni8):
        graph = Ddg()
        st = graph.add_node(Opcode.STORE)
        ld = graph.add_node(Opcode.LOAD)
        graph.add_edge(st, ld, distance=1)
        schedule = _manual_schedule(graph, unified_gp(8), 1, {st: 0, ld: 0})
        assert extract_lifetimes(schedule) == []

    def test_loop_carried_read_extends_death(self, accumulator, uni8):
        ld, acc = accumulator.node_ids
        schedule = _manual_schedule(
            accumulator, unified_gp(8), 3, {ld: 0, acc: 2}
        )
        acc_lifetimes = [
            lt for lt in extract_lifetimes(schedule) if lt.producer == acc
        ]
        (lifetime,) = acc_lifetimes
        # acc born at 3, read by next iteration's acc at 2 + 3 = 5.
        assert lifetime.death == 5

    def test_copy_lifetimes_live_on_target_clusters(self, two_gp):
        graph = Ddg()
        src = graph.add_node(Opcode.ALU)
        for _ in range(15):
            node = graph.add_node(Opcode.ALU)
            graph.add_edge(src, node, distance=0)
        result = compile_loop(graph, two_gp, verify=True)
        copy_ids = set(result.annotated.copy_nodes)
        copy_lifetimes = [
            lt for lt in extract_lifetimes(result.schedule)
            if lt.producer in copy_ids
        ]
        assert copy_lifetimes
        for lifetime in copy_lifetimes:
            copy_targets = result.annotated.copy_targets[lifetime.producer]
            assert lifetime.cluster in copy_targets
