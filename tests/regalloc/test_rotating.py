"""Rotating register file allocation."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.registers import register_pressure
from repro.core import compile_loop
from repro.machine import four_cluster_fs, two_cluster_gp, unified_gp
from repro.regalloc import (
    allocate_mve,
    allocate_rotating,
    verify_rotating,
)
from repro.regalloc.rotating import _arc_cycles, _try_pack
from repro.regalloc.lifetimes import Lifetime
from repro.workloads import (
    GeneratorProfile,
    all_kernels,
    build_kernel,
    generate_loop,
)


class TestArcPrimitives:
    def test_arc_wraps_circle(self):
        assert _arc_cycles(4, 3, 6) == [4, 5, 0]

    def test_zero_length_occupies_birth_cycle(self):
        assert _arc_cycles(2, 0, 6) == [2]

    def test_pack_rejects_self_lapping_arc(self):
        long_value = Lifetime(producer=0, cluster=0, birth=0, death=10)
        assert _try_pack([long_value], ii=2, file_size=3) is None
        assert _try_pack([long_value], ii=2, file_size=6) is not None


class TestAllocation:
    def test_all_kernels_verify(self, two_gp):
        for loop in all_kernels():
            result = compile_loop(loop, two_gp)
            allocation = allocate_rotating(result.schedule)
            assert verify_rotating(allocation) == [], loop.name

    def test_rotating_needs_no_unrolling_where_mve_does(self, two_gp):
        """The rotating file's raison d'etre: lk7's lifetimes span up to
        6 iterations — MVE must unroll 6x, rotating renames for free."""
        result = compile_loop(
            build_kernel("lk7_equation_of_state"), two_gp
        )
        mve = allocate_mve(result.schedule)
        rotating = allocate_rotating(result.schedule)
        assert mve.unroll > 1
        assert verify_rotating(rotating) == []
        assert rotating.total_registers <= mve.total_registers

    def test_matches_maxlive_on_kernel_library(self, two_gp):
        """First-fit circular-arc packing lands on (or near) the MaxLive
        lower bound."""
        for loop in all_kernels()[:15]:
            result = compile_loop(loop, two_gp)
            rotating = allocate_rotating(result.schedule)
            live = register_pressure(result.schedule)
            for cluster, need in live.per_cluster.items():
                assert rotating.file_size(cluster) >= need
                assert rotating.file_size(cluster) <= need + 3

    def test_assignments_cover_every_lifetime(self, two_gp):
        from repro.regalloc import extract_lifetimes
        result = compile_loop(build_kernel("butterfly_fft"), two_gp)
        allocation = allocate_rotating(result.schedule)
        assert len(allocation.assignments) == len(
            extract_lifetimes(result.schedule)
        )

    def test_file_size_cap_raises(self, two_gp):
        result = compile_loop(build_kernel("lk1_hydro"), two_gp)
        with pytest.raises(RuntimeError):
            allocate_rotating(result.schedule, max_file_size=1)


class TestRotatingProperties:
    @given(st.integers(min_value=0, max_value=30_000))
    @settings(max_examples=25, deadline=None)
    def test_random_loops_allocate_validly(self, seed):
        rng = random.Random(seed)
        loop = generate_loop(rng, GeneratorProfile())
        for machine in (two_cluster_gp(), four_cluster_fs()):
            result = compile_loop(loop, machine)
            allocation = allocate_rotating(result.schedule)
            assert verify_rotating(allocation) == []

    @given(st.integers(min_value=0, max_value=30_000))
    @settings(max_examples=20, deadline=None)
    def test_file_size_at_least_maxlive(self, seed):
        rng = random.Random(seed)
        loop = generate_loop(rng, GeneratorProfile())
        result = compile_loop(loop, unified_gp(8))
        allocation = allocate_rotating(result.schedule)
        live = register_pressure(result.schedule)
        for cluster, need in live.per_cluster.items():
            assert allocation.file_size(cluster) >= need
