"""MVE register allocation."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.registers import mve_unroll_factor, register_pressure
from repro.core import compile_loop
from repro.machine import (
    four_cluster_fs,
    two_cluster_gp,
    unified_gp,
)
from repro.regalloc import allocate_mve, verify_allocation
from repro.workloads import (
    GeneratorProfile,
    all_kernels,
    build_kernel,
    generate_loop,
)


class TestAllocation:
    def test_allocation_verifies_for_all_kernels(self, two_gp):
        for loop in all_kernels():
            result = compile_loop(loop, two_gp)
            allocation = allocate_mve(result.schedule)
            assert verify_allocation(allocation) == [], loop.name

    def test_unroll_matches_analysis(self, two_gp):
        for name in ("lk1_hydro", "lk7_equation_of_state", "daxpy"):
            result = compile_loop(build_kernel(name), two_gp)
            allocation = allocate_mve(result.schedule)
            assert allocation.unroll == mve_unroll_factor(result.schedule)

    def test_registers_at_least_maxlive(self, two_gp):
        """MaxLive is a lower bound for any valid allocation."""
        for name in ("lk7_equation_of_state", "butterfly_fft", "daxpy"):
            result = compile_loop(build_kernel(name), two_gp)
            allocation = allocate_mve(result.schedule)
            pressure = register_pressure(result.schedule)
            for cluster, need in pressure.per_cluster.items():
                assert allocation.registers(cluster) >= need

    def test_first_fit_is_not_wasteful(self, two_gp):
        """First-fit-decreasing should land near the MaxLive bound."""
        total_alloc = total_bound = 0
        for loop in all_kernels():
            result = compile_loop(loop, two_gp)
            allocation = allocate_mve(result.schedule)
            pressure = register_pressure(result.schedule)
            total_alloc += allocation.total_registers
            total_bound += pressure.total_max_live
        assert total_alloc <= 1.5 * total_bound + len(all_kernels())

    def test_assignments_cover_every_instance(self, two_gp):
        result = compile_loop(build_kernel("lk5_tridiag"), two_gp)
        allocation = allocate_mve(result.schedule)
        from repro.regalloc import extract_lifetimes
        lifetimes = extract_lifetimes(result.schedule)
        assert len(allocation.assignments) == (
            len(lifetimes) * allocation.unroll
        )

    def test_span(self, two_gp):
        result = compile_loop(build_kernel("daxpy"), two_gp)
        allocation = allocate_mve(result.schedule)
        assert allocation.span == allocation.unroll * result.ii


class TestAllocationProperty:
    @given(st.integers(min_value=0, max_value=30_000))
    @settings(max_examples=30, deadline=None)
    def test_random_loops_allocate_validly(self, seed):
        rng = random.Random(seed)
        loop = generate_loop(rng, GeneratorProfile())
        for machine in (two_cluster_gp(), four_cluster_fs()):
            result = compile_loop(loop, machine)
            allocation = allocate_mve(result.schedule)
            assert verify_allocation(allocation) == []

    @given(st.integers(min_value=0, max_value=30_000))
    @settings(max_examples=20, deadline=None)
    def test_registers_bounded_by_values(self, seed):
        rng = random.Random(seed)
        loop = generate_loop(rng, GeneratorProfile())
        result = compile_loop(loop, unified_gp(8))
        allocation = allocate_mve(result.schedule)
        from repro.regalloc import extract_lifetimes
        n_lifetimes = len(extract_lifetimes(result.schedule))
        # Worst case one register per lifetime instance.
        assert allocation.total_registers <= max(
            1, n_lifetimes * allocation.unroll
        )
