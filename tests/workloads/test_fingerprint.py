"""Stable content hashing of loop DDGs."""

from repro.ddg import Ddg, Opcode, build_ddg
from repro.workloads import ddg_fingerprint, paper_suite


def _chain(name=""):
    return build_ddg(
        ops=[("ld", Opcode.LOAD), ("add", Opcode.ALU),
             ("st", Opcode.STORE)],
        deps=[("ld", "add", 0), ("add", "st", 0)],
        name=name,
    )


class TestDdgFingerprint:
    def test_deterministic(self):
        assert ddg_fingerprint(_chain()) == ddg_fingerprint(_chain())

    def test_loop_name_does_not_matter(self):
        # Identity follows the graph content, not the display label.
        assert (ddg_fingerprint(_chain("alpha"))
                == ddg_fingerprint(_chain("beta")))

    def test_edges_matter(self):
        base = _chain()
        extra = _chain()
        extra.add_edge(2, 0, distance=1)
        assert ddg_fingerprint(base) != ddg_fingerprint(extra)

    def test_distance_matters(self):
        one = build_ddg([("a", Opcode.ALU), ("b", Opcode.ALU)],
                        [("a", "b", 1)])
        two = build_ddg([("a", Opcode.ALU), ("b", Opcode.ALU)],
                        [("a", "b", 2)])
        assert ddg_fingerprint(one) != ddg_fingerprint(two)

    def test_opcode_matters(self):
        alu = build_ddg([("a", Opcode.ALU)], [])
        load = build_ddg([("a", Opcode.LOAD)], [])
        assert ddg_fingerprint(alu) != ddg_fingerprint(load)

    def test_latency_override_matters(self):
        default = Ddg()
        default.add_node(Opcode.ALU)
        overridden = Ddg()
        overridden.add_node(Opcode.ALU, latency=7)
        assert ddg_fingerprint(default) != ddg_fingerprint(overridden)

    def test_copy_preserves_fingerprint(self):
        loop = _chain("orig")
        assert ddg_fingerprint(loop) == ddg_fingerprint(loop.copy())

    def test_suite_fingerprints_unique(self):
        suite = paper_suite(60)
        prints = {ddg_fingerprint(loop) for loop in suite}
        assert len(prints) == 60

    def test_is_hex_sha256(self):
        digest = ddg_fingerprint(_chain())
        assert len(digest) == 64
        int(digest, 16)  # parses as hex
