"""Suite assembly and Table 1 statistics calibration."""

import pytest

from repro.workloads import (
    PAPER_SUITE_SIZE,
    all_kernels,
    paper_suite,
    suite_statistics,
)

#: Paper Table 1 values with reproduction tolerance bands.
TABLE1 = {
    "nodes": dict(minimum=2, average=17.5, maximum=161),
    "sccs": dict(minimum=0, average=0.4, maximum=6),
    "scc_nodes": dict(minimum=2, average=9.0, maximum=48),
    "edges": dict(minimum=1, average=22.5, maximum=232),
}


@pytest.fixture(scope="module")
def full_suite():
    return paper_suite(PAPER_SUITE_SIZE)


@pytest.fixture(scope="module")
def full_stats(full_suite):
    return suite_statistics(full_suite)


class TestSuiteAssembly:
    def test_full_size(self, full_suite):
        assert len(full_suite) == 1327

    def test_kernels_lead_the_suite(self, full_suite):
        kernel_names = [g.name for g in all_kernels()]
        assert [g.name for g in full_suite[: len(kernel_names)]] == (
            kernel_names
        )

    def test_small_suite_truncates_kernels(self):
        suite = paper_suite(5)
        assert len(suite) == 5

    def test_without_kernels(self):
        suite = paper_suite(50, include_kernels=False)
        assert all(g.name.startswith("synth") for g in suite)

    def test_deterministic(self):
        first = paper_suite(100)
        second = paper_suite(100)
        assert [len(g) for g in first] == [len(g) for g in second]

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            paper_suite(0)


class TestTable1Calibration:
    """The synthetic population matches the paper's published statistics
    within tolerance (exact match is impossible: the original loops are
    proprietary)."""

    def test_node_statistics(self, full_stats):
        row = full_stats.nodes
        assert row.minimum == TABLE1["nodes"]["minimum"]
        assert row.average == pytest.approx(17.5, rel=0.10)
        assert row.maximum >= 120  # paper max 161, log-normal tail

    def test_scc_count_statistics(self, full_stats):
        row = full_stats.sccs_per_loop
        assert row.minimum == 0
        assert row.average == pytest.approx(0.4, rel=0.25)
        assert row.maximum <= 6

    def test_scc_node_statistics(self, full_stats):
        row = full_stats.scc_nodes
        assert row.minimum == 2
        assert row.average == pytest.approx(9.0, rel=0.25)
        assert row.maximum <= 48

    def test_edge_statistics(self, full_stats):
        row = full_stats.edges
        assert row.minimum == 1
        assert row.average == pytest.approx(22.5, rel=0.10)
        assert row.maximum <= 232

    def test_scc_loop_count_near_paper(self, full_stats):
        # Paper: 301 of 1327 loops contain SCCs.
        assert 240 <= full_stats.n_loops_with_sccs <= 360


class TestFormatting:
    def test_format_table_mentions_all_rows(self, full_stats):
        text = full_stats.format_table()
        assert "Nodes" in text
        assert "SCCs per loop" in text
        assert "Edges" in text
        assert "1327 loops" in text

    def test_empty_suite_statistics(self):
        stats = suite_statistics([])
        assert stats.n_loops == 0
        assert stats.nodes.average == 0.0
