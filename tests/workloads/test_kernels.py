"""Hand-written kernel DDGs: documented RecMII ground truth."""

import pytest

from repro.ddg import find_sccs, rec_mii
from repro.workloads import all_kernels, build_kernel, kernel_names


class TestRegistry:
    def test_at_least_twenty_kernels(self):
        assert len(kernel_names()) >= 20

    def test_build_by_name(self):
        graph = build_kernel("lk5_tridiag")
        assert graph.name == "lk5_tridiag"

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            build_kernel("nope")

    def test_all_kernels_builds_everything(self):
        kernels = all_kernels()
        assert len(kernels) == len(kernel_names())
        assert len({g.name for g in kernels}) == len(kernels)


class TestGroundTruthRecMii:
    """Each kernel's critical recurrence, as documented in its builder."""

    @pytest.mark.parametrize(
        "name, expected",
        [
            ("lk1_hydro", 1),         # induction only
            ("lk3_inner_product", 1),  # FP-add accumulator
            ("lk5_tridiag", 4),       # add + mult carried chain
            ("lk11_first_sum", 1),    # prefix-sum add
            ("horner_poly", 4),       # mult + add carried chain
            ("ema_filter", 4),        # mult + add carried chain
            ("newton_division_step", 13),  # div(9) + mult(3) + add(1)
            ("mandelbrot_step", 5),   # add + mult + add
            ("pointer_chase_reduce", 3),   # load(2) + alu(1)
            ("wavefront_sweep", 4),   # mult(3) + add(1) at distance 1
            ("integer_checksum", 3),  # alu + shift + alu carried
            ("lk12_first_difference", 1),  # induction only
            ("fir_filter_4tap", 1),   # streaming
            ("daxpy", 1),             # streaming
        ],
    )
    def test_rec_mii(self, name, expected):
        assert rec_mii(build_kernel(name)) == expected


class TestShape:
    def test_every_kernel_has_induction_and_edges(self):
        for graph in all_kernels():
            assert graph.edge_count() >= 2
            assert len(find_sccs(graph)) >= 1  # at least the induction

    def test_kernels_are_fresh_instances(self):
        first = build_kernel("daxpy")
        second = build_kernel("daxpy")
        assert first is not second
