"""DDG loop unrolling."""

import pytest

from repro.ddg import Opcode, rec_mii, res_mii
from repro.machine import unified_gp
from repro.workloads import build_kernel, unroll_ddg


class TestStructure:
    def test_counts_scale(self):
        graph = build_kernel("daxpy")
        unrolled = unroll_ddg(graph, 3)
        assert len(unrolled) == 3 * len(graph)
        assert unrolled.edge_count() == 3 * graph.edge_count()

    def test_opcode_mix_scales(self):
        graph = build_kernel("lk5_tridiag")
        unrolled = unroll_ddg(graph, 2)
        original = graph.op_histogram()
        scaled = unrolled.op_histogram()
        for opcode, count in original.items():
            assert scaled[opcode] == 2 * count

    def test_factor_one_is_copy(self):
        graph = build_kernel("daxpy")
        unrolled = unroll_ddg(graph, 1)
        assert len(unrolled) == len(graph)
        assert unrolled is not graph

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            unroll_ddg(build_kernel("daxpy"), 0)

    def test_names_tagged_by_copy(self):
        unrolled = unroll_ddg(build_kernel("daxpy"), 2)
        names = {node.name for node in unrolled.nodes}
        assert "mul.0" in names
        assert "mul.1" in names


class TestDistanceRewiring:
    def test_intra_iteration_edges_stay_in_block(self):
        graph = build_kernel("lk1_hydro")
        k = 2
        unrolled = unroll_ddg(graph, k)
        # A distance-d edge yields, per copy j, distance (j+d)//k: the
        # number of distance-0 edges is sum over edges of the copies
        # with j + d < k.
        expected = sum(
            max(0, k - e.distance) for e in graph.edges
        )
        zero_edges = [e for e in unrolled.edges if e.distance == 0]
        assert len(zero_edges) == expected

    def test_distance_one_becomes_intra_block_link(self):
        """A distance-1 edge connects copy j to copy j+1 with distance 0,
        and the last copy wraps with distance 1."""
        graph = build_kernel("lk11_first_sum")  # acc -> acc at distance 1
        unrolled = unroll_ddg(graph, 3)
        acc_edges = [
            e for e in unrolled.edges
            if unrolled.node(e.src).name.startswith("acc")
            and unrolled.node(e.dst).name.startswith("acc")
        ]
        distances = sorted(e.distance for e in acc_edges)
        assert distances == [0, 0, 1]

    def test_distance_two_wraps_correctly(self):
        from repro.ddg import Ddg
        graph = Ddg()
        a = graph.add_node(Opcode.ALU, name="a")
        graph.add_edge(a, a, distance=2)
        unrolled = unroll_ddg(graph, 3)
        # Copies j -> (j+2) mod 3 with distance (j+2)//3.
        edges = sorted(
            (e.src, e.dst, e.distance) for e in unrolled.edges
        )
        assert edges == [(0, 2, 0), (1, 0, 1), (2, 1, 1)]


class TestSemantics:
    def test_rec_mii_scales_with_factor(self):
        for name in ("lk5_tridiag", "horner_poly", "lk11_first_sum"):
            graph = build_kernel(name)
            base = rec_mii(graph)
            for k in (2, 3):
                unrolled = unroll_ddg(graph, k)
                assert rec_mii(unrolled) == k * base, (name, k)

    def test_res_mii_scales(self):
        graph = build_kernel("lk7_equation_of_state")
        machine = unified_gp(8)
        assert res_mii(unroll_ddg(graph, 2), machine) >= (
            2 * res_mii(graph, machine) - 1
        )

    def test_fractional_recurrence_benefits(self):
        """A latency-3 cycle at distance 2 (ratio 1.5) costs RecMII 2 per
        iteration but only 3 per 2 iterations once unrolled."""
        from repro.ddg import Ddg
        graph = Ddg()
        a = graph.add_node(Opcode.FP_MULT)  # latency 3
        graph.add_edge(a, a, distance=2)
        assert rec_mii(graph) == 2
        assert rec_mii(unroll_ddg(graph, 2)) == 3  # 1.5 per iteration
