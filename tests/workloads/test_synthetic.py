"""Synthetic loop generator: determinism, structure, calibration."""

import random

import pytest

from repro.ddg import Opcode, find_sccs, rec_mii
from repro.ddg.opcodes import produces_value
from repro.workloads import GeneratorProfile, generate_loop, generate_suite
from repro.workloads.synthetic import _fit_scc_plan


class TestDeterminism:
    def test_same_seed_same_suite(self):
        first = generate_suite(25, seed=7)
        second = generate_suite(25, seed=7)
        for a, b in zip(first, second):
            assert len(a) == len(b)
            assert [n.opcode for n in a.nodes] == [n.opcode for n in b.nodes]
            assert [(e.src, e.dst, e.distance) for e in a.edges] == [
                (e.src, e.dst, e.distance) for e in b.edges
            ]

    def test_different_seeds_differ(self):
        first = generate_suite(25, seed=1)
        second = generate_suite(25, seed=2)
        assert any(len(a) != len(b) for a, b in zip(first, second))


class TestStructuralInvariants:
    @pytest.fixture(scope="class")
    def sample(self):
        return generate_suite(200, seed=11)

    def test_every_loop_has_an_edge(self, sample):
        assert all(loop.edge_count() >= 1 for loop in sample)

    def test_node_bounds(self, sample):
        profile = GeneratorProfile()
        for loop in sample:
            assert profile.node_min <= len(loop) <= profile.node_max

    def test_no_zero_distance_cycles(self, sample):
        for loop in sample:
            rec_mii(loop)  # raises on a malformed zero-distance cycle

    def test_value_edges_come_from_value_producers(self, sample):
        for loop in sample:
            for edge in loop.edges:
                src = loop.node(edge.src)
                if not src.produces_value:
                    # Memory ordering edges are always loop-carried here.
                    assert edge.distance >= 1

    def test_loads_and_stores_present(self, sample):
        for loop in sample:
            opcodes = {node.opcode for node in loop.nodes}
            assert Opcode.LOAD in opcodes
            if len(loop) >= 3:
                assert Opcode.STORE in opcodes

    def test_branch_has_no_dataflow_successors(self, sample):
        for loop in sample:
            for node in loop.nodes:
                if node.opcode is Opcode.BRANCH:
                    assert loop.successors(node.node_id) == []

    def test_names_unique_within_suite(self, sample):
        names = [loop.name for loop in sample]
        assert len(set(names)) == len(names)


class TestSccConstruction:
    def test_requested_loops_get_sccs(self):
        rng = random.Random(3)
        profile = GeneratorProfile(scc_loop_fraction=1.0)
        loops = [generate_loop(rng, profile, n_nodes=30) for _ in range(20)]
        with_sccs = sum(1 for loop in loops if len(find_sccs(loop)) > 0)
        assert with_sccs == 20

    def test_zero_fraction_means_no_sccs(self):
        rng = random.Random(3)
        profile = GeneratorProfile(scc_loop_fraction=0.0)
        loops = [generate_loop(rng, profile) for _ in range(30)]
        assert all(len(find_sccs(loop)) == 0 for loop in loops)

    def test_fit_plan_respects_capacity(self):
        assert sum(_fit_scc_plan([10, 10, 10], 12)) <= 12
        assert _fit_scc_plan([5], 4) == [4]
        assert _fit_scc_plan([2, 2, 2], 3) == [2]
        assert _fit_scc_plan([3], 1) == []

    def test_fit_plan_keeps_chain_count_when_possible(self):
        plan = _fit_scc_plan([6, 6], 8)
        assert len(plan) == 2
        assert all(length >= 2 for length in plan)


class TestTinyLoops:
    def test_two_node_loop(self):
        rng = random.Random(0)
        loop = generate_loop(rng, n_nodes=2)
        assert len(loop) == 2
        assert loop.edge_count() >= 1

    def test_minimum_enforced(self):
        rng = random.Random(0)
        loop = generate_loop(rng, n_nodes=1)
        assert len(loop) == 2
