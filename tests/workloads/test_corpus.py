"""Corpus serialization round trips."""

import pytest

from repro.ddg import rec_mii
from repro.workloads import all_kernels, paper_suite
from repro.workloads.corpus import (
    dumps_corpus,
    load_corpus,
    loads_corpus,
    save_corpus,
)


class TestRoundTrip:
    def test_kernels_round_trip(self):
        kernels = all_kernels()
        again = loads_corpus(dumps_corpus(kernels))
        assert len(again) == len(kernels)
        for before, after in zip(kernels, again):
            assert after.name == before.name
            assert len(after) == len(before)
            assert after.edge_count() == before.edge_count()
            assert rec_mii(after) == rec_mii(before)

    def test_suite_slice_round_trips(self):
        suite = paper_suite(60)
        again = loads_corpus(dumps_corpus(suite))
        assert [g.name for g in again] == [g.name for g in suite]
        for before, after in zip(suite, again):
            assert sorted(
                (e.src, e.dst, e.distance) for e in after.edges
            ) == sorted((e.src, e.dst, e.distance) for e in before.edges)

    def test_file_round_trip(self, tmp_path):
        path = str(tmp_path / "corpus.txt")
        save_corpus(all_kernels()[:5], path)
        loaded = load_corpus(path)
        assert len(loaded) == 5


class TestErrors:
    def test_unnamed_loop_rejected(self):
        from repro.ddg import Ddg, Opcode
        graph = Ddg()  # no name
        graph.add_node(Opcode.ALU, name="a")
        with pytest.raises(ValueError):
            dumps_corpus([graph])

    def test_duplicate_names_rejected_on_dump(self):
        kernel = all_kernels()[0]
        with pytest.raises(ValueError):
            dumps_corpus([kernel, kernel])

    def test_duplicate_names_rejected_on_load(self):
        text = "== a ==\nx: alu\n== a ==\ny: alu\n"
        with pytest.raises(ValueError):
            loads_corpus(text)

    def test_empty_corpus(self):
        assert loads_corpus("") == []

    def test_preamble_ignored(self):
        text = "# a comment before any loop\n\n== a ==\nx: alu\n"
        loops = loads_corpus(text)
        assert len(loops) == 1
