"""Differential test: optimized pipeline vs the retained slow reference.

The hot-path overhaul (compiled DDG views, memoized per-SCC RecMII, the
heap-driven scheduler, counter-based MRT probes) is required to be
**bit-identical** to the seed implementations: same final II, same copy
counts, same start-cycle maps, same cluster maps.  This test compiles the
synthetic corpus and every hand-written paper kernel through both paths
and compares outcomes exactly; it also diffs the individual stages
(RecMII, SCC partition, priority metrics, SMS assignment order) that the
two paths compute independently.

``REPRO_SUITE_SIZE`` scales the synthetic corpus slice (default 60).
"""

from __future__ import annotations

import os

import pytest

from repro.baselines import (
    reference_assignment_order,
    reference_compile_loop,
    reference_compute_metrics,
    reference_find_sccs,
    reference_rec_mii,
)
from repro.core.driver import compile_loop
from repro.ddg.mii import rec_mii
from repro.machine.presets import (
    four_cluster_grid,
    two_cluster_fs,
    two_cluster_gp,
)
from repro.scheduling.swing import assignment_order
from repro.scheduling.priority import compute_metrics
from repro.ddg.scc import find_sccs
from repro.workloads import paper_suite
from repro.workloads.kernels import all_kernels


def _suite_size(default: int = 60) -> int:
    raw = os.environ.get("REPRO_SUITE_SIZE")
    if not raw:
        return default
    return max(1, int(raw))


def _loops():
    return paper_suite(_suite_size()) + all_kernels()


@pytest.fixture(scope="module")
def loops():
    return _loops()


# ----------------------------------------------------------------------
# Stage-level differentials (fast paths vs frozen seed implementations)
# ----------------------------------------------------------------------
def test_rec_mii_matches_reference(loops) -> None:
    for ddg in loops:
        assert rec_mii(ddg) == reference_rec_mii(ddg), ddg.name


def test_scc_partition_matches_reference(loops) -> None:
    for ddg in loops:
        fast = find_sccs(ddg)
        slow = reference_find_sccs(ddg)
        assert [scc.nodes for scc in fast.sccs] == [
            scc.nodes for scc in slow.sccs
        ], ddg.name
        assert [scc.rec_mii for scc in fast.sccs] == [
            scc.rec_mii for scc in slow.sccs
        ], ddg.name
        assert fast.membership == slow.membership, ddg.name


def test_priority_metrics_match_reference(loops) -> None:
    for ddg in loops:
        base = max(rec_mii(ddg), 1)
        for ii in (base, base + 1, base + 3):
            fast = compute_metrics(ddg, ii)
            slow = reference_compute_metrics(ddg, ii)
            assert fast.asap == slow.asap, (ddg.name, ii)
            assert fast.alap == slow.alap, (ddg.name, ii)
            assert fast.height == slow.height, (ddg.name, ii)
            assert fast.critical_path == slow.critical_path, (ddg.name, ii)


def test_assignment_order_matches_reference(loops) -> None:
    for ddg in loops:
        base = max(rec_mii(ddg), 1)
        for ii in (base, base + 2):
            assert assignment_order(ddg, ii) == reference_assignment_order(
                ddg, ii
            ), (ddg.name, ii)


# ----------------------------------------------------------------------
# End-to-end differential: full Figure-5 compilations, bit for bit
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "machine_factory",
    [two_cluster_gp, two_cluster_fs, four_cluster_grid],
    ids=["2gp-bus", "2fs-bus", "4grid-p2p"],
)
def test_compilation_bit_identical(machine_factory, loops) -> None:
    machine = machine_factory()
    for ddg in loops:
        ref = reference_compile_loop(ddg, machine)
        opt = compile_loop(ddg, machine)
        name = ddg.name or "loop"
        assert opt.ii == ref.ii, name
        assert opt.mii == ref.mii, name
        assert opt.copy_count == ref.copy_count, name
        assert dict(opt.schedule.start) == ref.start, name
        assert dict(opt.annotated.cluster_of) == ref.cluster_of, name
