"""The paper's Section 3 worked example, end to end.

The introductory example assigns a 6-op loop with one SCC onto a
hypothetical 2-cluster machine.  The paper derives RecMII = 4,
ResMII = 3, MII = 4 for a 2-wide unified machine, shows a naive bottom-up
assignment failing, and shows the SCC-first + copy-prediction assignment
succeeding at II = 4.  We verify every derived quantity and reproduce the
success on the hypothetical machine (one GP unit per cluster, two buses —
copies modelled on ports as in the experimental sections).
"""

import pytest

from repro.core import assign_clusters, compile_loop
from repro.ddg import find_sccs, mii, rec_mii, res_mii
from repro.machine import bused_machine, gp_units, unified_gp
from repro.scheduling import assert_valid, modulo_schedule


@pytest.fixture
def toy_machine():
    """The Section 3 machine: 2 clusters x 1 GP unit, 2 buses, 1 port."""
    return bused_machine(2, gp_units(1), buses=2, ports=1, name="toy")


class TestDerivedQuantities:
    def test_rec_mii_is_four(self, intro_example):
        assert rec_mii(intro_example) == 4

    def test_res_mii_is_three_on_two_wide(self, intro_example):
        assert res_mii(intro_example, unified_gp(2)) == 3

    def test_mii_is_four(self, intro_example):
        assert mii(intro_example, unified_gp(2)) == 4

    def test_scc_is_b_c_d(self, intro_example):
        partition = find_sccs(intro_example)
        assert len(partition) == 1
        assert partition.sccs[0].nodes == set(intro_example.node_ids[1:4])


class TestApproachTwo:
    """SCC-first + predicted copy use succeeds at II = 4 (Section 3.2)."""

    def test_assignment_succeeds_at_mii(self, intro_example, toy_machine):
        annotated = assign_clusters(intro_example, toy_machine, ii=4)
        assert annotated is not None
        annotated.validate()

    def test_scc_not_split(self, intro_example, toy_machine):
        annotated = assign_clusters(intro_example, toy_machine, ii=4)
        scc = intro_example.node_ids[1:4]
        clusters = {annotated.cluster_of[n] for n in scc}
        assert len(clusters) == 1

    def test_schedule_matches_unified_ii(self, intro_example, toy_machine):
        result = compile_loop(intro_example, toy_machine, verify=True)
        unified = compile_loop(
            intro_example, toy_machine.unified_equivalent(), verify=True
        )
        assert unified.ii == 4
        assert result.ii == 4  # all communication hidden

    def test_final_schedule_is_valid(self, intro_example, toy_machine):
        annotated = assign_clusters(intro_example, toy_machine, ii=4)
        schedule = modulo_schedule(annotated, ii=4)
        assert schedule is not None
        assert_valid(schedule)

    def test_loop_splits_across_both_clusters(
        self, intro_example, toy_machine
    ):
        """6 ops at II 4 cannot fit one 1-wide cluster (4 slots): the
        assignment must use both, exactly as the paper's Figure 8."""
        annotated = assign_clusters(intro_example, toy_machine, ii=4)
        clusters = {
            annotated.cluster_of[n] for n in intro_example.node_ids
        }
        assert clusters == {0, 1}
