"""Failure injection: malformed inputs and impossible machines must fail
loudly and cleanly, never hang or silently succeed."""

import pytest

from repro.core import CompilationError, assign_clusters, compile_loop
from repro.ddg import Ddg, Opcode, build_ddg
from repro.machine import (
    ClusterSpec,
    Machine,
    PointToPointInterconnect,
    fs_units,
    unified_fs,
)
from repro.machine.interconnect import BusInterconnect


class TestMalformedGraphs:
    def test_zero_distance_cycle_raises(self, two_gp):
        graph = build_ddg(
            ops=[("a", Opcode.ALU), ("b", Opcode.ALU)],
            deps=[("a", "b", 0), ("b", "a", 0)],
        )
        with pytest.raises(ValueError):
            compile_loop(graph, two_gp)

    def test_empty_graph_raises(self, two_gp):
        with pytest.raises(ValueError):
            compile_loop(Ddg(), two_gp)


class TestImpossibleMachines:
    def test_missing_unit_class_raises(self):
        # A machine with no floating point units cannot run FP loops.
        machine = unified_fs(memory=1, integer=2, floating=0)
        graph = build_ddg(ops=[("f", Opcode.FP_ADD)], deps=[])
        with pytest.raises((ValueError, CompilationError)):
            compile_loop(graph, machine)

    def test_clustered_machine_missing_class_everywhere(self):
        clusters = tuple(
            ClusterSpec(index=i, units=fs_units(1, 2, 0),
                        read_ports=1, write_ports=1)
            for i in range(2)
        )
        machine = Machine(
            clusters=clusters,
            interconnect=BusInterconnect(bus_count=2),
            name="no-fp",
        )
        graph = build_ddg(
            ops=[("ld", Opcode.LOAD), ("f", Opcode.FP_ADD)],
            deps=[("ld", "f", 0)],
        )
        with pytest.raises((ValueError, CompilationError)):
            compile_loop(graph, machine)

    def test_partitioned_fabric_fails_cleanly(self):
        """Clusters 0-1 and 2-3 are disconnected; a value that must cross
        the partition can never be routed."""
        clusters = tuple(
            ClusterSpec(index=i, units=fs_units(1, 1, 1),
                        read_ports=2, write_ports=2)
            for i in range(4)
        )
        machine = Machine(
            clusters=clusters,
            interconnect=PointToPointInterconnect([(0, 1), (2, 3)]),
            name="split-brain",
        )
        # Enough FP ops that they cannot all sit in one half at MII.
        graph = Ddg()
        producer = graph.add_node(Opcode.FP_ADD)
        for _ in range(11):
            node = graph.add_node(Opcode.FP_ADD)
            graph.add_edge(producer, node, distance=0)
        # Must either find an assignment confined to reachable halves at
        # a larger II, or raise CompilationError — never hang or crash
        # with an internal routing exception.
        try:
            result = compile_loop(graph, machine)
        except CompilationError:
            return
        result.annotated.validate()


class TestAssignmentEdgeCases:
    def test_one_wide_cluster_machine(self):
        from repro.machine import bused_machine, gp_units
        machine = bused_machine(2, gp_units(1), buses=1, ports=1)
        graph = build_ddg(
            ops=[("a", Opcode.ALU), ("b", Opcode.ALU), ("c", Opcode.ALU)],
            deps=[("a", "b", 0), ("b", "c", 0)],
        )
        result = compile_loop(graph, machine, verify=True)
        assert result.ii >= 2  # 3 ops on 2 single-issue clusters

    def test_assignment_at_absurdly_large_ii_succeeds(self, two_gp,
                                                      intro_example):
        annotated = assign_clusters(intro_example, two_gp, ii=200)
        assert annotated is not None
        assert annotated.copy_count == 0  # everything fits one cluster

    def test_assignment_at_ii_one_often_fails_but_cleanly(self, two_gp):
        graph = Ddg()
        for _ in range(20):
            graph.add_node(Opcode.ALU)
        result = assign_clusters(graph, two_gp, ii=1)
        assert result is None  # 20 ops > 8 slots: impossible, no crash

    def test_min_ii_larger_than_needed(self, chain3, two_gp):
        result = compile_loop(chain3, two_gp, min_ii=7, verify=True)
        assert result.ii >= 7
