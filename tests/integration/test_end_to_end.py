"""End-to-end sweeps: every machine, many loops, every schedule verified."""

import random

import pytest

from repro.core import ALL_VARIANTS, compile_loop
from repro.machine import (
    four_cluster_fs,
    four_cluster_gp,
    four_cluster_grid,
    n_cluster_gp,
    two_cluster_fs,
    two_cluster_gp,
)
from repro.scheduling import assert_valid
from repro.workloads import generate_suite, paper_suite


@pytest.fixture(scope="module")
def mixed_loops():
    """Kernels + a slice of the synthetic suite."""
    return paper_suite(45)


class TestAllMachines:
    def test_clustered_never_beats_unified(
        self, mixed_loops, any_clustered_machine
    ):
        unified = any_clustered_machine.unified_equivalent()
        for ddg in mixed_loops:
            clustered = compile_loop(ddg, any_clustered_machine, verify=True)
            baseline = compile_loop(ddg, unified, verify=True)
            assert clustered.ii >= baseline.ii, ddg.name

    def test_most_loops_match_unified(self, mixed_loops,
                                      any_clustered_machine):
        unified = any_clustered_machine.unified_equivalent()
        matches = 0
        for ddg in mixed_loops:
            clustered = compile_loop(ddg, any_clustered_machine)
            baseline = compile_loop(ddg, unified)
            if clustered.ii == baseline.ii:
                matches += 1
        # The paper reports >= 92% across configurations; allow slack for
        # the small sample.
        assert matches / len(mixed_loops) >= 0.6


class TestVariantOrdering:
    def test_full_algorithm_dominates_simple(self, mixed_loops):
        machine = two_cluster_gp()
        iis = {}
        for config in ALL_VARIANTS:
            iis[config.name] = [
                compile_loop(ddg, machine, config=config).ii
                for ddg in mixed_loops
            ]
        total_full = sum(iis["Heuristic Iterative"])
        total_simple = sum(iis["Simple"])
        assert total_full <= total_simple


class TestScaling:
    @pytest.mark.parametrize("clusters,buses,ports",
                             [(2, 2, 1), (4, 4, 2), (6, 6, 3), (8, 7, 3)])
    def test_table3_configurations_work(self, clusters, buses, ports):
        machine = n_cluster_gp(clusters, buses, ports)
        loops = paper_suite(10)
        for ddg in loops:
            result = compile_loop(ddg, machine, verify=True)
            assert result.ii >= 1


class TestRandomizedRobustness:
    def test_random_graphs_all_machines(self):
        """Fuzz: heavier random graphs than the calibrated generator."""
        rng = random.Random(99)
        machines = [
            two_cluster_gp(), four_cluster_gp(),
            two_cluster_fs(), four_cluster_fs(), four_cluster_grid(),
        ]
        loops = generate_suite(15, seed=99)
        for ddg in loops:
            for machine in machines:
                result = compile_loop(ddg, machine, verify=True)
                assert_valid(result.schedule)

    def test_copy_counts_are_sane(self):
        loops = generate_suite(20, seed=5)
        machine = four_cluster_gp()
        for ddg in loops:
            result = compile_loop(ddg, machine)
            # A value needs at most one broadcast copy per producer.
            producers = sum(
                1 for node in ddg.nodes if node.produces_value
            )
            assert result.copy_count <= producers
