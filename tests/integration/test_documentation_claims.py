"""Executable checks of claims made in README.md and docs/ALGORITHM.md.

Documentation that drifts from the code is worse than none; these tests
pin the specific numbers and behaviors the docs promise.
"""


from repro import (
    Opcode,
    build_ddg,
    compile_loop,
    two_cluster_gp,
)
from repro.ddg import mii, rec_mii, res_mii
from repro.machine import unified_gp


class TestReadmeQuickstart:
    def test_quickstart_snippet_runs(self):
        loop = build_ddg(
            ops=[("a", Opcode.LOAD), ("b", Opcode.FP_MULT),
                 ("c", Opcode.FP_ADD), ("d", Opcode.STORE)],
            deps=[("a", "b", 0), ("b", "c", 0), ("c", "c", 1),
                  ("c", "d", 0)],
            name="daxpy-ish",
        )
        machine = two_cluster_gp()
        result = compile_loop(loop, machine, verify=True)
        assert result.ii >= 1
        assert result.copy_count >= 0
        assert "row" in result.schedule.format_kernel()

    def test_public_api_surface(self):
        """Every name the README architecture section references exists."""
        import repro
        for name in (
            "assign_clusters", "modulo_schedule", "compile_loop",
            "simulate_schedule", "assert_executes_correctly",
            "stage_schedule", "build_ddg", "two_cluster_gp",
            "four_cluster_grid", "SIMPLE", "HEURISTIC_ITERATIVE",
        ):
            assert hasattr(repro, name), name


class TestAlgorithmDocNumbers:
    """docs/ALGORITHM.md derives these from the paper's example."""

    def test_recmii_formula(self, intro_example):
        assert rec_mii(intro_example) == 4

    def test_resmii_and_mii_on_two_wide(self, intro_example):
        machine = unified_gp(2)
        assert res_mii(intro_example, machine) == 3
        assert mii(intro_example, machine) == 4

    def test_budget_is_six_times_nodes(self):
        from repro.core.variants import DEFAULT_ASSIGN_BUDGET_RATIO
        from repro.scheduling.modulo import DEFAULT_BUDGET_RATIO
        assert DEFAULT_ASSIGN_BUDGET_RATIO == 6
        assert DEFAULT_BUDGET_RATIO == 6

    def test_upper_bound_broadcast_is_one(self):
        """'UpperBound is 1 on broadcast buses.'"""
        from repro.core import RoutingState, upper_bound
        from repro.ddg import Ddg
        from repro.mrt import ResourcePools
        machine = two_cluster_gp()
        graph = Ddg()
        node = graph.add_node(Opcode.ALU)
        consumer = graph.add_node(Opcode.ALU)
        graph.add_edge(node, consumer, distance=0)
        pools = ResourcePools(machine, ii=2)
        state = RoutingState(graph, machine, pools)
        state.set_cluster(node, 0)
        assert upper_bound(machine, state, node) == 1

    def test_upper_bound_p2p_is_clusters_minus_one(self):
        from repro.core import RoutingState, upper_bound
        from repro.ddg import Ddg
        from repro.machine import four_cluster_grid
        from repro.mrt import ResourcePools
        machine = four_cluster_grid()
        graph = Ddg()
        node = graph.add_node(Opcode.ALU)
        consumer = graph.add_node(Opcode.ALU)
        graph.add_edge(node, consumer, distance=0)
        pools = ResourcePools(machine, ii=2)
        state = RoutingState(graph, machine, pools)
        state.set_cluster(node, 0)
        assert upper_bound(machine, state, node) == 3
