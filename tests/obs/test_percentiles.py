"""PhaseStats percentiles and the empty-distribution min guard."""

import pytest

from repro import obs
from repro.obs.trace import PhaseStats


def _stats(samples):
    stats = PhaseStats("phase")
    for value in samples:
        stats.add(value)
    return stats


class TestPercentileMath:
    def test_uniform_1_to_100(self):
        stats = _stats(range(1, 101))
        # Linear interpolation between closest ranks over n-1 intervals.
        assert stats.p50 == pytest.approx(50.5)
        assert stats.p90 == pytest.approx(90.1)
        assert stats.p99 == pytest.approx(99.01)
        assert stats.percentile(0) == 1
        assert stats.percentile(100) == 100

    def test_arrival_order_is_irrelevant(self):
        shuffled = _stats([5, 1, 4, 2, 3])
        ordered = _stats([1, 2, 3, 4, 5])
        for q in (0, 25, 50, 75, 90, 100):
            assert shuffled.percentile(q) == ordered.percentile(q)

    def test_interpolates_between_ranks(self):
        stats = _stats([10.0, 20.0])
        assert stats.p50 == pytest.approx(15.0)
        assert stats.percentile(25) == pytest.approx(12.5)

    def test_single_sample(self):
        stats = _stats([7.0])
        assert stats.p50 == 7.0
        assert stats.p90 == 7.0
        assert stats.p99 == 7.0

    def test_skewed_distribution(self):
        # 99 fast spans and one straggler: p50/p90 stay at the floor,
        # p99 picks up the tail.
        stats = _stats([0.001] * 99 + [1.0])
        assert stats.p50 == pytest.approx(0.001)
        assert stats.p90 == pytest.approx(0.001)
        assert stats.p99 > 0.01

    def test_empty_distribution(self):
        stats = PhaseStats("never")
        assert stats.p50 == 0.0
        assert stats.percentile(99) == 0.0


class TestMinGuard:
    def test_raw_min_is_inf_when_empty(self):
        stats = PhaseStats("never")
        assert stats.min == float("inf")
        assert stats.minimum == 0.0
        assert stats.mean == 0.0

    def test_minimum_tracks_min_when_populated(self):
        stats = _stats([3.0, 1.0, 2.0])
        assert stats.minimum == 1.0
        assert stats.min == 1.0


class TestPercentilesSurfaced:
    @pytest.fixture
    def trace(self):
        with obs.tracing() as trace:
            for _ in range(10):
                with obs.span("loop"):
                    pass
        return trace

    def test_metrics_dict_carries_percentiles(self, trace):
        phases = obs.metrics_dict(trace)["phases"]["loop"]
        for key in ("p50_s", "p90_s", "p99_s"):
            assert key in phases
        assert phases["min_s"] <= phases["p50_s"] <= phases["p90_s"]
        assert phases["p90_s"] <= phases["p99_s"] <= phases["max_s"]

    def test_phase_table_has_percentile_columns(self, trace):
        table = obs.format_phase_table(trace)
        assert "p50" in table
        assert "p90" in table
        assert "p99" in table
