"""Cross-process grafting: clock rebasing, lanes, JSONL round-trips."""

import io

import pytest

from repro import obs
from repro.obs.timeline import Lane, format_lane_table, lanes, utilization


def _worker_trace(epoch_delta, work_s=0.010, counters=None):
    """A synthetic finished worker trace born ``epoch_delta`` seconds
    after some reference wall instant."""
    trace = obs.Trace()
    trace.epoch_wall = 1000.0 + epoch_delta
    root = obs.SpanNode("chunk", {"n": 3}, 0.002)
    root.duration = work_s
    child = obs.SpanNode("loop", {"i": 0}, 0.003)
    child.duration = work_s / 2
    root.children.append(child)
    trace.roots.append(root)
    for name, value in (counters or {}).items():
        root.counters[name] = value
        trace.counters[name] = value
    return trace


class TestGraftRebasing:
    def test_epoch_offsets_rebase_worker_spans(self):
        parent = obs.Trace()
        parent.epoch_wall = 1000.0
        worker = _worker_trace(epoch_delta=0.5)
        host = parent.graft(worker, lane=0)
        # Worker span at offset 0.002 in a process born 0.5s after the
        # parent lands at 0.502 on the parent's clock.
        assert host.started == pytest.approx(0.502)
        assert host.children[0].started == pytest.approx(0.502)
        assert host.children[0].children[0].started == pytest.approx(0.503)

    def test_host_duration_is_window_not_sum(self):
        parent = obs.Trace()
        parent.epoch_wall = 1000.0
        worker = obs.Trace()
        worker.epoch_wall = 1000.0
        # Two overlapping roots: [0.0, 1.0] and [0.1, 0.9].
        first = obs.SpanNode("chunk", {}, 0.0)
        first.duration = 1.0
        second = obs.SpanNode("chunk", {}, 0.1)
        second.duration = 0.8
        worker.roots = [first, second]
        host = parent.graft(worker)
        assert host.duration == pytest.approx(1.0)  # not 1.8
        assert host.started == pytest.approx(0.0)

    def test_unknown_epoch_pins_window_to_graft_instant(self):
        parent = obs.Trace()
        worker = _worker_trace(epoch_delta=0.0)
        worker.epoch_wall = None  # e.g. rebuilt from a headerless log
        host = parent.graft(worker)
        # Window starts "now" on the parent clock: shortly after the
        # parent's own birth, and relative timing inside survives.
        assert host.started >= 0.0
        assert host.children[0].children[0].started == pytest.approx(
            host.started + 0.001
        )

    def test_counters_fold_into_parent(self):
        parent = obs.Trace()
        parent.counters["x"] = 1
        worker = _worker_trace(0.0, counters={"x": 2, "y": 5})
        parent.graft(worker)
        assert parent.counter("x") == 3
        assert parent.counter("y") == 5

    def test_empty_worker_grafts_cleanly(self):
        parent = obs.Trace()
        host = parent.graft(obs.Trace(), lane=1)
        assert host.duration == 0.0
        assert host.children == []


class TestMultiWorkerRoundTrip:
    """Grafted multi-worker traces survive the JSONL round-trip."""

    @pytest.fixture
    def merged(self):
        parent = obs.Trace()
        parent.epoch_wall = 2000.0
        with obs.tracing(parent):
            with obs.span("experiment"):
                for lane in range(3):
                    worker = _worker_trace(
                        epoch_delta=0.1 * lane,
                        counters={"sched.placements": 10 + lane},
                    )
                    worker.epoch_wall = 2000.0 + 0.1 * lane
                    parent.graft(
                        worker, lane=lane, pid=4000 + lane,
                        queue_wait_s=0.01 * lane,
                    )
        return parent

    def _round_trip(self, trace):
        buffer = io.StringIO()
        obs.write_jsonl(trace, buffer)
        buffer.seek(0)
        return obs.read_trace(buffer)

    def test_lane_attrs_and_offsets_survive(self, merged):
        rebuilt = self._round_trip(merged)
        before = lanes(merged)
        after = lanes(rebuilt)
        assert [lane.lane for lane in after] == [0, 1, 2]
        assert [lane.pid for lane in after] == [4000, 4001, 4002]
        for old, new in zip(before, after):
            assert new.spans[0].started == pytest.approx(
                old.spans[0].started, abs=1e-8
            )
            assert new.queue_wait_seconds == pytest.approx(
                old.queue_wait_seconds
            )

    def test_counters_survive(self, merged):
        rebuilt = self._round_trip(merged)
        assert rebuilt.counter("sched.placements") == 10 + 11 + 12

    def test_identity_survives(self, merged):
        rebuilt = self._round_trip(merged)
        assert rebuilt.trace_id == merged.trace_id
        assert rebuilt.epoch_wall == pytest.approx(2000.0)

    def test_rebuilt_trace_regrafts(self, merged):
        # An offline log can be grafted into a fresh analysis trace.
        rebuilt = self._round_trip(merged)
        analysis = obs.Trace()
        host = analysis.graft(rebuilt, name="imported")
        assert host.name == "imported"
        assert len(lanes(analysis)) == 3


class TestLanes:
    def test_no_lanes_in_serial_trace(self):
        with obs.tracing() as trace:
            with obs.span("compile"):
                pass
        assert lanes(trace) == []
        assert format_lane_table(trace) == "(no worker lanes)"

    def test_lane_metrics(self):
        lane = Lane(lane=0, pid=99)
        first = obs.SpanNode("worker", {"queue_wait_s": 0.5}, 1.0)
        first.duration = 1.0
        second = obs.SpanNode("worker", {}, 3.0)
        second.duration = 1.0
        lane.spans = [first, second]
        assert lane.busy_seconds == pytest.approx(2.0)
        assert lane.queue_wait_seconds == pytest.approx(0.5)
        assert lane.window == pytest.approx(3.0)  # 1.0 → 4.0
        assert lane.utilization == pytest.approx(2.0 / 3.0)

    def test_utilization_map_and_table(self):
        parent = obs.Trace()
        parent.epoch_wall = 0.0
        worker = _worker_trace(0.0)
        worker.epoch_wall = 0.0
        parent.graft(worker, lane=2, pid=77)
        assert set(utilization(parent)) == {2}
        table = format_lane_table(parent)
        assert "lane" in table
        assert "77" in table
