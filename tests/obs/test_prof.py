"""The deterministic profiler: CPU attribution, parity when off."""

import io

import pytest

from repro import obs
from repro.obs import prof


def _spin(n=20_000):
    total = 0
    for i in range(n):
        total += i * i
    return total


class TestCpuAttribution:
    def test_span_cpu_recorded(self):
        with obs.tracing() as trace:
            with prof.profiling(trace):
                with obs.span("busy"):
                    _spin()
        node = trace.find("busy")[0]
        assert node.cpu is not None
        assert node.cpu > 0.0

    def test_function_calls_and_self_cpu(self):
        with obs.tracing() as trace:
            with prof.profiling(trace):
                with obs.span("busy"):
                    for _ in range(5):
                        _spin()
        node = trace.find("busy")[0]
        assert node.prof is not None
        spins = {
            key: cell for key, cell in node.prof.items()
            if key.endswith(":_spin")
        }
        assert len(spins) == 1
        (calls, cpu), = spins.values()
        assert calls == 5
        assert cpu > 0.0

    def test_attribution_goes_to_innermost_span(self):
        with obs.tracing() as trace:
            with prof.profiling(trace):
                with obs.span("outer"):
                    with obs.span("inner"):
                        _spin()
        inner = trace.find("inner")[0]
        outer = trace.find("outer")[0]
        assert any(key.endswith(":_spin") for key in (inner.prof or {}))
        assert not any(
            key.endswith(":_spin") for key in (outer.prof or {})
        )
        # Inclusive CPU windows nest like durations.
        assert outer.cpu >= inner.cpu

    def test_returns_outside_spans_land_on_trace(self):
        with obs.tracing() as trace:
            with prof.profiling(trace):
                _spin()
        assert any(key.endswith(":_spin") for key in trace.prof)

    def test_phase_stats_fold_cpu(self):
        with obs.tracing() as trace:
            with prof.profiling(trace):
                for _ in range(3):
                    with obs.span("busy"):
                        _spin()
        stats = trace.phases()["busy"]
        assert stats.cpu_count == 3
        assert stats.cpu_total > 0.0
        assert "cpu_s" in obs.metrics_dict(trace)["phases"]["busy"]


class TestDisabledParity:
    def test_unprofiled_spans_have_no_cpu(self):
        with obs.tracing() as trace:
            with obs.span("busy"):
                _spin()
        node = trace.find("busy")[0]
        assert node.cpu is None
        assert node.prof is None
        assert trace.prof == {}
        assert "cpu_s" not in obs.metrics_dict(trace)["phases"]["busy"]

    def test_profiler_detaches_cleanly(self):
        import sys
        with obs.tracing() as trace:
            with prof.profiling(trace):
                pass
            assert sys.getprofile() is None
            assert trace._prof is None

    def test_profiling_requires_a_trace(self):
        with pytest.raises(RuntimeError):
            with prof.profiling():
                pass

    def test_double_attach_rejected(self):
        with obs.tracing() as trace:
            with prof.profiling(trace):
                with pytest.raises(RuntimeError):
                    profiler = prof.Profiler(trace)
                    profiler.install()


class TestProfRoundTrip:
    def test_cpu_and_prof_survive_jsonl(self):
        with obs.tracing() as trace:
            with prof.profiling(trace):
                with obs.span("busy"):
                    _spin()
        buffer = io.StringIO()
        obs.write_jsonl(trace, buffer)
        buffer.seek(0)
        rebuilt = obs.read_trace(buffer)
        before = trace.find("busy")[0]
        after = rebuilt.find("busy")[0]
        assert after.cpu == pytest.approx(before.cpu, abs=1e-6)
        assert set(after.prof) == set(before.prof)
        for key, (calls, cpu) in before.prof.items():
            assert after.prof[key][0] == calls
            assert after.prof[key][1] == pytest.approx(cpu, abs=1e-6)


class TestReports:
    @pytest.fixture
    def profiled(self):
        with obs.tracing() as trace:
            with prof.profiling(trace):
                with obs.span("busy"):
                    _spin()
        return trace

    def test_top_functions_sorting(self, profiled):
        by_cpu = prof.top_functions(profiled, sort="cpu")
        assert by_cpu
        cpus = [cpu for _, _, cpu in by_cpu]
        assert cpus == sorted(cpus, reverse=True)
        by_calls = prof.top_functions(profiled, sort="calls")
        calls = [count for _, count, _ in by_calls]
        assert calls == sorted(calls, reverse=True)
        by_name = prof.top_functions(profiled, sort="name")
        names = [key for key, _, _ in by_name]
        assert names == sorted(names)

    def test_top_functions_truncates(self, profiled):
        assert len(prof.top_functions(profiled, n=1)) == 1
        everything = prof.top_functions(profiled, n=0)
        assert len(everything) >= len(
            prof.top_functions(profiled, n=2)
        )

    def test_bad_sort_rejected(self, profiled):
        with pytest.raises(ValueError):
            prof.top_functions(profiled, sort="vibes")

    def test_report_sections(self, profiled):
        report = prof.format_profile_report(profiled)
        assert "cpu by phase:" in report
        assert "top functions" in report
        assert "busy" in report

    def test_empty_trace_reports(self):
        trace = obs.Trace()
        assert prof.format_top_functions(trace) == "(no profile data)"
        assert prof.format_cpu_phase_table(trace) == \
            "(no profiled phases)"

    def test_tree_renders_cpu(self, profiled):
        tree = obs.format_trace_tree(profiled)
        assert "cpu" in tree
