"""The benchmark observatory: schema, history store, regression gate."""

import json

import pytest

from repro.obs import bench


def _artifact(name="trace_smoke", value=1.0, **overrides):
    metrics = {"elapsed_s": value, "overhead_fraction": 0.05}
    metrics.update(overrides.pop("metrics", {}))
    return bench.make_artifact(
        name,
        metrics=metrics,
        budgets=overrides.pop("budgets", {"overhead_fraction": 0.10}),
        regression_metrics=overrides.pop(
            "regression_metrics", ["elapsed_s"]
        ),
        info=overrides.pop("info", {"loops": 20}),
    )


class TestSchema:
    def test_envelope_fields(self):
        artifact = _artifact()
        assert artifact["benchmark"] == "trace_smoke"
        assert artifact["schema_version"] == bench.SCHEMA_VERSION
        assert artifact["timestamp"].endswith("Z")
        assert set(artifact["host"]) == {"platform", "python", "cores"}
        assert artifact["metrics"]["elapsed_s"] == 1.0
        assert artifact["budgets"] == {"overhead_fraction": 0.10}
        assert artifact["regression_metrics"] == ["elapsed_s"]
        assert artifact["info"] == {"loops": 20}

    def test_non_numeric_metric_rejected(self):
        with pytest.raises(ValueError):
            bench.make_artifact("x", metrics={"name": "fast"})
        with pytest.raises(ValueError):
            bench.make_artifact("x", metrics={"ok": True})

    def test_budget_must_name_a_metric(self):
        with pytest.raises(ValueError):
            bench.make_artifact(
                "x", metrics={"a": 1.0}, budgets={"b": 2.0}
            )
        with pytest.raises(ValueError):
            bench.make_artifact(
                "x", metrics={"a": 1.0}, regression_metrics=["b"]
            )

    def test_write_read_round_trip(self, tmp_path):
        artifact = _artifact()
        path = tmp_path / "BENCH_x.json"
        bench.write_artifact(artifact, str(path))
        assert bench.read_artifact(str(path)) == artifact

    def test_read_rejects_wrong_schema_version(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps({"schema_version": 99}))
        with pytest.raises(ValueError):
            bench.read_artifact(str(path))

    def test_observatory_registry(self):
        assert sorted(bench.OBSERVATORY) == [
            "certify_overhead", "hotpath", "lint_overhead",
            "parallel_engine", "service", "trace_smoke",
        ]


class TestHistory:
    def test_append_and_read(self, tmp_path):
        path = str(tmp_path / "history.jsonl")
        bench.append_history(_artifact(value=1.0), path)
        bench.append_history(_artifact(value=2.0), path)
        entries = bench.read_history(path)
        assert [e["metrics"]["elapsed_s"] for e in entries] == [1.0, 2.0]

    def test_missing_history_is_empty(self, tmp_path):
        assert bench.read_history(str(tmp_path / "nope.jsonl")) == []

    def test_append_creates_parent_dirs(self, tmp_path):
        path = str(tmp_path / "results" / "history.jsonl")
        bench.append_history(_artifact(), path)
        assert len(bench.read_history(path)) == 1

    def test_by_benchmark_groups_in_order(self, tmp_path):
        path = str(tmp_path / "history.jsonl")
        bench.append_history(_artifact("a", 1.0), path)
        bench.append_history(_artifact("b", 9.0), path)
        bench.append_history(_artifact("a", 2.0), path)
        grouped = bench.by_benchmark(bench.read_history(path))
        assert [e["metrics"]["elapsed_s"] for e in grouped["a"]] == \
            [1.0, 2.0]
        assert len(grouped["b"]) == 1


class TestRegressionGate:
    def test_injected_20_percent_regression_is_caught(self):
        history = [_artifact(value=1.0) for _ in range(3)]
        latest = _artifact(value=1.20)  # 20% > 15% tolerance
        violations = bench.check_entry(latest, history)
        assert len(violations) == 1
        violation = violations[0]
        assert violation.kind == "regression"
        assert violation.metric == "elapsed_s"
        assert "regressed" in str(violation)

    def test_within_tolerance_passes(self):
        history = [_artifact(value=1.0) for _ in range(3)]
        assert bench.check_entry(_artifact(value=1.10), history) == []

    def test_budget_violation(self):
        over = _artifact(metrics={"overhead_fraction": 0.25})
        violations = bench.check_entry(over, [])
        assert [v.kind for v in violations] == ["budget"]
        assert "exceeds budget" in str(violations[0])

    def test_first_run_is_its_own_baseline(self):
        assert bench.check_entry(_artifact(value=99.0), []) == []

    def test_baseline_window_is_last_n(self):
        # Ancient slow runs outside the window must not mask a
        # regression against the recent baseline.
        old = [_artifact(value=10.0) for _ in range(3)]
        recent = [_artifact(value=1.0) for _ in range(5)]
        violations = bench.check_entry(
            _artifact(value=1.5), old + recent, baseline_n=5
        )
        assert len(violations) == 1

    def test_check_entries_checks_newest_per_benchmark(self, tmp_path):
        path = str(tmp_path / "history.jsonl")
        for value in (1.0, 1.0, 1.0, 1.3):
            bench.append_history(_artifact("a", value), path)
        bench.append_history(_artifact("b", 5.0), path)
        violations = bench.check_entries(bench.read_history(path))
        assert [v.benchmark for v in violations] == ["a"]

    def test_other_host_history_is_budgets_only(self):
        # History recorded on a different host shape (core count) must
        # not form the baseline: a 1-core CI runner compared against a
        # beefy laptop's timings would fail every run.
        history = [_artifact(value=0.1) for _ in range(5)]
        for entry in history:
            entry["host"]["cores"] = 64
        latest = _artifact(value=1.0)  # 10x the foreign baseline
        assert bench.check_entry(latest, history) == []

    def test_same_host_entries_still_gate(self):
        # Slow foreign-host runs interleaved with the same-host history
        # must not dilute the baseline: with them filtered out, a 2x
        # slowdown against the same-host mean is a regression.
        history = [_artifact(value=0.1) for _ in range(3)]
        slow_foreign = [_artifact(value=10.0) for _ in range(3)]
        for entry in slow_foreign:
            entry["host"]["cores"] = 64
        mixed = [x for pair in zip(history, slow_foreign) for x in pair]
        violations = bench.check_entry(_artifact(value=0.2), mixed)
        assert [v.kind for v in violations] == ["regression"]

    def test_custom_tolerance(self):
        history = [_artifact(value=1.0)]
        assert bench.check_entry(
            _artifact(value=1.3), history, tolerance=0.5
        ) == []
        assert bench.check_entry(
            _artifact(value=1.3), history, tolerance=0.1
        ) != []


class TestReport:
    def test_empty_history(self):
        assert bench.format_history_table([]) == "(empty history)"

    def test_table_shows_benchmarks_and_metrics(self):
        entries = [
            _artifact("trace_smoke", 1.0),
            _artifact("trace_smoke", 1.1),
            _artifact("hotpath", 3.0),
        ]
        table = bench.format_history_table(entries)
        assert "trace_smoke (2 run(s))" in table
        assert "hotpath (1 run(s))" in table
        # Budgeted + regression-tracked metrics lead each block.
        assert "overhead_fraction" in table
        assert "elapsed_s" in table

    def test_missing_metric_renders_dash(self):
        entries = [
            _artifact("a", 1.0),
            bench.make_artifact("a", metrics={"other": 2.0}),
        ]
        table = bench.format_history_table(entries)
        assert "-" in table
