"""Trace sinks: JSONL round-trip, metrics dict, rendering."""

import io
import json

import pytest

from repro import obs


@pytest.fixture
def sample_trace():
    with obs.tracing() as trace:
        with obs.span("compile", loop="intro", machine="2gp"):
            with obs.span("attempt", ii=4) as sp:
                with obs.span("assign", ii=4):
                    obs.count("assign.placements", 6)
                    obs.count("assign.evictions", 2)
                sp.note(outcome="assign_failed")
            with obs.span("attempt", ii=5):
                with obs.span("assign", ii=5):
                    obs.count("assign.placements", 6)
                with obs.span("schedule", ii=5):
                    obs.count("sched.slot_probes", 9)
        obs.count("outside", 3)
    return trace


class TestJsonlRoundTrip:
    def test_every_line_is_valid_json(self, sample_trace, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        n_events = obs.write_jsonl(sample_trace, path)
        lines = [
            line for line in
            open(path).read().splitlines() if line
        ]
        assert len(lines) == n_events + 1  # events + header
        parsed = [json.loads(line) for line in lines]
        assert parsed[0]["ev"] == "trace"
        assert parsed[0]["version"] == 2
        assert parsed[0]["trace_id"] == sample_trace.trace_id
        assert parsed[0]["epoch_wall"] == pytest.approx(
            sample_trace.epoch_wall, abs=1e-5
        )
        assert all("ev" in event for event in parsed)

    def test_read_inverts_write(self, sample_trace, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        obs.write_jsonl(sample_trace, path)
        assert obs.read_jsonl(path) == obs.trace_events(sample_trace)

    def test_round_trip_rebuilds_equivalent_trace(self, sample_trace):
        buffer = io.StringIO()
        obs.write_jsonl(sample_trace, buffer)
        buffer.seek(0)
        rebuilt = obs.trace_from_events(obs.read_jsonl(buffer))
        assert rebuilt.counters == sample_trace.counters
        original = list(sample_trace.walk())
        recovered = list(rebuilt.walk())
        assert [node.name for node in recovered] == \
            [node.name for node in original]
        assert [node.attrs for node in recovered] == \
            [node.attrs for node in original]
        assert [node.counters for node in recovered] == \
            [node.counters for node in original]
        for before, after in zip(original, recovered):
            assert after.duration == pytest.approx(
                before.duration, abs=1e-9
            )

    def test_begin_end_events_balance(self, sample_trace):
        events = obs.trace_events(sample_trace)
        begins = sum(1 for e in events if e["ev"] == "begin")
        ends = sum(1 for e in events if e["ev"] == "end")
        assert begins == ends == len(list(sample_trace.walk()))

    def test_orphan_counters_survive(self, sample_trace):
        events = obs.trace_events(sample_trace)
        trailer = [e for e in events if e["ev"] == "counters"]
        assert trailer == [{"ev": "counters", "counters": {"outside": 3}}]
        rebuilt = obs.trace_from_events(events)
        assert rebuilt.counter("outside") == 3

    def test_unbalanced_events_rejected(self):
        with pytest.raises(ValueError):
            obs.trace_from_events([{"ev": "end", "span": "x"}])
        with pytest.raises(ValueError):
            obs.trace_from_events([
                {"ev": "begin", "span": "x", "t": 0.0},
            ])
        with pytest.raises(ValueError):
            obs.trace_from_events([
                {"ev": "begin", "span": "x", "t": 0.0},
                {"ev": "end", "span": "y", "dur": 0.0},
            ])

    def test_unknown_event_kind_rejected(self):
        with pytest.raises(ValueError):
            obs.trace_from_events([{"ev": "bogus"}])

    def test_version_mismatch_rejected(self):
        source = io.StringIO('{"ev": "trace", "version": 99}\n')
        with pytest.raises(ValueError):
            obs.read_jsonl(source)


class TestMetricsDict:
    def test_shape(self, sample_trace):
        metrics = obs.metrics_dict(sample_trace)
        assert set(metrics) == {"counters", "phases"}
        assert metrics["counters"]["assign.placements"] == 12
        assert metrics["counters"]["outside"] == 3
        assign = metrics["phases"]["assign"]
        assert assign["count"] == 2
        assert assign["total_s"] >= assign["max_s"] >= assign["min_s"] > 0
        assert assign["mean_s"] == pytest.approx(
            assign["total_s"] / 2, rel=1e-3
        )

    def test_json_serializable(self, sample_trace):
        document = json.dumps(obs.metrics_dict(sample_trace))
        assert json.loads(document)["counters"]["sched.slot_probes"] == 9


class TestRendering:
    def test_tree_shows_names_attrs_counters(self, sample_trace):
        tree = obs.format_trace_tree(sample_trace)
        assert "compile" in tree
        assert "loop=intro" in tree
        assert "ii=5" in tree
        assert "assign.placements=6" in tree
        assert "└─" in tree

    def test_empty_trace_renders(self):
        assert obs.format_trace_tree(obs.Trace()) == "(empty trace)"
        assert obs.format_counters(obs.Trace()) == "(no counters)"
        assert obs.format_phase_table(obs.Trace()) == "(no phases)"

    def test_counters_block(self, sample_trace):
        block = obs.format_counters(sample_trace)
        assert "assign.placements" in block
        assert "= 12" in block

    def test_phase_table_lists_each_name_once(self, sample_trace):
        table = obs.format_phase_table(sample_trace)
        lines = [line for line in table.splitlines()
                 if line.strip().startswith("assign ")]
        assert len(lines) == 1

    def test_deep_trees_elide_children(self):
        with obs.tracing() as trace:
            with obs.span("experiment"):
                for index in range(60):
                    with obs.span("loop", n=index):
                        pass
        tree = obs.format_trace_tree(trace)
        assert "elided" in tree
        assert tree.count("loop") < 60

    def test_full_report_composes(self, sample_trace):
        report = obs.format_trace_report(sample_trace)
        for section in ("trace:", "phase profile:", "counters:"):
            assert section in report
