"""Chrome trace-event export: spec shape, worker lanes, counters."""

import io
import json

import pytest

from repro import obs


def _four_worker_trace():
    """A parent trace with four grafted worker lanes, as the engine
    builds for a ``--workers 4`` run."""
    parent = obs.Trace()
    parent.epoch_wall = 100.0
    with obs.tracing(parent):
        with obs.span("experiment", machine="2gp"):
            for lane in range(4):
                worker = obs.Trace()
                worker.epoch_wall = 100.0 + 0.01 * lane
                root = obs.SpanNode("chunk", {"n": 2}, 0.001)
                root.duration = 0.02
                loop_node = obs.SpanNode("loop", {"i": 0}, 0.002)
                loop_node.duration = 0.01
                loop_node.counters["sched.placements"] = 4
                root.children.append(loop_node)
                worker.roots.append(root)
                worker.counters["sched.placements"] = 4
                parent.graft(
                    worker, lane=lane, pid=5000 + lane,
                    queue_wait_s=0.001,
                )
    return parent


@pytest.fixture
def document(tmp_path):
    trace = _four_worker_trace()
    path = tmp_path / "trace.chrome.json"
    n_events = obs.write_chrome_trace(trace, str(path))
    doc = json.loads(path.read_text())
    return trace, doc, n_events


class TestEnvelope:
    def test_object_form_envelope(self, document):
        trace, doc, n_events = document
        assert set(doc) == {
            "traceEvents", "displayTimeUnit", "otherData"
        }
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"]["trace_id"] == trace.trace_id
        assert len(doc["traceEvents"]) == n_events

    def test_every_event_is_spec_shaped(self, document):
        _, doc, _ = document
        for event in doc["traceEvents"]:
            assert event["ph"] in ("X", "C", "M")
            assert "name" in event
            assert event["pid"] == 1
            if event["ph"] == "X":
                assert event["ts"] >= 0
                assert event["dur"] >= 0
                assert isinstance(event["tid"], int)

    def test_writes_to_open_file_too(self):
        buffer = io.StringIO()
        obs.write_chrome_trace(_four_worker_trace(), buffer)
        assert json.loads(buffer.getvalue())["traceEvents"]


class TestWorkerLanes:
    def test_one_tid_lane_per_worker(self, document):
        _, doc, _ = document
        x_tids = {
            event["tid"] for event in doc["traceEvents"]
            if event["ph"] == "X"
        }
        # main on tid 0, four workers on tids 1..4
        assert x_tids == {0, 1, 2, 3, 4}

    def test_worker_subtree_inherits_its_lane(self, document):
        _, doc, _ = document
        for event in doc["traceEvents"]:
            if event["ph"] == "X" and event["name"] in ("chunk", "loop"):
                assert event["tid"] != 0

    def test_thread_metadata_labels_lanes(self, document):
        _, doc, _ = document
        names = {
            event["tid"]: event["args"]["name"]
            for event in doc["traceEvents"]
            if event["ph"] == "M" and event["name"] == "thread_name"
        }
        assert names[0] == "main"
        assert names[1] == "worker-0"
        assert names[4] == "worker-3"
        sort_indexes = [
            event for event in doc["traceEvents"]
            if event["name"] == "thread_sort_index"
        ]
        assert len(sort_indexes) == 5

    def test_host_span_args_carry_lane_and_pid(self, document):
        _, doc, _ = document
        workers = [
            event for event in doc["traceEvents"]
            if event["ph"] == "X" and event["name"] == "worker"
        ]
        assert len(workers) == 4
        assert sorted(event["args"]["lane"] for event in workers) == \
            [0, 1, 2, 3]
        assert all("pid" in event["args"] for event in workers)


class TestCountersAndCpu:
    def test_counter_events_are_cumulative(self, document):
        _, doc, _ = document
        samples = [
            event for event in doc["traceEvents"]
            if event["ph"] == "C"
            and event["name"] == "sched.placements"
        ]
        values = [event["args"]["value"] for event in samples]
        assert values == [4, 8, 12, 16]
        timestamps = [event["ts"] for event in samples]
        assert timestamps == sorted(timestamps)

    def test_span_counters_become_args(self, document):
        _, doc, _ = document
        loop_events = [
            event for event in doc["traceEvents"]
            if event["ph"] == "X" and event["name"] == "loop"
        ]
        assert all(
            event["args"]["counter.sched.placements"] == 4
            for event in loop_events
        )

    def test_cpu_arg_when_profiled(self):
        with obs.tracing() as trace:
            with obs.span("busy"):
                pass
        trace.roots[0].cpu = 0.5
        events = obs.chrome_trace_events(trace)
        busy = [e for e in events if e.get("name") == "busy"]
        assert busy[0]["args"]["cpu_ms"] == 500.0

    def test_microsecond_units(self):
        trace = obs.Trace()
        node = obs.SpanNode("s", {}, 0.5)
        node.duration = 0.25
        trace.roots.append(node)
        events = obs.chrome_trace_events(trace)
        span_event = [e for e in events if e["ph"] == "X"][0]
        assert span_event["ts"] == pytest.approx(500_000.0)
        assert span_event["dur"] == pytest.approx(250_000.0)
