"""The tracing core: spans, counters, installation, no-op mode."""

import threading

import pytest

from repro import obs
from repro.obs.trace import PhaseStats


class TestSpanNesting:
    def test_parent_child_structure(self):
        with obs.tracing() as trace:
            with obs.span("outer", ii=4):
                with obs.span("inner"):
                    pass
                with obs.span("inner"):
                    pass
        assert [root.name for root in trace.roots] == ["outer"]
        outer = trace.roots[0]
        assert outer.attrs == {"ii": 4}
        assert [child.name for child in outer.children] == [
            "inner", "inner"
        ]
        assert all(not child.children for child in outer.children)

    def test_sibling_roots(self):
        with obs.tracing() as trace:
            with obs.span("a"):
                pass
            with obs.span("b"):
                pass
        assert [root.name for root in trace.roots] == ["a", "b"]

    def test_durations_nest(self):
        with obs.tracing() as trace:
            with obs.span("outer"):
                with obs.span("inner"):
                    pass
        outer, = trace.roots
        inner, = outer.children
        assert outer.duration >= inner.duration > 0.0
        assert inner.started >= outer.started

    def test_note_attaches_attrs(self):
        with obs.tracing() as trace:
            with obs.span("assign", ii=3) as sp:
                sp.note(succeeded=True)
        assert trace.roots[0].attrs == {"ii": 3, "succeeded": True}

    def test_find_and_walk(self):
        with obs.tracing() as trace:
            with obs.span("compile"):
                with obs.span("attempt"):
                    with obs.span("assign"):
                        pass
                with obs.span("attempt"):
                    pass
        assert len(trace.find("attempt")) == 2
        assert [node.name for node in trace.walk()] == [
            "compile", "attempt", "assign", "attempt"
        ]

    def test_exception_closes_span(self):
        with obs.tracing() as trace:
            with pytest.raises(ValueError):
                with obs.span("broken"):
                    raise ValueError("boom")
            with obs.span("after"):
                pass
        # The exception did not corrupt the stack: "after" is a root.
        assert [root.name for root in trace.roots] == ["broken", "after"]
        assert trace.roots[0].duration > 0.0


class TestCounters:
    def test_counters_aggregate_across_spans(self):
        with obs.tracing() as trace:
            with obs.span("a"):
                obs.count("hits")
                obs.count("hits", 2)
            with obs.span("b"):
                obs.count("hits", 4)
        assert trace.counter("hits") == 7
        assert trace.roots[0].counters == {"hits": 3}
        assert trace.roots[1].counters == {"hits": 4}

    def test_counter_on_innermost_span(self):
        with obs.tracing() as trace:
            with obs.span("outer"):
                with obs.span("inner"):
                    obs.count("deep")
        outer, = trace.roots
        assert "deep" not in outer.counters
        assert outer.children[0].counters == {"deep": 1}
        assert outer.total_counters() == {"deep": 1}

    def test_count_outside_any_span(self):
        with obs.tracing() as trace:
            obs.count("orphan", 5)
        assert trace.counter("orphan") == 5
        assert trace.roots == []

    def test_missing_counter_reads_zero(self):
        with obs.tracing() as trace:
            pass
        assert trace.counter("never") == 0


class TestDisabledMode:
    def test_disabled_by_default(self):
        assert not obs.enabled()
        assert obs.current_trace() is None

    def test_span_and_count_are_noops_when_disabled(self):
        # Must not raise, must not record anywhere.
        obs.count("nope")
        with obs.span("nothing", ii=1) as sp:
            sp.note(extra=True)
        assert obs.current_trace() is None

    def test_disabled_span_returns_shared_null(self):
        assert obs.span("x") is obs.NULL_SPAN
        assert obs.span("y", a=1) is obs.NULL_SPAN

    def test_tracing_toggles_enabled(self):
        assert not obs.enabled()
        with obs.tracing():
            assert obs.enabled()
        assert not obs.enabled()

    def test_uninstall_without_install_raises(self):
        with pytest.raises(RuntimeError):
            obs.uninstall()


class TestInstallation:
    def test_nested_tracing_restores_outer(self):
        with obs.tracing() as outer:
            obs.count("level", 1)
            with obs.tracing() as inner:
                obs.count("level", 10)
            obs.count("level", 1)
        assert outer.counter("level") == 2
        assert inner.counter("level") == 10

    def test_explicit_trace_object(self):
        trace = obs.Trace()
        with obs.tracing(trace) as installed:
            assert installed is trace
            obs.count("x")
        assert trace.counter("x") == 1

    def test_threads_are_isolated(self):
        seen = {}

        def worker():
            # The main thread's trace must not observe this thread.
            seen["enabled_in_thread"] = obs.enabled()
            with obs.tracing() as mine:
                obs.count("thread_hits")
            seen["thread_count"] = mine.counter("thread_hits")

        with obs.tracing() as trace:
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
            obs.count("main_hits")
        assert seen["enabled_in_thread"] is False
        assert seen["thread_count"] == 1
        assert trace.counter("thread_hits") == 0
        assert trace.counter("main_hits") == 1


class TestPhases:
    def test_phase_aggregation(self):
        with obs.tracing() as trace:
            for _ in range(3):
                with obs.span("assign"):
                    pass
            with obs.span("schedule"):
                pass
        phases = trace.phases()
        assert set(phases) == {"assign", "schedule"}
        assign = phases["assign"]
        assert assign.count == 3
        assert assign.total >= assign.max >= assign.min > 0.0
        assert assign.mean == pytest.approx(assign.total / 3)
        assert sum(assign.buckets.values()) == 3

    def test_bucket_labels(self):
        assert PhaseStats.bucket_label(0) == "<1us"
        assert PhaseStats.bucket_label(3) == "<8us"
        assert PhaseStats.bucket_label(10) == "<1ms"
        assert PhaseStats.bucket_label(20) == "<1s"

    def test_empty_phase_stats_mean(self):
        stats = PhaseStats("x")
        assert stats.mean == 0.0
