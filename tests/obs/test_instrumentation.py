"""The pipeline's instrumentation: spans and counters observed during
real compilations, and the disabled-mode guarantee."""

import pytest

from repro import compile_loop, obs, two_cluster_gp
from repro.analysis import run_experiment
from repro.workloads import paper_suite


@pytest.fixture
def traced_compile(intro_example, two_gp):
    with obs.tracing() as trace:
        result = compile_loop(intro_example, two_gp)
    return trace, result


class TestCompileInstrumentation:
    def test_span_hierarchy(self, traced_compile):
        trace, result = traced_compile
        compile_span, = trace.find("compile")
        assert compile_span.attrs["loop"] == "intro"
        assert compile_span.attrs["ii"] == result.ii
        attempts = trace.find("attempt")
        assert len(attempts) == result.attempts
        assert attempts[-1].attrs["outcome"] == "ok"
        assert trace.find("assign")
        assert trace.find("schedule")

    def test_counters_match_stats(self, traced_compile):
        trace, result = traced_compile
        assert trace.counter("driver.attempts") == result.attempts
        # Placements/evictions across all attempts are at least the
        # final (successful) attempt's stats.
        assert trace.counter("assign.placements") >= \
            result.assignment_stats.placements
        assert trace.counter("sched.placements") >= \
            result.scheduler_stats.placements
        assert trace.counter("sched.slot_probes") > 0

    def test_selection_outcomes_accounted(self, traced_compile):
        trace, _ = traced_compile
        committed = trace.counter("assign.select.committed")
        forced = trace.counter("assign.select.forced")
        assert committed + forced == \
            trace.counter("assign.budget_spent") - \
            trace.counter("assign.select.abandoned")

    def test_copy_replans_observed(self, traced_compile):
        trace, _ = traced_compile
        assert trace.counter("copies.replans") > 0

    def test_failed_attempts_counted(self, intro_example, two_gp):
        with obs.tracing() as trace:
            result = compile_loop(intro_example, two_gp)
        restarts = result.attempts - 1
        assert trace.counter("driver.assign_failures") + \
            trace.counter("driver.schedule_failures") == restarts

    def test_unified_compile_has_no_assign_span(self, intro_example,
                                                uni8):
        with obs.tracing() as trace:
            compile_loop(intro_example, uni8)
        assert trace.find("compile")
        assert not trace.find("assign")  # trivial annotation: no span

    def test_compilation_untouched_by_tracing(self, intro_example,
                                              two_gp):
        baseline = compile_loop(intro_example, two_gp)
        with obs.tracing():
            traced = compile_loop(intro_example, two_gp)
        assert traced.ii == baseline.ii
        assert traced.schedule.start == baseline.schedule.start


class TestExperimentInstrumentation:
    def test_per_loop_spans(self):
        loops = paper_suite(5)
        with obs.tracing() as trace:
            result = run_experiment(loops, two_cluster_gp())
        experiment_span, = trace.find("experiment")
        assert experiment_span.attrs["loops"] == 5
        loop_spans = trace.find("loop")
        assert len(loop_spans) == 5
        assert {span.attrs["loop"] for span in loop_spans} == \
            {ddg.name for ddg in loops}
        for span, outcome in zip(loop_spans, result.outcomes):
            assert span.attrs["deviation"] == outcome.deviation
        assert trace.counter("experiment.loops") == 5


class TestDefaultOff:
    def test_compile_does_not_trace_by_default(self, intro_example,
                                               two_gp):
        compile_loop(intro_example, two_gp)
        assert obs.current_trace() is None
