"""Property-based tests on DDG invariants (hypothesis)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ddg import Ddg, Opcode, find_sccs, mii, rec_mii, res_mii
from repro.machine import unified_gp
from repro.workloads import GeneratorProfile, generate_loop

VALUE_OPS = [
    Opcode.ALU, Opcode.SHIFT, Opcode.LOAD, Opcode.FP_ADD,
    Opcode.FP_MULT, Opcode.FP_DIV,
]


@st.composite
def random_ddg(draw):
    """A random loop DDG: forward DAG edges plus distance >=1 back edges."""
    n = draw(st.integers(min_value=2, max_value=24))
    graph = Ddg(name="prop")
    ops = [
        draw(st.sampled_from(VALUE_OPS)) for _ in range(n)
    ]
    for opcode in ops:
        graph.add_node(opcode)
    n_forward = draw(st.integers(min_value=1, max_value=2 * n))
    for _ in range(n_forward):
        dst = draw(st.integers(min_value=1, max_value=n - 1))
        src = draw(st.integers(min_value=0, max_value=dst - 1))
        graph.add_edge(src, dst, distance=0)
    n_back = draw(st.integers(min_value=0, max_value=max(1, n // 4)))
    for _ in range(n_back):
        src = draw(st.integers(min_value=0, max_value=n - 1))
        dst = draw(st.integers(min_value=0, max_value=n - 1))
        graph.add_edge(src, dst, distance=draw(
            st.integers(min_value=1, max_value=3)))
    return graph


@st.composite
def generated_loop(draw):
    """A loop from the calibrated synthetic generator."""
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = random.Random(seed)
    return generate_loop(rng, GeneratorProfile())


class TestRecMiiProperties:
    @given(random_ddg())
    @settings(max_examples=60, deadline=None)
    def test_rec_mii_bounded_by_total_latency(self, graph):
        bound = rec_mii(graph)
        assert 0 <= bound <= graph.total_latency()

    @given(random_ddg())
    @settings(max_examples=60, deadline=None)
    def test_rec_mii_is_max_over_sccs(self, graph):
        partition = find_sccs(graph)
        per_scc = max((scc.rec_mii for scc in partition), default=0)
        assert rec_mii(graph) == per_scc

    @given(random_ddg(), st.integers(min_value=1, max_value=16))
    @settings(max_examples=60, deadline=None)
    def test_res_mii_antitone_in_width(self, graph, width):
        narrow = res_mii(graph, unified_gp(width))
        wide = res_mii(graph, unified_gp(width + 4))
        assert wide <= narrow

    @given(random_ddg())
    @settings(max_examples=40, deadline=None)
    def test_mii_dominates_both_bounds(self, graph):
        machine = unified_gp(4)
        value = mii(graph, machine)
        assert value >= rec_mii(graph)
        assert value >= res_mii(graph, machine)


class TestSccProperties:
    @given(random_ddg())
    @settings(max_examples=60, deadline=None)
    def test_sccs_are_disjoint(self, graph):
        partition = find_sccs(graph)
        seen = set()
        for scc in partition:
            assert not (scc.nodes & seen)
            seen |= scc.nodes

    @given(random_ddg())
    @settings(max_examples=60, deadline=None)
    def test_criticality_monotone(self, graph):
        partition = find_sccs(graph)
        rec_miis = [scc.rec_mii for scc in partition]
        assert rec_miis == sorted(rec_miis, reverse=True)

    @given(generated_loop())
    @settings(max_examples=40, deadline=None)
    def test_generated_loops_have_valid_sccs(self, graph):
        partition = find_sccs(graph)
        for scc in partition:
            assert scc.rec_mii >= 1
