"""Property-based tests for backend invariants: code expansion,
parse round-trips, register allocation validity."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codegen import expand_pipeline
from repro.core import compile_loop
from repro.ddg import rec_mii
from repro.ddg.parse import format_loop, parse_loop
from repro.machine import two_cluster_gp
from repro.regalloc import allocate_mve, verify_allocation
from repro.workloads import GeneratorProfile, generate_loop, unroll_ddg


@st.composite
def random_loop(draw):
    seed = draw(st.integers(min_value=0, max_value=60_000))
    rng = random.Random(seed)
    return generate_loop(rng, GeneratorProfile())


class TestCodegenProperties:
    @given(random_loop())
    @settings(max_examples=30, deadline=None)
    def test_expansion_factor_law(self, loop):
        result = compile_loop(loop, two_cluster_gp())
        code = expand_pipeline(result.schedule)
        n_ops = len(result.annotated.ddg)
        assert code.static_instruction_count == (
            result.schedule.stage_count * n_ops
        )

    @given(random_loop())
    @settings(max_examples=30, deadline=None)
    def test_kernel_is_complete_and_region_lengths_match(self, loop):
        result = compile_loop(loop, two_cluster_gp())
        code = expand_pipeline(result.schedule)
        kernel_ops = sorted(
            e.node_id for cycle in code.kernel for e in cycle
        )
        assert kernel_ops == sorted(result.annotated.ddg.node_ids)
        assert code.prologue_cycles == code.epilogue_cycles


class TestParseProperties:
    @given(random_loop())
    @settings(max_examples=40, deadline=None)
    def test_round_trip_preserves_structure(self, loop):
        again = parse_loop(format_loop(loop), name=loop.name)
        assert len(again) == len(loop)
        assert again.edge_count() == loop.edge_count()
        assert rec_mii(again) == rec_mii(loop)


class TestRegallocProperties:
    @given(random_loop())
    @settings(max_examples=25, deadline=None)
    def test_allocations_always_verify(self, loop):
        result = compile_loop(loop, two_cluster_gp())
        allocation = allocate_mve(result.schedule)
        assert verify_allocation(allocation) == []


class TestUnrollProperties:
    @given(random_loop(), st.integers(min_value=2, max_value=3))
    @settings(max_examples=25, deadline=None)
    def test_unroll_scales_counts_and_recmii_bound(self, loop, factor):
        unrolled = unroll_ddg(loop, factor)
        assert len(unrolled) == factor * len(loop)
        assert unrolled.edge_count() == factor * loop.edge_count()
        # Unrolled RecMII is per unrolled iteration: at most k times the
        # original (equality when the critical ratio is integral).
        assert rec_mii(unrolled) <= factor * rec_mii(loop)


class TestStageSchedulingProperties:
    @given(random_loop())
    @settings(max_examples=25, deadline=None)
    def test_lifetime_never_increases(self, loop):
        from repro.scheduling import stage_schedule
        result = compile_loop(loop, two_cluster_gp())
        staged = stage_schedule(result.schedule)
        assert staged.lifetime_after <= staged.lifetime_before

    @given(random_loop())
    @settings(max_examples=25, deadline=None)
    def test_rows_and_validity_preserved(self, loop):
        from repro.scheduling import assert_valid, stage_schedule
        result = compile_loop(loop, two_cluster_gp())
        staged = stage_schedule(result.schedule)
        assert_valid(staged.schedule)
        for node_id in result.schedule.start:
            assert staged.schedule.row(node_id) == (
                result.schedule.row(node_id)
            )
