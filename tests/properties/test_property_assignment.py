"""Property-based tests on assignment-state invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import RoutingState, assign_clusters
from repro.core.copies import plan_copies
from repro.machine import (
    four_cluster_gp,
    four_cluster_grid,
    two_cluster_gp,
)
from repro.mrt import PoolOverflowError, ResourcePools
from repro.workloads import GeneratorProfile, generate_loop

MACHINES = [two_cluster_gp(), four_cluster_gp(), four_cluster_grid()]


@st.composite
def routing_scenario(draw):
    """A random graph + machine + a random assign/unassign action list."""
    seed = draw(st.integers(min_value=0, max_value=50_000))
    machine = draw(st.sampled_from(MACHINES))
    ii = draw(st.integers(min_value=2, max_value=8))
    rng = random.Random(seed)
    ddg = generate_loop(rng, GeneratorProfile(), n_nodes=
                        draw(st.integers(min_value=3, max_value=18)))
    n_actions = draw(st.integers(min_value=1, max_value=40))
    actions = [
        (
            draw(st.sampled_from(["assign", "remove"])),
            draw(st.integers(min_value=0, max_value=len(ddg) - 1)),
            draw(st.integers(min_value=0, max_value=machine.n_clusters - 1)),
        )
        for _ in range(n_actions)
    ]
    return ddg, machine, ii, actions


def _expected_copy_reservations(state: RoutingState):
    """Recompute from scratch what the pools should hold for copies."""
    expected = {}
    for producer in state.ddg.node_ids:
        if producer not in state.cluster_of:
            continue
        if not state.ddg.node(producer).produces_value:
            continue
        plan = plan_copies(
            state.machine,
            producer,
            state.cluster_of[producer],
            state.needed_clusters(producer),
            share_broadcast=state.share_broadcast,
        )
        for key in plan.resources:
            expected[key] = expected.get(key, 0) + 1
    return expected


class TestRoutingStateInvariants:
    @given(routing_scenario())
    @settings(max_examples=60, deadline=None)
    def test_pool_usage_matches_recomputed_plans(self, scenario):
        """After any action sequence, reserved copy resources equal a
        from-scratch recomputation of every producer's plan."""
        ddg, machine, ii, actions = scenario
        pools = ResourcePools(machine, ii)
        state = RoutingState(ddg, machine, pools)
        for kind, node_id, cluster in actions:
            assigned = node_id in state.cluster_of
            try:
                if kind == "assign" and not assigned:
                    state.set_cluster(node_id, cluster)
                elif kind == "remove" and assigned:
                    state.unassign_unplanned(node_id)
                    for producer in state.affected_producers(node_id):
                        state.replan(producer)
            except PoolOverflowError:
                # Overflow mid-update leaves state inconsistent by
                # contract; a real caller rolls back — do the same.
                return
        actual = {
            key: pools.used(key)
            for key in pools.keys()
            if pools.used(key) > 0
        }
        assert actual == _expected_copy_reservations(state)

    @given(routing_scenario())
    @settings(max_examples=40, deadline=None)
    def test_snapshot_restore_roundtrip_under_actions(self, scenario):
        ddg, machine, ii, actions = scenario
        pools = ResourcePools(machine, ii)
        state = RoutingState(ddg, machine, pools)
        routing_snap = state.snapshot()
        pools_snap = pools.checkpoint()
        cluster_before = dict(state.cluster_of)
        for kind, node_id, cluster in actions:
            try:
                if kind == "assign" and node_id not in state.cluster_of:
                    state.set_cluster(node_id, cluster)
            except PoolOverflowError:
                break
        state.restore(routing_snap)
        pools.restore(pools_snap)
        assert state.cluster_of == cluster_before
        assert all(pools.used(key) == 0 for key in pools.keys())


class TestAssignmentPostconditions:
    @given(
        st.integers(min_value=0, max_value=50_000),
        st.sampled_from(MACHINES),
    )
    @settings(max_examples=40, deadline=None)
    def test_successful_assignment_is_schedulable_resource_wise(
        self, seed, machine
    ):
        """Any annotated graph the assigner returns fits the counting
        pools it was built against: per-resource demand <= capacity*II."""
        rng = random.Random(seed)
        ddg = generate_loop(rng, GeneratorProfile())
        from repro.ddg import mii
        ii = mii(ddg, machine.unified_equivalent()) + 1
        annotated = assign_clusters(ddg, machine, ii)
        if annotated is None:
            return
        demand = {}
        for node_id in annotated.ddg.node_ids:
            for key in annotated.resources_of(node_id):
                demand[key] = demand.get(key, 0) + 1
        capacities = machine.resource_capacities()
        for key, used in demand.items():
            assert used <= capacities[key] * ii, key

    @given(
        st.integers(min_value=0, max_value=50_000),
        st.sampled_from(MACHINES),
    )
    @settings(max_examples=40, deadline=None)
    def test_every_node_assigned_exactly_one_cluster(self, seed, machine):
        rng = random.Random(seed)
        ddg = generate_loop(rng, GeneratorProfile())
        from repro.ddg import mii
        ii = mii(ddg, machine.unified_equivalent()) + 2
        annotated = assign_clusters(ddg, machine, ii)
        if annotated is None:
            return
        for node_id in annotated.ddg.node_ids:
            cluster = annotated.cluster_of[node_id]
            assert 0 <= cluster < machine.n_clusters
