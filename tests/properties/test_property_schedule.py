"""Property-based tests: every produced schedule is valid and bounded."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ALL_VARIANTS, compile_loop
from repro.ddg import mii, rec_mii
from repro.machine import (
    four_cluster_grid,
    two_cluster_fs,
    two_cluster_gp,
)
from repro.scheduling import check_schedule
from repro.workloads import GeneratorProfile, generate_loop

MACHINES = [two_cluster_gp(), two_cluster_fs(), four_cluster_grid()]


@st.composite
def loop_and_machine(draw):
    seed = draw(st.integers(min_value=0, max_value=100_000))
    machine = draw(st.sampled_from(MACHINES))
    rng = random.Random(seed)
    return generate_loop(rng, GeneratorProfile()), machine


class TestScheduleProperties:
    @given(loop_and_machine())
    @settings(max_examples=50, deadline=None)
    def test_compiled_schedule_has_no_violations(self, case):
        ddg, machine = case
        result = compile_loop(ddg, machine)
        assert check_schedule(result.schedule) == []

    @given(loop_and_machine())
    @settings(max_examples=50, deadline=None)
    def test_ii_at_least_unified_mii(self, case):
        ddg, machine = case
        result = compile_loop(ddg, machine)
        assert result.ii >= mii(ddg, machine.unified_equivalent())

    @given(loop_and_machine())
    @settings(max_examples=40, deadline=None)
    def test_annotated_recmii_within_final_ii(self, case):
        ddg, machine = case
        result = compile_loop(ddg, machine)
        assert rec_mii(result.annotated.ddg) <= result.ii

    @given(loop_and_machine())
    @settings(max_examples=30, deadline=None)
    def test_copies_only_on_clustered_edges(self, case):
        ddg, machine = case
        result = compile_loop(ddg, machine)
        annotated = result.annotated
        for copy_id in annotated.copy_nodes:
            src_cluster = annotated.cluster_of[copy_id]
            for target in annotated.copy_targets[copy_id]:
                assert target != src_cluster
                assert machine.interconnect.reachable(src_cluster, target)

    @given(st.integers(min_value=0, max_value=50_000))
    @settings(max_examples=25, deadline=None)
    def test_all_variants_valid_when_they_succeed(self, seed):
        rng = random.Random(seed)
        ddg = generate_loop(rng, GeneratorProfile())
        machine = two_cluster_gp()
        for config in ALL_VARIANTS:
            result = compile_loop(ddg, machine, config=config)
            assert check_schedule(result.schedule) == []


class TestDeterminismProperty:
    @given(st.integers(min_value=0, max_value=50_000))
    @settings(max_examples=25, deadline=None)
    def test_compilation_is_deterministic(self, seed):
        rng1, rng2 = random.Random(seed), random.Random(seed)
        ddg1 = generate_loop(rng1, GeneratorProfile())
        ddg2 = generate_loop(rng2, GeneratorProfile())
        machine = two_cluster_gp()
        r1 = compile_loop(ddg1, machine)
        r2 = compile_loop(ddg2, machine)
        assert r1.ii == r2.ii
        assert r1.copy_count == r2.copy_count
        assert r1.schedule.start == r2.schedule.start
