"""Property-based tests on resource pool invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import two_cluster_gp
from repro.mrt import PoolOverflowError, ResourcePools


def _keys(pools):
    return sorted(pools.keys(), key=str)


@st.composite
def pool_operations(draw):
    """A sequence of reserve/release/checkpoint operations."""
    ii = draw(st.integers(min_value=1, max_value=6))
    n_ops = draw(st.integers(min_value=1, max_value=40))
    ops = []
    for _ in range(n_ops):
        kind = draw(st.sampled_from(["reserve", "release"]))
        key_index = draw(st.integers(min_value=0, max_value=8))
        ops.append((kind, key_index))
    return ii, ops


class TestPoolInvariants:
    @given(pool_operations())
    @settings(max_examples=80, deadline=None)
    def test_usage_never_exceeds_capacity_or_goes_negative(self, case):
        ii, ops = case
        pools = ResourcePools(two_cluster_gp(), ii=ii)
        keys = _keys(pools)
        for kind, key_index in ops:
            key = keys[key_index % len(keys)]
            if kind == "reserve":
                try:
                    pools.reserve([key])
                except PoolOverflowError:
                    assert pools.free(key) == 0
            else:
                try:
                    pools.release([key])
                except ValueError:
                    assert pools.used(key) == 0
            assert 0 <= pools.used(key) <= pools.capacity(key)

    @given(pool_operations())
    @settings(max_examples=60, deadline=None)
    def test_checkpoint_restore_is_exact(self, case):
        ii, ops = case
        pools = ResourcePools(two_cluster_gp(), ii=ii)
        keys = _keys(pools)
        # Apply the first half, snapshot, apply the rest, restore.
        half = len(ops) // 2
        for kind, key_index in ops[:half]:
            key = keys[key_index % len(keys)]
            try:
                pools.reserve([key]) if kind == "reserve" else (
                    pools.release([key])
                )
            except (PoolOverflowError, ValueError):
                pass
        snapshot = pools.checkpoint()
        expected = {key: pools.used(key) for key in keys}
        for kind, key_index in ops[half:]:
            key = keys[key_index % len(keys)]
            try:
                pools.reserve([key]) if kind == "reserve" else (
                    pools.release([key])
                )
            except (PoolOverflowError, ValueError):
                pass
        pools.restore(snapshot)
        assert {key: pools.used(key) for key in keys} == expected

    @given(st.integers(min_value=1, max_value=12))
    @settings(max_examples=20, deadline=None)
    def test_capacity_linear_in_ii(self, ii):
        pools = ResourcePools(two_cluster_gp(), ii=ii)
        assert pools.capacity("bus") == 2 * ii
        assert pools.capacity(("issue", 0, "gp")) == 4 * ii

    @given(st.lists(st.integers(min_value=0, max_value=8), max_size=12))
    @settings(max_examples=60, deadline=None)
    def test_can_reserve_agrees_with_reserve(self, key_indices):
        pools = ResourcePools(two_cluster_gp(), ii=2)
        keys = _keys(pools)
        request = [keys[i % len(keys)] for i in key_indices]
        if not request:
            return
        if pools.can_reserve(request):
            pools.reserve(request)  # must not raise
        else:
            with pytest.raises(PoolOverflowError):
                pools.reserve(request)
