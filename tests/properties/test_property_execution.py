"""Property: every compiled schedule executes bit-identically to the
sequential reference on the simulated clustered hardware."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ALL_VARIANTS, compile_loop
from repro.machine import (
    four_cluster_fs,
    four_cluster_grid,
    two_cluster_gp,
)
from repro.scheduling import stage_schedule
from repro.sim import simulate_schedule
from repro.workloads import GeneratorProfile, generate_loop

MACHINES = [two_cluster_gp(), four_cluster_fs(), four_cluster_grid()]


@st.composite
def loop_machine_iters(draw):
    seed = draw(st.integers(min_value=0, max_value=100_000))
    machine = draw(st.sampled_from(MACHINES))
    iterations = draw(st.integers(min_value=1, max_value=8))
    rng = random.Random(seed)
    return generate_loop(rng, GeneratorProfile()), machine, iterations


class TestExecutionEquivalence:
    @given(loop_machine_iters())
    @settings(max_examples=40, deadline=None)
    def test_compiled_schedules_execute_correctly(self, case):
        ddg, machine, iterations = case
        result = compile_loop(ddg, machine)
        report = simulate_schedule(ddg, result.schedule, iterations)
        assert report.ok, report.violations[:3]

    @given(loop_machine_iters())
    @settings(max_examples=25, deadline=None)
    def test_stage_scheduled_schedules_execute_correctly(self, case):
        """Stage scheduling must preserve executable semantics."""
        ddg, machine, iterations = case
        result = compile_loop(ddg, machine)
        staged = stage_schedule(result.schedule)
        report = simulate_schedule(ddg, staged.schedule, iterations)
        assert report.ok, report.violations[:3]

    @given(st.integers(min_value=0, max_value=50_000))
    @settings(max_examples=15, deadline=None)
    def test_all_variants_execute_correctly(self, seed):
        rng = random.Random(seed)
        ddg = generate_loop(rng, GeneratorProfile())
        machine = two_cluster_gp()
        for config in ALL_VARIANTS:
            result = compile_loop(ddg, machine, config=config)
            report = simulate_schedule(ddg, result.schedule, 4)
            assert report.ok, (config.name, report.violations[:3])
