"""MVE expansion edge cases: II=1, single-stage, empty-epilogue loops.

Beyond structural invariants, every expanded pipeline must round-trip:
the kernel rows plus per-op stages reconstruct the start cycles, and
the reconstructed schedule re-verifies against the SCHED4xx gating
rules.
"""

from collections import Counter

import pytest

from repro.codegen import expand_pipeline
from repro.core import compile_loop
from repro.ddg import Ddg, Opcode, build_ddg
from repro.scheduling import Schedule
from repro.scheduling.verify import assert_valid, check_schedule


def reconstruct(code, compiled):
    """Rebuild the start map from the expanded kernel: an op in kernel
    row r at stage s started at s*II + r."""
    start = {}
    for row_index, row in enumerate(code.kernel):
        for entry in row:
            start[entry.node_id] = entry.stage * code.ii + row_index
    return Schedule(
        annotated=compiled.schedule.annotated,
        ii=code.ii,
        start=start,
    )


def round_trip(compiled):
    code = expand_pipeline(compiled.schedule)
    rebuilt = reconstruct(code, compiled)
    assert rebuilt.start == compiled.schedule.start
    assert_valid(rebuilt)
    return code


@pytest.fixture
def ii1_loop(two_gp):
    """Three independent ops: schedules at II=1 with multiple stages
    (load latency pushes its consumer into a later stage)."""
    ddg = build_ddg(
        ops=[("ld", Opcode.LOAD), ("mul", Opcode.FP_MULT),
             ("st", Opcode.STORE)],
        deps=[("ld", "mul", 0), ("mul", "st", 0)],
    )
    compiled = compile_loop(ddg, two_gp)
    assert compiled.ii == 1
    return compiled


class TestIiOne:
    def test_kernel_is_one_cycle(self, ii1_loop):
        code = round_trip(ii1_loop)
        assert code.ii == 1
        assert len(code.kernel) == 1

    def test_every_stage_ramps(self, ii1_loop):
        code = expand_pipeline(ii1_loop.schedule)
        stages = ii1_loop.schedule.stage_count
        assert stages > 1  # the latencies force a deep pipeline
        assert code.prologue_cycles == stages - 1
        assert code.min_trip_count() == stages

    def test_rows_collapse_to_row_zero(self, ii1_loop):
        for node_id in ii1_loop.annotated.ddg.node_ids:
            assert ii1_loop.schedule.row(node_id) == 0


class TestSingleStage:
    def test_empty_prologue_and_epilogue(self, uni8):
        graph = Ddg()
        a = graph.add_node(Opcode.ALU)
        b = graph.add_node(Opcode.ALU)
        graph.add_edge(a, b, distance=1)
        compiled = compile_loop(graph, uni8)
        code = expand_pipeline(compiled.schedule)
        if compiled.schedule.stage_count == 1:
            assert code.prologue == []
            assert code.epilogue == []
            assert code.min_trip_count() == 1
        round_trip(compiled)

    def test_single_op_loop(self, two_gp):
        graph = Ddg()
        graph.add_node(Opcode.ALU)
        compiled = compile_loop(graph, two_gp)
        code = round_trip(compiled)
        assert code.static_instruction_count == \
            compiled.schedule.stage_count
        assert code.prologue_cycles == \
            (compiled.schedule.stage_count - 1) * compiled.ii


class TestEmptyEpilogueStages:
    def test_last_stage_ops_never_drain(self, two_gp):
        # Every op in the final stage appears zero times in the
        # epilogue; a loop whose ops all land in stage 0 therefore has
        # an empty epilogue even when II > 1.
        ddg = build_ddg(
            ops=[(f"n{i}", Opcode.ALU) for i in range(9)], deps=[]
        )
        compiled = compile_loop(ddg, two_gp)
        code = round_trip(compiled)
        if compiled.schedule.stage_count == 1:
            assert code.epilogue == []
        epilogue_ops = Counter(
            e.node_id for cycle in code.epilogue for e in cycle
        )
        last = compiled.schedule.stage_count - 1
        for node_id in compiled.annotated.ddg.node_ids:
            if compiled.schedule.stage(node_id) == last:
                assert epilogue_ops.get(node_id, 0) == 0


class TestRoundTripSweep:
    def test_paper_kernels_round_trip(self, two_gp, grid):
        from repro.workloads import all_kernels

        for machine in (two_gp, grid):
            for loop in all_kernels():
                compiled = compile_loop(loop, machine)
                round_trip(compiled)

    def test_violation_is_detected_after_tampering(self, ii1_loop):
        # Sanity-check the round-trip oracle itself: shifting one op
        # off its dependence-feasible cycle must surface violations.
        start = dict(ii1_loop.schedule.start)
        victim = next(iter(start))
        start[victim] += ii1_loop.schedule.stage_count * ii1_loop.ii
        tampered = Schedule(
            annotated=ii1_loop.schedule.annotated,
            ii=ii1_loop.ii, start=start,
        )
        assert check_schedule(tampered)
