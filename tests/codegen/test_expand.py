"""Software-pipeline expansion."""

import pytest

from repro.codegen import (
    expand_pipeline,
    format_kernel_only,
    format_pipelined,
)
from repro.core import compile_loop
from repro.workloads import all_kernels, build_kernel


@pytest.fixture
def lk5(two_gp):
    return compile_loop(build_kernel("lk5_tridiag"), two_gp, verify=True)


class TestExpansionStructure:
    def test_region_lengths(self, lk5):
        code = expand_pipeline(lk5.schedule)
        stages = lk5.schedule.stage_count
        assert len(code.kernel) == lk5.ii
        assert code.prologue_cycles == (stages - 1) * lk5.ii
        assert code.epilogue_cycles == (stages - 1) * lk5.ii

    def test_expansion_factor_equals_stage_count(self, lk5):
        """The classic result: flat code replicates each op S times."""
        code = expand_pipeline(lk5.schedule)
        n_ops = len(lk5.annotated.ddg)
        assert code.static_instruction_count == (
            lk5.schedule.stage_count * n_ops
        )
        assert code.expansion_factor(n_ops) == lk5.schedule.stage_count

    def test_expansion_law_holds_for_all_kernels(self, two_gp):
        for loop in all_kernels():
            result = compile_loop(loop, two_gp)
            code = expand_pipeline(result.schedule)
            n_ops = len(result.annotated.ddg)
            assert code.static_instruction_count == (
                result.schedule.stage_count * n_ops
            ), loop.name

    def test_kernel_contains_each_op_once(self, lk5):
        code = expand_pipeline(lk5.schedule)
        kernel_ops = [
            entry.node_id for cycle in code.kernel for entry in cycle
        ]
        assert sorted(kernel_ops) == sorted(lk5.annotated.ddg.node_ids)

    def test_prologue_counts_by_stage(self, lk5):
        """An op of stage s appears S-1-s times in the prologue and s
        times in the epilogue."""
        code = expand_pipeline(lk5.schedule)
        stages = lk5.schedule.stage_count
        from collections import Counter
        prologue = Counter(
            e.node_id for cycle in code.prologue for e in cycle
        )
        epilogue = Counter(
            e.node_id for cycle in code.epilogue for e in cycle
        )
        for node_id in lk5.annotated.ddg.node_ids:
            stage = lk5.schedule.stage(node_id)
            assert prologue.get(node_id, 0) == stages - 1 - stage
            assert epilogue.get(node_id, 0) == stage

    def test_single_stage_schedule_has_empty_ramp(self, uni8):
        from repro.ddg import Ddg, Opcode
        graph = Ddg()
        graph.add_node(Opcode.ALU)
        result = compile_loop(graph, uni8)
        code = expand_pipeline(result.schedule)
        assert code.prologue_cycles == 0
        assert code.epilogue_cycles == 0

    def test_min_trip_count(self, lk5):
        code = expand_pipeline(lk5.schedule)
        assert code.min_trip_count() == lk5.schedule.stage_count


class TestEmission:
    def test_flat_listing_mentions_regions(self, lk5):
        code = expand_pipeline(lk5.schedule)
        text = format_pipelined(code, lk5.schedule)
        assert "PROLOGUE" in text
        assert "KERNEL" in text
        assert "EPILOGUE" in text

    def test_flat_listing_mentions_clusters(self, lk5):
        code = expand_pipeline(lk5.schedule)
        text = format_pipelined(code, lk5.schedule)
        assert "@C0" in text

    def test_kernel_only_has_stage_predicates(self, lk5):
        text = format_kernel_only(lk5.schedule)
        assert "p0?" in text
        assert f"II={lk5.ii}" in text

    def test_kernel_only_lists_every_op(self, lk5):
        text = format_kernel_only(lk5.schedule)
        for node in lk5.annotated.ddg.nodes:
            assert str(node) in text
