"""ISSUE 7's core acceptance: pool outcomes bit-identical to serial.

The experiment engine dispatched over the warm worker pool must produce
byte-for-byte the same outcome list as the serial reference runner —
across worker counts, chunkings, and even with a worker crash injected
mid-sweep (the retry path re-runs the lost chunk, so faults shift
timing, never results).
"""

from __future__ import annotations

import pytest

from repro.analysis.engine import EngineOptions, run_engine_experiment
from repro.analysis.experiment import run_experiment
from repro.machine.presets import two_cluster_gp
from repro.service import WorkerPool
from repro.workloads import paper_suite


@pytest.fixture(scope="module")
def corpus():
    return paper_suite()[:16]


@pytest.fixture(scope="module")
def machine():
    return two_cluster_gp()


@pytest.fixture(scope="module")
def serial_outcomes(corpus, machine):
    return run_experiment(corpus, machine, strict=False).outcomes


class TestPoolDeterminism:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_pool_outcomes_equal_serial(
        self, corpus, machine, serial_outcomes, workers,
    ):
        pool = WorkerPool(workers=min(workers, 2))
        try:
            result = run_engine_experiment(
                corpus, machine,
                options=EngineOptions(workers=workers, pool=pool),
            )
            assert result.outcomes == serial_outcomes
        finally:
            pool.close()

    def test_chunk_size_does_not_change_outcomes(
        self, corpus, machine, serial_outcomes,
    ):
        pool = WorkerPool(workers=2)
        try:
            for chunk_size in (1, 3, 16):
                result = run_engine_experiment(
                    corpus, machine,
                    options=EngineOptions(
                        workers=2, chunk_size=chunk_size, pool=pool,
                    ),
                )
                assert result.outcomes == serial_outcomes
        finally:
            pool.close()

    def test_outcomes_survive_injected_worker_crash(
        self, corpus, machine, serial_outcomes, tmp_path,
    ):
        # One worker dies hard mid-sweep; the pool retries the lost
        # chunk on the replacement, so results stay bit-identical.
        marker = str(tmp_path / "crash-once")
        pool = WorkerPool(workers=2, crash_once=marker)
        try:
            result = run_engine_experiment(
                corpus, machine,
                options=EngineOptions(workers=2, pool=pool),
            )
            assert pool.stats.crashes >= 1
            assert pool.stats.retries >= 1
            assert result.outcomes == serial_outcomes
        finally:
            pool.close()

    def test_crash_past_retry_budget_degrades_to_failed(
        self, corpus, machine, tmp_path,
    ):
        marker = str(tmp_path / "crash-once")
        pool = WorkerPool(
            workers=1, max_task_retries=0, crash_once=marker,
        )
        try:
            result = run_engine_experiment(
                corpus, machine,
                options=EngineOptions(
                    workers=2, chunk_size=len(corpus), pool=pool,
                ),
            )
            assert len(result.outcomes) == len(corpus)
            assert all(
                outcome.status == "failed"
                and "worker crashed" in outcome.error
                for outcome in result.outcomes
            )
        finally:
            pool.close()
