"""The warm fork-server worker pool: dispatch, faults, lifecycle."""

from __future__ import annotations

import os

import pytest

from repro.service import (
    DeadlineExceeded,
    PoolClosedError,
    RemoteTaskError,
    TaskResult,
    WorkerPool,
    shared_pool,
    shutdown_shared_pool,
)


class TestDispatch:
    def test_ping_round_trip(self, warm_pool):
        result = warm_pool.submit("ping", "hello").result(timeout=30)
        assert isinstance(result, TaskResult)
        assert result.value["echo"] == "hello"
        assert result.value["warm"] is True
        assert result.pid == result.value["pid"]
        assert result.pid != os.getpid()

    def test_attribution_facts(self, warm_pool):
        result = warm_pool.submit("ping", None).result(timeout=30)
        assert result.queue_wait_s >= 0.0
        assert result.execute_s >= 0.0

    def test_map_yields_in_submission_order(self, warm_pool):
        payloads = list(range(16))
        values = list(warm_pool.map("ping", payloads))
        assert [value["echo"] for value in values] == payloads

    def test_unknown_task_rejected_at_submit(self, warm_pool):
        with pytest.raises(KeyError):
            warm_pool.submit("no_such_task", None)

    def test_task_exception_surfaces_as_remote_error(self, warm_pool):
        # engine_chunk with a malformed payload raises in the worker.
        future = warm_pool.submit("engine_chunk", "not-a-chunk")
        with pytest.raises(RemoteTaskError) as excinfo:
            future.result(timeout=30)
        assert excinfo.value.remote_traceback

    def test_stats_count_completions(self, warm_pool):
        before = warm_pool.stats.completed
        warm_pool.submit("ping", 1).result(timeout=30)
        assert warm_pool.stats.completed == before + 1


class TestFaults:
    def test_crashed_worker_task_is_retried(self, tmp_path):
        marker = str(tmp_path / "crash-once")
        pool = WorkerPool(workers=1, crash_once=marker)
        try:
            values = list(pool.map("ping", [1, 2, 3]))
            assert [value["echo"] for value in values] == [1, 2, 3]
            assert pool.stats.crashes >= 1
            assert pool.stats.retries >= 1
            assert pool.stats.workers_recycled >= 1
            assert os.path.exists(marker)
        finally:
            pool.close()

    def test_deadline_kills_and_recycles(self):
        pool = WorkerPool(workers=1)
        try:
            pool.warm_up()
            future = pool.submit("sleep", 30.0, deadline=0.2)
            with pytest.raises(DeadlineExceeded):
                future.result(timeout=30)
            assert pool.stats.deadline_kills == 1
            # The replacement worker comes up and serves new tasks.
            assert list(pool.map("ping", [9]))[0]["echo"] == 9
            assert pool.stats.workers_recycled >= 1
        finally:
            pool.close()


class TestLifecycle:
    def test_submit_after_close_rejected(self):
        pool = WorkerPool(workers=1)
        pool.close()
        with pytest.raises(PoolClosedError):
            pool.submit("ping", None)

    def test_close_is_idempotent(self):
        pool = WorkerPool(workers=1)
        pool.close()
        pool.close()

    def test_ensure_workers_grows(self, warm_pool):
        warm_pool.ensure_workers(3)
        assert warm_pool.n_workers >= 3

    def test_shared_pool_is_reused_and_grows(self):
        try:
            first = shared_pool(1)
            again = shared_pool(2)
            assert first is again
            assert again.n_workers >= 2
        finally:
            shutdown_shared_pool()

    def test_shared_pool_replaced_after_shutdown(self):
        try:
            first = shared_pool(1)
            shutdown_shared_pool()
            second = shared_pool(1)
            assert second is not first
            assert not second.closed
        finally:
            shutdown_shared_pool()
