"""The sharded content-addressed result cache."""

from __future__ import annotations

import json
import os

import pytest

from repro.service import ShardedResultCache

KEY = "ab" + "0" * 62
OTHER = "cd" + "1" * 62


class TestShardedCache:
    def test_round_trip(self, tmp_path):
        cache = ShardedResultCache(str(tmp_path), version=3)
        cache.put(KEY, {"status": "ok", "ii": 4})
        assert cache.get(KEY) == {"status": "ok", "ii": 4}

    def test_miss_returns_none(self, tmp_path):
        cache = ShardedResultCache(str(tmp_path), version=3)
        assert cache.get(KEY) is None

    def test_keys_spread_over_shard_directories(self, tmp_path):
        cache = ShardedResultCache(str(tmp_path), version=3)
        cache.put(KEY, {"a": 1})
        cache.put(OTHER, {"b": 2})
        assert os.path.exists(
            os.path.join(str(tmp_path), "ab", f"{KEY}.json")
        )
        assert os.path.exists(
            os.path.join(str(tmp_path), "cd", f"{OTHER}.json")
        )
        assert len(cache) == 2

    def test_version_mismatch_is_a_miss(self, tmp_path):
        old = ShardedResultCache(str(tmp_path), version=2)
        old.put(KEY, {"stale": True})
        new = ShardedResultCache(str(tmp_path), version=3)
        assert new.get(KEY) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ShardedResultCache(str(tmp_path), version=3)
        cache.put(KEY, {"fine": 1})
        path = os.path.join(str(tmp_path), "ab", f"{KEY}.json")
        with open(path, "w") as handle:
            handle.write("{ torn write")
        assert cache.get(KEY) is None

    def test_overwrite_replaces(self, tmp_path):
        cache = ShardedResultCache(str(tmp_path), version=3)
        cache.put(KEY, {"ii": 4})
        cache.put(KEY, {"ii": 5})
        assert cache.get(KEY) == {"ii": 5}
        assert len(cache) == 1

    def test_hit_rate_counters(self, tmp_path):
        cache = ShardedResultCache(str(tmp_path), version=3)
        cache.put(KEY, {"x": 1})
        cache.get(KEY)
        cache.get(OTHER)
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_short_key_rejected(self, tmp_path):
        cache = ShardedResultCache(str(tmp_path), version=3)
        with pytest.raises(ValueError):
            cache.put("ab", {"x": 1})

    def test_entries_are_plain_json(self, tmp_path):
        cache = ShardedResultCache(str(tmp_path), version=3)
        cache.put(KEY, {"ii": 4})
        path = os.path.join(str(tmp_path), "ab", f"{KEY}.json")
        with open(path) as handle:
            doc = json.load(handle)
        assert doc == {"version": 3, "value": {"ii": 4}}
