"""The async front door: admission, quotas, caching, batching, faults."""

from __future__ import annotations

import asyncio
from concurrent.futures import Future

import pytest

from repro.core.driver import compile_loop
from repro.machine.presets import two_cluster_gp
from repro.service import (
    CompileRequest,
    CompileService,
    DeadlineExceeded,
    QuotaExceededError,
    ServiceConfig,
    ServiceStats,
    WorkerPool,
    replay,
)
from repro.workloads import paper_suite


@pytest.fixture(scope="module")
def loops():
    return paper_suite()[:6]


def run(coroutine):
    return asyncio.run(coroutine)


class TestServing:
    def test_reply_matches_direct_compile(self, warm_pool, loops):
        ddg = loops[0]

        async def main():
            async with CompileService(pool=warm_pool) as service:
                return await service.submit(CompileRequest(loop=ddg))

        reply = run(main())
        direct = compile_loop(ddg, two_cluster_gp())
        assert reply.status == "ok"
        assert reply.loop == ddg.name
        assert reply.ii == direct.ii
        assert reply.mii == direct.mii
        assert reply.copies == direct.copy_count
        assert reply.cached is False
        assert reply.latency_s > 0
        assert reply.pid != 0

    def test_batched_concurrent_requests_all_answer(
        self, warm_pool, loops,
    ):
        async def main():
            config = ServiceConfig(batch_size=4)
            async with CompileService(config, pool=warm_pool) as svc:
                requests = [
                    CompileRequest(loop=ddg)
                    for _ in range(3) for ddg in loops
                ]
                replies = await replay(svc, requests)
                return replies, svc.stats

        replies, stats = run(main())
        assert len(replies) == 3 * len(loops)
        assert all(reply.status == "ok" for reply in replies)
        assert stats.batches >= 1
        assert stats.completed == len(replies)

    def test_replies_keep_request_order(self, warm_pool, loops):
        async def main():
            async with CompileService(pool=warm_pool) as svc:
                return await replay(
                    svc, [CompileRequest(loop=ddg) for ddg in loops]
                )

        replies = run(main())
        assert [r.loop for r in replies] == [ddg.name for ddg in loops]


class TestCacheAndCoalescing:
    def test_second_submit_hits_disk_cache(
        self, warm_pool, loops, tmp_path,
    ):
        ddg = loops[0]
        config = ServiceConfig(cache_dir=str(tmp_path))

        async def main():
            async with CompileService(config, pool=warm_pool) as svc:
                first = await svc.submit(CompileRequest(loop=ddg))
                second = await svc.submit(CompileRequest(loop=ddg))
                return first, second, svc.stats

        first, second, stats = run(main())
        assert first.cached is False
        assert second.cached is True
        assert (first.ii, first.mii, first.copies) == \
            (second.ii, second.mii, second.copies)
        assert stats.cache_hits == 1

    def test_cache_survives_service_restart(
        self, warm_pool, loops, tmp_path,
    ):
        ddg = loops[1]
        config = ServiceConfig(cache_dir=str(tmp_path))

        async def main():
            async with CompileService(config, pool=warm_pool) as svc:
                await svc.submit(CompileRequest(loop=ddg))
            async with CompileService(config, pool=warm_pool) as svc:
                reply = await svc.submit(CompileRequest(loop=ddg))
                return reply

        assert run(main()).cached is True

    def test_concurrent_duplicates_coalesce(
        self, warm_pool, loops, tmp_path,
    ):
        ddg = loops[2]
        config = ServiceConfig(cache_dir=str(tmp_path))

        async def main():
            async with CompileService(config, pool=warm_pool) as svc:
                replies = await asyncio.gather(*(
                    svc.submit(CompileRequest(loop=ddg))
                    for _ in range(8)
                ))
                return replies, svc.stats

        replies, stats = run(main())
        assert all(reply.status == "ok" for reply in replies)
        # Exactly one compile dispatched; the rest were coalesced.
        assert stats.coalesced == 7
        assert stats.cache_hit_rate == pytest.approx(7 / 8)


class TestAdmission:
    def test_tenant_quota_rejects_excess(self, warm_pool, loops):
        config = ServiceConfig(tenant_quota=2)

        async def main():
            async with CompileService(config, pool=warm_pool) as svc:
                results = await asyncio.gather(*(
                    svc.submit(CompileRequest(
                        loop=loops[i % len(loops)], tenant="noisy",
                    ))
                    for i in range(10)
                ), return_exceptions=True)
                return results, svc.stats

        results, stats = run(main())
        rejected = [
            r for r in results if isinstance(r, QuotaExceededError)
        ]
        served = [r for r in results if not isinstance(r, Exception)]
        assert rejected, "quota never kicked in"
        assert all(r.status == "ok" for r in served)
        assert stats.quota_rejections == len(rejected)

    def test_quotas_are_per_tenant(self, warm_pool, loops):
        config = ServiceConfig(tenant_quota=1)

        async def main():
            async with CompileService(config, pool=warm_pool) as svc:
                return await asyncio.gather(*(
                    svc.submit(CompileRequest(
                        loop=loops[i], tenant=f"tenant-{i}",
                    ))
                    for i in range(4)
                ))

        assert all(r.status == "ok" for r in run(main()))

    def test_backpressure_still_serves_everyone(self, warm_pool, loops):
        # max_pending far below the request count: excess awaiters
        # queue on the admission semaphore and still complete.
        config = ServiceConfig(max_pending=2, batch_size=2)

        async def main():
            async with CompileService(config, pool=warm_pool) as svc:
                return await replay(
                    svc,
                    [CompileRequest(loop=ddg)
                     for _ in range(3) for ddg in loops],
                )

        replies = run(main())
        assert len(replies) == 3 * len(loops)
        assert all(reply.status == "ok" for reply in replies)


class TestFaults:
    def test_worker_crash_past_retries_degrades_to_failed(
        self, loops, tmp_path,
    ):
        marker = str(tmp_path / "crash-once")
        pool = WorkerPool(
            workers=1, max_task_retries=0, crash_once=marker,
        )
        try:
            async def main():
                config = ServiceConfig(batch_size=len(loops))
                async with CompileService(config, pool=pool) as svc:
                    return await replay(
                        svc, [CompileRequest(loop=d) for d in loops],
                    ), svc.stats

            replies, stats = asyncio.run(main())
            failed = [r for r in replies if r.status == "failed"]
            assert failed, "the crashed batch never surfaced"
            assert all(
                "worker crashed" in r.error for r in failed
            )
            assert stats.worker_crash_failures == len(failed)
        finally:
            pool.close()

    def test_deadline_degrades_to_timeout_reply(self, loops):
        # The pool-level kill itself is covered in test_pool; here the
        # fake pool fails the batch deterministically so the reply
        # mapping (DeadlineExceeded -> "timeout") is exercised without
        # racing the collector's poll interval.
        class _DeadlinePool:
            def submit(self, fn_name, payload, deadline=None):
                future: Future = Future()
                future.set_exception(
                    DeadlineExceeded("task exceeded its 0.2s deadline")
                )
                return future

        async def main():
            config = ServiceConfig(deadline_s=0.2)
            service = CompileService(config, pool=_DeadlinePool())
            async with service:
                reply = await service.submit(
                    CompileRequest(loop=loops[0])
                )
                return reply, service.stats

        reply, stats = run(main())
        assert reply.status == "timeout"
        assert "deadline" in reply.error
        assert stats.deadline_timeouts == 1


class TestStats:
    def test_latency_percentiles(self):
        stats = ServiceStats()
        for value in (1.0, 2.0, 3.0, 4.0):
            stats.record_latency(value)
        assert stats.latency_percentile(0) == 1.0
        assert stats.latency_percentile(100) == 4.0
        assert stats.latency_percentile(50) == pytest.approx(2.5)

    def test_percentiles_of_empty_and_single(self):
        stats = ServiceStats()
        assert stats.latency_percentile(99) == 0.0
        stats.record_latency(0.5)
        assert stats.latency_percentile(99) == 0.5

    def test_hit_rate_counts_cache_and_coalesced(self):
        stats = ServiceStats()
        assert stats.cache_hit_rate == 0.0
        stats.requests = 10
        stats.cache_hits = 3
        stats.coalesced = 2
        assert stats.cache_hit_rate == pytest.approx(0.5)
