"""Shared fixtures for the service-layer tests.

One warm module-scoped pool serves every test that doesn't need a
dedicated (fault-injected) instance, so the suite pays worker startup
once instead of per test.
"""

from __future__ import annotations

import pytest

from repro.service import WorkerPool


@pytest.fixture(scope="module")
def warm_pool():
    pool = WorkerPool(workers=2)
    pool.warm_up()
    yield pool
    pool.close()
