"""Cycle-accurate machine simulation: positive and negative cases."""

import pytest

from repro.core import compile_loop
from repro.ddg import Ddg, Opcode
from repro.machine import four_cluster_fs, four_cluster_grid, two_cluster_gp
from repro.scheduling import Schedule
from repro.sim import (
    assert_executes_correctly,
    simulate_schedule,
)
from repro.workloads import all_kernels, paper_suite


class TestCleanExecution:
    def test_intro_example_unified(self, intro_example, uni8):
        result = compile_loop(intro_example, uni8)
        report = simulate_schedule(intro_example, result.schedule, 5)
        assert report.ok
        assert report.checked_values == 5 * len(intro_example)

    def test_intro_example_clustered(self, intro_example, two_gp):
        result = compile_loop(intro_example, two_gp)
        assert_executes_correctly(intro_example, result.schedule, 6)

    def test_every_kernel_every_machine(self, any_clustered_machine):
        for loop in all_kernels():
            result = compile_loop(loop, any_clustered_machine)
            report = simulate_schedule(loop, result.schedule, 4)
            assert report.ok, (loop.name, report.violations[:3])

    def test_copies_transport_correct_iterations(self, two_gp):
        """A loop-carried cross-cluster value is the acid test."""
        graph = Ddg(name="carried")
        producers = [graph.add_node(Opcode.ALU) for _ in range(9)]
        consumer = graph.add_node(Opcode.FP_ADD, name="c")
        graph.add_edge(producers[0], consumer, distance=2)
        for p in producers[1:]:
            graph.add_edge(producers[0], p, distance=0)
        result = compile_loop(graph, two_gp)
        assert_executes_correctly(graph, result.schedule, 7)

    def test_grid_multi_hop_values_arrive(self, grid):
        graph = Ddg(name="fan")
        src = graph.add_node(Opcode.FP_ADD)
        sinks = [graph.add_node(Opcode.LOAD) for _ in range(8)]
        for sink in sinks:
            graph.add_edge(src, sink, distance=0)
        result = compile_loop(graph, grid)
        assert_executes_correctly(graph, result.schedule, 4)

    def test_single_iteration(self, chain3, two_gp):
        result = compile_loop(chain3, two_gp)
        assert simulate_schedule(chain3, result.schedule, 1).ok

    def test_report_cycle_count(self, chain3, uni8):
        result = compile_loop(chain3, uni8)
        report = simulate_schedule(chain3, result.schedule, 3)
        assert report.cycles >= result.ii * 3


class TestNegativeCases:
    """Corrupted schedules must be caught by execution."""

    def _compiled(self, graph, machine):
        return compile_loop(graph, machine)

    def test_shuffled_starts_detected(self, intro_example, two_gp):
        result = self._compiled(intro_example, two_gp)
        starts = dict(result.schedule.start)
        keys = list(starts)
        # Swap two ops' start cycles to break latencies.
        starts[keys[0]], starts[keys[-1]] = starts[keys[-1]], starts[keys[0]]
        bad = Schedule(
            annotated=result.annotated, ii=result.ii, start=starts
        )
        report = simulate_schedule(intro_example, bad, 5)
        assert not report.ok

    def test_wrong_cluster_read_detected(self, two_gp):
        """Moving a consumer to another cluster without a copy starves
        it: the simulator reports a dataflow violation."""
        graph = Ddg()
        producer = graph.add_node(Opcode.ALU)
        consumer = graph.add_node(Opcode.ALU)
        graph.add_edge(producer, consumer, distance=0)
        result = self._compiled(graph, two_gp)
        annotated = result.annotated
        # Corrupt: teleport the consumer to the other cluster.
        victim = consumer
        original_cluster = annotated.cluster_of[victim]
        annotated.cluster_of[victim] = 1 - original_cluster
        report = simulate_schedule(graph, result.schedule, 3)
        assert any(v.kind == "dataflow" for v in report.violations)
        annotated.cluster_of[victim] = original_cluster

    def test_premature_read_detected(self, chain3, uni8):
        result = self._compiled(chain3, uni8)
        starts = dict(result.schedule.start)
        ld, mul, st = chain3.node_ids
        starts[mul] = starts[ld]  # reads the load's result too early
        bad = Schedule(
            annotated=result.annotated, ii=result.ii, start=starts
        )
        report = simulate_schedule(chain3, bad, 3)
        assert any(
            v.kind in ("timing", "dataflow") for v in report.violations
        )

    def test_resource_oversubscription_detected(self, uni8):
        graph = Ddg()
        nodes = [graph.add_node(Opcode.ALU) for _ in range(9)]
        from repro.ddg import trivial_annotation
        annotated = trivial_annotation(graph, uni8)
        bad = Schedule(
            annotated=annotated, ii=2, start={n: 0 for n in nodes}
        )
        report = simulate_schedule(graph, bad, 2)
        assert any(v.kind == "resource" for v in report.violations)

    def test_assert_raises_on_bad_schedule(self, chain3, uni8):
        result = self._compiled(chain3, uni8)
        starts = dict(result.schedule.start)
        ld, mul, st = chain3.node_ids
        starts[st] = starts[mul]
        bad = Schedule(
            annotated=result.annotated, ii=result.ii, start=starts
        )
        with pytest.raises(AssertionError):
            assert_executes_correctly(chain3, bad, 3)


class TestSuiteSweep:
    def test_synthetic_slice_executes_on_all_machines(self):
        machines = [two_cluster_gp(), four_cluster_fs(), four_cluster_grid()]
        for loop in paper_suite(15, include_kernels=False):
            for machine in machines:
                result = compile_loop(loop, machine)
                report = simulate_schedule(loop, result.schedule, 4)
                assert report.ok, (loop.name, machine.name)
