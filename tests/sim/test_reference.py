"""Sequential reference interpreter."""

import pytest

from repro.ddg import Ddg, Opcode, build_ddg
from repro.sim import reference_execute, value_inputs
from repro.sim.values import combine, live_in


class TestValueInputs:
    def test_value_edges_only(self):
        graph = build_ddg(
            ops=[("st", Opcode.STORE), ("ld", Opcode.LOAD),
                 ("add", Opcode.ALU)],
            deps=[("st", "ld", 1), ("ld", "add", 0)],
        )
        ld, add = 1, 2
        assert value_inputs(graph, ld) == []  # store edge carries no data
        assert value_inputs(graph, add) == [(ld, 0)]

    def test_input_order_is_edge_order(self):
        graph = Ddg()
        a = graph.add_node(Opcode.ALU)
        b = graph.add_node(Opcode.ALU)
        c = graph.add_node(Opcode.FP_ADD)
        graph.add_edge(b, c, distance=0)
        graph.add_edge(a, c, distance=0)
        assert value_inputs(graph, c) == [(b, 0), (a, 0)]


class TestReferenceExecute:
    def test_chain_values_deterministic(self, chain3):
        first = reference_execute(chain3, 4)
        second = reference_execute(chain3, 4)
        assert first == second

    def test_all_nodes_all_iterations_present(self, intro_example):
        values = reference_execute(intro_example, 3)
        assert len(values) == 3 * len(intro_example)

    def test_iterations_differ(self, chain3):
        values = reference_execute(chain3, 2)
        ld = chain3.node_ids[0]
        assert values[(ld, 0)] != values[(ld, 1)]

    def test_recurrence_threads_previous_iteration(self, accumulator):
        ld, acc = accumulator.node_ids
        values = reference_execute(accumulator, 3)
        # acc at iteration 1 must depend on acc at iteration 0: recompute.
        from repro.sim.reference import OPCODE_INDEX
        expected = combine(
            acc,
            OPCODE_INDEX[accumulator.node(acc).opcode],
            (values[(ld, 1)], values[(acc, 0)]),
        )
        assert values[(acc, 1)] == expected

    def test_live_in_for_first_iteration(self, accumulator):
        ld, acc = accumulator.node_ids
        values = reference_execute(accumulator, 1)
        from repro.sim.reference import OPCODE_INDEX
        expected = combine(
            acc,
            OPCODE_INDEX[accumulator.node(acc).opcode],
            (values[(ld, 0)], live_in(acc, -1)),
        )
        assert values[(acc, 0)] == expected

    def test_zero_iterations_rejected(self, chain3):
        with pytest.raises(ValueError):
            reference_execute(chain3, 0)

    def test_zero_distance_cycle_rejected(self):
        graph = Ddg()
        a = graph.add_node(Opcode.ALU)
        b = graph.add_node(Opcode.ALU)
        graph.add_edge(a, b, distance=0)
        graph.add_edge(b, a, distance=0)
        with pytest.raises(ValueError):
            reference_execute(graph, 1)
