"""Fine-grained simulator semantics: broadcast delivery, copy timing,
live-in seeding, multi-hop chains."""

import pytest

from repro.core import compile_loop, plan_copies, build_annotated
from repro.ddg import Ddg, Opcode
from repro.machine import four_cluster_gp, four_cluster_grid
from repro.scheduling import modulo_schedule
from repro.sim import simulate_schedule
from repro.sim.values import combine, live_in, source_value


class TestValueAlgebra:
    def test_digests_deterministic(self):
        assert combine(1, 2, (3, 4)) == combine(1, 2, (3, 4))
        assert live_in(5, -1) == live_in(5, -1)
        assert source_value(1, 2, 3) == source_value(1, 2, 3)

    def test_digests_discriminate_node(self):
        assert combine(1, 2, (3,)) != combine(2, 2, (3,))

    def test_digests_discriminate_inputs_and_order(self):
        assert combine(1, 2, (3, 4)) != combine(1, 2, (4, 3))
        assert combine(1, 2, (3,)) != combine(1, 2, (3, 3))

    def test_source_values_differ_by_iteration(self):
        assert source_value(1, 2, 0) != source_value(1, 2, 1)

    def test_live_in_differs_by_iteration(self):
        assert live_in(1, -1) != live_in(1, -2)


class TestBroadcastDelivery:
    def test_one_copy_feeds_three_clusters(self):
        machine = four_cluster_gp()
        graph = Ddg()
        producer = graph.add_node(Opcode.ALU, name="p")
        consumers = [
            graph.add_node(Opcode.FP_ADD, name=f"c{i}") for i in range(3)
        ]
        for consumer in consumers:
            graph.add_edge(producer, consumer, distance=0)
        cluster_of = {producer: 0}
        cluster_of.update({c: i + 1 for i, c in enumerate(consumers)})
        plans = {producer: plan_copies(machine, producer, 0, {1, 2, 3})}
        annotated = build_annotated(graph, machine, cluster_of, plans)
        schedule = modulo_schedule(annotated, ii=2)
        assert schedule is not None
        report = simulate_schedule(graph, schedule, 4)
        assert report.ok, report.violations[:3]

    def test_multi_hop_chain_timing(self):
        """Grid diagonal: the value needs two cycles of copies; any
        schedule the library produces must satisfy that in execution."""
        machine = four_cluster_grid()
        graph = Ddg()
        producer = graph.add_node(Opcode.ALU, name="p")
        consumer = graph.add_node(Opcode.FP_ADD, name="c")
        graph.add_edge(producer, consumer, distance=0)
        cluster_of = {producer: 0, consumer: 3}
        plans = {producer: plan_copies(machine, producer, 0, {3})}
        annotated = build_annotated(graph, machine, cluster_of, plans)
        schedule = modulo_schedule(annotated, ii=2)
        assert schedule is not None
        report = simulate_schedule(graph, schedule, 4)
        assert report.ok
        # The consumer necessarily issues >= producer latency + 2 hops.
        assert (schedule.start[consumer]
                >= schedule.start[producer] + 1 + 2)


class TestLiveInSeeding:
    def test_distance_two_first_iterations_use_live_ins(self):
        machine = four_cluster_gp()
        graph = Ddg()
        a = graph.add_node(Opcode.ALU)
        b = graph.add_node(Opcode.ALU)
        graph.add_edge(a, b, distance=2)
        result = compile_loop(graph, machine)
        report = simulate_schedule(graph, result.schedule, 2)
        # Only iterations -2 and -1 of a are live-ins; both reads hit
        # them, values must still match (reference uses the same seeds).
        assert report.ok

    def test_cross_cluster_live_in_seeded_on_targets(self):
        """If a carried value crosses clusters, its pre-loop instances
        must be present in the *target* register file too."""
        machine = four_cluster_gp()
        graph = Ddg()
        producer = graph.add_node(Opcode.ALU, name="p")
        spam = [graph.add_node(Opcode.ALU) for _ in range(15)]
        consumer = graph.add_node(Opcode.FP_ADD, name="c")
        for node in spam:
            graph.add_edge(producer, node, distance=0)
        graph.add_edge(producer, consumer, distance=3)
        result = compile_loop(graph, machine)
        report = simulate_schedule(graph, result.schedule, 6)
        assert report.ok, report.violations[:3]


class TestReportFields:
    def test_checked_value_count(self, chain3, two_gp):
        result = compile_loop(chain3, two_gp)
        report = simulate_schedule(chain3, result.schedule, 5)
        assert report.checked_values == 5 * len(chain3)

    def test_resource_check_optional(self, chain3, two_gp):
        result = compile_loop(chain3, two_gp)
        report = simulate_schedule(
            chain3, result.schedule, 3, check_resources=False
        )
        assert report.ok

    def test_zero_iterations_rejected(self, chain3, two_gp):
        result = compile_loop(chain3, two_gp)
        with pytest.raises(ValueError):
            simulate_schedule(chain3, result.schedule, 0)
