"""Copy planning and routing state."""

import pytest

from repro.core import RoutingState, plan_copies
from repro.ddg import Ddg, Opcode
from repro.mrt import PoolOverflowError, ResourcePools


class TestPlanCopies:
    def test_no_needed_clusters_empty_plan(self, two_gp):
        plan = plan_copies(two_gp, producer=0, producer_cluster=0,
                           needed_clusters=set())
        assert plan.copy_count == 0
        assert plan.resources == ()

    def test_home_cluster_filtered_out(self, two_gp):
        plan = plan_copies(two_gp, 0, 0, {0})
        assert plan.copy_count == 0

    def test_bus_single_target(self, two_gp):
        plan = plan_copies(two_gp, 0, 0, {1})
        assert plan.copy_count == 1
        assert plan.specs[0].targets == (1,)
        assert "bus" in plan.resources

    def test_bus_broadcast_shares_one_copy(self, four_gp):
        plan = plan_copies(four_gp, 0, 0, {1, 2, 3})
        assert plan.copy_count == 1
        assert plan.specs[0].targets == (1, 2, 3)
        assert list(plan.resources).count("bus") == 1
        assert list(plan.resources).count(("rd", 0)) == 1

    def test_broadcast_sharing_disabled(self, four_gp):
        plan = plan_copies(four_gp, 0, 0, {1, 2, 3}, share_broadcast=False)
        assert plan.copy_count == 3
        assert list(plan.resources).count("bus") == 3

    def test_grid_neighbor_single_hop(self, grid):
        plan = plan_copies(grid, 0, 0, {1})
        assert plan.copy_count == 1
        assert ("link", 0, 1) in plan.resources

    def test_grid_diagonal_two_hops(self, grid):
        plan = plan_copies(grid, 0, 0, {3})
        assert plan.copy_count == 2
        # First hop leaves cluster 0, second arrives at cluster 3.
        assert plan.specs[0].src_cluster == 0
        assert plan.specs[1].targets == (3,)

    def test_grid_union_shares_hops(self, grid):
        # Reaching 1 and 3 via 0->1->3 shares the first hop.
        plan = plan_copies(grid, 0, 0, {1, 3})
        assert plan.copy_count == 2

    def test_grid_hop_order_is_dependence_order(self, grid):
        plan = plan_copies(grid, 0, 0, {1, 2, 3})
        reached = {0}
        for spec in plan.specs:
            assert spec.src_cluster in reached
            reached.update(spec.targets)
        assert {1, 2, 3} <= reached


@pytest.fixture
def routing(two_gp):
    """A producer-consumer pair on the 2-cluster GP machine at II 2."""
    graph = Ddg()
    producer = graph.add_node(Opcode.ALU, name="p")
    consumer = graph.add_node(Opcode.ALU, name="c")
    other = graph.add_node(Opcode.ALU, name="o")
    graph.add_edge(producer, consumer, distance=0)
    graph.add_edge(producer, other, distance=0)
    pools = ResourcePools(two_gp, ii=2)
    return RoutingState(graph, two_gp, pools), graph, pools


class TestRoutingState:
    def test_same_cluster_needs_no_copies(self, routing):
        state, graph, pools = routing
        state.set_cluster(0, 0)
        state.set_cluster(1, 0)
        assert state.total_copies() == 0
        assert pools.used("bus") == 0

    def test_cross_cluster_consumer_triggers_copy(self, routing):
        state, graph, pools = routing
        state.set_cluster(0, 0)
        state.set_cluster(1, 1)
        assert state.total_copies() == 1
        assert state.required_copies(0) == 1
        assert pools.used("bus") == 1
        assert pools.used(("rd", 0)) == 1
        assert pools.used(("wr", 1)) == 1

    def test_broadcast_extends_without_second_copy(self, routing):
        state, graph, pools = routing
        state.set_cluster(0, 0)
        state.set_cluster(1, 1)
        state.set_cluster(2, 1)
        assert state.total_copies() == 1

    def test_unassign_releases_copy_resources(self, routing):
        state, graph, pools = routing
        state.set_cluster(0, 0)
        state.set_cluster(1, 1)
        state.unassign_unplanned(1)
        for producer in state.affected_producers(1):
            state.replan(producer)
        assert state.total_copies() == 0
        assert pools.used("bus") == 0

    def test_unassigned_value_consumers(self, routing):
        state, graph, pools = routing
        assert state.unassigned_value_consumers(0) == 2
        state.set_cluster(1, 0)
        assert state.unassigned_value_consumers(0) == 1

    def test_needed_clusters(self, routing):
        state, graph, pools = routing
        state.set_cluster(0, 0)
        state.set_cluster(1, 1)
        assert state.needed_clusters(0) == {1}

    def test_snapshot_restore(self, routing):
        state, graph, pools = routing
        state.set_cluster(0, 0)
        snap = state.snapshot()
        pools_snap = pools.checkpoint()
        state.set_cluster(1, 1)
        state.restore(snap)
        pools.restore(pools_snap)
        assert state.total_copies() == 0
        assert 1 not in state.cluster_of

    def test_overflow_when_bus_exhausted(self, two_gp):
        # II 1: bus capacity 2, rd port capacity 1 per cluster.
        graph = Ddg()
        p1 = graph.add_node(Opcode.ALU)
        c1 = graph.add_node(Opcode.ALU)
        p2 = graph.add_node(Opcode.ALU)
        c2 = graph.add_node(Opcode.ALU)
        graph.add_edge(p1, c1, distance=0)
        graph.add_edge(p2, c2, distance=0)
        pools = ResourcePools(two_gp, ii=1)
        state = RoutingState(graph, two_gp, pools)
        state.set_cluster(p1, 0)
        state.set_cluster(c1, 1)  # consumes the single rd slot on C0
        state.set_cluster(p2, 0)
        with pytest.raises(PoolOverflowError):
            state.set_cluster(c2, 1)

    def test_double_assignment_rejected(self, routing):
        state, graph, pools = routing
        state.set_cluster(0, 0)
        with pytest.raises(ValueError):
            state.set_cluster(0, 1)

    def test_memory_edges_never_copy(self, two_gp):
        graph = Ddg()
        store = graph.add_node(Opcode.STORE)
        load = graph.add_node(Opcode.LOAD)
        graph.add_edge(store, load, distance=1)
        pools = ResourcePools(two_gp, ii=2)
        state = RoutingState(graph, two_gp, pools)
        state.set_cluster(store, 0)
        state.set_cluster(load, 1)
        assert state.total_copies() == 0

    def test_self_loop_needs_no_copy(self, accumulator, two_gp):
        pools = ResourcePools(two_gp, ii=2)
        state = RoutingState(accumulator, two_gp, pools)
        state.set_cluster(accumulator.node_ids[1], 0)
        assert state.total_copies() == 0
