"""Algorithm variant configurations."""

import pytest

from repro.core import (
    ALL_VARIANTS,
    HEURISTIC,
    HEURISTIC_ITERATIVE,
    NO_BROADCAST_SHARING,
    NO_PREDICTION,
    SIMPLE,
    SIMPLE_ITERATIVE,
)


class TestVariantDefinitions:
    def test_four_paper_variants(self):
        assert len(ALL_VARIANTS) == 4
        names = {config.name for config in ALL_VARIANTS}
        assert names == {
            "Simple", "Heuristic", "Simple Iterative", "Heuristic Iterative",
        }

    def test_simple_disables_heuristic_and_iteration(self):
        assert not SIMPLE.use_heuristic
        assert not SIMPLE.iterative

    def test_heuristic_iterative_enables_both(self):
        assert HEURISTIC_ITERATIVE.use_heuristic
        assert HEURISTIC_ITERATIVE.iterative

    def test_mixed_variants(self):
        assert HEURISTIC.use_heuristic and not HEURISTIC.iterative
        assert not SIMPLE_ITERATIVE.use_heuristic
        assert SIMPLE_ITERATIVE.iterative

    def test_ablations_start_from_full_algorithm(self):
        assert NO_PREDICTION.use_heuristic and NO_PREDICTION.iterative
        assert not NO_PREDICTION.predict_copies
        assert not NO_BROADCAST_SHARING.share_broadcast

    def test_with_budget(self):
        custom = HEURISTIC_ITERATIVE.with_budget(3)
        assert custom.budget_ratio == 3
        assert custom.name == HEURISTIC_ITERATIVE.name
        assert HEURISTIC_ITERATIVE.budget_ratio == 6  # original intact

    def test_configs_frozen(self):
        with pytest.raises(AttributeError):
            SIMPLE.iterative = True
