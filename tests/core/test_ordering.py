"""Assignment work-list construction (Section 4.1)."""


from repro.core import build_assignment_order
from repro.ddg import Ddg, Opcode


class TestAssignmentOrder:
    def test_covers_all_nodes(self, intro_example):
        order = build_assignment_order(intro_example, ii=4)
        assert sorted(order.order) == sorted(intro_example.node_ids)

    def test_rank_matches_order(self, intro_example):
        order = build_assignment_order(intro_example, ii=4)
        for position, node in enumerate(order.order):
            assert order.rank[node] == position
            assert order.priority_of(node) == position

    def test_scc_nodes_lead(self, intro_example):
        order = build_assignment_order(intro_example, ii=4)
        scc_nodes = set(intro_example.node_ids[1:4])
        assert set(order.order[:3]) == scc_nodes

    def test_scc_lookup(self, intro_example):
        order = build_assignment_order(intro_example, ii=4)
        b = intro_example.node_ids[1]
        a = intro_example.node_ids[0]
        assert order.scc_of(b) is not None
        assert order.scc_of(a) is None

    def test_critical_scc_before_minor_scc(self):
        graph = Ddg()
        minor = [graph.add_node(Opcode.ALU) for _ in range(2)]
        graph.add_edge(minor[0], minor[1], distance=0)
        graph.add_edge(minor[1], minor[0], distance=1)
        major = [graph.add_node(Opcode.FP_DIV) for _ in range(2)]
        graph.add_edge(major[0], major[1], distance=0)
        graph.add_edge(major[1], major[0], distance=1)
        order = build_assignment_order(graph, ii=18)
        assert set(order.order[:2]) == set(major)

    def test_single_node_graph(self):
        graph = Ddg()
        node = graph.add_node(Opcode.ALU)
        order = build_assignment_order(graph, ii=1)
        assert order.order == [node]
