"""The cluster assignment phase."""

import pytest

from repro.core import (
    HEURISTIC,
    HEURISTIC_ITERATIVE,
    SIMPLE,
    SIMPLE_ITERATIVE,
    AssignmentStats,
    assign_clusters,
)
from repro.ddg import Ddg, Opcode
from repro.machine import two_cluster_gp
from repro.scheduling import assert_valid, modulo_schedule


class TestBasics:
    def test_unified_machine_trivial(self, chain3, uni8):
        annotated = assign_clusters(chain3, uni8, ii=2)
        assert annotated is not None
        assert set(annotated.cluster_of.values()) == {0}
        assert annotated.copy_count == 0

    def test_empty_graph_rejected(self, two_gp):
        with pytest.raises(ValueError):
            assign_clusters(Ddg(), two_gp, ii=1)

    def test_small_loop_fits_one_cluster(self, chain3, two_gp):
        annotated = assign_clusters(chain3, two_gp, ii=2)
        assert annotated is not None
        assert annotated.copy_count == 0
        clusters = {annotated.cluster_of[n] for n in chain3.node_ids}
        assert len(clusters) == 1

    def test_annotated_graph_validates(self, intro_example, two_gp):
        annotated = assign_clusters(intro_example, two_gp, ii=4)
        assert annotated is not None
        annotated.validate()

    def test_stats_populated(self, intro_example, two_gp):
        stats = AssignmentStats(ii=4)
        annotated = assign_clusters(
            intro_example, two_gp, ii=4, stats=stats
        )
        assert annotated is not None
        assert stats.succeeded
        assert stats.placements >= len(intro_example)


class TestSccCohesion:
    def test_scc_stays_on_one_cluster_when_it_fits(self, intro_example,
                                                   two_gp):
        annotated = assign_clusters(intro_example, two_gp, ii=4)
        assert annotated is not None
        scc_nodes = intro_example.node_ids[1:4]
        clusters = {annotated.cluster_of[n] for n in scc_nodes}
        assert len(clusters) == 1

    def test_paper_example_achieves_mii(self, intro_example):
        """Section 3.2: SCC-first + prediction achieves II = 4 on a
        2-cluster machine (per-cluster width 1 scaled up here: the real
        configuration still matches the unified II)."""
        machine = two_cluster_gp()
        annotated = assign_clusters(intro_example, machine, ii=4)
        assert annotated is not None
        schedule = modulo_schedule(annotated, ii=4)
        assert schedule is not None
        assert_valid(schedule)


class TestResourceSplitting:
    def _wide_loop(self, n_ops):
        graph = Ddg()
        src = graph.add_node(Opcode.ALU, name="src")
        for i in range(n_ops - 1):
            node = graph.add_node(Opcode.ALU, name=f"op{i}")
            graph.add_edge(src, node, distance=0)
        return graph

    def test_wide_loop_must_split(self, two_gp):
        # 16 ops at II 2 exceed one 4-wide cluster (capacity 8).
        graph = self._wide_loop(16)
        annotated = assign_clusters(graph, two_gp, ii=2)
        assert annotated is not None
        clusters = {
            annotated.cluster_of[n]
            for n in range(16)
        }
        assert clusters == {0, 1}
        # src's value feeds both clusters: exactly one broadcast copy.
        assert annotated.copy_count == 1

    def test_assignment_fails_when_nothing_fits(self, two_gp):
        # 17 ops cannot fit 2 clusters x 4 units x II 2 = 16 slots.
        graph = self._wide_loop(17)
        assert assign_clusters(graph, two_gp, ii=2) is None

    def test_larger_ii_recovers(self, two_gp):
        graph = self._wide_loop(17)
        annotated = assign_clusters(graph, two_gp, ii=3)
        assert annotated is not None


class TestVariants:
    @pytest.mark.parametrize(
        "config", [SIMPLE, HEURISTIC, SIMPLE_ITERATIVE, HEURISTIC_ITERATIVE]
    )
    def test_all_variants_produce_valid_assignments(
        self, config, intro_example, two_gp
    ):
        annotated = assign_clusters(intro_example, two_gp, ii=4,
                                    config=config)
        if annotated is not None:
            annotated.validate()
            schedule = modulo_schedule(annotated, ii=4)
            if schedule is not None:
                assert_valid(schedule)

    def test_non_iterative_gives_up_on_first_failure(self, two_gp):
        graph = TestResourceSplitting()._wide_loop(17)
        stats = AssignmentStats(ii=2)
        result = assign_clusters(graph, two_gp, ii=2, config=HEURISTIC,
                                 stats=stats)
        assert result is None
        assert stats.evictions == 0

    def test_iterative_uses_evictions_under_pressure(self, two_gp):
        # A graph that tends to need revisiting: two interleaved wide
        # fan-outs plus port pressure at a tight II.
        graph = Ddg()
        p1 = graph.add_node(Opcode.ALU)
        p2 = graph.add_node(Opcode.ALU)
        for i in range(12):
            node = graph.add_node(Opcode.ALU)
            graph.add_edge(p1 if i % 2 else p2, node, distance=0)
        stats = AssignmentStats(ii=2)
        annotated = assign_clusters(
            graph, two_gp, ii=2, config=HEURISTIC_ITERATIVE, stats=stats
        )
        if annotated is not None:
            annotated.validate()


class TestGridAssignment:
    def test_grid_copies_are_single_hop_chains(self, grid):
        # Producer fans out to consumers that cannot all share a cluster.
        graph = Ddg()
        producer = graph.add_node(Opcode.FP_ADD)
        loads = [graph.add_node(Opcode.LOAD) for _ in range(8)]
        for load in loads:
            graph.add_edge(producer, load, distance=0)
        annotated = assign_clusters(graph, grid, ii=2)
        assert annotated is not None
        annotated.validate()
        for copy_id in annotated.copy_nodes:
            src = annotated.cluster_of[copy_id]
            for target in annotated.copy_targets[copy_id]:
                assert grid.interconnect.reachable(src, target)

    def test_grid_respects_unit_classes(self, grid):
        from repro.workloads import build_kernel
        graph = build_kernel("lk1_hydro")
        annotated = assign_clusters(graph, grid, ii=3)
        assert annotated is not None
        for node in graph.nodes:
            cluster = grid.cluster(annotated.cluster_of[node.node_id])
            if not node.is_copy:
                assert cluster.issue_capacity(node.fu_class) > 0


class TestBudget:
    def test_budget_bounds_work(self, two_gp):
        # Even a pathological case terminates (returns None or result).
        graph = Ddg()
        hub = graph.add_node(Opcode.ALU)
        for _ in range(15):
            node = graph.add_node(Opcode.ALU)
            graph.add_edge(hub, node, distance=0)
            graph.add_edge(node, hub, distance=1)
        config = HEURISTIC_ITERATIVE.with_budget(2)
        result = assign_clusters(graph, two_gp, ii=2, config=config)
        if result is not None:
            result.validate()
