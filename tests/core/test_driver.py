"""The Figure 5 two-phase compilation driver."""


from repro.core import SIMPLE, compile_loop
from repro.ddg import Ddg, Opcode, mii


class TestCompileLoop:
    def test_intro_example_on_unified(self, intro_example, uni8):
        result = compile_loop(intro_example, uni8, verify=True)
        assert result.ii == 4  # RecMII bound
        assert result.copy_count == 0

    def test_intro_example_on_clustered(self, intro_example, two_gp):
        result = compile_loop(intro_example, two_gp, verify=True)
        assert result.ii == 4  # matches unified: communication hidden
        assert result.mii == 4

    def test_result_fields_consistent(self, chain3, two_gp):
        result = compile_loop(chain3, two_gp, verify=True)
        assert result.schedule.ii == result.ii
        assert result.annotated.machine is two_gp
        assert result.attempts >= 1
        assert result.ii_over_mii == result.ii - result.mii

    def test_min_ii_override(self, chain3, two_gp):
        result = compile_loop(chain3, two_gp, min_ii=5, verify=True)
        assert result.ii >= 5

    def test_min_ii_override_reports_true_mii(self, chain3, two_gp):
        # The recorded MII is the machine lower bound, not the
        # overridden starting point (and is computed exactly once).
        unified = two_gp.unified_equivalent()
        result = compile_loop(chain3, two_gp, min_ii=5)
        assert result.mii == mii(chain3, unified)
        assert result.ii_over_mii == result.ii - result.mii

    def test_mii_computed_once(self, chain3, two_gp, monkeypatch):
        import repro.core.driver as driver_module

        calls = []
        real = driver_module.mii

        def counting(ddg, machine):
            calls.append(machine.name)
            return real(ddg, machine)

        monkeypatch.setattr(driver_module, "mii", counting)
        compile_loop(chain3, two_gp, min_ii=3)
        assert len(calls) == 1
        calls.clear()
        compile_loop(chain3, two_gp)
        assert len(calls) == 1

    def test_starts_at_unified_mii(self, intro_example, two_gp):
        result = compile_loop(intro_example, two_gp)
        unified = two_gp.unified_equivalent()
        assert result.mii == mii(intro_example, unified)

    def test_stats_attached(self, intro_example, two_gp):
        result = compile_loop(intro_example, two_gp)
        assert result.assignment_stats.succeeded
        assert result.scheduler_stats.succeeded
        assert result.assignment_stats.copies == result.copy_count


class TestIiEscalation:
    def test_ii_grows_under_extreme_pressure(self, two_gp):
        # 20 ops cannot fit at the unified MII of ceil(20/8) = 3 once a
        # copy is needed... the driver must escalate but still succeed.
        graph = Ddg()
        hub = graph.add_node(Opcode.ALU)
        for _ in range(19):
            node = graph.add_node(Opcode.ALU)
            graph.add_edge(hub, node, distance=0)
        result = compile_loop(graph, two_gp, verify=True)
        assert result.ii >= 3

    def test_simple_variant_still_terminates(self, two_gp):
        graph = Ddg()
        hub = graph.add_node(Opcode.ALU)
        for _ in range(19):
            node = graph.add_node(Opcode.ALU)
            graph.add_edge(hub, node, distance=0)
        result = compile_loop(graph, two_gp, config=SIMPLE, verify=True)
        assert result.ii >= 3

    def test_all_kernels_compile_on_all_machines(
        self, any_clustered_machine
    ):
        from repro.workloads import all_kernels
        for graph in all_kernels():
            result = compile_loop(graph, any_clustered_machine, verify=True)
            assert result.ii >= 1
