"""White-box tests of the assigner's internals: rule (A) history,
forced placement, conflict counting, eviction cascades."""

import pytest

from repro.core.assignment import AssignmentStats, _Assigner
from repro.core.variants import HEURISTIC_ITERATIVE
from repro.ddg import Ddg, Opcode
from repro.machine import four_cluster_grid


def _assigner(ddg, machine, ii):
    return _Assigner(
        ddg, machine, ii, HEURISTIC_ITERATIVE, AssignmentStats(ii=ii)
    )


@pytest.fixture
def pair_graph():
    graph = Ddg()
    producer = graph.add_node(Opcode.ALU, name="p")
    consumer = graph.add_node(Opcode.ALU, name="c")
    graph.add_edge(producer, consumer, distance=0)
    return graph


class TestRuleAHistory:
    def test_history_records_assignments(self, pair_graph, two_gp):
        assigner = _assigner(pair_graph, two_gp, ii=2)
        assigner.commit(0, 1)
        assert assigner.previously_on[0] == {1}

    def test_history_clears_when_full(self, pair_graph, two_gp):
        assigner = _assigner(pair_graph, two_gp, ii=2)
        assigner._record_history(0, 0)
        assert assigner.previously_on[0] == {0}
        assigner._record_history(0, 1)
        # Covered both clusters: cleared down to the latest entry.
        assert assigner.previously_on[0] == {1}

    def test_evaluate_reports_previously_here(self, pair_graph, two_gp):
        assigner = _assigner(pair_graph, two_gp, ii=2)
        assigner.previously_on[0].add(1)
        info = assigner.evaluate(0, 1)
        assert info.previously_here
        info = assigner.evaluate(0, 0)
        assert not info.previously_here


class TestEvaluateTransactionality:
    def test_evaluate_leaves_state_untouched(self, pair_graph, two_gp):
        assigner = _assigner(pair_graph, two_gp, ii=2)
        before_pools = assigner.pools.checkpoint()
        before_clusters = dict(assigner.routing.cluster_of)
        assigner.evaluate(0, 0)
        assigner.evaluate(0, 1)
        assert assigner.pools.checkpoint() == before_pools
        assert assigner.routing.cluster_of == before_clusters

    def test_evaluate_counts_new_copies(self, pair_graph, two_gp):
        assigner = _assigner(pair_graph, two_gp, ii=2)
        assigner.commit(0, 0)
        info_far = assigner.evaluate(1, 1)
        info_near = assigner.evaluate(1, 0)
        assert info_far.new_copies == 1
        assert info_near.new_copies == 0

    def test_evaluate_infeasible_when_pool_full(self, two_gp):
        graph = Ddg()
        nodes = [graph.add_node(Opcode.ALU) for _ in range(9)]
        assigner = _assigner(graph, two_gp, ii=2)
        for node in nodes[:8]:  # fill cluster 0 (4 units x II 2)
            assigner.commit(node, 0)
        info = assigner.evaluate(nodes[8], 0)
        assert not info.feasible
        assert not info.op_fits
        assert assigner.evaluate(nodes[8], 1).feasible


class TestForcedPlacement:
    def test_force_evicts_issue_holder(self, two_gp):
        graph = Ddg()
        nodes = [graph.add_node(Opcode.ALU) for _ in range(9)]
        assigner = _assigner(graph, two_gp, ii=2)
        for node in nodes[:8]:
            assigner.commit(node, 0)
        assert assigner.force_assign(nodes[8], 0)
        assert assigner.routing.cluster_of[nodes[8]] == 0
        assert assigner.stats.evictions >= 1
        # Exactly one of the previous holders went back to the worklist.
        assert len(assigner.unassigned) == 1

    def test_forced_node_is_protected_from_its_own_eviction(self, two_gp):
        graph = Ddg()
        producer = graph.add_node(Opcode.ALU)
        consumers = [graph.add_node(Opcode.ALU) for _ in range(3)]
        for consumer in consumers:
            graph.add_edge(producer, consumer, distance=0)
        assigner = _assigner(graph, two_gp, ii=1)
        assigner.commit(consumers[0], 0)
        assigner.commit(consumers[1], 1)
        # Force the producer somewhere; it must stay assigned afterwards.
        assert assigner.force_assign(producer, 0)
        assert producer in assigner.routing.cluster_of

    def test_force_fails_on_structurally_impossible_cluster(self):
        from repro.machine import four_cluster_grid
        machine = four_cluster_grid()
        graph = Ddg()
        load = graph.add_node(Opcode.LOAD)
        assigner = _assigner(graph, machine, ii=1)
        # Every grid cluster has a memory unit, so force works fine...
        assert assigner.force_assign(load, 0)


class TestConflictCounting:
    def test_no_conflicts_when_everything_fits(self, pair_graph, two_gp):
        assigner = _assigner(pair_graph, two_gp, ii=4)
        assigner.commit(0, 0)
        assert assigner.count_conflicts(1, 1) == 0

    def test_conflicts_counted_when_ports_exhausted(self, two_gp):
        # II 1: one rd slot on C0, one bus... two producers on C0 with
        # remote consumers saturate; a third consumer placement conflicts.
        graph = Ddg()
        producers = [graph.add_node(Opcode.ALU) for _ in range(2)]
        consumers = [graph.add_node(Opcode.ALU) for _ in range(2)]
        for p, c in zip(producers, consumers):
            graph.add_edge(p, c, distance=0)
        assigner = _assigner(graph, two_gp, ii=1)
        assigner.commit(producers[0], 0)
        assigner.commit(producers[1], 0)
        assigner.commit(consumers[0], 1)  # consumes C0's only rd slot
        conflicts = assigner.count_conflicts(consumers[1], 1)
        assert conflicts >= 1

    def test_count_conflicts_is_transactional(self, pair_graph, two_gp):
        assigner = _assigner(pair_graph, two_gp, ii=2)
        assigner.commit(0, 0)
        snapshot = assigner.pools.checkpoint()
        assigner.count_conflicts(1, 1)
        assert assigner.pools.checkpoint() == snapshot
        assert 1 not in assigner.routing.cluster_of


class TestEvictionCascades:
    def test_evict_releases_everything(self, pair_graph, two_gp):
        assigner = _assigner(pair_graph, two_gp, ii=2)
        assigner.commit(0, 0)
        assigner.commit(1, 1)
        assert assigner.routing.total_copies() == 1
        assert assigner.evict(1, protect=set())
        assert assigner.routing.total_copies() == 0
        assert assigner.pools.used("bus") == 0
        assert 1 in assigner.unassigned

    def test_grid_eviction_reroute_cascade_safe(self):
        machine = four_cluster_grid()
        graph = Ddg()
        producer = graph.add_node(Opcode.FP_ADD)
        consumers = [graph.add_node(Opcode.FP_ADD) for _ in range(3)]
        for consumer in consumers:
            graph.add_edge(producer, consumer, distance=0)
        assigner = _assigner(graph, machine, ii=2)
        assigner.commit(producer, 0)
        assigner.commit(consumers[0], 1)
        assigner.commit(consumers[1], 3)  # multi-hop via 1 or 2
        # Evicting the 1-hop consumer may reroute the diagonal path.
        assert assigner.evict(consumers[0], protect=set())
        # State stays consistent: replanning accounted below capacity.
        for key in assigner.pools.keys():
            assert 0 <= assigner.pools.used(key) <= (
                assigner.pools.capacity(key)
            )
