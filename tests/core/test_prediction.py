"""PCR / MRC / UpperBound prediction (Section 4.2)."""

import pytest

from repro.core import (
    RoutingState,
    predicted_copy_requests,
    prediction_satisfied,
    upper_bound,
)
from repro.ddg import Ddg, Opcode
from repro.machine import four_cluster_grid
from repro.mrt import ResourcePools


@pytest.fixture
def fanout(two_gp):
    """Producer with three unassigned consumers on a bused machine."""
    graph = Ddg()
    producer = graph.add_node(Opcode.ALU, name="p")
    consumers = [graph.add_node(Opcode.ALU, name=f"c{i}") for i in range(3)]
    for consumer in consumers:
        graph.add_edge(producer, consumer, distance=0)
    pools = ResourcePools(two_gp, ii=2)
    state = RoutingState(graph, two_gp, pools)
    return two_gp, state, pools, producer, consumers


class TestUpperBound:
    def test_broadcast_upper_bound_is_one(self, fanout):
        machine, state, pools, producer, _ = fanout
        state.set_cluster(producer, 0)
        assert upper_bound(machine, state, producer) == 1

    def test_broadcast_bound_drops_to_zero_after_copy(self, fanout):
        machine, state, pools, producer, consumers = fanout
        state.set_cluster(producer, 0)
        state.set_cluster(consumers[0], 1)  # forces the broadcast copy
        assert state.required_copies(producer) == 1
        assert upper_bound(machine, state, producer) == 0

    def test_point_to_point_bound_is_cluster_count_minus_one(self):
        machine = four_cluster_grid()
        graph = Ddg()
        producer = graph.add_node(Opcode.ALU)
        consumer = graph.add_node(Opcode.ALU)
        graph.add_edge(producer, consumer, distance=0)
        pools = ResourcePools(machine, ii=2)
        state = RoutingState(graph, machine, pools)
        state.set_cluster(producer, 0)
        assert upper_bound(machine, state, producer) == 3

    def test_store_has_zero_bound(self, two_gp):
        graph = Ddg()
        store = graph.add_node(Opcode.STORE)
        pools = ResourcePools(two_gp, ii=2)
        state = RoutingState(graph, two_gp, pools)
        state.set_cluster(store, 0)
        assert upper_bound(two_gp, state, store) == 0


class TestPcr:
    def test_pcr_counts_min_of_bound_and_unassigned(self, fanout):
        machine, state, pools, producer, consumers = fanout
        state.set_cluster(producer, 0)
        # UpperBound 1, three unassigned successors -> min = 1.
        assert predicted_copy_requests(machine, state, {producer}) == 1

    def test_pcr_drops_as_consumers_assign(self, fanout):
        machine, state, pools, producer, consumers = fanout
        state.set_cluster(producer, 0)
        for consumer in consumers:
            state.set_cluster(consumer, 0)
        # All consumers local and assigned: nothing predicted.
        assert predicted_copy_requests(machine, state, {producer}) == 0

    def test_pcr_sums_over_cluster_nodes(self, two_gp):
        graph = Ddg()
        p1 = graph.add_node(Opcode.ALU)
        p2 = graph.add_node(Opcode.ALU)
        c1 = graph.add_node(Opcode.ALU)
        c2 = graph.add_node(Opcode.ALU)
        graph.add_edge(p1, c1, distance=0)
        graph.add_edge(p2, c2, distance=0)
        pools = ResourcePools(two_gp, ii=2)
        state = RoutingState(graph, two_gp, pools)
        state.set_cluster(p1, 0)
        state.set_cluster(p2, 0)
        assert predicted_copy_requests(two_gp, state, {p1, p2}) == 2


class TestPredictionCriterion:
    def test_satisfied_with_room(self, fanout):
        machine, state, pools, producer, _ = fanout
        state.set_cluster(producer, 0)
        # PCR 1 <= MRC min(rd 2, bus 4) = 2.
        assert prediction_satisfied(machine, state, pools, 0, {producer})

    def test_violated_when_ports_consumed(self, two_gp):
        graph = Ddg()
        producers = [graph.add_node(Opcode.ALU) for _ in range(3)]
        consumers = [graph.add_node(Opcode.ALU) for _ in range(3)]
        for p, c in zip(producers, consumers):
            graph.add_edge(p, c, distance=0)
        pools = ResourcePools(two_gp, ii=2)
        state = RoutingState(graph, two_gp, pools)
        for p in producers:
            state.set_cluster(p, 0)
        # Two copies consume both rd slots of C0 (II 2, 1 port).
        state.set_cluster(consumers[0], 1)
        state.set_cluster(consumers[1], 1)
        # Third producer still predicts a copy but MRC is now 0.
        on_cluster = set(producers)
        assert not prediction_satisfied(two_gp, state, pools, 0, on_cluster)
