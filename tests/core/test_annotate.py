"""Annotated-graph construction from finished assignments."""

import pytest

from repro.core import build_annotated, plan_copies
from repro.core.copies import CopyPlan, CopySpec
from repro.ddg import Ddg, Opcode


@pytest.fixture
def split_pair(two_gp):
    """Producer on C0, consumer on C1, with the matching plan."""
    graph = Ddg(name="pair")
    producer = graph.add_node(Opcode.ALU, name="p")
    consumer = graph.add_node(Opcode.FP_ADD, name="c")
    graph.add_edge(producer, consumer, distance=0)
    cluster_of = {producer: 0, consumer: 1}
    plan = plan_copies(two_gp, producer, 0, {1})
    return graph, two_gp, cluster_of, {producer: plan}


class TestBasicRewiring:
    def test_copy_node_inserted(self, split_pair):
        graph, machine, cluster_of, plans = split_pair
        annotated = build_annotated(graph, machine, cluster_of, plans)
        assert annotated.copy_count == 1
        assert len(annotated.ddg) == 3

    def test_edges_rerouted_through_copy(self, split_pair):
        graph, machine, cluster_of, plans = split_pair
        annotated = build_annotated(graph, machine, cluster_of, plans)
        copy_id = annotated.copy_nodes[0]
        new = annotated.ddg
        assert new.successors(0) == [copy_id]
        assert new.successors(copy_id) == [1]

    def test_copy_cluster_and_targets(self, split_pair):
        graph, machine, cluster_of, plans = split_pair
        annotated = build_annotated(graph, machine, cluster_of, plans)
        copy_id = annotated.copy_nodes[0]
        assert annotated.cluster_of[copy_id] == 0
        assert annotated.copy_targets[copy_id] == (1,)
        assert annotated.copy_value_of[copy_id] == 0

    def test_original_ids_preserved(self, split_pair):
        graph, machine, cluster_of, plans = split_pair
        annotated = build_annotated(graph, machine, cluster_of, plans)
        for node in graph.nodes:
            assert annotated.ddg.node(node.node_id).opcode is node.opcode


class TestDistanceSemantics:
    def test_loop_carried_distance_moves_to_consumer_edge(self, two_gp):
        graph = Ddg()
        producer = graph.add_node(Opcode.ALU)
        consumer = graph.add_node(Opcode.ALU)
        graph.add_edge(producer, consumer, distance=2)
        cluster_of = {producer: 0, consumer: 1}
        plans = {producer: plan_copies(two_gp, producer, 0, {1})}
        annotated = build_annotated(graph, two_gp, cluster_of, plans)
        copy_id = annotated.copy_nodes[0]
        produce_edge = annotated.ddg.out_edges(producer)[0]
        consume_edge = annotated.ddg.out_edges(copy_id)[0]
        assert produce_edge.distance == 0
        assert consume_edge.distance == 2

    def test_copy_on_recurrence_raises_recmii(self, two_gp):
        """Observation Two: a copy inside an SCC lengthens the critical
        cycle by its latency."""
        from repro.ddg import rec_mii
        graph = Ddg()
        a = graph.add_node(Opcode.ALU)
        b = graph.add_node(Opcode.ALU)
        graph.add_edge(a, b, distance=0)
        graph.add_edge(b, a, distance=1)
        assert rec_mii(graph) == 2
        cluster_of = {a: 0, b: 1}
        plans = {
            a: plan_copies(two_gp, a, 0, {1}),
            b: plan_copies(two_gp, b, 1, {0}),
        }
        annotated = build_annotated(graph, two_gp, cluster_of, plans)
        # Two copies add 2 cycles to the cycle: RecMII 2 -> 4.
        assert rec_mii(annotated.ddg) == 4


class TestBroadcast:
    def test_one_copy_feeds_multiple_clusters(self, four_gp):
        graph = Ddg()
        producer = graph.add_node(Opcode.ALU)
        consumers = [graph.add_node(Opcode.ALU) for _ in range(3)]
        for consumer in consumers:
            graph.add_edge(producer, consumer, distance=0)
        cluster_of = {producer: 0}
        cluster_of.update({c: i + 1 for i, c in enumerate(consumers)})
        plans = {producer: plan_copies(four_gp, producer, 0, {1, 2, 3})}
        annotated = build_annotated(graph, four_gp, cluster_of, plans)
        assert annotated.copy_count == 1
        copy_id = annotated.copy_nodes[0]
        assert set(annotated.ddg.successors(copy_id)) == set(consumers)


class TestMultiHop:
    def test_diagonal_chain_on_grid(self, grid):
        graph = Ddg()
        producer = graph.add_node(Opcode.FP_ADD)
        consumer = graph.add_node(Opcode.FP_ADD)
        graph.add_edge(producer, consumer, distance=0)
        cluster_of = {producer: 0, consumer: 3}
        plans = {producer: plan_copies(grid, producer, 0, {3})}
        annotated = build_annotated(graph, grid, cluster_of, plans)
        assert annotated.copy_count == 2
        # Chain: producer -> hop1 -> hop2 -> consumer.
        hop1, hop2 = annotated.copy_nodes
        assert annotated.ddg.successors(producer) == [hop1]
        assert annotated.ddg.successors(hop1) == [hop2]
        assert annotated.ddg.successors(hop2) == [consumer]


class TestErrors:
    def test_value_never_reaching_consumer_cluster(self, two_gp):
        graph = Ddg()
        producer = graph.add_node(Opcode.ALU)
        consumer = graph.add_node(Opcode.ALU)
        graph.add_edge(producer, consumer, distance=0)
        # Plan is missing even though clusters differ.
        with pytest.raises(ValueError):
            build_annotated(
                graph, two_gp, {producer: 0, consumer: 1}, {}
            )

    def test_bad_plan_reading_unreached_cluster(self, two_gp):
        graph = Ddg()
        producer = graph.add_node(Opcode.ALU)
        consumer = graph.add_node(Opcode.ALU)
        graph.add_edge(producer, consumer, distance=0)
        bogus = CopyPlan(
            producer=producer,
            specs=(CopySpec(src_cluster=1, targets=(0,)),),
            resources=(),
        )
        with pytest.raises(ValueError):
            build_annotated(
                graph, two_gp, {producer: 0, consumer: 1},
                {producer: bogus},
            )
