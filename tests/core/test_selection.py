"""Selection chains (Figures 9, 10 and 11)."""


from repro.core import (
    CandidateInfo,
    select,
    select_best_cluster,
    select_failure_cluster,
    select_min,
)


def _candidate(cluster, **overrides):
    defaults = dict(
        cluster=cluster,
        feasible=True,
        shares_scc=False,
        prediction_ok=True,
        new_copies=0,
        free_resources=10,
        previously_here=False,
        op_fits=True,
        conflicts=0,
    )
    defaults.update(overrides)
    return CandidateInfo(**defaults)


class TestSelectPrimitive:
    def test_filters_by_criterion(self):
        candidates = [_candidate(0), _candidate(1, feasible=False)]
        kept = select(candidates, lambda c: c.feasible)
        assert [c.cluster for c in kept] == [0]

    def test_keeps_list_when_criterion_empties_it(self):
        """Figure 9 line 2: LIST is replaced only if NewLIST is nonempty."""
        candidates = [_candidate(0), _candidate(1)]
        kept = select(candidates, lambda c: c.cluster > 5)
        assert kept == candidates

    def test_select_min(self):
        candidates = [
            _candidate(0, new_copies=2),
            _candidate(1, new_copies=1),
            _candidate(2, new_copies=1),
        ]
        kept = select_min(candidates, lambda c: c.new_copies)
        assert [c.cluster for c in kept] == [1, 2]

    def test_select_min_empty(self):
        assert select_min([], lambda c: 0) == []


class TestFigure10:
    def test_infeasible_everywhere_returns_none(self):
        candidates = [_candidate(c, feasible=False) for c in range(2)]
        assert select_best_cluster(candidates, False, True) is None

    def test_scc_affinity_wins(self):
        candidates = [
            _candidate(0),
            _candidate(1, shares_scc=True, free_resources=1),
        ]
        assert select_best_cluster(candidates, True, True) == 1

    def test_scc_affinity_ignored_outside_scc(self):
        candidates = [
            _candidate(0, free_resources=5),
            _candidate(1, shares_scc=True, free_resources=1),
        ]
        assert select_best_cluster(candidates, False, True) == 0

    def test_prediction_filter(self):
        candidates = [
            _candidate(0, prediction_ok=False, free_resources=99),
            _candidate(1),
        ]
        assert select_best_cluster(candidates, False, True) == 1

    def test_fewest_copies_preferred(self):
        candidates = [
            _candidate(0, new_copies=2, free_resources=99),
            _candidate(1, new_copies=0),
        ]
        assert select_best_cluster(candidates, False, True) == 1

    def test_free_resources_breaks_ties(self):
        candidates = [
            _candidate(0, free_resources=3),
            _candidate(1, free_resources=7),
        ]
        assert select_best_cluster(candidates, False, True) == 1

    def test_first_cluster_on_full_tie(self):
        candidates = [_candidate(1), _candidate(0)]
        assert select_best_cluster(candidates, False, True) == 0

    def test_rule_a_avoids_previous_cluster(self):
        candidates = [
            _candidate(0, previously_here=True),
            _candidate(1, free_resources=1),
        ]
        assert select_best_cluster(candidates, False, True) == 1

    def test_rule_a_soft_when_everything_previous(self):
        candidates = [
            _candidate(0, previously_here=True),
            _candidate(1, previously_here=True),
        ]
        assert select_best_cluster(candidates, False, True) == 0

    def test_priority_order_scc_over_prediction(self):
        """SCC affinity (line 4) is applied before prediction (line 6)."""
        candidates = [
            _candidate(0, shares_scc=True, prediction_ok=False),
            _candidate(1, prediction_ok=True),
        ]
        assert select_best_cluster(candidates, True, True) == 0

    def test_simple_variant_skips_heuristics(self):
        candidates = [
            _candidate(0, new_copies=5, free_resources=0),
            _candidate(1, new_copies=0, free_resources=99),
        ]
        # Without the heuristic, the first feasible cluster wins.
        assert select_best_cluster(candidates, False, False) == 0

    def test_simple_variant_still_applies_rule_a(self):
        candidates = [
            _candidate(0, previously_here=True),
            _candidate(1),
        ]
        assert select_best_cluster(candidates, False, False) == 1


class TestFigure11:
    def test_prefers_clusters_where_op_fits(self):
        candidates = [
            _candidate(0, op_fits=False, conflicts=0),
            _candidate(1, op_fits=True, conflicts=5),
        ]
        assert select_failure_cluster(candidates) == 1

    def test_minimizes_conflicts(self):
        candidates = [
            _candidate(0, conflicts=3),
            _candidate(1, conflicts=1),
        ]
        assert select_failure_cluster(candidates) == 1

    def test_rule_a_between_fit_and_conflicts(self):
        candidates = [
            _candidate(0, previously_here=True, conflicts=0),
            _candidate(1, conflicts=0),
        ]
        assert select_failure_cluster(candidates) == 1

    def test_nothing_fits_falls_back_to_all(self):
        candidates = [
            _candidate(0, op_fits=False, conflicts=2),
            _candidate(1, op_fits=False, conflicts=1),
        ]
        assert select_failure_cluster(candidates) == 1

    def test_empty_candidates(self):
        assert select_failure_cluster([]) is None
