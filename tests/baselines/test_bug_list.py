"""The BUG-style acyclic baseline."""

import pytest

from repro.baselines import bug_list_schedule
from repro.core import compile_loop
from repro.ddg import Ddg, Opcode
from repro.machine import unified_gp
from repro.workloads import all_kernels, build_kernel, unroll_ddg


class TestScheduleLegality:
    def test_dependences_respected(self, two_gp):
        graph = build_kernel("lk7_equation_of_state")
        result = bug_list_schedule(graph, two_gp)
        for edge in graph.edges:
            if edge.distance > 0:
                continue
            assert result.start[edge.dst] >= (
                result.start[edge.src] + graph.latency(edge.src)
            ), edge

    def test_all_ops_placed(self, two_gp):
        graph = build_kernel("butterfly_fft")
        result = bug_list_schedule(graph, two_gp)
        assert set(result.start) == set(graph.node_ids)
        assert set(result.cluster_of) == set(graph.node_ids)

    def test_issue_width_respected(self):
        graph = Ddg()
        for _ in range(10):
            graph.add_node(Opcode.ALU)
        machine = unified_gp(2)
        result = bug_list_schedule(graph, machine)
        from collections import Counter
        per_cycle = Counter(result.start.values())
        assert max(per_cycle.values()) <= 2

    def test_empty_graph_rejected(self, two_gp):
        with pytest.raises(ValueError):
            bug_list_schedule(Ddg(), two_gp)


class TestRestartInterval:
    def test_streaming_block_restarts_fast(self, two_gp):
        # No carried deps beyond induction: the folded-resource bound
        # governs and must beat the makespan.
        graph = build_kernel("lk1_hydro")
        result = bug_list_schedule(graph, two_gp)
        assert result.restart_interval <= result.makespan

    def test_recurrence_bounds_restart(self, two_gp):
        graph = build_kernel("horner_poly")  # RecMII 4
        result = bug_list_schedule(graph, two_gp)
        assert result.restart_interval >= 4

    def test_effective_ii_scales_with_unroll(self, two_gp):
        graph = build_kernel("daxpy")
        single = bug_list_schedule(graph, two_gp, unroll_factor=1)
        doubled = bug_list_schedule(
            unroll_ddg(graph, 2), two_gp, unroll_factor=2
        )
        assert doubled.effective_ii <= single.effective_ii * 1.5


class TestAgainstModuloScheduling:
    def test_modulo_never_loses(self, two_gp):
        """The paper's Related Work claim, quantified: modulo scheduling
        achieves at least the throughput of the acyclic baseline."""
        for loop in all_kernels()[:12]:
            modulo = compile_loop(loop, two_gp)
            acyclic = bug_list_schedule(loop, two_gp)
            assert modulo.ii <= acyclic.effective_ii + 1e-9, loop.name

    def test_modulo_wins_on_wide_streaming_loop(self, two_gp):
        loop = build_kernel("lk7_equation_of_state")
        modulo = compile_loop(loop, two_gp)
        acyclic = bug_list_schedule(loop, two_gp)
        assert modulo.ii < acyclic.effective_ii
