"""Copy-pressure prediction: PCR, MRC and UpperBound (paper Section 4.2).

The selection heuristic's line 6 keeps clusters where the *predicted copy
requests* fit in the *room still reservable for copies*:

.. math::

    PCR_C = \\sum_{N_i \\in C} \\min(UpperBound(N_i),
                                     UnassignedSuccessors(N_i))

``UpperBound`` caps how many more copies a producer could ever need given
the worst-case placement of its still-unassigned consumers:

* broadcast buses: ``max(0, 1 - RC(N_i))`` — a broadcast result travels
  at most once,
* otherwise: ``max(0, ClusterCount - RC(N_i) - 1)`` — at most one copy
  per other cluster.

``MRC_C`` (room for additional copies out of cluster ``C``) is computed by
:meth:`repro.mrt.pool.ResourcePools.max_reservable_copies`.
"""

from __future__ import annotations


from ..machine.machine import Machine
from .copies import RoutingState


def upper_bound(
    machine: Machine, routing: RoutingState, node_id: int
) -> int:
    """Worst-case additional copies node ``node_id`` could still need."""
    if not routing.produces_value(node_id):
        return 0
    rc = routing.required_copies(node_id)
    if machine.interconnect.broadcast:
        return max(0, 1 - rc)
    return max(0, machine.n_clusters - rc - 1)


def predicted_copy_requests(
    machine: Machine,
    routing: RoutingState,
    nodes_on_cluster: "set[int]",
) -> int:
    """PCR of one cluster given the nodes currently assigned to it.

    Inlines :func:`upper_bound` and the unassigned-consumer count over
    the routing state's internals: the selection heuristic evaluates this
    for every candidate cluster of every node, making it one of the
    hottest loops of the assignment phase.
    """
    base = 1 if machine.interconnect.broadcast else machine.n_clusters - 1
    if base <= 0:
        return 0
    produces = routing._produces_value
    plans = routing._plans
    consumers = routing._value_consumers
    cluster_of = routing.cluster_of
    total = 0
    for node_id in nodes_on_cluster:
        if not produces[node_id]:
            continue
        plan = plans.get(node_id)
        bound = base if plan is None else base - len(plan.specs)
        if bound <= 0:
            continue
        unassigned = 0
        for consumer in consumers[node_id]:
            if consumer not in cluster_of:
                unassigned += 1
        total += unassigned if unassigned < bound else bound
    return total


def prediction_satisfied(
    machine: Machine,
    routing: RoutingState,
    pools,
    cluster_index: int,
    nodes_on_cluster: "set[int]",
) -> bool:
    """The line-6 criterion: ``PCR_C <= MRC_C`` for one cluster."""
    pcr = predicted_copy_requests(machine, routing, nodes_on_cluster)
    return pcr <= pools.max_reservable_copies(cluster_index)
