"""The full two-phase compilation process (paper Figure 5).

For each candidate II starting at the unified machine's MII:

1. run the cluster assignment phase; on failure, restart at II + 1
   (a fresh assignment at the larger II generally needs fewer copies than
   patching the old one — the paper's stated reason for re-assigning);
2. run the traditional modulo scheduler on the annotated graph; on
   failure, again restart the whole process at II + 1.

The first II at which both phases succeed is the loop's final II.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .. import obs
from ..ddg.graph import Ddg
from ..ddg.mii import mii
from ..ddg.transform import AnnotatedDdg
from ..machine.machine import Machine
from ..scheduling.modulo import (
    DEFAULT_BUDGET_RATIO,
    SchedulerStats,
    modulo_schedule,
)
from ..scheduling.schedule import Schedule
from ..scheduling.verify import assert_valid
from .assignment import AssignmentStats, assign_clusters
from .variants import HEURISTIC_ITERATIVE, AssignmentConfig


class CompilationError(RuntimeError):
    """No valid schedule was found within the II safety bound."""


@dataclass
class CompiledLoop:
    """The outcome of compiling one loop for one machine."""

    ddg: Ddg
    machine: Machine
    config: AssignmentConfig
    ii: int
    mii: int
    annotated: AnnotatedDdg
    schedule: Schedule
    assignment_stats: AssignmentStats
    scheduler_stats: SchedulerStats
    attempts: int
    #: Populated when compilation ran with a lint gate
    #: (``lint_config`` passed to :func:`compile_loop`).
    lint_report: Optional[object] = None
    #: Populated when compilation ran with a certify gate
    #: (``certify_config`` passed to :func:`compile_loop`); a
    #: :class:`repro.certify.CertifiedArtifact`.
    certified: Optional[object] = None

    @property
    def certificate(self) -> Optional[object]:
        """The compile's :class:`repro.certify.Certificate`, if any."""
        return (
            self.certified.certificate
            if self.certified is not None else None
        )

    @property
    def copy_count(self) -> int:
        """Copies the assignment inserted."""
        return self.annotated.copy_count

    @property
    def ii_over_mii(self) -> int:
        """Final II excess over the unified-machine lower bound."""
        return self.ii - self.mii


def ii_search_bound(ddg: Ddg) -> int:
    """A safely large maximum II: with this much slack per iteration the
    counting constraints cannot bind and all copies serialize freely."""
    return ddg.total_latency() + 2 * len(ddg) + 16


def compile_loop(
    ddg: Ddg,
    machine: Machine,
    config: AssignmentConfig = HEURISTIC_ITERATIVE,
    scheduler_budget_ratio: int = DEFAULT_BUDGET_RATIO,
    verify: bool = False,
    min_ii: Optional[int] = None,
    lint_config=None,
    certify_config=None,
) -> CompiledLoop:
    """Assign and modulo-schedule ``ddg`` on ``machine`` (Figure 5 loop).

    ``min_ii`` overrides the starting candidate (defaults to the unified
    machine's MII, the paper's starting point).  ``verify=True`` re-checks
    every produced schedule with the independent validator.

    ``lint_config`` (a :class:`repro.lint.LintConfig`) runs the static
    analyzer over the compiled artifacts and attaches the report as
    ``CompiledLoop.lint_report``; with ``lint_config.strict`` a report
    containing errors raises :class:`CompilationError`.

    ``certify_config`` (a :class:`repro.certify.CertifyConfig`) emits
    the compilation certificate, verifies it with the independent
    checker, and attaches the result as ``CompiledLoop.certified``;
    with ``certify_config.strict`` a certificate failure raises
    :class:`CompilationError`.
    """
    unified = machine.unified_equivalent()
    machine_mii = mii(ddg, unified)
    lower = machine_mii if min_ii is None else max(1, min_ii)
    upper = lower + ii_search_bound(ddg)
    attempts = 0
    with obs.span(
        "compile", loop=ddg.name or "loop", machine=machine.name
    ) as compile_span:
        for candidate_ii in range(lower, upper + 1):
            attempts += 1
            obs.count("driver.attempts")
            with obs.span("attempt", ii=candidate_ii) as attempt_span:
                assignment_stats = AssignmentStats(ii=candidate_ii)
                annotated = assign_clusters(
                    ddg, machine, candidate_ii, config,
                    stats=assignment_stats,
                )
                if annotated is None:
                    obs.count("driver.assign_failures")
                    attempt_span.note(outcome="assign_failed")
                    continue
                scheduler_stats = SchedulerStats(ii=candidate_ii)
                schedule = modulo_schedule(
                    annotated,
                    candidate_ii,
                    budget_ratio=scheduler_budget_ratio,
                    stats=scheduler_stats,
                )
                if schedule is None:
                    obs.count("driver.schedule_failures")
                    attempt_span.note(outcome="schedule_failed")
                    continue
                if verify:
                    assert_valid(schedule)
                attempt_span.note(outcome="ok")
            compile_span.note(
                ii=candidate_ii, ii_restarts=attempts - 1
            )
            compiled = CompiledLoop(
                ddg=ddg,
                machine=machine,
                config=config,
                ii=candidate_ii,
                mii=machine_mii,
                annotated=annotated,
                schedule=schedule,
                assignment_stats=assignment_stats,
                scheduler_stats=scheduler_stats,
                attempts=attempts,
            )
            if lint_config is not None:
                from ..lint.engine import lint_compiled

                report = lint_compiled(compiled, lint_config)
                compiled.lint_report = report
                obs.count("driver.lint_errors", len(report.errors))
                if lint_config.strict and not report.ok:
                    obs.count("driver.lint_rejections")
                    raise CompilationError(
                        f"lint gate rejected "
                        f"{ddg.name or 'loop'} on {machine.name}: "
                        + "; ".join(
                            str(d) for d in report.errors[:4]
                        )
                    )
            if certify_config is not None:
                from ..certify.gate import certify_compiled

                certified = certify_compiled(compiled, certify_config)
                compiled.certified = certified
                obs.count(
                    "driver.certify_failures", len(certified.issues)
                )
                if certify_config.strict and not certified.ok:
                    obs.count("driver.certify_rejections")
                    raise CompilationError(
                        f"certify gate rejected "
                        f"{ddg.name or 'loop'} on {machine.name}: "
                        + "; ".join(
                            str(issue)
                            for issue in certified.issues[:4]
                        )
                    )
            return compiled
        compile_span.note(outcome="no_schedule")
        obs.count("driver.compilation_errors")
    raise CompilationError(
        f"no schedule for {ddg.name or 'loop'} on {machine.name} "
        f"within II <= {upper}"
    )
