"""Assignment algorithm variants (paper Section 6, Figures 12–13).

The evaluation compares four configurations of the assignment phase:

=====================  =========  ==============================
Name                   Iterative  Cluster selection
=====================  =========  ==============================
Simple                 no         feasibility only
Heuristic              no         full Figure 10 chain
Simple Iterative       yes        feasibility only
Heuristic Iterative    yes        full Figure 10 chain
=====================  =========  ==============================

*Iterative* means the algorithm survives assignment failures by evicting
conflicting nodes (Section 4.3); non-iterative variants give up on the
first node that fits nowhere and retry at a larger II.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

#: Default eviction/assignment budget multiplier (steps per node before
#: declaring failure at the current II), mirroring Rau's scheduler budget.
DEFAULT_ASSIGN_BUDGET_RATIO = 6


@dataclass(frozen=True)
class AssignmentConfig:
    """Tunable knobs of the assignment phase."""

    name: str
    use_heuristic: bool = True
    iterative: bool = True
    budget_ratio: int = DEFAULT_ASSIGN_BUDGET_RATIO
    #: Ablation knob: disable PCR/MRC shading inside the full heuristic
    #: (keeps SCC affinity / copy minimization / free space).
    predict_copies: bool = True
    #: Ablation knob: disable broadcast copy sharing — every consuming
    #: cluster gets its own copy operation even on a bused machine.
    share_broadcast: bool = True
    #: Ablation knob: disable SCC-first grouping — nodes are still SMS
    #: ordered but critical recurrences get no assignment priority and
    #: no cluster-affinity selection.
    scc_first: bool = True

    def with_budget(self, ratio: int) -> "AssignmentConfig":
        """This configuration with a different budget multiplier."""
        return replace(self, budget_ratio=ratio)


#: The four variants of Figures 12–13.
SIMPLE = AssignmentConfig(
    name="Simple", use_heuristic=False, iterative=False
)
HEURISTIC = AssignmentConfig(
    name="Heuristic", use_heuristic=True, iterative=False
)
SIMPLE_ITERATIVE = AssignmentConfig(
    name="Simple Iterative", use_heuristic=False, iterative=True
)
HEURISTIC_ITERATIVE = AssignmentConfig(
    name="Heuristic Iterative", use_heuristic=True, iterative=True
)

ALL_VARIANTS = (SIMPLE, HEURISTIC, SIMPLE_ITERATIVE, HEURISTIC_ITERATIVE)

#: Ablations called out in DESIGN.md.
NO_PREDICTION = AssignmentConfig(
    name="Heuristic Iterative (no prediction)", predict_copies=False
)
NO_BROADCAST_SHARING = AssignmentConfig(
    name="Heuristic Iterative (no broadcast sharing)", share_broadcast=False
)
NO_SCC_FIRST = AssignmentConfig(
    name="Heuristic Iterative (no SCC priority)", scc_first=False
)
