"""Building the annotated output graph from a finished assignment.

The assignment phase's product (paper Section 4) is a *new* data flow
graph: every original operation tagged with its cluster, plus explicit
copy nodes wired into the dataflow wherever a value crosses clusters.
Timing semantics of the rewiring: a producer feeds its copy in the same
iteration (distance 0) and the copy inherits the original edge's distance
toward each consumer, so a copy on a recurrence adds exactly its one-cycle
latency to the cycle — the RecMII growth the paper's Observation Two
describes.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..ddg.graph import Ddg
from ..ddg.opcodes import Opcode
from ..ddg.transform import AnnotatedDdg
from ..machine.machine import Machine
from .copies import CopyPlan


def build_annotated(
    ddg: Ddg,
    machine: Machine,
    cluster_of: Dict[int, int],
    plans: Dict[int, CopyPlan],
) -> AnnotatedDdg:
    """Materialize the annotated DDG from assignment results.

    ``cluster_of`` covers every original node; ``plans`` holds the final
    copy plan of each producer that needs one.  Original node ids are
    preserved in the new graph (they are contiguous from 0 by
    construction), so callers can correlate nodes across the two graphs.
    """
    node_ids = ddg.node_ids
    if node_ids != list(range(len(ddg))):
        raise ValueError("original node ids must be contiguous from 0")

    new = Ddg(name=ddg.name)
    for node in ddg.nodes:
        new_id = new.add_node(node.opcode, name=node.name, latency=node.latency)
        if new_id != node.node_id:  # pragma: no cover - guarded above
            raise RuntimeError("node id mismatch while rebuilding graph")

    cluster_map = dict(cluster_of)
    copy_targets: Dict[int, Tuple[int, ...]] = {}
    copy_value_of: Dict[int, int] = {}
    # For each producer: cluster -> node id holding its value there.
    value_at: Dict[int, Dict[int, int]] = {}

    for producer, plan in plans.items():
        if not plan.specs:
            continue
        home = cluster_of[producer]
        available: Dict[int, int] = {home: producer}
        for hop_index, spec in enumerate(plan.specs):
            copy_id = new.add_node(
                Opcode.COPY,
                name=f"cp{producer}.{hop_index}",
            )
            cluster_map[copy_id] = spec.src_cluster
            copy_targets[copy_id] = spec.targets
            copy_value_of[copy_id] = producer
            source = available.get(spec.src_cluster)
            if source is None:
                raise ValueError(
                    f"copy plan of node {producer} reads cluster "
                    f"{spec.src_cluster} before the value arrives there"
                )
            new.add_edge(source, copy_id, distance=0)
            for target in spec.targets:
                available[target] = copy_id
        value_at[producer] = available

    for edge in ddg.edges:
        src_node = ddg.node(edge.src)
        same_cluster = cluster_of[edge.src] == cluster_of[edge.dst]
        needs_copy = (
            src_node.produces_value
            and edge.src != edge.dst
            and not same_cluster
        )
        if not needs_copy:
            new.add_edge(edge.src, edge.dst, distance=edge.distance)
            continue
        consumer_cluster = cluster_of[edge.dst]
        carrier = value_at.get(edge.src, {}).get(consumer_cluster)
        if carrier is None:
            raise ValueError(
                f"value of node {edge.src} never reaches cluster "
                f"{consumer_cluster} needed by node {edge.dst}"
            )
        new.add_edge(carrier, edge.dst, distance=edge.distance)

    annotated = AnnotatedDdg(
        ddg=new,
        machine=machine,
        cluster_of=cluster_map,
        copy_targets=copy_targets,
        copy_value_of=copy_value_of,
    )
    annotated.validate()
    return annotated
