"""Selection chains (paper Figures 9, 10 and 11).

A *selection* (Figure 9) filters a candidate list by a criterion but keeps
the original list whenever the criterion would empty it — so each
selection is a soft preference and the chain is a lexicographic
tie-breaker cascade.

Two chains are defined:

* :func:`select_best_cluster` — Figure 10, used when at least one feasible
  cluster exists.  The full heuristic applies SCC affinity, the PCR/MRC
  prediction test, fewest required copies, and most free resources; the
  *simple* variant (compared in Figures 12–13) skips everything except
  feasibility.  Both include the anti-repetition rule (A) from
  Section 4.3.2.
* :func:`select_failure_cluster` — Figure 11, used when no cluster is
  feasible: prefer clusters where the operation itself (ignoring copies)
  fits, then fewest conflicting predecessors/successors, with rule (A)
  between them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence


@dataclass(frozen=True)
class CandidateInfo:
    """Everything the selection chains need to know about one candidate
    cluster for the node being assigned."""

    cluster: int
    #: Assignment (with all required copies) fits — Figure 10 line 1.
    feasible: bool
    #: Another node of the node's SCC is already on this cluster (line 4).
    shares_scc: bool
    #: PCR <= MRC holds on this cluster after the placement (line 6).
    prediction_ok: bool
    #: Required copies this placement generates (line 7).
    new_copies: int
    #: Free slots on the cluster after the placement (line 8).
    free_resources: int
    #: Node was previously assigned to this cluster (rule A).
    previously_here: bool
    #: The op's own issue slot fits, ignoring copies (Figure 11 line 3).
    op_fits: bool
    #: Conflicting preds/succs if forced onto this cluster (Fig. 11 line 4).
    conflicts: int = 0


def select(
    candidates: List[CandidateInfo],
    criterion: Callable[[CandidateInfo], bool],
) -> List[CandidateInfo]:
    """Figure 9: filter by ``criterion``, keep the list if none satisfy."""
    filtered = [c for c in candidates if criterion(c)]
    return filtered if filtered else candidates


def select_min(
    candidates: List[CandidateInfo],
    key: Callable[[CandidateInfo], int],
) -> List[CandidateInfo]:
    """Keep the candidates attaining the minimum of ``key``."""
    if not candidates:
        return candidates
    best = min(key(c) for c in candidates)
    return [c for c in candidates if key(c) == best]


def _first(candidates: Sequence[CandidateInfo]) -> Optional[int]:
    """Lowest cluster index — deterministic "first cluster in LIST"."""
    if not candidates:
        return None
    return min(c.cluster for c in candidates)


def select_best_cluster(
    candidates: List[CandidateInfo],
    node_in_scc: bool,
    use_heuristic: bool,
) -> Optional[int]:
    """Figure 10 with rule (A); returns the chosen cluster or None.

    ``use_heuristic=False`` drops lines 3–8 (the paper's "Simple" cluster
    selection) but keeps feasibility and rule (A).
    """
    working = [c for c in candidates if c.feasible]
    if not working:
        return None
    working = select(working, lambda c: not c.previously_here)  # rule (A)
    if use_heuristic:
        if node_in_scc:
            working = select(working, lambda c: c.shares_scc)  # line 4
        working = select(working, lambda c: c.prediction_ok)  # line 6
        working = select_min(working, lambda c: c.new_copies)  # line 7
        working = select_min(working, lambda c: -c.free_resources)  # line 8
    return _first(working)


def select_failure_cluster(
    candidates: List[CandidateInfo],
) -> Optional[int]:
    """Figure 11 with rule (A); returns the cluster to force onto."""
    working = list(candidates)
    if not working:
        return None
    working = select(working, lambda c: c.op_fits)  # line 3
    working = select(working, lambda c: not c.previously_here)  # rule (A)
    working = select_min(working, lambda c: c.conflicts)  # line 4
    return _first(working)
