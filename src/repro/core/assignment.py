"""The cluster assignment phase (paper Section 4).

``assign_clusters`` runs one assignment attempt at a fixed candidate II:

1. **Order** — nodes of the most constraining SCCs first, SMS order
   within each set (:mod:`repro.core.ordering`).
2. **Tentative assignment and selection** — the next unassigned node is
   tentatively placed on every cluster inside a pools/routing transaction;
   the outcomes feed the Figure 10 selection chain
   (:mod:`repro.core.selection`), and the winner is committed.
3. **Iteration** — when no cluster is feasible, the Figure 11 chain picks
   a cluster to force the node onto; nodes conflicting with the node's
   issue slot or its required copies are evicted and re-enter the work
   list (Section 4.3.1).  A per-node list of previously tried clusters
   discourages repetition (Section 4.3.2), and a placement budget bounds
   the effort — exhausting it signals the driver to retry at II + 1.

Returns the annotated graph (original ops tagged with clusters, copies
inserted) or ``None`` when the budget ran out, i.e. no valid assignment
was found at this II.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..ddg.graph import Ddg
from ..ddg.transform import AnnotatedDdg, trivial_annotation
from ..obs.trace import count as obs_count, span as obs_span
from ..machine.machine import Machine, ResourceKey
from ..mrt.pool import PoolOverflowError, ResourcePools
from .annotate import build_annotated
from .copies import CopyRoutingError, RoutingState
from .ordering import AssignmentOrder, build_assignment_order
from .prediction import prediction_satisfied
from .selection import (
    CandidateInfo,
    select_best_cluster,
    select_failure_cluster,
)
from .variants import HEURISTIC_ITERATIVE, AssignmentConfig


@dataclass
class AssignmentStats:
    """Bookkeeping from one assignment attempt."""

    ii: int
    placements: int = 0
    forced_placements: int = 0
    evictions: int = 0
    copies: int = 0
    succeeded: bool = False


class _Assigner:
    """Mutable state of one assignment attempt at a fixed II."""

    def __init__(
        self,
        ddg: Ddg,
        machine: Machine,
        ii: int,
        config: AssignmentConfig,
        stats: AssignmentStats,
    ) -> None:
        self.ddg = ddg
        self.machine = machine
        self.ii = ii
        self.config = config
        self.stats = stats
        self.order: AssignmentOrder = build_assignment_order(
            ddg, ii, scc_first=config.scc_first
        )
        self.pools = ResourcePools(machine, ii)
        self.routing = RoutingState(
            ddg, machine, self.pools,
            share_broadcast=config.share_broadcast,
        )
        self.unassigned: Set[int] = set(ddg.node_ids)
        self.nodes_on: Dict[int, Set[int]] = {
            c: set() for c in machine.cluster_indices
        }
        self.issue_held: Dict[int, List[ResourceKey]] = {}
        self.previously_on: Dict[int, Set[int]] = {
            n: set() for n in ddg.node_ids
        }
        self.budget = max(config.budget_ratio * len(ddg), len(ddg) + 1)
        # Rank-keyed work heap over ``unassigned`` (lazy invalidation:
        # evicted nodes are pushed back, stale pops are skipped).  Ranks
        # are unique, so popping matches a min-scan bit for bit.
        self._ready: List[Tuple[int, int]] = [
            (self.order.priority_of(n), n) for n in self.order.order
        ]
        # Opcode resources per (node, cluster) are invariant across the
        # attempt; cache them (including structural impossibility).
        self._op_keys_cache: Dict[
            Tuple[int, int], Optional[List[ResourceKey]]
        ] = {}

    # ------------------------------------------------------------------
    # Small helpers
    # ------------------------------------------------------------------
    def _op_keys(self, node_id: int, cluster: int) -> Optional[List[ResourceKey]]:
        """Issue-slot keys of a node on a cluster; None when the cluster
        structurally cannot execute the opcode.  Cached per attempt; the
        returned list is shared and must not be mutated."""
        cache_key = (node_id, cluster)
        try:
            return self._op_keys_cache[cache_key]
        except KeyError:
            pass
        try:
            keys = self.machine.op_resources(
                self.ddg.node(node_id).opcode, cluster
            )
        except ValueError:
            keys = None
        self._op_keys_cache[cache_key] = keys
        return keys

    def _scc_partner_on(self, node_id: int, cluster: int) -> bool:
        """Is another member of the node's SCC already on ``cluster``?"""
        scc = self.order.scc_of(node_id)
        if scc is None:
            return False
        return any(
            other != node_id and other in self.nodes_on[cluster]
            for other in scc.nodes
        )

    def _record_history(self, node_id: int, cluster: int) -> None:
        """Rule (A) bookkeeping, with the clear-when-full rule."""
        history = self.previously_on[node_id]
        history.add(cluster)
        if len(history) >= self.machine.n_clusters:
            history.clear()
            history.add(cluster)

    # ------------------------------------------------------------------
    # Tentative evaluation
    # ------------------------------------------------------------------
    def evaluate(self, node_id: int, cluster: int) -> CandidateInfo:
        """Tentatively place ``node_id`` on ``cluster``; roll back after
        measuring the Figure 10 selection inputs."""
        keys = self._op_keys(node_id, cluster)
        previously_here = cluster in self.previously_on[node_id]
        if keys is None:
            return CandidateInfo(
                cluster=cluster, feasible=False, shares_scc=False,
                prediction_ok=False, new_copies=0, free_resources=0,
                previously_here=previously_here, op_fits=False,
            )
        op_fits = self.pools.can_reserve(keys)
        pools_snap = self.pools.checkpoint()
        routing_snap = self.routing.snapshot()
        copies_before = self.routing.total_copies()
        feasible = False
        prediction_ok = True
        new_copies = 0
        free_resources = 0
        try:
            self.pools.reserve(keys)
            self.routing.set_cluster(node_id, cluster)
            feasible = True
            new_copies = self.routing.total_copies() - copies_before
            if self.config.predict_copies:
                prediction_ok = prediction_satisfied(
                    self.machine,
                    self.routing,
                    self.pools,
                    cluster,
                    self.nodes_on[cluster] | {node_id},
                )
            free_resources = self.pools.free_cluster_slots(cluster)
        except (PoolOverflowError, CopyRoutingError):
            feasible = False
        finally:
            self.pools.restore(pools_snap)
            self.routing.restore(routing_snap)
        return CandidateInfo(
            cluster=cluster,
            feasible=feasible,
            shares_scc=self._scc_partner_on(node_id, cluster),
            prediction_ok=prediction_ok,
            new_copies=new_copies,
            free_resources=free_resources,
            previously_here=previously_here,
            op_fits=op_fits,
        )

    def count_conflicts(self, node_id: int, cluster: int) -> int:
        """Figure 11 line 4: assigned neighbors whose required copies fail
        when ``node_id`` is put on ``cluster`` (resource shortages of the
        node's own slot are handled separately by eviction)."""
        if self._op_keys(node_id, cluster) is None:
            return len(self.ddg.node_ids)  # structurally impossible
        pools_snap = self.pools.checkpoint()
        routing_snap = self.routing.snapshot()
        conflicts = 0
        self.routing.assign_unplanned(node_id, cluster)
        for producer in self.routing.affected_producers(node_id):
            try:
                self.routing.replan(producer)
            except (PoolOverflowError, CopyRoutingError):
                conflicts += 1
        self.pools.restore(pools_snap)
        self.routing.restore(routing_snap)
        return conflicts

    # ------------------------------------------------------------------
    # Committing and evicting
    # ------------------------------------------------------------------
    def commit(self, node_id: int, cluster: int) -> None:
        """Finalize a feasible assignment chosen by Figure 10."""
        keys = self._op_keys(node_id, cluster)
        assert keys is not None
        self.pools.reserve(keys)
        self.routing.set_cluster(node_id, cluster)
        self.issue_held[node_id] = keys
        self.nodes_on[cluster].add(node_id)
        self.unassigned.discard(node_id)
        self._record_history(node_id, cluster)
        self.stats.placements += 1
        obs_count("assign.placements")

    def evict(self, node_id: int, protect: Set[int]) -> bool:
        """Remove a node from its cluster; it re-enters the work list.

        Replans every affected producer, evicting further nodes when a
        reshaped plan (possible on point-to-point fabrics) does not fit.
        Returns False when recovery is impossible at this II.
        """
        cluster = self.routing.cluster_of[node_id]
        self.pools.release(self.issue_held.pop(node_id))
        self.nodes_on[cluster].discard(node_id)
        self.routing.unassign_unplanned(node_id)
        self.unassigned.add(node_id)
        heapq.heappush(
            self._ready, (self.order.priority_of(node_id), node_id)
        )
        self.stats.evictions += 1
        obs_count("assign.evictions")
        for producer in self.routing.affected_producers(node_id):
            if not self._replan_or_evict(producer, protect):
                return False
        return True

    def _plan_victim(self, producer: int, protect: Set[int]) -> Optional[int]:
        """Node to evict so ``producer``'s copy plan can fit.

        The paper removes the *conflicting predecessor or successor*
        itself: when the failing producer is an ordinary neighbor we evict
        it directly; when it is protected (the node currently being
        force-assigned) we instead evict its lowest-priority consumer on a
        remote cluster, shrinking the plan.
        """
        home = self.routing.cluster_of.get(producer)
        if home is None:
            return None
        if producer not in protect:
            return producer
        remote_consumers = [
            consumer
            for consumer in self.routing.value_consumers(producer)
            if consumer not in protect
            and self.routing.cluster_of.get(consumer, home) != home
        ]
        if not remote_consumers:
            return None
        return max(remote_consumers, key=self.order.priority_of)

    def _replan_or_evict(self, producer: int, protect: Set[int]) -> bool:
        """Replan one producer, evicting conflicting nodes until it fits."""
        while True:
            try:
                self.routing.replan(producer)
                return True
            except (PoolOverflowError, CopyRoutingError):
                victim = self._plan_victim(producer, protect)
                if victim is None:
                    return False
                if victim == producer:
                    return self.evict(producer, protect)
                if not self.evict(victim, protect):
                    return False

    def _issue_victim(
        self, node_id: int, cluster: int, keys: List[ResourceKey]
    ) -> Optional[int]:
        """Lowest-priority node on ``cluster`` holding the pool ``node_id``
        needs for its own issue slot."""
        pool_key = keys[0]
        candidates = [
            other
            for other in self.nodes_on[cluster]
            if other != node_id and self.issue_held[other][0] == pool_key
        ]
        if not candidates:
            return None
        return max(candidates, key=self.order.priority_of)

    def force_assign(self, node_id: int, cluster: int) -> bool:
        """Figure 11 placement: make room on ``cluster`` by eviction.

        Returns False when no sequence of evictions can make the
        assignment fit (the driver then gives up at this II).
        """
        keys = self._op_keys(node_id, cluster)
        if keys is None:
            return False
        protect = {node_id}
        while not self.pools.can_reserve(keys):
            victim = self._issue_victim(node_id, cluster, keys)
            if victim is None:
                return False
            if not self.evict(victim, protect):
                return False
        self.pools.reserve(keys)
        self.issue_held[node_id] = keys
        self.routing.assign_unplanned(node_id, cluster)
        self.nodes_on[cluster].add(node_id)
        self.unassigned.discard(node_id)
        for producer in self.routing.affected_producers(node_id):
            if not self._replan_or_evict(producer, protect):
                return False
        self._record_history(node_id, cluster)
        self.stats.placements += 1
        self.stats.forced_placements += 1
        obs_count("assign.placements")
        obs_count("assign.forced_placements")
        return True

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self) -> Optional[AnnotatedDdg]:
        """Assign every node, or return None on budget exhaustion."""
        while self.unassigned:
            if self.budget <= 0:
                obs_count("assign.budget_exhausted")
                return None
            self.budget -= 1
            obs_count("assign.budget_spent")
            while True:
                _, node_id = heapq.heappop(self._ready)
                if node_id in self.unassigned:
                    break
            candidates = [
                self.evaluate(node_id, cluster)
                for cluster in self.machine.cluster_indices
            ]
            obs_count("assign.evaluations", len(candidates))
            infeasible = sum(1 for c in candidates if not c.feasible)
            if infeasible:
                obs_count("assign.infeasible_evaluations", infeasible)
            chosen = select_best_cluster(
                candidates,
                node_in_scc=self.order.scc_of(node_id) is not None,
                use_heuristic=self.config.use_heuristic,
            )
            if chosen is not None:
                obs_count("assign.select.committed")
                self.commit(node_id, chosen)
                continue
            if not self.config.iterative:
                obs_count("assign.select.abandoned")
                return None
            with_conflicts = [
                CandidateInfo(
                    cluster=c.cluster,
                    feasible=c.feasible,
                    shares_scc=c.shares_scc,
                    prediction_ok=c.prediction_ok,
                    new_copies=c.new_copies,
                    free_resources=c.free_resources,
                    previously_here=c.previously_here,
                    op_fits=c.op_fits,
                    conflicts=self.count_conflicts(node_id, c.cluster),
                )
                for c in candidates
            ]
            forced = select_failure_cluster(with_conflicts)
            if forced is None or not self.force_assign(node_id, forced):
                obs_count("assign.select.abandoned")
                return None
            obs_count("assign.select.forced")

        self.stats.copies = self.routing.total_copies()
        self.stats.succeeded = True
        return build_annotated(
            self.ddg,
            self.machine,
            self.routing.cluster_of,
            self.routing.plans(),
        )


def assign_clusters(
    ddg: Ddg,
    machine: Machine,
    ii: int,
    config: AssignmentConfig = HEURISTIC_ITERATIVE,
    stats: Optional[AssignmentStats] = None,
) -> Optional[AnnotatedDdg]:
    """Run one assignment attempt at candidate ``ii``.

    For a unified machine the assignment is trivial (everything on the
    single cluster, no copies).  For clustered machines, returns the
    annotated graph or None when no valid assignment was found at this II.
    """
    if len(ddg) == 0:
        raise ValueError("cannot assign an empty graph")
    if stats is None:
        stats = AssignmentStats(ii=ii)
    if machine.is_unified:
        stats.succeeded = True
        return trivial_annotation(ddg, machine)
    with obs_span("assign", ii=ii) as assign_span:
        assigner = _Assigner(ddg, machine, ii, config, stats)
        annotated = assigner.run()
        assign_span.note(
            succeeded=annotated is not None,
            placements=stats.placements,
            evictions=stats.evictions,
            copies=stats.copies,
        )
    return annotated
