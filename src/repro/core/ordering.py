"""Node grouping and ordering for cluster assignment (paper Section 4.1).

Builds the ordered work list the assignment phase consumes: non-trivial
SCCs first (most constraining RecMII first, so the recurrences that would
hurt II the most are placed while clusters are still empty), all remaining
nodes last, with the Swing Modulo Scheduling order inside each set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..ddg.graph import Ddg
from ..ddg.scc import Scc, SccPartition, find_sccs
from ..scheduling.priority import compute_metrics
from ..scheduling.swing import ordering_sets, swing_order


@dataclass
class AssignmentOrder:
    """The assignment work list plus the SCC structure behind it."""

    order: List[int]
    rank: Dict[int, int]
    partition: SccPartition

    def scc_of(self, node_id: int) -> Optional[Scc]:
        """The node's non-trivial SCC, if any."""
        return self.partition.scc_of(node_id)

    def priority_of(self, node_id: int) -> int:
        """Lower rank = assigned earlier = higher priority."""
        return self.rank[node_id]


def build_assignment_order(
    ddg: Ddg, ii: int, scc_first: bool = True
) -> AssignmentOrder:
    """Compute the paper's Section 4.1 ordering at candidate ``ii``.

    ``scc_first=False`` is an ablation: the SMS sweep still runs but over
    a single all-nodes set, and the partition is reported empty so the
    selection heuristic applies no SCC affinity either.
    """
    metrics = compute_metrics(ddg, max(ii, 1))
    if scc_first:
        partition = find_sccs(ddg)
        sets = ordering_sets(ddg, partition)
    else:
        partition = SccPartition(sccs=[], membership={})
        sets = [set(ddg.node_ids)]
    order = swing_order(ddg, sets, metrics)
    if len(order) != len(ddg):
        raise RuntimeError(
            f"ordering covered {len(order)} of {len(ddg)} nodes"
        )
    rank = {node_id: index for index, node_id in enumerate(order)}
    return AssignmentOrder(order=order, rank=rank, partition=partition)
