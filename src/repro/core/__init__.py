"""The paper's contribution: pre-scheduling cluster assignment."""

from .annotate import build_annotated
from .assignment import AssignmentStats, assign_clusters
from .copies import CopyPlan, CopySpec, RoutingState, plan_copies
from .driver import CompilationError, CompiledLoop, compile_loop, ii_search_bound
from .ordering import AssignmentOrder, build_assignment_order
from .prediction import predicted_copy_requests, prediction_satisfied, upper_bound
from .selection import (
    CandidateInfo,
    select,
    select_best_cluster,
    select_failure_cluster,
    select_min,
)
from .variants import (
    ALL_VARIANTS,
    HEURISTIC,
    HEURISTIC_ITERATIVE,
    NO_BROADCAST_SHARING,
    NO_PREDICTION,
    NO_SCC_FIRST,
    SIMPLE,
    SIMPLE_ITERATIVE,
    AssignmentConfig,
)

__all__ = [
    "ALL_VARIANTS",
    "AssignmentConfig",
    "AssignmentOrder",
    "AssignmentStats",
    "CandidateInfo",
    "CompilationError",
    "CompiledLoop",
    "CopyPlan",
    "CopySpec",
    "HEURISTIC",
    "HEURISTIC_ITERATIVE",
    "NO_BROADCAST_SHARING",
    "NO_PREDICTION",
    "NO_SCC_FIRST",
    "RoutingState",
    "SIMPLE",
    "SIMPLE_ITERATIVE",
    "assign_clusters",
    "build_annotated",
    "build_assignment_order",
    "compile_loop",
    "ii_search_bound",
    "plan_copies",
    "predicted_copy_requests",
    "prediction_satisfied",
    "select",
    "select_best_cluster",
    "select_failure_cluster",
    "select_min",
    "upper_bound",
]
