"""Copy planning: which copy operations a partial assignment implies.

A *required copy* (paper Section 4.2) exists whenever a value producer and
one of its consumers sit on different clusters.  This module turns the
question "which copies does producer ``p`` need right now?" into a pure
function of ``(machine, producer cluster, clusters that need the value)``:

* on a **bused** machine the answer is a single broadcast copy delivering
  to every needing cluster (the result of an operation is communicated at
  most once — paper Section 4.2's ``UpperBound`` rationale);
* on a **point-to-point** machine it is one copy per directed hop of the
  union of shortest routes from the producer's cluster to every needing
  cluster, emitted in breadth-first order so each hop's source cluster is
  already reached.

:class:`RoutingState` keeps these plans current while the assignment
algorithm assigns, evicts, and re-assigns nodes, reserving and releasing
the copies' port/bus/link slots in the shared :class:`ResourcePools`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from ..ddg.graph import Ddg
from ..machine.machine import Machine, ResourceKey
from ..mrt.pool import PoolOverflowError, ResourcePools
from ..obs.trace import count as obs_count


class CopyRoutingError(RuntimeError):
    """A value cannot be routed between two clusters on this fabric.

    Raised by copy planning when the interconnect has no path (e.g. a
    partitioned point-to-point topology).  The assignment algorithm
    treats it like a resource shortage: the candidate is infeasible, and
    eviction of the unreachable consumer repairs forced placements.
    """


@dataclass(frozen=True)
class CopySpec:
    """One copy operation: read on ``src_cluster``, write on ``targets``."""

    src_cluster: int
    targets: Tuple[int, ...]


@dataclass(frozen=True)
class CopyPlan:
    """All copies one producer currently requires, in dependence order."""

    producer: int
    specs: Tuple[CopySpec, ...]
    resources: Tuple[ResourceKey, ...]

    @property
    def copy_count(self) -> int:
        """Number of copy operations (the paper's RC of the producer)."""
        return len(self.specs)


def plan_copies(
    machine: Machine,
    producer: int,
    producer_cluster: int,
    needed_clusters: Set[int],
    share_broadcast: bool = True,
) -> CopyPlan:
    """Compute the copy plan moving ``producer``'s value where needed.

    ``share_broadcast=False`` is an ablation knob: on bused machines it
    emits one copy per target cluster instead of a single broadcast.
    """
    needed = {c for c in needed_clusters if c != producer_cluster}
    if not needed:
        return CopyPlan(producer=producer, specs=(), resources=())
    if machine.interconnect.broadcast:
        if share_broadcast:
            target_groups = [tuple(sorted(needed))]
        else:
            target_groups = [(target,) for target in sorted(needed)]
        specs = tuple(
            CopySpec(src_cluster=producer_cluster, targets=targets)
            for targets in target_groups
        )
        resources: List[ResourceKey] = []
        for spec in specs:
            resources.extend(
                machine.copy_hop_resources(
                    spec.src_cluster, list(spec.targets)
                )
            )
        return CopyPlan(
            producer=producer, specs=specs, resources=tuple(resources)
        )

    # Point-to-point: union of shortest routes, hop copies in BFS order.
    hop_edges: List[Tuple[int, int]] = []
    for target in sorted(needed):
        try:
            route = machine.copy_route(producer_cluster, target)
        except ValueError as exc:
            obs_count("copies.routing_errors")
            raise CopyRoutingError(str(exc)) from exc
        for a, b in zip(route, route[1:]):
            if (a, b) not in hop_edges:
                hop_edges.append((a, b))
    ordered: List[Tuple[int, int]] = []
    reached = {producer_cluster}
    remaining = list(hop_edges)
    while remaining:
        progressed = False
        for hop in list(remaining):
            if hop[0] in reached:
                ordered.append(hop)
                reached.add(hop[1])
                remaining.remove(hop)
                progressed = True
        if not progressed:  # pragma: no cover - routes start at producer
            raise RuntimeError(f"disconnected copy route {remaining}")
    specs = tuple(CopySpec(src_cluster=a, targets=(b,)) for a, b in ordered)
    resources: List[ResourceKey] = []
    for spec in specs:
        resources.extend(
            machine.copy_hop_resources(spec.src_cluster, list(spec.targets))
        )
    return CopyPlan(
        producer=producer, specs=specs, resources=tuple(resources)
    )


@dataclass
class RoutingSnapshot:
    """Rollback point for :class:`RoutingState` (pools snapshot separate)."""

    cluster_of: Dict[int, int]
    plans: Dict[int, CopyPlan]
    total_copies: int = -1  # -1: recompute on restore (legacy snapshots)


class RoutingState:
    """Live copy plans + cluster map during assignment.

    All pool reservations for copies are owned here; the caller owns the
    reservations for the operations' own issue slots.
    """

    def __init__(
        self,
        ddg: Ddg,
        machine: Machine,
        pools: ResourcePools,
        share_broadcast: bool = True,
    ) -> None:
        self.ddg = ddg
        self.machine = machine
        self.pools = pools
        self.share_broadcast = share_broadcast
        self.cluster_of: Dict[int, int] = {}
        self._plans: Dict[int, CopyPlan] = {}
        self._total_copies = 0
        # Value-edge adjacency — producer -> consumers and consumer ->
        # producers over register (value) edges only, excluding
        # self-dependences (which never cross clusters).  Taken from the
        # compiled DDG view: the driver re-runs assignment at every
        # candidate II, and this fan-out is II-invariant.  The tuples are
        # shared and read-only.
        view = ddg.view()
        self._produces_value = view.produces_value
        self._value_consumers = view.value_consumers
        self._value_producers = view.value_producers
        # (producer cluster, needed clusters) -> (specs, resources).  A
        # plan's shape is independent of the producer's identity, and the
        # same few cluster patterns recur throughout an assignment run's
        # tentative/evict/replan churn.  Only successful plans are cached
        # (a CopyRoutingError must re-raise on every attempt).
        self._plan_cache: Dict[
            Tuple[int, frozenset],
            Tuple[Tuple[CopySpec, ...], Tuple[ResourceKey, ...]],
        ] = {}

    # ------------------------------------------------------------------
    # Value-flow queries
    # ------------------------------------------------------------------
    def produces_value(self, node_id: int) -> bool:
        """True when ``node_id`` writes a register result."""
        return self._produces_value[node_id]

    def value_consumers(self, producer: int) -> List[int]:
        """Distinct nodes consuming ``producer``'s register value."""
        return list(self._value_consumers[producer])

    def value_producers(self, consumer: int) -> List[int]:
        """Distinct nodes whose register value ``consumer`` reads."""
        return list(self._value_producers[consumer])

    def unassigned_value_consumers(self, producer: int) -> int:
        """The paper's ``UnassignedSuccessors(N_i)`` term."""
        return sum(
            1
            for consumer in self._value_consumers[producer]
            if consumer not in self.cluster_of
        )

    def needed_clusters(self, producer: int) -> Set[int]:
        """Clusters (other than the producer's) that need the value now."""
        home = self.cluster_of.get(producer)
        if home is None:
            return set()
        return {
            self.cluster_of[c]
            for c in self._value_consumers[producer]
            if c in self.cluster_of and self.cluster_of[c] != home
        }

    def required_copies(self, producer: int) -> int:
        """RC(producer): copies the current assignment forces on it."""
        plan = self._plans.get(producer)
        return 0 if plan is None else plan.copy_count

    def total_copies(self) -> int:
        """Total copy operations implied by the current assignment."""
        return self._total_copies

    def plans(self) -> Dict[int, CopyPlan]:
        """Producer -> current plan (only producers with copies)."""
        return {p: plan for p, plan in self._plans.items() if plan.specs}

    # ------------------------------------------------------------------
    # Replanning
    # ------------------------------------------------------------------
    def affected_producers(self, node_id: int) -> List[int]:
        """Producers whose plan may change when ``node_id`` (re)moves."""
        affected = []
        if self._produces_value[node_id]:
            affected.append(node_id)
        for producer in self._value_producers[node_id]:
            if producer not in affected:
                affected.append(producer)
        return affected

    def replan(self, producer: int) -> None:
        """Recompute ``producer``'s plan; raises on resource shortage.

        On :class:`PoolOverflowError` the producer's old reservation has
        already been released and its plan dropped — callers either roll
        back via snapshots or evict nodes and call :meth:`replan` again.
        """
        obs_count("copies.replans")
        old = self._plans.pop(producer, None)
        if old is not None:
            self._total_copies -= len(old.specs)
            self.pools.release(old.resources)
        if producer not in self.cluster_of:
            return
        home = self.cluster_of[producer]
        key = (home, frozenset(self.needed_clusters(producer)))
        cached = self._plan_cache.get(key)
        if cached is None:
            template = plan_copies(
                self.machine,
                producer,
                home,
                set(key[1]),
                share_broadcast=self.share_broadcast,
            )
            cached = (template.specs, template.resources)
            self._plan_cache[key] = cached
        plan = CopyPlan(producer=producer, specs=cached[0],
                        resources=cached[1])
        if not plan.specs:
            return
        try:
            self.pools.reserve(plan.resources)
        except PoolOverflowError:
            obs_count("copies.replan_failures")
            raise
        self._plans[producer] = plan
        self._total_copies += len(plan.specs)

    def assign_unplanned(self, node_id: int, cluster: int) -> None:
        """Record an assignment *without* replanning any copies.

        Used by forced placement and conflict counting, which replan the
        affected producers one at a time so failures can be attributed to
        individual predecessor/successor relationships.
        """
        if node_id in self.cluster_of:
            raise ValueError(f"node {node_id} is already assigned")
        self.cluster_of[node_id] = cluster

    def set_cluster(self, node_id: int, cluster: int) -> None:
        """Assign ``node_id`` to ``cluster`` and replan affected copies.

        The caller must have reserved the node's own issue slot already.
        Raises :class:`PoolOverflowError` when some required copy does not
        fit; state is then inconsistent and must be rolled back via
        snapshot (tentative mode) or repaired by eviction (forced mode).
        """
        if node_id in self.cluster_of:
            raise ValueError(f"node {node_id} is already assigned")
        self.cluster_of[node_id] = cluster
        for producer in self.affected_producers(node_id):
            self.replan(producer)

    def unassign_unplanned(self, node_id: int) -> None:
        """Drop an assignment *without* replanning any copies.

        The caller must afterwards replan every producer in
        :meth:`affected_producers` (handling overflow by further
        eviction): on point-to-point fabrics a shrunken consumer set can
        reroute a plan onto different links, so even removal may demand
        resources that are not free.
        """
        if node_id not in self.cluster_of:
            raise ValueError(f"node {node_id} is not assigned")
        del self.cluster_of[node_id]

    def clear_cluster(self, node_id: int) -> None:
        """Remove ``node_id``'s assignment and replan affected copies.

        May raise :class:`PoolOverflowError` on point-to-point fabrics
        (see :meth:`unassign_unplanned`); callers needing eviction-based
        recovery should use ``unassign_unplanned`` + per-producer
        ``replan`` instead.
        """
        self.unassign_unplanned(node_id)
        for producer in self.affected_producers(node_id):
            self.replan(producer)

    # ------------------------------------------------------------------
    # Snapshots (pools are snapshotted separately by the caller)
    # ------------------------------------------------------------------
    def snapshot(self) -> RoutingSnapshot:
        """Capture cluster map + plans for rollback."""
        return RoutingSnapshot(
            cluster_of=dict(self.cluster_of),
            plans=dict(self._plans),
            total_copies=self._total_copies,
        )

    def restore(self, snap: RoutingSnapshot) -> None:
        """Roll back to ``snap`` (pair with ``pools.restore``)."""
        self.cluster_of = dict(snap.cluster_of)
        self._plans = dict(snap.plans)
        if snap.total_copies >= 0:
            self._total_copies = snap.total_copies
        else:
            self._total_copies = sum(
                plan.copy_count for plan in self._plans.values()
            )
