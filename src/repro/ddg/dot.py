"""Graphviz DOT export for DDGs and annotated DDGs.

Purely textual (no graphviz dependency): render with ``dot -Tpdf`` where
available.  Plain graphs show opcodes and latencies; annotated graphs
additionally group nodes into one subgraph cluster per hardware cluster
and draw copies as diamonds, making the assignment visually checkable.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .graph import Ddg
from .transform import AnnotatedDdg


def _node_label(ddg: Ddg, node_id: int) -> str:
    node = ddg.node(node_id)
    name = node.name or f"n{node_id}"
    return f"{name}\\n{node.opcode.value} ({node.latency})"


def _edge_lines(ddg: Ddg, indent: str) -> List[str]:
    lines = []
    for edge in ddg.edges:
        attrs = []
        if edge.distance > 0:
            attrs.append(f'label="{edge.distance}"')
            attrs.append("style=dashed")
        suffix = f" [{', '.join(attrs)}]" if attrs else ""
        lines.append(f"{indent}n{edge.src} -> n{edge.dst}{suffix};")
    return lines


def ddg_to_dot(ddg: Ddg, title: Optional[str] = None) -> str:
    """Render a plain DDG as DOT; loop-carried edges are dashed and
    labelled with their distance."""
    name = title if title is not None else (ddg.name or "ddg")
    lines = [f'digraph "{name}" {{', "  node [shape=box];"]
    for node_id in ddg.node_ids:
        lines.append(
            f'  n{node_id} [label="{_node_label(ddg, node_id)}"];'
        )
    lines.extend(_edge_lines(ddg, "  "))
    lines.append("}")
    return "\n".join(lines)


def annotated_to_dot(
    annotated: AnnotatedDdg, title: Optional[str] = None
) -> str:
    """Render an annotated DDG: one subgraph per hardware cluster, copy
    nodes drawn as diamonds labelled with their target clusters."""
    ddg = annotated.ddg
    name = title if title is not None else (ddg.name or "assigned")
    lines = [f'digraph "{name}" {{', "  node [shape=box];"]
    by_cluster: Dict[int, List[int]] = {}
    for node_id, cluster in annotated.cluster_of.items():
        by_cluster.setdefault(cluster, []).append(node_id)
    for cluster in sorted(by_cluster):
        lines.append(f"  subgraph cluster_{cluster} {{")
        lines.append(f'    label="C{cluster}";')
        for node_id in sorted(by_cluster[cluster]):
            node = ddg.node(node_id)
            if node.is_copy:
                targets = ",".join(
                    f"C{t}" for t in annotated.copy_targets[node_id]
                )
                lines.append(
                    f'    n{node_id} [shape=diamond, '
                    f'label="copy\\n-> {targets}"];'
                )
            else:
                lines.append(
                    f'    n{node_id} '
                    f'[label="{_node_label(ddg, node_id)}"];'
                )
        lines.append("  }")
    lines.extend(_edge_lines(ddg, "  "))
    lines.append("}")
    return "\n".join(lines)
