"""Annotated DDGs — the hand-off between assignment and scheduling.

The cluster assignment phase outputs a *new* data flow graph "annotated to
indicate cluster assignments and including any required copies" (paper
Section 4).  :class:`AnnotatedDdg` is that artifact: the transformed graph,
a node → cluster map, and for every copy node the source and target
clusters it moves a value between.  A traditional (cluster-oblivious)
modulo scheduler only needs ``resources_of`` to map each node to the
machine resource pools it occupies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..machine.machine import Machine, ResourceKey
from .graph import Ddg
from .opcodes import Opcode


@dataclass
class AnnotatedDdg:
    """A cluster-annotated DDG ready for modulo scheduling.

    ``cluster_of`` maps every node (operations and copies) to its cluster.
    ``copy_targets`` maps each copy node to the tuple of clusters the copy
    writes to (always a single cluster on non-broadcast fabrics);
    ``copy_value_of`` maps each copy node to the original node whose value
    it transports.
    """

    ddg: Ddg
    machine: Machine
    cluster_of: Dict[int, int]
    copy_targets: Dict[int, Tuple[int, ...]] = field(default_factory=dict)
    copy_value_of: Dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for node_id in self.ddg.node_ids:
            if node_id not in self.cluster_of:
                raise ValueError(f"node {node_id} has no cluster assignment")
        for copy_id in self.copy_targets:
            if self.ddg.node(copy_id).opcode is not Opcode.COPY:
                raise ValueError(f"node {copy_id} is not a copy")

    @property
    def copy_nodes(self) -> List[int]:
        """All copy node ids."""
        return [n.node_id for n in self.ddg.nodes if n.is_copy]

    @property
    def copy_count(self) -> int:
        """Number of copy operations the assignment inserted."""
        return len(self.copy_nodes)

    def resources_of(self, node_id: int) -> List[ResourceKey]:
        """Machine resource pools node ``node_id`` occupies per issue."""
        node = self.ddg.node(node_id)
        cluster = self.cluster_of[node_id]
        if node.is_copy:
            return self.machine.copy_hop_resources(
                cluster, list(self.copy_targets[node_id])
            )
        return self.machine.op_resources(node.opcode, cluster)

    def validate(self) -> None:
        """Check structural consistency; raises :class:`ValueError`.

        Verifies that every data edge either stays within a cluster or is
        carried by a copy chain, and that copies connect reachable
        clusters.
        """
        for edge in self.ddg.edges:
            src = self.ddg.node(edge.src)
            dst_cluster = self.cluster_of[edge.dst]
            src_cluster = self.cluster_of[edge.src]
            if src_cluster == dst_cluster:
                continue
            if src.is_copy:
                if dst_cluster not in self.copy_targets[edge.src]:
                    raise ValueError(
                        f"copy {edge.src} feeds cluster {dst_cluster} but "
                        f"targets {self.copy_targets[edge.src]}"
                    )
                continue
            if not src.produces_value:
                # Memory/control ordering edges cross clusters freely.
                continue
            raise ValueError(
                f"value edge {edge.src}->{edge.dst} crosses clusters "
                f"{src_cluster}->{dst_cluster} without a copy"
            )
        for copy_id, targets in self.copy_targets.items():
            src_cluster = self.cluster_of[copy_id]
            for target in targets:
                if not self.machine.interconnect.reachable(src_cluster, target):
                    raise ValueError(
                        f"copy {copy_id} spans unreachable clusters "
                        f"{src_cluster}->{target}"
                    )


def trivial_annotation(ddg: Ddg, machine: Machine) -> AnnotatedDdg:
    """Annotate a graph for a unified machine: everything on cluster 0."""
    if not machine.is_unified:
        raise ValueError("trivial annotation requires a unified machine")
    return AnnotatedDdg(
        ddg=ddg,
        machine=machine,
        cluster_of={node_id: 0 for node_id in ddg.node_ids},
    )
