"""Loop data dependence graphs: operations, edges, SCCs, MII."""

from .graph import Ddg, Edge, Node, build_ddg
from .mii import (
    mii,
    op_demand,
    rec_mii,
    rec_mii_exceeds,
    rec_mii_of_subgraph,
    res_mii,
)
from .view import DdgView, scc_components
from .opcodes import (
    FuClass,
    Opcode,
    OpcodeInfo,
    all_opcode_info,
    fu_class_of,
    latency_of,
    produces_value,
)
from .dot import annotated_to_dot, ddg_to_dot
from .parse import LoopParseError, format_loop, parse_loop
from .scc import Scc, SccPartition, find_sccs
from .transform import AnnotatedDdg, trivial_annotation

__all__ = [
    "AnnotatedDdg",
    "Ddg",
    "DdgView",
    "Edge",
    "FuClass",
    "Node",
    "Opcode",
    "OpcodeInfo",
    "Scc",
    "SccPartition",
    "LoopParseError",
    "all_opcode_info",
    "annotated_to_dot",
    "build_ddg",
    "ddg_to_dot",
    "find_sccs",
    "format_loop",
    "fu_class_of",
    "latency_of",
    "mii",
    "op_demand",
    "parse_loop",
    "produces_value",
    "rec_mii",
    "rec_mii_exceeds",
    "rec_mii_of_subgraph",
    "res_mii",
    "scc_components",
    "trivial_annotation",
]
