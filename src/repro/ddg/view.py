"""Compiled, immutable views of a :class:`~repro.ddg.graph.Ddg`.

The Figure-5 driver re-runs ordering, assignment, and scheduling at every
candidate II, but the *graph* only changes when the assignment phase
splices copy nodes in.  Everything derivable from the bare topology —
adjacency, per-edge weights, deduplicated neighbor lists, value-flow
fan-out, SCC membership, per-SCC RecMII — is therefore invariant across
the entire II search and worth computing exactly once.

:class:`DdgView` is that compiled artifact.  It is built lazily by
:meth:`Ddg.view` and cached on the graph behind a mutation version
counter: ``add_node``/``add_edge`` bump the version, the next ``view()``
call rebuilds (counted as ``ddg.view_rebuilds`` in the trace layer), and
``copy()`` produces a graph with no view at all.  The view itself must
never be mutated by consumers — every container is a tuple, a frozenset,
or a dict that callers treat as read-only.  The only mutable fields are
the memo dictionaries (``recmii_exact``, ``recmii_bounds``,
``recmii_validated``, ``components``, ``partition``) owned by
:mod:`repro.ddg.mii` and :mod:`repro.ddg.scc`; they die with the view on
invalidation, which is exactly the lifetime their keys are valid for.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from ..obs.trace import count as obs_count


class DdgView:
    """Read-only compiled form of one version of a DDG.

    Attributes (all keyed by node id where applicable):

    ``edge_array``
        Every edge as ``(src, dst, latency(src), distance)`` in insertion
        order — the exact operand layout the Bellman–Ford style relaxation
        loops in :mod:`repro.ddg.mii` and
        :mod:`repro.scheduling.priority` consume, so the hot loops never
        touch node records.
    ``in_specs`` / ``out_specs``
        Per-node dependence constraints pre-extracted for the scheduler:
        ``in_specs[n]`` holds ``(src, latency(src), distance)`` per
        incoming edge, ``out_specs[n]`` holds ``(dst, distance)`` per
        outgoing edge, both in edge insertion order.
    ``successors`` / ``predecessors``
        Deduplicated neighbor tuples in first-occurrence order (what the
        SMS sweep and SCC computation walk).
    ``value_consumers`` / ``value_producers``
        Register value flow (excluding self-dependences and non-value
        edges), deduplicated — the adjacency copy routing replans over.
    """

    __slots__ = (
        "version",
        "node_ids",
        "latency",
        "produces_value",
        "total_latency",
        "edge_array",
        "in_edges",
        "out_edges",
        "in_specs",
        "out_specs",
        "successors",
        "predecessors",
        "self_loops",
        "value_consumers",
        "value_producers",
        # Memo slots owned by repro.ddg.scc / repro.ddg.mii.
        "components",
        "partition",
        "recmii_exact",
        "recmii_bounds",
        "recmii_validated",
    )

    def __init__(self, version: int) -> None:
        self.version = version
        self.components: Optional[Tuple[FrozenSet[int], ...]] = None
        self.partition = None
        self.recmii_exact: Dict[FrozenSet[int], int] = {}
        self.recmii_bounds: Dict[FrozenSet[int], Tuple[int, int]] = {}
        self.recmii_validated: set = set()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DdgView(version={self.version}, nodes={len(self.node_ids)}, "
            f"edges={len(self.edge_array)})"
        )


def build_view(ddg, version: int) -> DdgView:
    """Compile ``ddg`` (at mutation ``version``) into a :class:`DdgView`."""
    obs_count("ddg.view_rebuilds")
    view = DdgView(version)
    node_ids = tuple(ddg.node_ids)
    view.node_ids = node_ids

    latency: Dict[int, int] = {}
    produces: Dict[int, bool] = {}
    for node in ddg.nodes:
        latency[node.node_id] = node.latency
        produces[node.node_id] = node.produces_value
    view.latency = latency
    view.produces_value = produces
    view.total_latency = sum(latency.values())

    edges = ddg.edges
    view.edge_array = tuple(
        (e.src, e.dst, latency[e.src], e.distance) for e in edges
    )

    in_lists: Dict[int, list] = {n: [] for n in node_ids}
    out_lists: Dict[int, list] = {n: [] for n in node_ids}
    self_loops = set()
    value_cons: Dict[int, List[int]] = {n: [] for n in node_ids}
    value_prods: Dict[int, List[int]] = {n: [] for n in node_ids}
    for e in edges:
        out_lists[e.src].append(e)
        in_lists[e.dst].append(e)
        if e.src == e.dst:
            self_loops.add(e.src)
        elif produces[e.src]:
            value_cons[e.src].append(e.dst)
            value_prods[e.dst].append(e.src)

    view.in_edges = {n: tuple(in_lists[n]) for n in node_ids}
    view.out_edges = {n: tuple(out_lists[n]) for n in node_ids}
    view.in_specs = {
        n: tuple((e.src, latency[e.src], e.distance) for e in in_lists[n])
        for n in node_ids
    }
    view.out_specs = {
        n: tuple((e.dst, e.distance) for e in out_lists[n])
        for n in node_ids
    }
    view.successors = {
        n: tuple(dict.fromkeys(e.dst for e in out_lists[n]))
        for n in node_ids
    }
    view.predecessors = {
        n: tuple(dict.fromkeys(e.src for e in in_lists[n]))
        for n in node_ids
    }
    view.self_loops = frozenset(self_loops)
    view.value_consumers = {
        n: tuple(dict.fromkeys(value_cons[n])) for n in node_ids
    }
    view.value_producers = {
        n: tuple(dict.fromkeys(value_prods[n])) for n in node_ids
    }
    return view


def scc_components(ddg) -> Tuple[FrozenSet[int], ...]:
    """Non-trivial strongly connected components of ``ddg``, memoized.

    A component is non-trivial (a real recurrence) when it has more than
    one node, or a single node with a self-loop.  Computed with an
    iterative Tarjan walk over the compiled adjacency — no recursion, no
    networkx graph construction — and cached on the view for the lifetime
    of the graph version.
    """
    view = ddg.view()
    if view.components is None:
        view.components = _tarjan_components(view)
    return view.components


def _tarjan_components(view: DdgView) -> Tuple[FrozenSet[int], ...]:
    succs = view.successors
    index: Dict[int, int] = {}
    low: Dict[int, int] = {}
    on_stack: set = set()
    stack: List[int] = []
    components: List[FrozenSet[int]] = []

    for root in view.node_ids:
        if root in index:
            continue
        work: List[Tuple[int, int]] = [(root, 0)]
        while work:
            node, child_index = work.pop()
            if child_index == 0:
                index[node] = low[node] = len(index)
                stack.append(node)
                on_stack.add(node)
            descended = False
            children = succs[node]
            for j in range(child_index, len(children)):
                succ = children[j]
                if succ not in index:
                    work.append((node, j + 1))
                    work.append((succ, 0))
                    descended = True
                    break
                if succ in on_stack and index[succ] < low[node]:
                    low[node] = index[succ]
            if descended:
                continue
            if low[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(frozenset(component))
            elif work:
                parent = work[-1][0]
                if low[node] < low[parent]:
                    low[parent] = low[node]
    return tuple(
        component
        for component in components
        if len(component) > 1 or next(iter(component)) in view.self_loops
    )
