"""Minimum initiation interval (MII) computation.

``MII = max(RecMII, ResMII)`` (paper Section 3):

* **RecMII** — the recurrence-constrained minimum: the maximum over all
  dependence cycles of ``ceil(sum(latencies) / sum(distances))``.  Every
  cycle lives inside a strongly connected component, so the whole-graph
  RecMII is the max over per-SCC answers; each SCC is resolved by binary
  search over integer candidate IIs, where a candidate ``II`` is feasible
  iff the subgraph with edge weights ``latency(src) - II * distance`` has
  no strictly positive cycle (Bellman–Ford-style longest-path relaxation,
  ``O(V * E)`` per probe).
* **ResMII** — the resource-constrained minimum: for each resource class,
  ``ceil(uses / capacity)``, maximized over classes.  Function units are
  fully pipelined (one issue slot per operation regardless of latency),
  matching the paper's ``ResMII = ops / width`` example.

RecMII is a property of the graph alone and is therefore *memoized* on
the graph's compiled view (:mod:`repro.ddg.view`), keyed by the SCC node
set: the Figure-5 driver probes the same graph at many candidate IIs, and
every probe after the first is a cache hit (``mii.recmii_cache_hits``).
Threshold queries (:func:`rec_mii_exceeds`) cost a single positive-cycle
probe per SCC and record the resulting infeasible/feasible bounds, which
warm-start the binary search when an exact value is needed later.

ResMII needs a machine description, so :func:`res_mii` accepts any object
exposing the small ``issue_capacity`` protocol implemented by
:class:`repro.machine.machine.Machine`.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Tuple

from ..obs.trace import count as obs_count
from .graph import Ddg
from .opcodes import FuClass
from .view import DdgView, scc_components

_ZERO_DISTANCE_CYCLE = (
    "dependence cycle with zero total distance: graph is unschedulable"
)


def _positive_cycle_exists(
    nodes: List[int],
    edges: List[Tuple[int, int, int, int]],
    candidate_ii: int,
) -> bool:
    """True when some cycle has ``sum(latency) - II * sum(distance) > 0``.

    ``edges`` holds ``(src, dst, latency, distance)`` tuples restricted to
    ``nodes``.  Longest-path relaxation from an implicit super-source: any
    relaxation still possible after ``len(nodes)`` passes proves a positive
    cycle.
    """
    dist = {node: 0 for node in nodes}
    for _ in range(len(nodes)):
        changed = False
        for src, dst, latency, distance in edges:
            weight = latency - candidate_ii * distance
            if dist[src] + weight > dist[dst]:
                dist[dst] = dist[src] + weight
                changed = True
        if not changed:
            return False
    return True


def _cycle_exists(nodes: List[int], arcs: List[Tuple[int, int]]) -> bool:
    """True when the directed graph over ``nodes`` contains a cycle.

    Iterative colouring DFS (white/gray/black); a gray-to-gray arc is a
    back edge and therefore a cycle.
    """
    succs: Dict[int, List[int]] = {node: [] for node in nodes}
    for src, dst in arcs:
        succs[src].append(dst)
    WHITE, GRAY, BLACK = 0, 1, 2
    colour = {node: WHITE for node in nodes}
    for start in nodes:
        if colour[start] != WHITE:
            continue
        stack: List[Tuple[int, int]] = [(start, 0)]
        colour[start] = GRAY
        while stack:
            node, next_index = stack[-1]
            if next_index < len(succs[node]):
                stack[-1] = (node, next_index + 1)
                succ = succs[node][next_index]
                if colour[succ] == GRAY:
                    return True
                if colour[succ] == WHITE:
                    colour[succ] = GRAY
                    stack.append((succ, 0))
            else:
                colour[node] = BLACK
                stack.pop()
    return False


def _subgraph_edges(
    ddg: Ddg, nodes: Iterable[int]
) -> List[Tuple[int, int, int, int]]:
    """Edges of ``ddg`` with both endpoints in ``nodes``, as
    ``(src, dst, latency(src), distance)`` tuples."""
    node_set = set(nodes)
    return [
        spec
        for spec in ddg.view().edge_array
        if spec[0] in node_set and spec[1] in node_set
    ]


def _validate_subgraph(
    view: DdgView,
    key: FrozenSet[int],
    node_list: List[int],
    edges: List[Tuple[int, int, int, int]],
    upper: int,
) -> None:
    """Reject zero-total-distance cycles once per (version, node set).

    At II = sum-of-latencies any cycle with total distance >= 1 has
    non-positive weight, so a positive cycle there means a cycle with
    zero total distance: malformed input.  A cycle made entirely of
    zero-latency ops has weight 0 at *every* II, so the positive-cycle
    probes are blind to it; with zero total distance it is a
    same-iteration self-dependence — unschedulable — and must be rejected
    explicitly (zero-latency cycles with distance >= 1 impose no bound
    and are legitimately ignored).

    Successful validation seeds the search bounds: ``upper`` is known
    feasible, nothing is yet known infeasible.
    """
    if key in view.recmii_validated:
        return
    if _positive_cycle_exists(node_list, edges, upper):
        raise ValueError(_ZERO_DISTANCE_CYCLE)
    if _cycle_exists(
        node_list,
        [(src, dst) for src, dst, latency, distance in edges
         if latency == 0 and distance == 0],
    ):
        raise ValueError(_ZERO_DISTANCE_CYCLE)
    view.recmii_validated.add(key)
    view.recmii_bounds.setdefault(key, (-1, upper))


def rec_mii_of_subgraph(ddg: Ddg, nodes: Iterable[int]) -> int:
    """RecMII contributed by the cycles inside ``nodes``.

    Returns 0 when the subgraph is acyclic (imposes no recurrence bound).
    Memoized per (graph version, node set); a binary search resumes from
    any bounds previously recorded by :func:`rec_mii_exceeds` probes.
    """
    view = ddg.view()
    key = frozenset(nodes)
    cached = view.recmii_exact.get(key)
    if cached is not None:
        obs_count("mii.recmii_cache_hits")
        return cached
    node_list = list(nodes)
    edges = _subgraph_edges(ddg, key)
    if not edges:
        view.recmii_exact[key] = 0
        return 0
    upper = max(sum(view.latency[n] for n in node_list), 1)
    _validate_subgraph(view, key, node_list, edges, upper)
    # Invariant: a positive cycle exists at ``low`` (low == -1 stands for
    # "nothing known infeasible"), none exists at ``high``.
    low, high = view.recmii_bounds[key]
    if low < 0:
        if not _positive_cycle_exists(node_list, edges, 0):
            view.recmii_exact[key] = 0
            view.recmii_bounds.pop(key, None)
            return 0  # No recurrence-constraining cycle.
        low = 0
    while high - low > 1:
        mid = (low + high) // 2
        if _positive_cycle_exists(node_list, edges, mid):
            low = mid
        else:
            high = mid
    view.recmii_exact[key] = high
    view.recmii_bounds.pop(key, None)
    return high


def rec_mii(ddg: Ddg) -> int:
    """RecMII of the whole graph (max over its dependence cycles).

    Computed as the max over the graph's non-trivial SCCs — cycles cannot
    cross SCC boundaries — so each component's (memoized) answer is
    shared with the SCC criticality ordering and the scheduler's
    feasibility checks.
    """
    bound = 0
    for component in scc_components(ddg):
        bound = max(bound, rec_mii_of_subgraph(ddg, component))
    return bound


def rec_mii_exceeds(ddg: Ddg, ii: int) -> bool:
    """True exactly when ``rec_mii(ddg) > ii``, at threshold-query cost.

    Instead of resolving every SCC's exact RecMII, each SCC is probed
    once at ``ii`` (one Bellman–Ford pass set) unless a memoized exact
    value or previously recorded bound already decides it.  Probe results
    are stored as (infeasible, feasible) bounds so a later exact
    :func:`rec_mii_of_subgraph` binary search starts warm.

    Malformed graphs (zero-total-distance cycles) raise :class:`ValueError`
    from *every* component before any early exit, matching the exact
    computation's behavior.
    """
    view = ddg.view()
    components = scc_components(ddg)
    undecided = []
    for key in components:
        if key in view.recmii_exact:
            continue
        node_list = list(key)
        edges = _subgraph_edges(ddg, key)
        if not edges:  # pragma: no cover - non-trivial SCCs have edges
            view.recmii_exact[key] = 0
            continue
        upper = max(sum(view.latency[n] for n in node_list), 1)
        _validate_subgraph(view, key, node_list, edges, upper)
        undecided.append((key, node_list, edges))

    exceeds = False
    for key in components:
        cached = view.recmii_exact.get(key)
        if cached is not None:
            obs_count("mii.recmii_cache_hits")
            if cached > ii:
                exceeds = True
                break
    if not exceeds:
        for key, node_list, edges in undecided:
            low, high = view.recmii_bounds[key]
            if low >= ii:
                obs_count("mii.recmii_cache_hits")
                exceeds = True
                break
            if high <= ii:
                obs_count("mii.recmii_cache_hits")
                continue
            if _positive_cycle_exists(node_list, edges, ii):
                low = ii
            else:
                high = ii
            if high == 0 or (high - low == 1 and low >= 0):
                view.recmii_exact[key] = high
                view.recmii_bounds.pop(key, None)
            else:
                view.recmii_bounds[key] = (low, high)
            if low == ii:
                exceeds = True
                break
    return exceeds


def op_demand(ddg: Ddg) -> Dict[FuClass, int]:
    """Count of function-unit issue slots demanded per FU class.

    Copies are excluded: the paper models copies as consuming only
    communication resources, never issue slots.
    """
    demand: Dict[FuClass, int] = {}
    for node in ddg.nodes:
        if node.is_copy:
            continue
        demand[node.fu_class] = demand.get(node.fu_class, 0) + 1
    return demand


def res_mii(ddg: Ddg, machine) -> int:
    """ResMII of ``ddg`` on ``machine``.

    ``machine`` must expose ``issue_capacity(fu_class) -> int`` returning
    the number of units per cycle able to execute that class (for GP
    machines this is the total width for every class) and a boolean
    attribute ``general_purpose``.
    """
    demand = op_demand(ddg)
    if not demand:
        return 1
    if machine.general_purpose:
        total_ops = sum(demand.values())
        width = machine.issue_capacity(FuClass.INTEGER)
        if width <= 0:
            raise ValueError("machine has no function units")
        return max(1, -(-total_ops // width))
    bound = 1
    for fu_class, count in demand.items():
        capacity = machine.issue_capacity(fu_class)
        if capacity <= 0:
            raise ValueError(
                f"machine cannot execute {fu_class} operations"
            )
        bound = max(bound, -(-count // capacity))
    return bound


def mii(ddg: Ddg, machine) -> int:
    """``max(RecMII, ResMII)`` — the modulo scheduling lower bound."""
    return max(rec_mii(ddg), res_mii(ddg, machine), 1)
