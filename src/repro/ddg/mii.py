"""Minimum initiation interval (MII) computation.

``MII = max(RecMII, ResMII)`` (paper Section 3):

* **RecMII** — the recurrence-constrained minimum: the maximum over all
  dependence cycles of ``ceil(sum(latencies) / sum(distances))``.  We find
  it by binary search over integer candidate IIs: a candidate ``II`` is
  feasible iff the graph with edge weights ``latency(src) - II * distance``
  has no strictly positive cycle, which Bellman–Ford-style longest-path
  relaxation detects in ``O(V * E)``.
* **ResMII** — the resource-constrained minimum: for each resource class,
  ``ceil(uses / capacity)``, maximized over classes.  Function units are
  fully pipelined (one issue slot per operation regardless of latency),
  matching the paper's ``ResMII = ops / width`` example.

RecMII is a property of the graph alone; ResMII needs a machine
description, so :func:`res_mii` accepts any object exposing the small
``issue_capacity`` protocol implemented by
:class:`repro.machine.machine.Machine`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from .graph import Ddg
from .opcodes import FuClass, Opcode


def _positive_cycle_exists(
    nodes: List[int],
    edges: List[Tuple[int, int, int, int]],
    candidate_ii: int,
) -> bool:
    """True when some cycle has ``sum(latency) - II * sum(distance) > 0``.

    ``edges`` holds ``(src, dst, latency, distance)`` tuples restricted to
    ``nodes``.  Longest-path relaxation from an implicit super-source: any
    relaxation still possible after ``len(nodes)`` passes proves a positive
    cycle.
    """
    dist = {node: 0 for node in nodes}
    for _ in range(len(nodes)):
        changed = False
        for src, dst, latency, distance in edges:
            weight = latency - candidate_ii * distance
            if dist[src] + weight > dist[dst]:
                dist[dst] = dist[src] + weight
                changed = True
        if not changed:
            return False
    return True


def _cycle_exists(nodes: List[int], arcs: List[Tuple[int, int]]) -> bool:
    """True when the directed graph over ``nodes`` contains a cycle.

    Iterative colouring DFS (white/gray/black); a gray-to-gray arc is a
    back edge and therefore a cycle.
    """
    succs: Dict[int, List[int]] = {node: [] for node in nodes}
    for src, dst in arcs:
        succs[src].append(dst)
    WHITE, GRAY, BLACK = 0, 1, 2
    colour = {node: WHITE for node in nodes}
    for start in nodes:
        if colour[start] != WHITE:
            continue
        stack: List[Tuple[int, int]] = [(start, 0)]
        colour[start] = GRAY
        while stack:
            node, next_index = stack[-1]
            if next_index < len(succs[node]):
                stack[-1] = (node, next_index + 1)
                succ = succs[node][next_index]
                if colour[succ] == GRAY:
                    return True
                if colour[succ] == WHITE:
                    colour[succ] = GRAY
                    stack.append((succ, 0))
            else:
                colour[node] = BLACK
                stack.pop()
    return False


def _subgraph_edges(
    ddg: Ddg, nodes: Set[int]
) -> List[Tuple[int, int, int, int]]:
    """Edges of ``ddg`` with both endpoints in ``nodes``."""
    node_set = set(nodes)
    edges = []
    for edge in ddg.edges:
        if edge.src in node_set and edge.dst in node_set:
            edges.append(
                (edge.src, edge.dst, ddg.latency(edge.src), edge.distance)
            )
    return edges


def rec_mii_of_subgraph(ddg: Ddg, nodes: Iterable[int]) -> int:
    """RecMII contributed by the cycles inside ``nodes``.

    Returns 0 when the subgraph is acyclic (imposes no recurrence bound).
    """
    node_list = list(nodes)
    edges = _subgraph_edges(ddg, set(node_list))
    if not edges:
        return 0
    upper = max(sum(ddg.latency(n) for n in node_list), 1)
    # At II = sum-of-latencies any cycle with total distance >= 1 has
    # non-positive weight, so a positive cycle there means a cycle with
    # zero total distance: malformed input.
    if _positive_cycle_exists(node_list, edges, upper):
        raise ValueError(
            "dependence cycle with zero total distance: graph is unschedulable"
        )
    # A cycle made entirely of zero-latency ops has weight 0 at *every*
    # II, so the positive-cycle probes are blind to it.  With zero total
    # distance it is a same-iteration self-dependence — unschedulable —
    # and must be rejected here explicitly (the probe above only catches
    # zero-distance cycles of positive total latency).  A zero-latency
    # cycle with distance >= 1 bounds II >= ceil(0 / d) = 0, i.e. it
    # imposes no recurrence constraint and is legitimately ignored.
    if _cycle_exists(
        node_list,
        [(src, dst) for src, dst, latency, distance in edges
         if latency == 0 and distance == 0],
    ):
        raise ValueError(
            "dependence cycle with zero total distance: graph is unschedulable"
        )
    low, high = 0, upper
    # Invariant: high is feasible, low is infeasible.  II = 0 is
    # infeasible exactly when some cycle has positive total latency;
    # cycles of only zero-latency ops were handled above.
    if not _positive_cycle_exists(node_list, edges, 0):
        return 0  # No recurrence-constraining cycle.
    while high - low > 1:
        mid = (low + high) // 2
        if _positive_cycle_exists(node_list, edges, mid):
            low = mid
        else:
            high = mid
    return high


def rec_mii(ddg: Ddg) -> int:
    """RecMII of the whole graph (max over its dependence cycles)."""
    return rec_mii_of_subgraph(ddg, ddg.node_ids)


def op_demand(ddg: Ddg) -> Dict[FuClass, int]:
    """Count of function-unit issue slots demanded per FU class.

    Copies are excluded: the paper models copies as consuming only
    communication resources, never issue slots.
    """
    demand: Dict[FuClass, int] = {}
    for node in ddg.nodes:
        if node.is_copy:
            continue
        demand[node.fu_class] = demand.get(node.fu_class, 0) + 1
    return demand


def res_mii(ddg: Ddg, machine) -> int:
    """ResMII of ``ddg`` on ``machine``.

    ``machine`` must expose ``issue_capacity(fu_class) -> int`` returning
    the number of units per cycle able to execute that class (for GP
    machines this is the total width for every class) and a boolean
    attribute ``general_purpose``.
    """
    demand = op_demand(ddg)
    if not demand:
        return 1
    if machine.general_purpose:
        total_ops = sum(demand.values())
        width = machine.issue_capacity(FuClass.INTEGER)
        if width <= 0:
            raise ValueError("machine has no function units")
        return max(1, -(-total_ops // width))
    bound = 1
    for fu_class, count in demand.items():
        capacity = machine.issue_capacity(fu_class)
        if capacity <= 0:
            raise ValueError(
                f"machine cannot execute {fu_class} operations"
            )
        bound = max(bound, -(-count // capacity))
    return bound


def mii(ddg: Ddg, machine) -> int:
    """``max(RecMII, ResMII)`` — the modulo scheduling lower bound."""
    return max(rec_mii(ddg), res_mii(ddg, machine), 1)
