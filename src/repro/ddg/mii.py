"""Minimum initiation interval (MII) computation.

``MII = max(RecMII, ResMII)`` (paper Section 3):

* **RecMII** — the recurrence-constrained minimum: the maximum over all
  dependence cycles of ``ceil(sum(latencies) / sum(distances))``.  We find
  it by binary search over integer candidate IIs: a candidate ``II`` is
  feasible iff the graph with edge weights ``latency(src) - II * distance``
  has no strictly positive cycle, which Bellman–Ford-style longest-path
  relaxation detects in ``O(V * E)``.
* **ResMII** — the resource-constrained minimum: for each resource class,
  ``ceil(uses / capacity)``, maximized over classes.  Function units are
  fully pipelined (one issue slot per operation regardless of latency),
  matching the paper's ``ResMII = ops / width`` example.

RecMII is a property of the graph alone; ResMII needs a machine
description, so :func:`res_mii` accepts any object exposing the small
``issue_capacity`` protocol implemented by
:class:`repro.machine.machine.Machine`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from .graph import Ddg
from .opcodes import FuClass, Opcode


def _positive_cycle_exists(
    nodes: List[int],
    edges: List[Tuple[int, int, int, int]],
    candidate_ii: int,
) -> bool:
    """True when some cycle has ``sum(latency) - II * sum(distance) > 0``.

    ``edges`` holds ``(src, dst, latency, distance)`` tuples restricted to
    ``nodes``.  Longest-path relaxation from an implicit super-source: any
    relaxation still possible after ``len(nodes)`` passes proves a positive
    cycle.
    """
    dist = {node: 0 for node in nodes}
    for _ in range(len(nodes)):
        changed = False
        for src, dst, latency, distance in edges:
            weight = latency - candidate_ii * distance
            if dist[src] + weight > dist[dst]:
                dist[dst] = dist[src] + weight
                changed = True
        if not changed:
            return False
    return True


def _subgraph_edges(
    ddg: Ddg, nodes: Set[int]
) -> List[Tuple[int, int, int, int]]:
    """Edges of ``ddg`` with both endpoints in ``nodes``."""
    node_set = set(nodes)
    edges = []
    for edge in ddg.edges:
        if edge.src in node_set and edge.dst in node_set:
            edges.append(
                (edge.src, edge.dst, ddg.latency(edge.src), edge.distance)
            )
    return edges


def rec_mii_of_subgraph(ddg: Ddg, nodes: Iterable[int]) -> int:
    """RecMII contributed by the cycles inside ``nodes``.

    Returns 0 when the subgraph is acyclic (imposes no recurrence bound).
    """
    node_list = list(nodes)
    edges = _subgraph_edges(ddg, set(node_list))
    if not edges:
        return 0
    upper = max(sum(ddg.latency(n) for n in node_list), 1)
    # At II = sum-of-latencies any cycle with total distance >= 1 has
    # non-positive weight, so a positive cycle there means a cycle with
    # zero total distance: malformed input.
    if _positive_cycle_exists(node_list, edges, upper):
        raise ValueError(
            "dependence cycle with zero total distance: graph is unschedulable"
        )
    low, high = 0, upper
    # Invariant: high is feasible, low is infeasible (II = 0 always
    # infeasible when a cycle exists because latencies are positive).
    if not _positive_cycle_exists(node_list, edges, 0):
        return 0  # No cycle at all.
    while high - low > 1:
        mid = (low + high) // 2
        if _positive_cycle_exists(node_list, edges, mid):
            low = mid
        else:
            high = mid
    return high


def rec_mii(ddg: Ddg) -> int:
    """RecMII of the whole graph (max over its dependence cycles)."""
    return rec_mii_of_subgraph(ddg, ddg.node_ids)


def op_demand(ddg: Ddg) -> Dict[FuClass, int]:
    """Count of function-unit issue slots demanded per FU class.

    Copies are excluded: the paper models copies as consuming only
    communication resources, never issue slots.
    """
    demand: Dict[FuClass, int] = {}
    for node in ddg.nodes:
        if node.is_copy:
            continue
        demand[node.fu_class] = demand.get(node.fu_class, 0) + 1
    return demand


def res_mii(ddg: Ddg, machine) -> int:
    """ResMII of ``ddg`` on ``machine``.

    ``machine`` must expose ``issue_capacity(fu_class) -> int`` returning
    the number of units per cycle able to execute that class (for GP
    machines this is the total width for every class) and a boolean
    attribute ``general_purpose``.
    """
    demand = op_demand(ddg)
    if not demand:
        return 1
    if machine.general_purpose:
        total_ops = sum(demand.values())
        width = machine.issue_capacity(FuClass.INTEGER)
        if width <= 0:
            raise ValueError("machine has no function units")
        return max(1, -(-total_ops // width))
    bound = 1
    for fu_class, count in demand.items():
        capacity = machine.issue_capacity(fu_class)
        if capacity <= 0:
            raise ValueError(
                f"machine cannot execute {fu_class} operations"
            )
        bound = max(bound, -(-count // capacity))
    return bound


def mii(ddg: Ddg, machine) -> int:
    """``max(RecMII, ResMII)`` — the modulo scheduling lower bound."""
    return max(rec_mii(ddg), res_mii(ddg, machine), 1)
