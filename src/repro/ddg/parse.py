"""A small textual format for loop DDGs.

One operation per line::

    # comments and blank lines are ignored
    a:  load
    b:  fp_mult  <- a
    c:  fp_add   <- b, c@1      # c@1 = value of c from 1 iteration ago
    d:  store    <- c

Grammar per line: ``NAME ':' OPCODE ['<-' DEP (',' DEP)*]`` where ``DEP``
is ``NAME`` (same-iteration dependence) or ``NAME '@' DISTANCE``
(loop-carried).  Dependences may reference operations defined later in
the file (necessary for recurrences).

``parse_loop`` builds a :class:`Ddg`; ``format_loop`` is its inverse
(modulo comments/whitespace), so ``parse_loop(format_loop(g))`` is
structurally identical to ``g``.
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple

from .graph import Ddg
from .opcodes import Opcode

_LINE = re.compile(
    r"^\s*(?P<name>\w+)\s*:\s*(?P<opcode>\w+)"
    r"(?:\s*<-\s*(?P<deps>[\w@,\s]+?))?\s*$"
)
_DEP = re.compile(r"^(?P<name>\w+)(?:@(?P<distance>\d+))?$")

_OPCODES = {opcode.value: opcode for opcode in Opcode}


class LoopParseError(ValueError):
    """A malformed loop description, with the offending line number."""

    def __init__(self, line_number: int, message: str) -> None:
        super().__init__(f"line {line_number}: {message}")
        self.line_number = line_number


def parse_loop(text: str, name: str = "") -> Ddg:
    """Parse the textual loop format into a :class:`Ddg`."""
    ops: List[Tuple[int, str, Opcode]] = []
    deps: List[Tuple[int, str, str, int]] = []
    seen: Dict[str, int] = {}
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        match = _LINE.match(line)
        if match is None:
            raise LoopParseError(line_number, f"cannot parse {line!r}")
        op_name = match.group("name")
        if op_name in seen:
            raise LoopParseError(
                line_number, f"operation {op_name!r} defined twice"
            )
        opcode_text = match.group("opcode").lower()
        if opcode_text not in _OPCODES:
            raise LoopParseError(
                line_number,
                f"unknown opcode {opcode_text!r} "
                f"(expected one of {sorted(_OPCODES)})",
            )
        seen[op_name] = line_number
        ops.append((line_number, op_name, _OPCODES[opcode_text]))
        dep_text = match.group("deps")
        if dep_text:
            for chunk in dep_text.split(","):
                chunk = chunk.strip()
                if not chunk:
                    continue
                dep_match = _DEP.match(chunk)
                if dep_match is None:
                    raise LoopParseError(
                        line_number, f"cannot parse dependence {chunk!r}"
                    )
                distance = int(dep_match.group("distance") or 0)
                deps.append(
                    (line_number, dep_match.group("name"), op_name, distance)
                )

    graph = Ddg(name=name)
    ids: Dict[str, int] = {}
    for _, op_name, opcode in ops:
        ids[op_name] = graph.add_node(opcode, name=op_name)
    for line_number, src_name, dst_name, distance in deps:
        if src_name not in ids:
            raise LoopParseError(
                line_number, f"dependence on undefined operation {src_name!r}"
            )
        graph.add_edge(ids[src_name], ids[dst_name], distance=distance)
    return graph


def format_loop(ddg: Ddg) -> str:
    """Serialize a :class:`Ddg` back to the textual loop format.

    Node names must be unique and non-empty; unnamed nodes are emitted as
    ``n<id>``.
    """
    names: Dict[int, str] = {}
    for node in ddg.nodes:
        names[node.node_id] = node.name or f"n{node.node_id}"
    if len(set(names.values())) != len(names):
        raise ValueError("node names must be unique to serialize")
    lines = []
    for node in ddg.nodes:
        deps = []
        for edge in ddg.in_edges(node.node_id):
            src = names[edge.src]
            deps.append(src if edge.distance == 0 else
                        f"{src}@{edge.distance}")
        suffix = f"  <- {', '.join(deps)}" if deps else ""
        lines.append(f"{names[node.node_id]}: {node.opcode.value}{suffix}")
    return "\n".join(lines) + "\n"
