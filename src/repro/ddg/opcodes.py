"""Operation classes and latencies for loop data dependence graphs.

The paper (Table 2) fixes one latency table for every machine model:

======================================== ========
Operation                                Latency
======================================== ========
ALU, Shift, Branch, Store, FP-Add, Copy  1 cycle
Load                                     2 cycles
FP-Mult                                  3 cycles
FP-Div, FP-SQRT                          9 cycles
======================================== ========

Each opcode also belongs to a *function-unit class* which determines the
kind of function unit it may execute on when the machine uses fully
specified (FS) units:

* ``MEMORY``  — loads and stores,
* ``INTEGER`` — ALU, shift, branch,
* ``FLOAT``   — FP add/multiply/divide/sqrt.

On general purpose (GP) machines every opcode may execute on any unit.
Copy operations are special: they never occupy a function-unit issue slot,
only communication resources (ports, buses or point-to-point links).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class FuClass(enum.Enum):
    """Function-unit class required by an operation on an FS machine."""

    MEMORY = "memory"
    INTEGER = "integer"
    FLOAT = "float"
    #: Pseudo-class for copies: no function unit at all.
    NONE = "none"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FuClass.{self.name}"


class Opcode(enum.Enum):
    """Operation types used by the paper's loop suite (Table 2)."""

    ALU = "alu"
    SHIFT = "shift"
    BRANCH = "branch"
    STORE = "store"
    LOAD = "load"
    FP_ADD = "fp_add"
    FP_MULT = "fp_mult"
    FP_DIV = "fp_div"
    FP_SQRT = "fp_sqrt"
    #: Explicit inter-cluster communication inserted by cluster assignment.
    COPY = "copy"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Opcode.{self.name}"


#: Table 2 of the paper.
LATENCY = {
    Opcode.ALU: 1,
    Opcode.SHIFT: 1,
    Opcode.BRANCH: 1,
    Opcode.STORE: 1,
    Opcode.FP_ADD: 1,
    Opcode.COPY: 1,
    Opcode.LOAD: 2,
    Opcode.FP_MULT: 3,
    Opcode.FP_DIV: 9,
    Opcode.FP_SQRT: 9,
}

#: Function-unit class of each opcode on a fully specified machine.
FU_CLASS = {
    Opcode.ALU: FuClass.INTEGER,
    Opcode.SHIFT: FuClass.INTEGER,
    Opcode.BRANCH: FuClass.INTEGER,
    Opcode.STORE: FuClass.MEMORY,
    Opcode.LOAD: FuClass.MEMORY,
    Opcode.FP_ADD: FuClass.FLOAT,
    Opcode.FP_MULT: FuClass.FLOAT,
    Opcode.FP_DIV: FuClass.FLOAT,
    Opcode.FP_SQRT: FuClass.FLOAT,
    Opcode.COPY: FuClass.NONE,
}

#: Opcodes that produce a register value consumable by other operations.
#: Stores and branches produce no value, so they never need copies for
#: their (non-existent) results; they may still *consume* copied values.
VALUE_PRODUCING = frozenset(
    op for op in Opcode if op not in (Opcode.STORE, Opcode.BRANCH)
)


def latency_of(opcode: Opcode) -> int:
    """Return the latency in cycles of ``opcode`` (Table 2)."""
    return LATENCY[opcode]


def fu_class_of(opcode: Opcode) -> FuClass:
    """Return the function-unit class ``opcode`` needs on an FS machine."""
    return FU_CLASS[opcode]


def produces_value(opcode: Opcode) -> bool:
    """Return True when ``opcode`` writes a register result."""
    return opcode in VALUE_PRODUCING


@dataclass(frozen=True)
class OpcodeInfo:
    """Bundled static description of one opcode."""

    opcode: Opcode
    latency: int
    fu_class: FuClass
    produces_value: bool

    @classmethod
    def of(cls, opcode: Opcode) -> "OpcodeInfo":
        """Build the info record for ``opcode``."""
        return cls(
            opcode=opcode,
            latency=latency_of(opcode),
            fu_class=fu_class_of(opcode),
            produces_value=produces_value(opcode),
        )


def all_opcode_info() -> "list[OpcodeInfo]":
    """Return :class:`OpcodeInfo` for every opcode, in enum order."""
    return [OpcodeInfo.of(op) for op in Opcode]
