"""Strongly connected components of a DDG and their criticality.

Recurrences in a loop appear as cycles in the data dependence graph, and
every cycle lives inside a strongly connected component (SCC).  The cluster
assignment algorithm orders nodes so that the most *constraining* SCC — the
one with the highest RecMII — is assigned first (paper Section 4.1).

A component is *non-trivial* (a real recurrence) when it contains more than
one node, or a single node with a self-loop edge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional

from .graph import Ddg
from .mii import rec_mii_of_subgraph
from .view import scc_components


@dataclass(frozen=True)
class Scc:
    """One non-trivial strongly connected component.

    ``rec_mii`` is the minimum initiation interval imposed by the
    recurrences inside this component alone.
    """

    index: int
    nodes: FrozenSet[int]
    rec_mii: int

    def __len__(self) -> int:
        return len(self.nodes)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self.nodes


@dataclass
class SccPartition:
    """All non-trivial SCCs of one DDG, ordered by decreasing criticality.

    Criticality order: higher ``rec_mii`` first, larger component first on
    ties, smallest contained node id as the final deterministic tie-break.
    ``membership`` maps each node id to the index (into ``sccs``) of its
    component, or is absent for nodes outside every non-trivial SCC.
    """

    sccs: List[Scc]
    membership: Dict[int, int] = field(default_factory=dict)

    def scc_of(self, node_id: int) -> Optional[Scc]:
        """Return the SCC containing ``node_id``, or None."""
        index = self.membership.get(node_id)
        return None if index is None else self.sccs[index]

    def in_scc(self, node_id: int) -> bool:
        """True when ``node_id`` belongs to a non-trivial SCC."""
        return node_id in self.membership

    @property
    def scc_node_count(self) -> int:
        """Total number of nodes inside non-trivial SCCs."""
        return sum(len(scc) for scc in self.sccs)

    def __len__(self) -> int:
        return len(self.sccs)

    def __iter__(self):
        return iter(self.sccs)


def find_sccs(ddg: Ddg) -> SccPartition:
    """Partition ``ddg`` into non-trivial SCCs ordered by criticality.

    The partition (including every component's memoized RecMII) is
    cached on the graph's compiled view: the Figure-5 driver rebuilds
    the assignment order at each candidate II, and only the first call
    per graph version pays for component discovery and RecMII searches.
    The returned partition is shared — treat it as read-only.
    """
    view = ddg.view()
    if view.partition is not None:
        return view.partition

    scored = []
    for nodes in scc_components(ddg):
        rec_mii = rec_mii_of_subgraph(ddg, nodes)
        scored.append((rec_mii, nodes))
    scored.sort(key=lambda item: (-item[0], -len(item[1]), min(item[1])))

    sccs = [
        Scc(index=i, nodes=nodes, rec_mii=rec_mii)
        for i, (rec_mii, nodes) in enumerate(scored)
    ]
    membership = {
        node_id: scc.index for scc in sccs for node_id in scc.nodes
    }
    partition = SccPartition(sccs=sccs, membership=membership)
    view.partition = partition
    return partition
