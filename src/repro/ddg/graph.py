"""Loop data dependence graphs (DDGs).

A DDG describes one innermost loop body after IF-conversion: nodes are
operations, edges are data dependences.  Every edge carries a *dependence
distance* — the number of loop iterations separating producer and consumer.
Distance 0 is an intra-iteration dependence; distance ``d > 0`` means the
value produced in iteration ``i`` is consumed in iteration ``i + d``
(a loop-carried dependence, i.e. part of a recurrence when it closes a
cycle).

The module keeps the representation deliberately simple and explicit:
integer node ids, dataclass nodes and edges, dict-of-list adjacency.
Parallel edges between the same pair of nodes are allowed (a value may feed
the same consumer both within the iteration and across iterations).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import networkx as nx

from .opcodes import Opcode, fu_class_of, latency_of, produces_value


@dataclass(frozen=True)
class Node:
    """One operation in the loop body.

    ``latency`` defaults to the paper's Table 2 value for the opcode but may
    be overridden when constructing synthetic graphs.
    """

    node_id: int
    opcode: Opcode
    latency: int
    name: str = ""

    @property
    def fu_class(self):
        """Function-unit class this node requires on an FS machine."""
        return fu_class_of(self.opcode)

    @property
    def is_copy(self) -> bool:
        """True when this node is an inter-cluster copy operation."""
        return self.opcode is Opcode.COPY

    @property
    def produces_value(self) -> bool:
        """True when this node writes a register result."""
        return produces_value(self.opcode)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        label = self.name or f"n{self.node_id}"
        return f"{label}:{self.opcode.value}"


@dataclass(frozen=True)
class Edge:
    """A data dependence from ``src`` to ``dst`` with iteration distance."""

    src: int
    dst: int
    distance: int = 0

    def __post_init__(self) -> None:
        if self.distance < 0:
            raise ValueError(f"dependence distance must be >= 0: {self}")


class Ddg:
    """A mutable loop data dependence graph.

    Nodes are created through :meth:`add_node` and referenced everywhere by
    their integer id.  The graph records predecessor and successor adjacency
    and supports cheap structural queries used by the assignment algorithm
    (SCC membership is computed in :mod:`repro.ddg.scc`, not here).
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._nodes: Dict[int, Node] = {}
        self._edges: List[Edge] = []
        self._succs: Dict[int, List[Edge]] = {}
        self._preds: Dict[int, List[Edge]] = {}
        self._next_id = 0
        # Mutation version / compiled-view cache (see repro.ddg.view).
        self._version = 0
        self._view = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(
        self,
        opcode: Opcode,
        name: str = "",
        latency: Optional[int] = None,
    ) -> int:
        """Add an operation and return its node id."""
        node_id = self._next_id
        self._next_id += 1
        node = Node(
            node_id=node_id,
            opcode=opcode,
            latency=latency_of(opcode) if latency is None else latency,
            name=name,
        )
        self._nodes[node_id] = node
        self._succs[node_id] = []
        self._preds[node_id] = []
        self._version += 1
        return node_id

    def add_edge(self, src: int, dst: int, distance: int = 0) -> Edge:
        """Add a dependence edge; both endpoints must already exist."""
        if src not in self._nodes:
            raise KeyError(f"unknown source node {src}")
        if dst not in self._nodes:
            raise KeyError(f"unknown destination node {dst}")
        edge = Edge(src=src, dst=dst, distance=distance)
        self._edges.append(edge)
        self._succs[src].append(edge)
        self._preds[dst].append(edge)
        self._version += 1
        return edge

    # ------------------------------------------------------------------
    # Pickling
    # ------------------------------------------------------------------
    def __getstate__(self) -> Dict[str, object]:
        """Compact wire format: name, nodes and edges only.

        The adjacency tables reference every :class:`Edge` three times
        and ``_view`` holds a full compiled :class:`DdgView` after any
        compile, so the default pickle ships several times the graph's
        constructive core — the dominant IPC cost when dispatching
        loops to pool workers.  Receivers rebuild the derived state.
        """
        return {
            "name": self.name,
            "nodes": [
                (node.opcode, node.latency, node.name)
                for node in self._nodes.values()
            ],
            "edges": [
                (edge.src, edge.dst, edge.distance)
                for edge in self._edges
            ],
        }

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.name = state["name"]
        # Node ids are assigned densely in creation order (there is no
        # removal API), so positions in the node list are the ids.
        # Records are rebuilt through __new__ + __dict__ — the same
        # trusted-channel shortcut default dataclass unpickling takes —
        # because the frozen __init__'s object.__setattr__ calls are
        # measurable at service request rates.
        nodes: Dict[int, Node] = {}
        succs: Dict[int, List[Edge]] = {}
        preds: Dict[int, List[Edge]] = {}
        for node_id, (opcode, latency, name) in enumerate(
            state["nodes"]
        ):
            node = Node.__new__(Node)
            node.__dict__.update(
                node_id=node_id, opcode=opcode,
                latency=latency, name=name,
            )
            nodes[node_id] = node
            succs[node_id] = []
            preds[node_id] = []
        edges: List[Edge] = []
        for src, dst, distance in state["edges"]:
            edge = Edge.__new__(Edge)
            edge.__dict__.update(src=src, dst=dst, distance=distance)
            edges.append(edge)
            succs[src].append(edge)
            preds[dst].append(edge)
        self._nodes = nodes
        self._edges = edges
        self._succs = succs
        self._preds = preds
        self._next_id = len(nodes)
        # Matches the version a play-by-play reconstruction would reach,
        # so version-keyed consumers see a deterministic value.
        self._version = len(self._nodes) + len(self._edges)
        self._view = None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def node(self, node_id: int) -> Node:
        """Return the node record for ``node_id``."""
        return self._nodes[node_id]

    @property
    def node_ids(self) -> List[int]:
        """All node ids in creation order."""
        return list(self._nodes)

    @property
    def nodes(self) -> List[Node]:
        """All node records in creation order."""
        return list(self._nodes.values())

    @property
    def edges(self) -> List[Edge]:
        """All edges in insertion order."""
        return list(self._edges)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._nodes

    def __iter__(self) -> Iterator[int]:
        return iter(self._nodes)

    def out_edges(self, node_id: int) -> List[Edge]:
        """Edges leaving ``node_id``."""
        return list(self._succs[node_id])

    def in_edges(self, node_id: int) -> List[Edge]:
        """Edges entering ``node_id``."""
        return list(self._preds[node_id])

    def successors(self, node_id: int) -> List[int]:
        """Distinct successor node ids of ``node_id`` in first-occurrence
        order (an ordered-set dedup: linear even for high fan-out)."""
        return list(dict.fromkeys(
            edge.dst for edge in self._succs[node_id]
        ))

    def predecessors(self, node_id: int) -> List[int]:
        """Distinct predecessor node ids of ``node_id`` in
        first-occurrence order."""
        return list(dict.fromkeys(
            edge.src for edge in self._preds[node_id]
        ))

    def edge_count(self) -> int:
        """Total number of dependence edges."""
        return len(self._edges)

    def latency(self, node_id: int) -> int:
        """Latency in cycles of node ``node_id``."""
        return self._nodes[node_id].latency

    def total_latency(self) -> int:
        """Sum of all node latencies (used for II search upper bounds)."""
        return sum(n.latency for n in self._nodes.values())

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Mutation counter: bumped by every ``add_node``/``add_edge``."""
        return self._version

    def view(self):
        """The compiled :class:`~repro.ddg.view.DdgView` of this graph.

        Cached until the next mutation; all derived-structure consumers
        (metrics, SMS ordering, SCCs, RecMII, the scheduler) share one
        instance per graph version.
        """
        view = self._view
        if view is None or view.version != self._version:
            from .view import build_view
            view = self._view = build_view(self, self._version)
        return view

    def to_networkx(self) -> nx.MultiDiGraph:
        """Export as a :class:`networkx.MultiDiGraph`.

        Edge attributes: ``distance`` and ``latency`` (of the source node),
        matching the conventional formulation where an edge constrains
        ``start(dst) >= start(src) + latency(src) - II * distance``.
        """
        graph = nx.MultiDiGraph(name=self.name)
        for node in self._nodes.values():
            graph.add_node(node.node_id, opcode=node.opcode, latency=node.latency)
        for edge in self._edges:
            graph.add_edge(
                edge.src,
                edge.dst,
                distance=edge.distance,
                latency=self._nodes[edge.src].latency,
            )
        return graph

    def copy(self, name: Optional[str] = None) -> "Ddg":
        """Return an independent deep copy of this graph."""
        clone = Ddg(name=self.name if name is None else name)
        clone._next_id = self._next_id
        for node_id, node in self._nodes.items():
            clone._nodes[node_id] = node
            clone._succs[node_id] = []
            clone._preds[node_id] = []
        for edge in self._edges:
            clone._edges.append(edge)
            clone._succs[edge.src].append(edge)
            clone._preds[edge.dst].append(edge)
        return clone

    def op_histogram(self) -> Dict[Opcode, int]:
        """Count of nodes per opcode."""
        histogram: Dict[Opcode, int] = {}
        for node in self._nodes.values():
            histogram[node.opcode] = histogram.get(node.opcode, 0) + 1
        return histogram

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Ddg(name={self.name!r}, nodes={len(self._nodes)}, "
            f"edges={len(self._edges)})"
        )


def build_ddg(
    ops: Iterable[Tuple[str, Opcode]],
    deps: Iterable[Tuple[str, str, int]],
    name: str = "",
) -> Ddg:
    """Convenience constructor from symbolic names.

    ``ops`` is an iterable of ``(name, opcode)`` pairs and ``deps`` an
    iterable of ``(src_name, dst_name, distance)`` triples.  Returns the
    constructed :class:`Ddg`.

    >>> g = build_ddg([("a", Opcode.LOAD), ("b", Opcode.ALU)],
    ...               [("a", "b", 0)])
    >>> len(g), g.edge_count()
    (2, 1)
    """
    graph = Ddg(name=name)
    ids: Dict[str, int] = {}
    for op_name, opcode in ops:
        if op_name in ids:
            raise ValueError(f"duplicate operation name {op_name!r}")
        ids[op_name] = graph.add_node(opcode, name=op_name)
    for src_name, dst_name, distance in deps:
        graph.add_edge(ids[src_name], ids[dst_name], distance=distance)
    return graph
