"""The benchmark observatory: one schema, one history, one gate.

Before this module each ``BENCH_*.json`` perf artifact used its own
ad-hoc shape and overwrote its predecessor, so the repository's perf
trajectory across PRs was unrecoverable.  Now every benchmark emitter
builds its artifact through :func:`make_artifact`:

.. code-block:: json

    {
      "benchmark": "trace_smoke",
      "schema_version": 1,
      "timestamp": "2026-08-07T12:00:00Z",
      "host": {"platform": "...", "python": "3.11.7", "cores": 4},
      "metrics": {"untraced_s": 0.04, "overhead_fraction": 0.054},
      "budgets": {"overhead_fraction": 0.10},
      "regression_metrics": ["untraced_s", "traced_s"],
      "info": {"machine": "2cl-gp-b2-p1", "loops": 20}
    }

``metrics`` is flat and numeric — the comparable measurements.
``budgets`` are absolute lower-is-better caps checked on every run;
``regression_metrics`` name the metrics additionally compared against
the recorded baseline (the mean of the last N prior entries for the
same benchmark); ``info`` holds everything non-comparable.

:func:`append_history` appends artifacts to the append-only
``results/bench_history.jsonl`` store, :func:`check_entries` evaluates
budgets + regressions, and the ``repro bench run|check|report`` CLI
(:mod:`repro.cli`) ties it together into a CI perf gate.
"""

from __future__ import annotations

import datetime
import json
import os
import platform
import sys
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

#: Bumped when the artifact envelope changes incompatibly.
SCHEMA_VERSION = 1

#: Default location of the append-only history store, relative to the
#: repository root.
HISTORY_PATH = os.path.join("results", "bench_history.jsonl")

#: Regressions beyond this fraction of the baseline fail ``check``.
DEFAULT_TOLERANCE = 0.15

#: How many prior entries form the regression baseline.
DEFAULT_BASELINE_N = 5

#: The observatory benchmark files and the artifacts they write,
#: keyed by benchmark name (``repro bench run`` executes these).
OBSERVATORY = {
    "trace_smoke": (
        "benchmarks/test_trace_smoke.py", "BENCH_trace_smoke.json"
    ),
    "parallel_engine": (
        "benchmarks/test_parallel_engine.py", "BENCH_parallel_engine.json"
    ),
    "hotpath": ("benchmarks/test_hotpath.py", "BENCH_hotpath.json"),
    "lint_overhead": (
        "benchmarks/test_lint_overhead.py", "BENCH_lint.json"
    ),
    "certify_overhead": (
        "benchmarks/test_certify_overhead.py", "BENCH_certify.json"
    ),
    "service": ("benchmarks/test_service.py", "BENCH_service.json"),
}


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def host_fingerprint() -> Dict[str, object]:
    """Where a measurement was taken: platform, interpreter, cores."""
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cores": _usable_cores(),
    }


def _utc_now() -> str:
    return datetime.datetime.now(datetime.timezone.utc).strftime(
        "%Y-%m-%dT%H:%M:%SZ"
    )


def make_artifact(
    benchmark: str,
    metrics: Dict[str, float],
    budgets: Optional[Dict[str, float]] = None,
    regression_metrics: Optional[Sequence[str]] = None,
    info: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Build one schema-versioned benchmark artifact.

    ``metrics`` must be flat name→number; ``budgets`` caps a subset of
    them (lower is better); ``regression_metrics`` names the subset
    compared against history (lower is better); ``info`` is free-form
    context.  Raises ``ValueError`` on non-numeric metrics or budgets /
    regression metrics that name nothing in ``metrics``.
    """
    for name, value in metrics.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ValueError(
                f"metric {name!r} is not numeric: {value!r}"
            )
    budgets = dict(budgets or {})
    regression = list(regression_metrics or [])
    for name in list(budgets) + regression:
        if name not in metrics:
            raise ValueError(
                f"{name!r} is budgeted/regression-tracked but missing "
                f"from metrics"
            )
    return {
        "benchmark": benchmark,
        "schema_version": SCHEMA_VERSION,
        "timestamp": _utc_now(),
        "host": host_fingerprint(),
        "metrics": dict(metrics),
        "budgets": budgets,
        "regression_metrics": regression,
        "info": dict(info or {}),
    }


def write_artifact(artifact: Dict[str, object], path) -> None:
    """Write one artifact as indented JSON (the ``BENCH_*.json`` file)."""
    with open(path, "w") as handle:
        json.dump(artifact, handle, indent=2)
        handle.write("\n")


def read_artifact(path) -> Dict[str, object]:
    """Read one artifact back, validating the envelope."""
    with open(path) as handle:
        artifact = json.load(handle)
    if artifact.get("schema_version") != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: unsupported bench schema "
            f"{artifact.get('schema_version')!r}"
        )
    if "benchmark" not in artifact or "metrics" not in artifact:
        raise ValueError(f"{path}: not a bench artifact")
    return artifact


# ----------------------------------------------------------------------
# History store
# ----------------------------------------------------------------------
def append_history(
    artifact: Dict[str, object], path: str = HISTORY_PATH,
) -> None:
    """Append one artifact to the JSONL history store (one line each)."""
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "a") as handle:
        handle.write(
            json.dumps(artifact, separators=(",", ":"), sort_keys=True)
            + "\n"
        )


def read_history(path: str = HISTORY_PATH) -> List[Dict[str, object]]:
    """Every history entry in append order (missing file → empty)."""
    entries: List[Dict[str, object]] = []
    try:
        handle = open(path)
    except FileNotFoundError:
        return entries
    with handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            entry = json.loads(line)
            if entry.get("schema_version") == SCHEMA_VERSION:
                entries.append(entry)
    return entries


def by_benchmark(
    entries: Sequence[Dict[str, object]],
) -> Dict[str, List[Dict[str, object]]]:
    """Group history entries by benchmark name, append order kept."""
    grouped: Dict[str, List[Dict[str, object]]] = {}
    for entry in entries:
        grouped.setdefault(str(entry["benchmark"]), []).append(entry)
    return grouped


# ----------------------------------------------------------------------
# The regression gate
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Violation:
    """One failed budget or regression comparison."""

    benchmark: str
    metric: str
    kind: str  # "budget" | "regression"
    value: float
    limit: float

    def __str__(self) -> str:
        if self.kind == "budget":
            return (
                f"{self.benchmark}: {self.metric} = {self.value:g} "
                f"exceeds budget {self.limit:g}"
            )
        return (
            f"{self.benchmark}: {self.metric} = {self.value:g} "
            f"regressed past baseline+tolerance {self.limit:g}"
        )


def check_entry(
    latest: Dict[str, object],
    previous: Sequence[Dict[str, object]],
    tolerance: float = DEFAULT_TOLERANCE,
    baseline_n: int = DEFAULT_BASELINE_N,
) -> List[Violation]:
    """Violations of one benchmark's newest entry.

    Budgets are absolute caps from the entry itself.  Each regression
    metric is compared against the mean of that metric over the last
    ``baseline_n`` prior entries **recorded on a same-shape host**
    (same usable core count — a 4-core laptop's timings must never
    gate a 1-core CI runner, and vice versa); a value more than
    ``tolerance`` (fractional) above the mean is a regression.  With
    no same-host prior history only budgets apply — the first run on
    each host shape *is* that shape's baseline.
    """
    name = str(latest["benchmark"])
    metrics = dict(latest.get("metrics", {}))
    violations: List[Violation] = []
    for metric, cap in dict(latest.get("budgets", {})).items():
        value = metrics.get(metric)
        if value is not None and value > cap:
            violations.append(
                Violation(name, metric, "budget", float(value),
                          float(cap))
            )
    host_cores = dict(latest.get("host") or {}).get("cores")
    comparable = [
        entry for entry in previous
        if dict(entry.get("host") or {}).get("cores") == host_cores
    ]
    window = comparable[-baseline_n:]
    for metric in list(latest.get("regression_metrics", [])):
        value = metrics.get(metric)
        if value is None:
            continue
        baseline_values = [
            entry["metrics"][metric] for entry in window
            if metric in entry.get("metrics", {})
        ]
        if not baseline_values:
            continue
        baseline = sum(baseline_values) / len(baseline_values)
        limit = baseline * (1.0 + tolerance)
        if value > limit:
            violations.append(
                Violation(name, metric, "regression", float(value),
                          limit)
            )
    return violations


def check_entries(
    entries: Sequence[Dict[str, object]],
    tolerance: float = DEFAULT_TOLERANCE,
    baseline_n: int = DEFAULT_BASELINE_N,
) -> List[Violation]:
    """Check every benchmark's newest history entry; all violations."""
    violations: List[Violation] = []
    for name, runs in sorted(by_benchmark(entries).items()):
        violations.extend(
            check_entry(runs[-1], runs[:-1], tolerance, baseline_n)
        )
    return violations


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------
def _headline_metrics(runs: Sequence[Dict[str, object]]) -> List[str]:
    """Which metrics to show for one benchmark: budgeted + regression-
    tracked first, then whatever else fits."""
    latest = runs[-1]
    ordered: List[str] = []
    for name in list(latest.get("budgets", {})):
        if name not in ordered:
            ordered.append(name)
    for name in list(latest.get("regression_metrics", [])):
        if name not in ordered:
            ordered.append(name)
    for name in sorted(latest.get("metrics", {})):
        if name not in ordered and len(ordered) < 5:
            ordered.append(name)
    return ordered[:5]


def format_history_table(
    entries: Sequence[Dict[str, object]],
) -> str:
    """Per-benchmark history tables — the ``repro bench report`` body."""
    grouped = by_benchmark(entries)
    if not grouped:
        return "(empty history)"
    blocks: List[str] = []
    for name, runs in sorted(grouped.items()):
        metrics = _headline_metrics(runs)
        header = f"  {'timestamp':<21}" + "".join(
            f" {metric:>18}" for metric in metrics
        )
        lines = [f"{name} ({len(runs)} run(s)):", header,
                 "  " + "-" * (len(header) - 2)]
        for entry in runs:
            cells = []
            for metric in metrics:
                value = entry.get("metrics", {}).get(metric)
                cells.append(
                    f" {value:>18.6g}" if value is not None
                    else f" {'-':>18}"
                )
            lines.append(
                f"  {str(entry.get('timestamp', '?')):<21}"
                + "".join(cells)
            )
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)


# ----------------------------------------------------------------------
# Running the observatory suite
# ----------------------------------------------------------------------
def run_benchmarks(
    names: Optional[Sequence[str]] = None,
    suite_size: Optional[int] = None,
    repo_root: str = ".",
) -> int:
    """Run the observatory benchmarks via pytest; returns its exit code.

    ``names`` selects a subset of :data:`OBSERVATORY` (default: every
    registered benchmark); ``suite_size`` exports ``REPRO_SUITE_SIZE``
    for the run (the
    ``--smoke`` path uses the 100-loop floor).  The benchmarks
    themselves write the ``BENCH_*.json`` artifacts; the caller
    (``repro bench run``) appends them to the history afterwards.
    """
    import subprocess

    selected = list(names) if names else sorted(OBSERVATORY)
    unknown = [name for name in selected if name not in OBSERVATORY]
    if unknown:
        raise ValueError(
            f"unknown benchmark(s) {unknown}; "
            f"choose from {sorted(OBSERVATORY)}"
        )
    files = [OBSERVATORY[name][0] for name in selected]
    env = dict(os.environ)
    env.setdefault("PYTHONHASHSEED", "0")
    if suite_size is not None:
        env["REPRO_SUITE_SIZE"] = str(suite_size)
    src = os.path.join(repo_root, "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        f"{src}{os.pathsep}{existing}" if existing else src
    )
    command = [sys.executable, "-m", "pytest", "-q", *files]
    completed = subprocess.run(command, cwd=repo_root, env=env)
    return completed.returncode


def collect_artifacts(
    names: Optional[Sequence[str]] = None, repo_root: str = ".",
) -> List[Dict[str, object]]:
    """Read the selected benchmarks' freshly written artifacts."""
    selected = list(names) if names else sorted(OBSERVATORY)
    artifacts = []
    for name in selected:
        _, artifact_file = OBSERVATORY[name]
        artifacts.append(
            read_artifact(os.path.join(repo_root, artifact_file))
        )
    return artifacts
