"""Chrome trace-event export: open any trace in Perfetto / about:tracing.

:func:`write_chrome_trace` serializes a finished
:class:`~repro.obs.trace.Trace` as the JSON object form of the Trace
Event Format (the ``{"traceEvents": [...]}`` envelope understood by
``chrome://tracing`` and https://ui.perfetto.dev):

* every span becomes one complete **"X"** event (microsecond ``ts`` /
  ``dur``, attributes in ``args``);
* grafted worker host spans — and everything under them — land on a
  separate **tid lane per worker** (``tid = lane + 1``, matching
  :mod:`repro.obs.timeline`; the parent's own spans are tid 0), with
  thread-name metadata **"M"** events labeling each lane;
* trace-wide counters become cumulative **"C"** events sampled at each
  span's end, so hot counters render as rising staircases over the run.

Wired to ``--trace-chrome FILE`` on ``repro compile`` and
``repro experiment``.
"""

from __future__ import annotations

import json
from typing import Dict, IO, List, Union

from .timeline import LANE_ATTR
from .trace import SpanNode, Trace

#: All events carry one synthetic process id.
PID = 1
#: The parent thread's lane.
MAIN_TID = 0


def _args(node: SpanNode) -> Dict[str, object]:
    args: Dict[str, object] = dict(node.attrs)
    for name, value in node.counters.items():
        args[f"counter.{name}"] = value
    if node.cpu is not None:
        args["cpu_ms"] = round(node.cpu * 1e3, 3)
    return args


def chrome_trace_events(trace: Trace) -> List[Dict[str, object]]:
    """The trace's Chrome trace-event list, chronologically ordered."""
    events: List[Dict[str, object]] = []
    tids = {MAIN_TID}
    running: Dict[str, int] = {}
    counter_samples: List[Dict[str, object]] = []

    def emit(node: SpanNode, tid: int) -> None:
        if LANE_ATTR in node.attrs:
            tid = int(node.attrs[LANE_ATTR]) + 1
            tids.add(tid)
        event: Dict[str, object] = {
            "name": node.name,
            "cat": "repro",
            "ph": "X",
            "ts": round(node.started * 1e6, 3),
            "dur": round(node.duration * 1e6, 3),
            "pid": PID,
            "tid": tid,
        }
        args = _args(node)
        if args:
            event["args"] = args
        events.append(event)
        for child in node.children:
            emit(child, tid)
        if node.counters:
            end_ts = round((node.started + node.duration) * 1e6, 3)
            for name, value in node.counters.items():
                running[name] = running.get(name, 0) + value
                counter_samples.append({
                    "name": name,
                    "cat": "repro",
                    "ph": "C",
                    "ts": end_ts,
                    "pid": PID,
                    "args": {"value": running[name]},
                })

    for root in trace.roots:
        emit(root, MAIN_TID)
    events.extend(counter_samples)
    events.sort(key=lambda event: event["ts"])

    metadata: List[Dict[str, object]] = [{
        "name": "process_name", "ph": "M", "pid": PID,
        "args": {"name": f"repro trace {trace.trace_id}"},
    }]
    for tid in sorted(tids):
        label = "main" if tid == MAIN_TID else f"worker-{tid - 1}"
        metadata.append({
            "name": "thread_name", "ph": "M", "pid": PID, "tid": tid,
            "args": {"name": label},
        })
        metadata.append({
            "name": "thread_sort_index", "ph": "M", "pid": PID,
            "tid": tid, "args": {"sort_index": tid},
        })
    return metadata + events


def write_chrome_trace(trace: Trace,
                       out: Union[str, IO[str]]) -> int:
    """Write the trace in Chrome trace-event JSON; returns the event
    count."""
    events = chrome_trace_events(trace)
    document = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"trace_id": trace.trace_id},
    }
    if isinstance(out, str):
        with open(out, "w") as handle:
            json.dump(document, handle)
            handle.write("\n")
    else:
        json.dump(document, out)
        out.write("\n")
    return len(events)
