"""Cross-process timeline reconstruction: worker lanes + utilization.

A parallel experiment run grafts one ``worker`` host span per completed
chunk into the parent trace (see
:func:`repro.analysis.engine.run_engine_experiment`).  Each host span
carries the worker's **lane** — a stable small integer per worker
process — plus its ``pid``, the chunk's ``queue_wait_s`` (submit →
execution start) and ``execute_s`` (the worker-side wall time).  Since
:meth:`~repro.obs.trace.Trace.graft` rebases every grafted span into
the parent's clock, those host spans line up on one coherent timeline,
and this module folds them back into the per-worker view: what each
lane did, when, and how busy it was.

``format_lane_table`` renders the summary the ``--trace`` report shows
for parallel runs; :mod:`repro.obs.chrome` uses the same lane numbers
as Chrome trace ``tid`` values, so the Perfetto view and the text view
agree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from .trace import SpanNode, Trace

#: Host spans are recognized by carrying this attribute (set by the
#: engine's graft call).
LANE_ATTR = "lane"


@dataclass
class Lane:
    """One worker process's reconstructed timeline."""

    lane: int
    pid: int = 0
    #: The lane's ``worker`` host spans, in start order.
    spans: List[SpanNode] = field(default_factory=list)

    @property
    def busy_seconds(self) -> float:
        """Wall seconds the worker spent executing chunks."""
        return sum(span.duration for span in self.spans)

    @property
    def queue_wait_seconds(self) -> float:
        """Total submit→start wait across the lane's chunks."""
        return sum(
            float(span.attrs.get("queue_wait_s", 0.0))
            for span in self.spans
        )

    @property
    def window(self) -> float:
        """First start → last end of the lane, in seconds."""
        if not self.spans:
            return 0.0
        start = min(span.started for span in self.spans)
        end = max(span.started + span.duration for span in self.spans)
        return end - start

    @property
    def utilization(self) -> float:
        """busy / window — 1.0 means the lane never idled."""
        window = self.window
        return self.busy_seconds / window if window > 0 else 0.0


def lanes(trace: Trace) -> List[Lane]:
    """Every worker lane present in the trace, ordered by lane id."""
    by_lane: Dict[int, Lane] = {}
    for node in trace.walk():
        if LANE_ATTR not in node.attrs:
            continue
        lane_id = int(node.attrs[LANE_ATTR])
        lane = by_lane.get(lane_id)
        if lane is None:
            lane = by_lane[lane_id] = Lane(
                lane=lane_id, pid=int(node.attrs.get("pid", 0))
            )
        lane.spans.append(node)
    ordered = [by_lane[key] for key in sorted(by_lane)]
    for lane in ordered:
        lane.spans.sort(key=lambda span: span.started)
    return ordered


def utilization(trace: Trace) -> Dict[int, float]:
    """Per-lane busy/window fraction of a parallel run's trace."""
    return {lane.lane: lane.utilization for lane in lanes(trace)}


def _fmt_s(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    return f"{seconds * 1e3:.1f}ms"


def format_lane_table(trace: Trace) -> str:
    """Per-worker-lane summary: chunks, busy, wait, window, utilization."""
    worker_lanes = lanes(trace)
    if not worker_lanes:
        return "(no worker lanes)"
    header = (f"  {'lane':>4} {'pid':>8} {'chunks':>7} {'busy':>9} "
              f"{'q-wait':>9} {'window':>9} {'util':>6}")
    lines = [header, "  " + "-" * (len(header) - 2)]
    for lane in worker_lanes:
        lines.append(
            f"  {lane.lane:>4} {lane.pid:>8} {len(lane.spans):>7} "
            f"{_fmt_s(lane.busy_seconds):>9} "
            f"{_fmt_s(lane.queue_wait_seconds):>9} "
            f"{_fmt_s(lane.window):>9} "
            f"{lane.utilization:>5.0%}"
        )
    return "\n".join(lines)
