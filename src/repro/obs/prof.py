"""Deterministic span-attributed profiler on top of :mod:`repro.obs`.

Spans answer *when* and *how long*; the profiler answers *where the CPU
went*.  :func:`profiling` attaches a :class:`Profiler` to an installed
:class:`~repro.obs.trace.Trace` and turns on a ``sys.setprofile``
callback (the deterministic stdlib hook that also powers ``cProfile``)
for the duration of the block::

    with obs.tracing() as trace, prof.profiling(trace):
        compile_loop(ddg, machine)
    print(prof.format_profile_report(trace))

While attached, every span additionally records

* ``SpanNode.cpu`` — thread-CPU seconds spent while the span was open
  (inclusive of children, mirroring ``duration``), giving the per-phase
  CPU-vs-wall breakdown of :func:`repro.obs.sinks.metrics_dict` and the
  phase table; and
* ``SpanNode.prof`` — per-function *self* CPU time and call counts,
  attributed to the span that was innermost when the function returned.

Functions that return outside every span land on ``Trace.prof``.
:func:`top_functions` aggregates either view into the classic
top-functions table.

The profiler is **off by default and pays nothing when off**: the only
hook is an attribute test on the owning trace's span open/close path,
which itself only runs when tracing is enabled.  Untraced code paths
are completely untouched.  Profiled runs pay the usual deterministic-
profiler tax (every Python and C call crosses the callback), which the
trace-smoke benchmark records as the profiled-mode measurement.
"""

from __future__ import annotations

import sys
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

from .trace import SpanNode, Trace, current_trace

#: Sort orders accepted by :func:`top_functions`.
SORT_KEYS = ("cpu", "calls", "name")


def _func_key(frame) -> str:
    """Stable display key of a Python frame's function."""
    code = frame.f_code
    filename = code.co_filename.replace("\\", "/")
    parts = filename.rsplit("/", 2)
    short = "/".join(parts[-2:]) if len(parts) > 1 else filename
    return f"{short}:{code.co_firstlineno}:{code.co_name}"


def _builtin_key(func) -> str:
    """Display key of a C-implemented callable."""
    module = getattr(func, "__module__", None) or "builtins"
    name = getattr(func, "__qualname__", None) \
        or getattr(func, "__name__", repr(func))
    return f"~:{module}.{name}"


class Profiler:
    """The ``sys.setprofile`` recorder behind :func:`profiling`.

    Maintains a shadow call stack of ``[key, entered_cpu, child_cpu]``
    frames; on each return the function's *self* CPU (total minus
    children) and one call are folded into the innermost open span's
    ``prof`` table.  Span CPU windows are tracked through the
    ``span_opened`` / ``span_closed`` hooks the owning trace calls.
    """

    def __init__(self, trace: Trace) -> None:
        self.trace = trace
        self._clock = time.thread_time
        self._frames: List[List[object]] = []
        self._span_cpu: Dict[int, float] = {}
        self._installed = False

    # -- trace hooks ---------------------------------------------------
    def span_opened(self, node: SpanNode) -> None:
        """Called by the owning trace when a span opens."""
        self._span_cpu[id(node)] = self._clock()

    def span_closed(self, node: SpanNode) -> None:
        """Called by the owning trace when a span closes."""
        entered = self._span_cpu.pop(id(node), None)
        if entered is not None:
            node.cpu = self._clock() - entered

    # -- the sys.setprofile callback -----------------------------------
    def _hook(self, frame, event: str, arg) -> None:
        if event == "call":
            self._frames.append([_func_key(frame), self._clock(), 0.0])
        elif event == "return":
            self._pop()
        elif event == "c_call":
            self._frames.append([_builtin_key(arg), self._clock(), 0.0])
        elif event in ("c_return", "c_exception"):
            self._pop()

    def _pop(self) -> None:
        if not self._frames:
            return
        key, entered, child_cpu = self._frames.pop()
        total = self._clock() - entered
        if self._frames:
            self._frames[-1][2] += total
        self_cpu = total - child_cpu
        if self_cpu < 0.0:
            self_cpu = 0.0
        stack = self.trace._stack
        if stack:
            node = stack[-1]
            table = node.prof
            if table is None:
                table = node.prof = {}
        else:
            table = self.trace.prof
        cell = table.get(key)
        if cell is None:
            table[key] = [1, self_cpu]
        else:
            cell[0] += 1
            cell[1] += self_cpu

    # -- installation --------------------------------------------------
    def install(self) -> None:
        """Attach to the trace and start the profile callback."""
        if self._installed:
            raise RuntimeError("profiler already installed")
        if self.trace._prof is not None:
            raise RuntimeError("trace already has a profiler attached")
        self.trace._prof = self
        # Open spans entered before the profiler attached still get a
        # CPU window from this point on.
        now = self._clock()
        for node in self.trace._stack:
            self._span_cpu[id(node)] = now
        self._installed = True
        sys.setprofile(self._hook)

    def uninstall(self) -> None:
        """Stop the callback and detach from the trace."""
        if not self._installed:
            return
        sys.setprofile(None)
        self._installed = False
        # Close CPU windows of spans still open at detach time.
        now = self._clock()
        for node in self.trace._stack:
            entered = self._span_cpu.pop(id(node), None)
            if entered is not None:
                node.cpu = now - entered
        self.trace._prof = None
        self._frames.clear()
        self._span_cpu.clear()


@contextmanager
def profiling(trace: Optional[Trace] = None) -> Iterator[Profiler]:
    """Profile the calling thread for the duration of the block.

    ``trace`` defaults to the trace currently installed on the thread;
    profiling without a trace is an error — the profiler's output lives
    on span nodes.
    """
    if trace is None:
        trace = current_trace()
    if trace is None:
        raise RuntimeError(
            "profiling requires an installed trace; "
            "wrap the block in obs.tracing() first"
        )
    profiler = Profiler(trace)
    profiler.install()
    try:
        yield profiler
    finally:
        profiler.uninstall()


def top_functions(
    trace: Trace, n: int = 20, sort: str = "cpu",
) -> List[Tuple[str, int, float]]:
    """The hottest functions of a profiled trace.

    Aggregates every span's ``prof`` table (plus ``Trace.prof``) into
    ``(func_key, calls, self_cpu_seconds)`` rows, sorted by ``sort`` —
    ``cpu`` (default), ``calls``, or ``name`` — and truncated to ``n``
    rows (``n <= 0`` keeps everything).
    """
    if sort not in SORT_KEYS:
        raise ValueError(f"sort must be one of {SORT_KEYS}, got {sort!r}")
    totals: Dict[str, List[float]] = {}
    tables = [trace.prof]
    tables.extend(
        node.prof for node in trace.walk() if node.prof is not None
    )
    for table in tables:
        for key, (calls, cpu) in table.items():
            cell = totals.get(key)
            if cell is None:
                totals[key] = [calls, cpu]
            else:
                cell[0] += calls
                cell[1] += cpu
    rows = [
        (key, int(calls), cpu) for key, (calls, cpu) in totals.items()
    ]
    if sort == "cpu":
        rows.sort(key=lambda row: (-row[2], row[0]))
    elif sort == "calls":
        rows.sort(key=lambda row: (-row[1], row[0]))
    else:
        rows.sort(key=lambda row: row[0])
    return rows[:n] if n > 0 else rows


def _format_cpu(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.0f}us"


def format_top_functions(
    trace: Trace, n: int = 20, sort: str = "cpu",
) -> str:
    """The top-functions table, one aligned row per function."""
    rows = top_functions(trace, n=n, sort=sort)
    if not rows:
        return "(no profile data)"
    width = max(len("function"), max(len(key) for key, _, _ in rows))
    lines = [
        f"  {'function':<{width}} {'calls':>9} {'self cpu':>10}",
        "  " + "-" * (width + 21),
    ]
    for key, calls, cpu in rows:
        lines.append(
            f"  {key:<{width}} {calls:>9} {_format_cpu(cpu):>10}"
        )
    return "\n".join(lines)


def format_cpu_phase_table(trace: Trace) -> str:
    """Per-phase wall vs CPU breakdown of a profiled trace."""
    phases = trace.phases()
    profiled = {
        name: stats for name, stats in phases.items() if stats.cpu_count
    }
    if not profiled:
        return "(no profiled phases)"
    header = (f"  {'phase':<14} {'count':>7} {'wall':>10} {'cpu':>10} "
              f"{'cpu/wall':>9}")
    lines = [header, "  " + "-" * (len(header) - 2)]
    for name in sorted(profiled, key=lambda n: -profiled[n].cpu_total):
        stats = profiled[name]
        ratio = stats.cpu_total / stats.total if stats.total else 0.0
        lines.append(
            f"  {name:<14} {stats.count:>7} "
            f"{_format_cpu(stats.total):>10} "
            f"{_format_cpu(stats.cpu_total):>10} "
            f"{ratio:>8.0%}"
        )
    return "\n".join(lines)


def format_profile_report(
    trace: Trace, n: int = 20, sort: str = "cpu",
) -> str:
    """CPU phase table + top functions — the ``repro profile`` output."""
    return "\n".join([
        "cpu by phase:",
        format_cpu_phase_table(trace),
        "",
        f"top functions (by {sort}):",
        format_top_functions(trace, n=n, sort=sort),
    ])
