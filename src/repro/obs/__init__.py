"""Observability: structured tracing, counters, and phase profiling.

The pipeline is instrumented with :func:`span` / :func:`count` calls —
no-ops unless a :class:`Trace` is installed on the calling thread::

    from repro import obs

    with obs.tracing() as trace:
        compile_loop(ddg, machine)
    print(obs.format_trace_report(trace))
    obs.write_jsonl(trace, "trace.jsonl")

See ``docs/OBSERVABILITY.md`` for the span and counter taxonomy.
"""

from .render import (
    format_counters,
    format_phase_table,
    format_trace_report,
    format_trace_tree,
)
from .sinks import (
    metrics_dict,
    read_jsonl,
    trace_events,
    trace_from_events,
    write_jsonl,
)
from .trace import (
    NULL_SPAN,
    PhaseStats,
    SpanNode,
    Trace,
    count,
    current_trace,
    enabled,
    install,
    span,
    tracing,
    uninstall,
)

__all__ = [
    "NULL_SPAN",
    "PhaseStats",
    "SpanNode",
    "Trace",
    "count",
    "current_trace",
    "enabled",
    "format_counters",
    "format_phase_table",
    "format_trace_report",
    "format_trace_tree",
    "install",
    "metrics_dict",
    "read_jsonl",
    "span",
    "trace_events",
    "trace_from_events",
    "tracing",
    "uninstall",
    "write_jsonl",
]
