"""Observability: structured tracing, counters, profiling, and export.

The pipeline is instrumented with :func:`span` / :func:`count` calls —
no-ops unless a :class:`Trace` is installed on the calling thread::

    from repro import obs

    with obs.tracing() as trace:
        compile_loop(ddg, machine)
    print(obs.format_trace_report(trace))
    obs.write_jsonl(trace, "trace.jsonl")
    obs.write_chrome_trace(trace, "trace.json")   # Perfetto-loadable

CPU attribution is opt-in via :mod:`repro.obs.prof`, benchmark
artifacts and the regression-tracked history live in
:mod:`repro.obs.bench`, and parallel runs reconstruct their per-worker
timelines through :mod:`repro.obs.timeline`.

See ``docs/OBSERVABILITY.md`` for the span and counter taxonomy and
``docs/PROFILING.md`` for the profiler.
"""

from . import bench, prof, timeline
from .chrome import chrome_trace_events, write_chrome_trace
from .render import (
    format_counters,
    format_phase_table,
    format_trace_report,
    format_trace_tree,
)
from .sinks import (
    metrics_dict,
    read_jsonl,
    read_trace,
    trace_events,
    trace_from_events,
    write_jsonl,
)
from .trace import (
    NULL_SPAN,
    PhaseStats,
    SpanNode,
    Trace,
    count,
    current_trace,
    enabled,
    install,
    span,
    tracing,
    uninstall,
)

__all__ = [
    "NULL_SPAN",
    "PhaseStats",
    "SpanNode",
    "Trace",
    "bench",
    "chrome_trace_events",
    "count",
    "current_trace",
    "enabled",
    "format_counters",
    "format_phase_table",
    "format_trace_report",
    "format_trace_tree",
    "install",
    "metrics_dict",
    "prof",
    "read_jsonl",
    "read_trace",
    "span",
    "timeline",
    "trace_events",
    "trace_from_events",
    "tracing",
    "uninstall",
    "write_chrome_trace",
    "write_jsonl",
]
