"""Human-readable trace rendering: the span tree and the phase table.

``format_trace_tree`` prints one line per span — name, attributes, wall
time, and the span's *own* counters — indented by depth with box-drawing
guides.  ``format_phase_table`` summarizes wall time by span name, and
``format_counters`` dumps the trace-wide counter aggregate.  The
``trace`` CLI subcommand composes all three.
"""

from __future__ import annotations

from typing import Dict, List

from .trace import PhaseStats, SpanNode, Trace

#: Span trees from big experiments can reach thousands of nodes; beyond
#: this many children of one node, the remainder is elided with a count.
MAX_CHILDREN_SHOWN = 40


def _format_duration(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.0f}us"


def _format_attrs(attrs: Dict[str, object]) -> str:
    return " ".join(f"{key}={value}" for key, value in attrs.items())


def _format_counters(counters: Dict[str, int]) -> str:
    inner = " ".join(
        f"{name}={value}" for name, value in sorted(counters.items())
    )
    return f"[{inner}]"


def _render_node(node: SpanNode, prefix: str, is_last: bool,
                 lines: List[str], top: bool) -> None:
    connector = "" if top else ("└─ " if is_last else "├─ ")
    label = node.name
    attrs = _format_attrs(node.attrs)
    if attrs:
        label += f"  {attrs}"
    line = f"{prefix}{connector}{label}  {_format_duration(node.duration)}"
    if node.cpu is not None:
        line += f" (cpu {_format_duration(node.cpu)})"
    if node.counters:
        line += f"  {_format_counters(node.counters)}"
    lines.append(line)
    child_prefix = prefix if top else prefix + ("   " if is_last else "│  ")
    children = node.children
    elided = 0
    if len(children) > MAX_CHILDREN_SHOWN:
        elided = len(children) - MAX_CHILDREN_SHOWN
        children = children[:MAX_CHILDREN_SHOWN]
    for index, child in enumerate(children):
        last = index == len(children) - 1 and not elided
        _render_node(child, child_prefix, last, lines, top=False)
    if elided:
        lines.append(f"{child_prefix}└─ … {elided} more span(s) elided")


def format_trace_tree(trace: Trace) -> str:
    """The span tree, one line per span with timing and own counters."""
    if not trace.roots:
        return "(empty trace)"
    lines: List[str] = []
    for root in trace.roots:
        _render_node(root, "", True, lines, top=True)
    return "\n".join(lines)


def format_counters(trace: Trace) -> str:
    """Trace-wide counter totals, one ``name = value`` line each."""
    if not trace.counters:
        return "(no counters)"
    width = max(len(name) for name in trace.counters)
    return "\n".join(
        f"  {name:<{width}} = {value}"
        for name, value in sorted(trace.counters.items())
    )


def format_phase_table(trace: Trace) -> str:
    """Per-phase wall-time summary table with percentiles and a log2
    sparkline; profiled traces grow a ``cpu`` column (see
    :mod:`repro.obs.prof`)."""
    phases = trace.phases()
    if not phases:
        return "(no phases)"
    show_cpu = any(stats.cpu_count for stats in phases.values())
    cpu_head = f" {'cpu':>9}" if show_cpu else ""
    header = (f"  {'phase':<14} {'count':>7} {'total':>10} {'mean':>10} "
              f"{'min':>9} {'p50':>9} {'p90':>9} {'p99':>9} "
              f"{'max':>9}{cpu_head}  histogram")
    lines = [header, "  " + "-" * (len(header) - 2)]
    for name in sorted(phases, key=lambda n: -phases[n].total):
        stats = phases[name]
        cpu_cell = ""
        if show_cpu:
            cpu_cell = (
                f" {_format_duration(stats.cpu_total):>9}"
                if stats.cpu_count else f" {'-':>9}"
            )
        lines.append(
            f"  {name:<14} {stats.count:>7} "
            f"{_format_duration(stats.total):>10} "
            f"{_format_duration(stats.mean):>10} "
            f"{_format_duration(stats.minimum):>9} "
            f"{_format_duration(stats.p50):>9} "
            f"{_format_duration(stats.p90):>9} "
            f"{_format_duration(stats.p99):>9} "
            f"{_format_duration(stats.max):>9}{cpu_cell}"
            f"  {_sparkline(stats)}"
        )
    return "\n".join(lines)


_SPARK_GLYPHS = "▁▂▃▄▅▆▇█"


def _sparkline(stats: PhaseStats) -> str:
    """Bucket occupancy over the populated log2 range, plus its bounds."""
    if not stats.buckets:
        return ""
    low, high = min(stats.buckets), max(stats.buckets)
    peak = max(stats.buckets.values())
    glyphs = ""
    for bucket in range(low, high + 1):
        n = stats.buckets.get(bucket, 0)
        if n == 0:
            glyphs += " "
        else:
            level = (n * (len(_SPARK_GLYPHS) - 1) + peak - 1) // peak
            glyphs += _SPARK_GLYPHS[level]
    return (f"{PhaseStats.bucket_label(low)} {glyphs} "
            f"{PhaseStats.bucket_label(high)}")


def format_trace_report(trace: Trace) -> str:
    """Tree + counters + phase table, the full ``--trace`` output."""
    return "\n".join([
        "trace:",
        format_trace_tree(trace),
        "",
        "phase profile:",
        format_phase_table(trace),
        "",
        "counters:",
        format_counters(trace),
    ])
