"""Trace sinks: JSONL event logs and machine-readable metrics.

A finished :class:`~repro.obs.trace.Trace` serializes to a JSON-Lines
event log — one ``begin`` and one ``end`` event per span, in
chronological order, with the span's own counters flushed on the ``end``
event (counters never become individual events, so the log size is
bounded by the span count, not by hot-loop activity).  The header line
carries the trace's identity and wall-clock epoch, so logs written by
different processes of one run can be re-correlated offline (see
:meth:`~repro.obs.trace.Trace.graft`).  The log reads back into an
equivalent trace with :func:`read_trace` (or :func:`read_jsonl` +
:func:`trace_from_events`), making the format round-trippable for
offline analysis.

:func:`metrics_dict` flattens a trace into the ``BENCH_*.json`` shape
used by the benchmark harness: counters plus per-phase timing summaries
with p50/p90/p99 percentiles (and CPU totals when the trace was
profiled — see :mod:`repro.obs.prof`).
"""

from __future__ import annotations

import json
from typing import Dict, IO, Iterable, Iterator, List, Union

from .trace import SpanNode, Trace

#: Schema tag stamped on every event log.  Version 2 added the
#: ``trace_id`` / ``epoch_wall`` header fields and the optional ``cpu``
#: / ``prof`` fields on ``end`` events; version-1 logs still read back.
EVENT_VERSION = 2

#: Header versions :func:`read_jsonl` accepts.
READABLE_VERSIONS = (1, 2)


def trace_events(trace: Trace) -> List[Dict[str, object]]:
    """Flatten a trace into its chronological begin/end event list."""
    events: List[Dict[str, object]] = []

    def emit(node: SpanNode, depth: int) -> None:
        begin: Dict[str, object] = {
            "ev": "begin", "span": node.name, "t": round(node.started, 9),
            "depth": depth,
        }
        if node.attrs:
            begin["attrs"] = node.attrs
        events.append(begin)
        for child in node.children:
            emit(child, depth + 1)
        end: Dict[str, object] = {
            "ev": "end", "span": node.name,
            "dur": round(node.duration, 9), "depth": depth,
        }
        if node.counters:
            end["counters"] = node.counters
        if node.cpu is not None:
            end["cpu"] = round(node.cpu, 9)
        if node.prof:
            end["prof"] = {
                key: [calls, round(cpu, 9)]
                for key, (calls, cpu) in node.prof.items()
            }
        events.append(end)

    for root in trace.roots:
        emit(root, 0)
    # Counts recorded outside any span would otherwise be lost.
    orphans = dict(trace.counters)
    for node in trace.walk():
        for name, value in node.counters.items():
            orphans[name] = orphans[name] - value
            if orphans[name] == 0:
                del orphans[name]
    if orphans:
        events.append({"ev": "counters", "counters": orphans})
    return events


def trace_header(trace: Trace) -> Dict[str, object]:
    """The identity/epoch header line of a trace's event log."""
    header: Dict[str, object] = {
        "ev": "trace", "version": EVENT_VERSION,
        "trace_id": trace.trace_id,
    }
    if trace.epoch_wall is not None:
        header["epoch_wall"] = round(trace.epoch_wall, 6)
    return header


def write_jsonl(trace: Trace, out: Union[str, IO[str]]) -> int:
    """Write the trace's event log, one JSON object per line.

    ``out`` is a path or an open text file; returns the event count.
    """
    events = trace_events(trace)
    header = trace_header(trace)
    if isinstance(out, str):
        with open(out, "w") as handle:
            return _write_lines(handle, header, events)
    return _write_lines(out, header, events)


def _write_lines(handle: IO[str], header: Dict[str, object],
                 events: Iterable[Dict[str, object]]) -> int:
    n = 0
    handle.write(json.dumps(header) + "\n")
    for event in events:
        handle.write(json.dumps(event) + "\n")
        n += 1
    return n


def _iter_events(
    source: Union[str, IO[str]], keep_header: bool,
) -> Iterator[Dict[str, object]]:
    """Stream a JSONL log's events line-by-line (constant memory)."""
    if isinstance(source, str):
        handle: IO[str] = open(source)
        owns = True
    else:
        handle = source
        owns = False
    try:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            event = json.loads(line)
            if event.get("ev") == "trace":
                if event.get("version") not in READABLE_VERSIONS:
                    raise ValueError(
                        f"unsupported trace version "
                        f"{event.get('version')!r}"
                    )
                if keep_header:
                    yield event
                continue
            yield event
    finally:
        if owns:
            handle.close()


def read_jsonl(source: Union[str, IO[str]]) -> List[Dict[str, object]]:
    """Parse a JSONL event log back into its event list.

    The file is streamed line-by-line rather than slurped, so suite-
    scale logs read in constant memory.  The ``trace`` header line is
    validated and dropped, so ``read_jsonl(path)`` is the inverse of
    :func:`write_jsonl`'s ``trace_events``; use :func:`read_trace` to
    keep the header's identity and epoch.
    """
    return list(_iter_events(source, keep_header=False))


def read_trace(source: Union[str, IO[str]]) -> Trace:
    """Rebuild a trace from a JSONL log, header metadata included."""
    return trace_from_events(_iter_events(source, keep_header=True))


def trace_from_events(events: Iterable[Dict[str, object]]) -> Trace:
    """Rebuild an in-memory trace from a begin/end event stream.

    A ``trace`` header event, when present in the stream (see
    :func:`read_trace`), restores the original trace's identity and
    wall-clock epoch; without one the rebuilt trace keeps a fresh
    identity and an *unknown* (``None``) wall epoch, which
    :meth:`~repro.obs.trace.Trace.graft` treats as "place at the graft
    instant".
    """
    trace = Trace()
    trace.epoch_wall = None
    stack: List[SpanNode] = []
    for event in events:
        kind = event.get("ev")
        if kind == "trace":
            if "trace_id" in event:
                trace.trace_id = str(event["trace_id"])
            if "epoch_wall" in event:
                trace.epoch_wall = float(event["epoch_wall"])
        elif kind == "begin":
            node = SpanNode(
                str(event["span"]),
                dict(event.get("attrs", {})),
                float(event.get("t", 0.0)),
            )
            if stack:
                stack[-1].children.append(node)
            else:
                trace.roots.append(node)
            stack.append(node)
        elif kind == "end":
            if not stack:
                raise ValueError(f"unbalanced end event: {event}")
            node = stack.pop()
            if node.name != event.get("span"):
                raise ValueError(
                    f"mismatched end event {event.get('span')!r} for "
                    f"open span {node.name!r}"
                )
            node.duration = float(event.get("dur", 0.0))
            if "cpu" in event:
                node.cpu = float(event["cpu"])
            if "prof" in event:
                node.prof = {
                    str(key): [int(calls), float(cpu)]
                    for key, (calls, cpu)
                    in dict(event["prof"]).items()
                }
            for name, value in dict(event.get("counters", {})).items():
                node.counters[name] = int(value)
                trace.counters[name] = trace.counters.get(name, 0) \
                    + int(value)
        elif kind == "counters":
            for name, value in dict(event.get("counters", {})).items():
                trace.counters[name] = trace.counters.get(name, 0) \
                    + int(value)
        else:
            raise ValueError(f"unknown event kind {kind!r}")
    if stack:
        raise ValueError(f"{len(stack)} span(s) never ended")
    return trace


def metrics_dict(trace: Trace) -> Dict[str, object]:
    """The ``BENCH_*.json``-compatible view: counters + phase timings."""
    phases = {}
    for name, stats in sorted(trace.phases().items()):
        entry = {
            "count": stats.count,
            "total_s": round(stats.total, 9),
            "mean_s": round(stats.mean, 9),
            "min_s": round(stats.minimum, 9),
            "max_s": round(stats.max, 9),
            "p50_s": round(stats.p50, 9),
            "p90_s": round(stats.p90, 9),
            "p99_s": round(stats.p99, 9),
        }
        if stats.cpu_count:
            entry["cpu_s"] = round(stats.cpu_total, 9)
        phases[name] = entry
    return {
        "counters": dict(sorted(trace.counters.items())),
        "phases": phases,
    }
