"""Trace sinks: JSONL event logs and machine-readable metrics.

A finished :class:`~repro.obs.trace.Trace` serializes to a JSON-Lines
event log — one ``begin`` and one ``end`` event per span, in
chronological order, with the span's own counters flushed on the ``end``
event (counters never become individual events, so the log size is
bounded by the span count, not by hot-loop activity).  The log reads
back into an equivalent trace with :func:`read_jsonl` +
:func:`trace_from_events`, making the format round-trippable for
offline analysis.

:func:`metrics_dict` flattens a trace into the ``BENCH_*.json`` shape
used by the benchmark harness: counters plus per-phase timing summaries.
"""

from __future__ import annotations

import json
from typing import Dict, IO, Iterable, List, Union

from .trace import SpanNode, Trace

#: Schema tag stamped on every event for forward compatibility.
EVENT_VERSION = 1


def trace_events(trace: Trace) -> List[Dict[str, object]]:
    """Flatten a trace into its chronological begin/end event list."""
    events: List[Dict[str, object]] = []

    def emit(node: SpanNode, depth: int) -> None:
        begin: Dict[str, object] = {
            "ev": "begin", "span": node.name, "t": round(node.started, 9),
            "depth": depth,
        }
        if node.attrs:
            begin["attrs"] = node.attrs
        events.append(begin)
        for child in node.children:
            emit(child, depth + 1)
        end: Dict[str, object] = {
            "ev": "end", "span": node.name,
            "dur": round(node.duration, 9), "depth": depth,
        }
        if node.counters:
            end["counters"] = node.counters
        events.append(end)

    for root in trace.roots:
        emit(root, 0)
    # Counts recorded outside any span would otherwise be lost.
    orphans = dict(trace.counters)
    for node in trace.walk():
        for name, value in node.counters.items():
            orphans[name] = orphans[name] - value
            if orphans[name] == 0:
                del orphans[name]
    if orphans:
        events.append({"ev": "counters", "counters": orphans})
    return events


def write_jsonl(trace: Trace, out: Union[str, IO[str]]) -> int:
    """Write the trace's event log, one JSON object per line.

    ``out`` is a path or an open text file; returns the event count.
    """
    events = trace_events(trace)
    header = {"ev": "trace", "version": EVENT_VERSION}
    if isinstance(out, str):
        with open(out, "w") as handle:
            return _write_lines(handle, header, events)
    return _write_lines(out, header, events)


def _write_lines(handle: IO[str], header: Dict[str, object],
                 events: Iterable[Dict[str, object]]) -> int:
    n = 0
    handle.write(json.dumps(header) + "\n")
    for event in events:
        handle.write(json.dumps(event) + "\n")
        n += 1
    return n


def read_jsonl(source: Union[str, IO[str]]) -> List[Dict[str, object]]:
    """Parse a JSONL event log back into its event list.

    The ``trace`` header line is validated and dropped, so
    ``read_jsonl(path)`` is the inverse of :func:`write_jsonl`'s
    ``trace_events``.
    """
    if isinstance(source, str):
        with open(source) as handle:
            lines = handle.readlines()
    else:
        lines = source.readlines()
    events: List[Dict[str, object]] = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        event = json.loads(line)
        if event.get("ev") == "trace":
            if event.get("version") != EVENT_VERSION:
                raise ValueError(
                    f"unsupported trace version {event.get('version')!r}"
                )
            continue
        events.append(event)
    return events


def trace_from_events(events: Iterable[Dict[str, object]]) -> Trace:
    """Rebuild an in-memory trace from a begin/end event stream."""
    trace = Trace()
    stack: List[SpanNode] = []
    for event in events:
        kind = event.get("ev")
        if kind == "begin":
            node = SpanNode(
                str(event["span"]),
                dict(event.get("attrs", {})),
                float(event.get("t", 0.0)),
            )
            if stack:
                stack[-1].children.append(node)
            else:
                trace.roots.append(node)
            stack.append(node)
        elif kind == "end":
            if not stack:
                raise ValueError(f"unbalanced end event: {event}")
            node = stack.pop()
            if node.name != event.get("span"):
                raise ValueError(
                    f"mismatched end event {event.get('span')!r} for "
                    f"open span {node.name!r}"
                )
            node.duration = float(event.get("dur", 0.0))
            for name, value in dict(event.get("counters", {})).items():
                node.counters[name] = int(value)
                trace.counters[name] = trace.counters.get(name, 0) \
                    + int(value)
        elif kind == "counters":
            for name, value in dict(event.get("counters", {})).items():
                trace.counters[name] = trace.counters.get(name, 0) \
                    + int(value)
        else:
            raise ValueError(f"unknown event kind {kind!r}")
    if stack:
        raise ValueError(f"{len(stack)} span(s) never ended")
    return trace


def metrics_dict(trace: Trace) -> Dict[str, object]:
    """The ``BENCH_*.json``-compatible view: counters + phase timings."""
    phases = {}
    for name, stats in sorted(trace.phases().items()):
        phases[name] = {
            "count": stats.count,
            "total_s": round(stats.total, 9),
            "mean_s": round(stats.mean, 9),
            "min_s": round(stats.min if stats.count else 0.0, 9),
            "max_s": round(stats.max, 9),
        }
    return {
        "counters": dict(sorted(trace.counters.items())),
        "phases": phases,
    }
