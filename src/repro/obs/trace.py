"""The tracing core: hierarchical spans, counters, phase profiles.

Zero-dependency and allocation-light.  A :class:`Trace` is an in-memory
collector: entering ``span("assign", ii=7)`` opens a node under the
current one, ``count("assign.evictions")`` increments a counter on the
innermost open span (and the trace-wide aggregate), and closing the span
records its wall time.  Finished traces are queried from tests
(:meth:`Trace.counter`, :meth:`Trace.find`), folded into per-phase
wall-time histograms (:meth:`Trace.phases`), rendered as a summary tree
(:mod:`repro.obs.render`), or serialized to JSONL
(:mod:`repro.obs.sinks`).

The module-level :func:`span` / :func:`count` helpers are the
instrumentation points woven through the pipeline.  They are guarded by
a plain module global so the *disabled* path — no trace installed
anywhere — is one integer test and a return; the compiler hot loops pay
essentially nothing.  Installation is thread-local: a trace observes
only the thread it was installed on, and concurrent threads can each
carry their own.
"""

from __future__ import annotations

import threading
import time
import uuid
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional


class SpanNode:
    """One finished (or still-open) span in the trace tree."""

    __slots__ = ("name", "attrs", "started", "duration", "counters",
                 "children", "cpu", "prof")

    def __init__(self, name: str, attrs: Dict[str, object],
                 started: float) -> None:
        self.name = name
        #: User attributes (``span("assign", ii=7)`` → ``{"ii": 7}``).
        self.attrs = attrs
        #: Seconds since the owning trace's epoch.
        self.started = started
        #: Wall seconds; 0.0 while the span is still open.
        self.duration = 0.0
        #: Counters incremented while this span was innermost.
        self.counters: Dict[str, int] = {}
        self.children: List["SpanNode"] = []
        #: CPU seconds spent while this span was open (inclusive of
        #: children, mirroring ``duration``); None unless a profiler
        #: from :mod:`repro.obs.prof` observed the span.
        self.cpu: Optional[float] = None
        #: Per-function self-CPU attribution while this span was
        #: innermost: ``{func_key: [calls, cpu_seconds]}``; None unless
        #: profiled.
        self.prof: Optional[Dict[str, List[float]]] = None

    def walk(self) -> Iterator["SpanNode"]:
        """This node and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def total_counters(self) -> Dict[str, int]:
        """Counters aggregated over this node and all descendants."""
        totals: Dict[str, int] = {}
        for node in self.walk():
            for name, value in node.counters.items():
                totals[name] = totals.get(name, 0) + value
        return totals

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SpanNode({self.name!r}, attrs={self.attrs}, "
                f"duration={self.duration:.6f})")


class PhaseStats:
    """Wall-time distribution of every span sharing one name."""

    __slots__ = ("name", "count", "total", "min", "max", "buckets",
                 "samples", "cpu_total", "cpu_count")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0
        #: Log2 histogram: bucket ``b`` counts durations in
        #: ``[2**(b-1), 2**b)`` microseconds (bucket 0 is "< 1 us").
        self.buckets: Dict[int, int] = {}
        #: Every folded duration, in arrival order — the percentile
        #: source.  Bounded by the span count, not hot-loop activity.
        self.samples: List[float] = []
        #: CPU seconds summed over profiled spans (see
        #: :mod:`repro.obs.prof`); 0.0 when nothing was profiled.
        self.cpu_total = 0.0
        #: How many folded spans carried a CPU measurement.
        self.cpu_count = 0

    def add(self, duration: float, cpu: Optional[float] = None) -> None:
        """Fold one span's wall time (and optional CPU time) in."""
        self.count += 1
        self.total += duration
        if duration < self.min:
            self.min = duration
        if duration > self.max:
            self.max = duration
        bucket = int(duration * 1e6).bit_length()
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1
        self.samples.append(duration)
        if cpu is not None:
            self.cpu_total += cpu
            self.cpu_count += 1

    @property
    def mean(self) -> float:
        """Average span duration in seconds."""
        return self.total / self.count if self.count else 0.0

    @property
    def minimum(self) -> float:
        """Smallest duration, safe to render: 0.0 when empty.

        The raw ``min`` attribute stays ``inf`` for an empty
        distribution (the natural fold identity); every renderer and
        sink goes through this guard instead.
        """
        return self.min if self.count else 0.0

    def percentile(self, q: float) -> float:
        """The q-th percentile (0-100) with linear interpolation."""
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        if len(ordered) == 1:
            return ordered[0]
        rank = (q / 100.0) * (len(ordered) - 1)
        low = int(rank)
        high = min(low + 1, len(ordered) - 1)
        fraction = rank - low
        return ordered[low] * (1.0 - fraction) + ordered[high] * fraction

    @property
    def p50(self) -> float:
        """Median span duration in seconds."""
        return self.percentile(50.0)

    @property
    def p90(self) -> float:
        """90th-percentile span duration in seconds."""
        return self.percentile(90.0)

    @property
    def p99(self) -> float:
        """99th-percentile span duration in seconds."""
        return self.percentile(99.0)

    @staticmethod
    def bucket_label(bucket: int) -> str:
        """Upper bound of a histogram bucket, human-readable."""
        if bucket == 0:
            return "<1us"
        upper = 2 ** bucket  # microseconds
        if upper < 1000:
            return f"<{upper}us"
        if upper < 1_000_000:
            return f"<{upper // 1000}ms"
        return f"<{upper // 1_000_000}s"


class _LiveSpan:
    """Context manager for one open span of a :class:`Trace`."""

    __slots__ = ("_trace", "node")

    def __init__(self, trace: "Trace", node: SpanNode) -> None:
        self._trace = trace
        self.node = node

    def note(self, **attrs: object) -> None:
        """Attach attributes discovered mid-span (e.g. the outcome)."""
        self.node.attrs.update(attrs)

    def __enter__(self) -> "_LiveSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        self._trace._close(self.node)
        return False


class _NullSpan:
    """The disabled-mode stand-in: every operation is a no-op."""

    __slots__ = ()

    def note(self, **attrs: object) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


NULL_SPAN = _NullSpan()


class Trace:
    """In-memory span/counter collector for one thread.

    Not installed anywhere by itself — pass it to :func:`tracing` (or
    :func:`install`) to start observing the calling thread.
    """

    def __init__(self) -> None:
        self.epoch = time.perf_counter()
        #: Wall-clock instant of ``epoch`` (``time.time()``), shared
        #: across processes on one host — the correlation anchor that
        #: lets :meth:`graft` rebase a worker trace's span offsets into
        #: this trace's clock.  None on traces rebuilt from event logs
        #: that carried no header.
        self.epoch_wall: Optional[float] = time.time()
        #: Random identity, stamped on the JSONL header so logs from
        #: different processes of one run can be told apart and
        #: re-correlated offline.
        self.trace_id: str = uuid.uuid4().hex[:16]
        #: Top-level spans, in start order.
        self.roots: List[SpanNode] = []
        #: Trace-wide counter aggregate (sum over all spans plus any
        #: counts recorded outside every span).
        self.counters: Dict[str, int] = {}
        #: Per-function self-CPU recorded outside any span while a
        #: profiler was attached (see :mod:`repro.obs.prof`).
        self.prof: Dict[str, List[float]] = {}
        self._stack: List[SpanNode] = []
        #: The attached :class:`repro.obs.prof.Profiler`, or None.
        self._prof = None

    # -- recording -----------------------------------------------------
    def span(self, name: str, attrs: Optional[Dict[str, object]] = None
             ) -> _LiveSpan:
        """Open a child span of the innermost open span."""
        node = SpanNode(name, dict(attrs) if attrs else {},
                        time.perf_counter() - self.epoch)
        if self._stack:
            self._stack[-1].children.append(node)
        else:
            self.roots.append(node)
        self._stack.append(node)
        if self._prof is not None:
            self._prof.span_opened(node)
        return _LiveSpan(self, node)

    def _close(self, node: SpanNode) -> None:
        node.duration = time.perf_counter() - self.epoch - node.started
        if self._prof is not None:
            self._prof.span_closed(node)
        # Pop through any spans left open by exceptions below this one.
        while self._stack:
            popped = self._stack.pop()
            if popped is node:
                break

    def count(self, name: str, n: int = 1) -> None:
        """Increment a counter on the innermost open span."""
        self.counters[name] = self.counters.get(name, 0) + n
        if self._stack:
            owner = self._stack[-1].counters
            owner[name] = owner.get(name, 0) + n

    def graft(self, other: "Trace", name: str = "worker",
              **attrs: object) -> SpanNode:
        """Absorb another trace — typically deserialized from a worker
        process — into this one.

        The other trace's root spans become children of a new synthetic
        span (named ``name``, carrying ``attrs``) attached under this
        trace's innermost open span, and its trace-wide counters fold
        into this trace's aggregate.  Returns the synthetic host span.

        When both traces carry wall-clock epochs, every grafted span's
        ``started`` offset is rebased from the other trace's clock into
        this one's, so the merged tree is one coherent timeline: a span
        that ran 3ms into the worker's life shows up at
        ``(worker_birth - parent_birth) + 3ms``.  Without epochs (an old
        event log), the worker window is placed at the graft instant.
        The host span covers the worker trace's real elapsed window —
        ``max(end) - min(start)`` — not the sum of root durations, which
        double-counts nothing but also never exceeds wall time when
        roots overlap.
        """
        now = time.perf_counter() - self.epoch
        roots = list(other.roots)
        if other.epoch_wall is not None and self.epoch_wall is not None:
            offset = other.epoch_wall - self.epoch_wall
        elif roots:
            # Unknown worker epoch: pin the window's start to the graft
            # instant so relative timing within the worker survives.
            offset = now - min(root.started for root in roots)
        else:
            offset = 0.0
        if offset:
            pending = list(roots)
            while pending:
                node = pending.pop()
                node.started += offset
                pending.extend(node.children)
        if roots:
            started = min(root.started for root in roots)
            ended = max(root.started + root.duration for root in roots)
        else:
            started, ended = now, now
        host = SpanNode(name, dict(attrs), started)
        host.children = roots
        host.duration = ended - started
        if self._stack:
            self._stack[-1].children.append(host)
        else:
            self.roots.append(host)
        for counter_name, value in other.counters.items():
            self.counters[counter_name] = \
                self.counters.get(counter_name, 0) + value
        return host

    # -- queries -------------------------------------------------------
    def counter(self, name: str) -> int:
        """Trace-wide value of one counter (0 when never incremented)."""
        return self.counters.get(name, 0)

    def walk(self) -> Iterator[SpanNode]:
        """Every span in the trace, depth-first over all roots."""
        for root in self.roots:
            yield from root.walk()

    def find(self, name: str) -> List[SpanNode]:
        """All spans with the given name, in depth-first order."""
        return [node for node in self.walk() if node.name == name]

    def phases(self) -> Dict[str, PhaseStats]:
        """Per-span-name wall-time distributions over the whole trace."""
        stats: Dict[str, PhaseStats] = {}
        for node in self.walk():
            phase = stats.get(node.name)
            if phase is None:
                phase = stats[node.name] = PhaseStats(node.name)
            phase.add(node.duration, node.cpu)
        return stats


# ----------------------------------------------------------------------
# Thread-local installation and the module-level fast path
# ----------------------------------------------------------------------
_tls = threading.local()
_lock = threading.Lock()
#: Number of traces installed across *all* threads.  The disabled fast
#: path tests this plain global before touching the thread-local.
_n_active = 0


def current_trace() -> Optional[Trace]:
    """The trace observing this thread, or None."""
    if _n_active == 0:
        return None
    return getattr(_tls, "trace", None)


def enabled() -> bool:
    """Is a trace installed on the calling thread?"""
    return current_trace() is not None


def install(trace: Trace) -> None:
    """Start observing the calling thread with ``trace``.

    Nesting is allowed; :func:`uninstall` restores the previous trace.
    """
    global _n_active
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = _tls.stack = []
    stack.append(trace)
    _tls.trace = trace
    with _lock:
        _n_active += 1


def uninstall() -> None:
    """Stop the innermost trace installed on the calling thread."""
    global _n_active
    stack = getattr(_tls, "stack", None)
    if not stack:
        raise RuntimeError("no trace installed on this thread")
    stack.pop()
    _tls.trace = stack[-1] if stack else None
    with _lock:
        _n_active -= 1


@contextmanager
def tracing(trace: Optional[Trace] = None) -> Iterator[Trace]:
    """Observe the calling thread for the duration of the block.

    >>> with tracing() as trace:
    ...     compile_loop(ddg, machine)
    >>> trace.counter("assign.placements")
    """
    if trace is None:
        trace = Trace()
    install(trace)
    try:
        yield trace
    finally:
        uninstall()


def span(name: str, **attrs: object):
    """Open a span on this thread's trace (no-op when tracing is off)."""
    trace = current_trace()
    if trace is None:
        return NULL_SPAN
    return trace.span(name, attrs)


def count(name: str, n: int = 1) -> None:
    """Bump a counter on this thread's trace (no-op when tracing is off)."""
    if _n_active == 0:
        return
    trace = getattr(_tls, "trace", None)
    if trace is not None:
        trace.count(name, n)
