"""Independent certificate verifier.

:func:`check_certificate` validates a :class:`~repro.certify.witness.
Certificate` against nothing but the original DDG and the machine
description.  It deliberately imports **no pipeline code** — not
``core/``, not ``scheduling/``, not ``mrt/`` — so a bug in the compiler
cannot hide inside its own proof checker
(``tests/certify/test_independence.py`` walks this module's import graph
to enforce that).  The DDG and machine are accessed through their small
duck-typed surfaces only:

* DDG: ``nodes`` / ``node(id)`` / ``edges`` with ``Node.opcode`` (an
  enum whose ``.value`` is the opcode string), ``Node.latency``,
  ``Node.produces_value``, ``Node.fu_class``, and ``Edge.src`` /
  ``Edge.dst`` / ``Edge.distance``;
* machine: ``n_clusters``, ``general_purpose``, ``issue_capacity``,
  ``resource_capacities``, ``op_resources``, ``copy_hop_resources``,
  ``interconnect.reachable``.

Every algorithm here is a from-scratch re-derivation: Bellman–Ford
positive-cycle probes for the recurrence bounds, multiset edge
accounting for graph fidelity, per-slot occupancy recounting, and
cyclic-interval bitmask packing for register lifetimes.
"""

from __future__ import annotations

import weakref
from typing import Dict, List, NamedTuple, Tuple

from .witness import Certificate, RecMiiWitness, resource_key_str

#: Copy latency fixed by the paper's Table 2.  The checker re-asserts it
#: against every copy node the certificate declares rather than reading
#: the pipeline's latency table.
COPY_LATENCY = 1
COPY_OPCODE = "copy"


class CertIssue(NamedTuple):
    """One verification failure: stable code, where, and why."""

    code: str
    location: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.code} [{self.location}] {self.message}"


def check_certificate(cert: Certificate, ddg, machine) -> List[CertIssue]:
    """Validate every witness in ``cert``; empty list means proven.

    Sections run independently with crash containment: a malformed
    certificate that makes one section raise (missing node, bad enum
    string) is reported as that section's failure instead of aborting
    the whole check.
    """
    issues: List[CertIssue] = []
    sections = (
        ("CERT600", "graph", _check_graph),
        ("CERT601", "recurrence", _check_recurrence),
        ("CERT602", "resources", _check_resources),
        ("CERT603", "assignment", _check_assignment),
        ("CERT604", "timing", _check_timing),
        ("CERT605", "occupancy", _check_occupancy),
        ("CERT606", "regalloc", _check_regalloc),
    )
    for code, location, section in sections:
        try:
            section(cert, ddg, machine, issues)
        except Exception as exc:  # noqa: BLE001 - containment by design
            issues.append(
                CertIssue(
                    code,
                    location,
                    f"certificate malformed, section aborted: {exc!r}",
                )
            )
    return issues


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------
def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


def _positive_cycle(
    nodes: List[int],
    edges: List[Tuple[int, int, int, int]],
    ii: int,
) -> bool:
    """True when some cycle has ``sum(latency) - ii * sum(distance) > 0``.

    Bellman–Ford longest-path relaxation from an implicit super-source
    (all distances start at 0); a relaxation still possible after
    ``len(nodes)`` passes proves a positive cycle.  Re-derived here —
    the checker must not share the pipeline's implementation.
    """
    dist = {node: 0 for node in nodes}
    for _ in range(len(nodes)):
        changed = False
        for src, dst, latency, distance in edges:
            candidate = dist[src] + latency - ii * distance
            if candidate > dist[dst]:
                dist[dst] = candidate
                changed = True
        if not changed:
            return False
    return True


#: Single-entry memo of derived per-certificate maps.  Every checker
#: section needs the same copy/cluster/start/latency dictionaries; one
#: certificate is checked at a time, so caching the last one collapses
#: four rebuilds per section pass into one.
_CERT_CTX: dict = {"cert": None}


def _copy_ids(cert: Certificate) -> Dict[int, object]:
    """Copy id -> :class:`CopyWitness` map."""
    if _CERT_CTX["cert"] is not cert:
        _CERT_CTX.clear()
        _CERT_CTX["cert"] = cert
    ids = _CERT_CTX.get("copy_ids")
    if ids is None:
        ids = {copy.copy_id: copy for copy in cert.assignment.copies}
        _CERT_CTX["copy_ids"] = ids
    return ids


def _cluster_map(cert: Certificate) -> Dict[int, int]:
    if _CERT_CTX["cert"] is not cert:
        _CERT_CTX.clear()
        _CERT_CTX["cert"] = cert
    out = _CERT_CTX.get("cluster_map")
    if out is None:
        out = cert.assignment.cluster_map()
        _CERT_CTX["cluster_map"] = out
    return out


def _start_map(cert: Certificate) -> Dict[int, int]:
    if _CERT_CTX["cert"] is not cert:
        _CERT_CTX.clear()
        _CERT_CTX["cert"] = cert
    out = _CERT_CTX.get("start_map")
    if out is None:
        out = cert.schedule.start_map()
        _CERT_CTX["start_map"] = out
    return out


def _node_latency(cert: Certificate) -> Dict[int, int]:
    if _CERT_CTX["cert"] is not cert:
        _CERT_CTX.clear()
        _CERT_CTX["cert"] = cert
    out = _CERT_CTX.get("latency")
    if out is None:
        out = cert.graph.latency_of()
        _CERT_CTX["latency"] = out
    return out


#: Per-machine lookup tables (capacity strings, per-opcode resource
#: keys), keyed by identity with a weakref guard so a recycled id can
#: never alias a collected machine.  Corpus runs verify dozens of
#: certificates against one machine; the recounted tables are pure
#: functions of the machine description, so caching them changes no
#: verdict — every lookup still recomputes on first sight.
_MACHINE_MEMO: Dict[int, Tuple[object, dict]] = {}


def _memo_for(machine) -> dict:
    key = id(machine)
    entry = _MACHINE_MEMO.get(key)
    if entry is not None and entry[0]() is machine:
        return entry[1]
    if len(_MACHINE_MEMO) >= 16:
        _MACHINE_MEMO.clear()
    memo: dict = {}
    _MACHINE_MEMO[key] = (weakref.ref(machine), memo)
    return memo


def _capacity_strings(machine) -> Dict[str, int]:
    """Canonical resource-key string -> per-cycle capacity."""
    memo = _memo_for(machine)
    caps = memo.get("caps")
    if caps is None:
        caps = {
            resource_key_str(key): capacity
            for key, capacity in machine.resource_capacities().items()
        }
        memo["caps"] = caps
    return caps


def _opcode_member(ddg, opcode_str: str):
    """The machine-side opcode enum member for ``opcode_str``.

    The enum *class* is taken from the DDG's own nodes (duck typing —
    no import), so the member is identical to what the machine's
    ``op_resources`` expects.
    """
    nodes = ddg.nodes
    if not nodes:
        raise ValueError("empty DDG carries no opcode enum")
    return type(nodes[0].opcode)(opcode_str)


def _op_keys(machine, ddg, opcode_str: str, cluster: int) -> List[str]:
    """Resource-key strings of one real op on one cluster."""
    memo = _memo_for(machine).setdefault("op", {})
    key = (opcode_str, cluster)
    keys = memo.get(key)
    if keys is None:
        keys = [
            resource_key_str(k)
            for k in machine.op_resources(
                _opcode_member(ddg, opcode_str), cluster
            )
        ]
        memo[key] = keys
    return keys


def _copy_resources(cert: Certificate, machine, copy) -> List[str]:
    """Independent recomputation of one copy's resource pools."""
    memo = _memo_for(machine).setdefault("copy", {})
    key = (copy.src_cluster, copy.targets)
    keys = memo.get(key)
    if keys is None:
        keys = [
            resource_key_str(k)
            for k in machine.copy_hop_resources(
                copy.src_cluster, list(copy.targets)
            )
        ]
        memo[key] = keys
    return keys


# ----------------------------------------------------------------------
# CERT600 — graph witness structure + fidelity to the original DDG
# ----------------------------------------------------------------------
def _check_graph(cert: Certificate, ddg, machine, issues) -> None:
    add = issues.append
    copies = _copy_ids(cert)
    witness_nodes = {node_id for node_id, _, _ in cert.graph.nodes}

    # Original nodes must appear verbatim; extras must be declared copies.
    originals = {node.node_id: node for node in ddg.nodes}
    for node_id, opcode, latency in cert.graph.nodes:
        original = originals.get(node_id)
        if original is not None:
            if opcode != original.opcode.value or latency != original.latency:
                add(CertIssue(
                    "CERT600", f"node {node_id}",
                    f"witness declares {opcode}/{latency}, DDG has "
                    f"{original.opcode.value}/{original.latency}",
                ))
        elif node_id not in copies:
            add(CertIssue(
                "CERT600", f"node {node_id}",
                "witness node is neither an original op nor a declared copy",
            ))
        elif opcode != COPY_OPCODE or latency != COPY_LATENCY:
            add(CertIssue(
                "CERT600", f"node {node_id}",
                f"declared copy has opcode {opcode} latency {latency}, "
                f"expected {COPY_OPCODE}/{COPY_LATENCY}",
            ))
    for node_id in originals:
        if node_id not in witness_nodes:
            add(CertIssue(
                "CERT600", f"node {node_id}",
                "original operation missing from the graph witness",
            ))
    for copy_id in copies:
        if copy_id in originals:
            add(CertIssue(
                "CERT600", f"copy {copy_id}",
                "declared copy shadows an original operation id",
            ))
        if copy_id not in witness_nodes:
            add(CertIssue(
                "CERT600", f"copy {copy_id}",
                "declared copy missing from the graph witness",
            ))

    # Multiset edge accounting: every original dependence must be carried
    # exactly once — verbatim, or by the value's copy carrier — and every
    # producer->copy feed must hand over the right value.  Anything left
    # in either direction is a forged or dropped dependence.
    remaining: Dict[Tuple[int, int, int], int] = {}
    for edge in ddg.edges:
        key = (edge.src, edge.dst, edge.distance)
        remaining[key] = remaining.get(key, 0) + 1

    copy_in_edges: Dict[int, int] = {}
    for src, dst, distance in cert.graph.edges:
        if src not in witness_nodes or dst not in witness_nodes:
            add(CertIssue(
                "CERT600", f"edge {src}->{dst}",
                "edge endpoint is not a witness node",
            ))
            continue
        if dst in copies:
            # A copy is fed exactly once, same-iteration, by a node that
            # holds its value on the copy's source cluster (CERT603
            # checks the cluster part; here: value identity + shape).
            copy_in_edges[dst] = copy_in_edges.get(dst, 0) + 1
            value = copies[dst].value_of
            carried = copies[src].value_of if src in copies else src
            if distance != 0:
                add(CertIssue(
                    "CERT600", f"edge {src}->{dst}",
                    f"copy feed must have distance 0, got {distance}",
                ))
            if carried != value:
                add(CertIssue(
                    "CERT600", f"edge {src}->{dst}",
                    f"copy {dst} transports value {value} but is fed "
                    f"value {carried}",
                ))
            continue
        producer = copies[src].value_of if src in copies else src
        key = (producer, dst, distance)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
        else:
            add(CertIssue(
                "CERT600", f"edge {src}->{dst}",
                f"no unconsumed original dependence "
                f"{producer}->{dst} (distance {distance}) backs this edge",
            ))
    for (src, dst, distance), count in remaining.items():
        if count > 0:
            add(CertIssue(
                "CERT600", f"edge {src}->{dst}",
                f"original dependence (distance {distance}) dropped by "
                f"the annotated graph ({count} missing)",
            ))
    for copy_id in copies:
        if copy_in_edges.get(copy_id, 0) != 1:
            add(CertIssue(
                "CERT600", f"copy {copy_id}",
                f"copy has {copy_in_edges.get(copy_id, 0)} feed edges, "
                f"expected exactly 1",
            ))


# ----------------------------------------------------------------------
# CERT601 — recurrence-bound witnesses (critical cycles)
# ----------------------------------------------------------------------
def _check_recmii_witness(
    tag: str,
    witness: RecMiiWitness,
    nodes: List[int],
    latency_of: Dict[int, int],
    edge_index: Dict[Tuple[int, int, int], bool],
    edges: List[Tuple[int, int, int, int]],
    issues,
) -> None:
    add = issues.append
    value = witness.value
    if value < 0:
        add(CertIssue("CERT601", tag, f"negative bound {value}"))
        return
    if value == 0:
        if witness.cycle:
            add(CertIssue(
                "CERT601", tag,
                "bound 0 (no constraining cycle) must carry no cycle",
            ))
        if _positive_cycle(nodes, edges, 0):
            add(CertIssue(
                "CERT601", tag,
                "claims no recurrence constraint, but a positive cycle "
                "exists at II=0",
            ))
        return
    if not witness.cycle:
        add(CertIssue(
            "CERT601", tag, f"bound {value} claimed without a cycle witness"
        ))
        return
    # The cycle must be a closed walk of real edges with true latencies.
    closed = True
    for position, (src, dst, latency, distance) in enumerate(witness.cycle):
        nxt = witness.cycle[(position + 1) % len(witness.cycle)]
        if dst != nxt[0]:
            closed = False
        if (src, dst, distance) not in edge_index:
            add(CertIssue(
                "CERT601", tag,
                f"cycle edge {src}->{dst} (distance {distance}) does not "
                f"exist in the graph",
            ))
        if latency_of.get(src) != latency:
            add(CertIssue(
                "CERT601", tag,
                f"cycle edge {src}->{dst} claims latency {latency}, node "
                f"has {latency_of.get(src)}",
            ))
    if not closed:
        add(CertIssue("CERT601", tag, "witness edges do not form a cycle"))
        return
    total_latency = witness.cycle_latency
    total_distance = witness.cycle_distance
    if total_distance <= 0:
        add(CertIssue(
            "CERT601", tag,
            f"witness cycle has total distance {total_distance}",
        ))
        return
    attained = _ceil_div(total_latency, total_distance)
    if attained != value:
        add(CertIssue(
            "CERT601", tag,
            f"cycle attains ceil({total_latency}/{total_distance}) = "
            f"{attained}, not the claimed {value}",
        ))
    # Maximality: no cycle anywhere in the graph may exceed the claim.
    if _positive_cycle(nodes, edges, value):
        add(CertIssue(
            "CERT601", tag,
            f"some cycle still violates II={value}: the claimed bound "
            f"understates the true recurrence minimum",
        ))


def _check_recurrence(cert: Certificate, ddg, machine, issues) -> None:
    original_nodes = [node.node_id for node in ddg.nodes]
    original_latency = {node.node_id: node.latency for node in ddg.nodes}
    original_edges = [
        (edge.src, edge.dst, ddg.node(edge.src).latency, edge.distance)
        for edge in ddg.edges
    ]
    original_index = {
        (src, dst, distance): True
        for src, dst, _, distance in original_edges
    }
    _check_recmii_witness(
        "recmii", cert.recmii, original_nodes, original_latency,
        original_index, original_edges, issues,
    )
    sched_nodes = [node_id for node_id, _, _ in cert.graph.nodes]
    sched_latency = _node_latency(cert)
    sched_edges = [
        (src, dst, sched_latency[src], distance)
        for src, dst, distance in cert.graph.edges
    ]
    sched_index = {
        (src, dst, distance): True for src, dst, _, distance in sched_edges
    }
    _check_recmii_witness(
        "sched_recmii", cert.sched_recmii, sched_nodes, sched_latency,
        sched_index, sched_edges, issues,
    )


# ----------------------------------------------------------------------
# CERT602 — resource-bound witnesses + II/MII arithmetic
# ----------------------------------------------------------------------
def _check_resources(cert: Certificate, ddg, machine, issues) -> None:
    add = issues.append

    # Unified ResMII, recounted from the original DDG.
    expected: Dict[str, Tuple[int, int]] = {}
    real_ops = [
        node for node in ddg.nodes if node.opcode.value != COPY_OPCODE
    ]
    if real_ops:
        if machine.general_purpose:
            width = machine.issue_capacity(real_ops[0].fu_class)
            expected["gp"] = (len(real_ops), width)
        else:
            per_class: Dict[object, int] = {}
            for node in real_ops:
                per_class[node.fu_class] = per_class.get(node.fu_class, 0) + 1
            for fu_class, uses in per_class.items():
                expected[fu_class.value] = (
                    uses, machine.issue_capacity(fu_class)
                )
    witnessed = {pool: (uses, cap) for pool, uses, cap in cert.resmii.demand}
    if witnessed != expected:
        add(CertIssue(
            "CERT602", "resmii",
            f"counting evidence {sorted(witnessed)} does not match the "
            f"machine's recount {sorted(expected)}",
        ))
    else:
        for pool, (uses, capacity) in expected.items():
            if capacity <= 0:
                add(CertIssue(
                    "CERT602", "resmii",
                    f"pool {pool} has non-positive capacity {capacity}",
                ))
        value = max(
            [_ceil_div(uses, cap) for uses, cap in expected.values() if cap > 0]
            or [1]
        )
        value = max(value, 1)
        if cert.resmii.value != value:
            add(CertIssue(
                "CERT602", "resmii",
                f"claimed {cert.resmii.value}, counting gives {value}",
            ))

    # Per-resource floor on the clustered machine under this assignment.
    sched_expected = _sched_resource_demand(cert, ddg, machine)
    sched_witnessed = {
        pool: (uses, cap) for pool, uses, cap in cert.sched_resources.demand
    }
    if sched_witnessed != sched_expected:
        add(CertIssue(
            "CERT602", "sched_resources",
            f"counting evidence does not match recount "
            f"(witness {sorted(sched_witnessed)}, "
            f"recount {sorted(sched_expected)})",
        ))
    else:
        value = max(
            [
                _ceil_div(uses, cap)
                for uses, cap in sched_expected.values()
                if cap > 0
            ]
            or [1]
        )
        value = max(value, 1)
        if cert.sched_resources.value != value:
            add(CertIssue(
                "CERT602", "sched_resources",
                f"claimed {cert.sched_resources.value}, counting gives "
                f"{value}",
            ))

    # Arithmetic tying the claims together.
    mii = max(cert.recmii.value, cert.resmii.value, 1)
    if cert.mii != mii:
        add(CertIssue(
            "CERT602", "mii",
            f"claimed MII {cert.mii} != max(recmii {cert.recmii.value}, "
            f"resmii {cert.resmii.value}, 1) = {mii}",
        ))
    if cert.ii != cert.schedule.ii:
        add(CertIssue(
            "CERT602", "ii",
            f"certificate II {cert.ii} disagrees with schedule witness "
            f"II {cert.schedule.ii}",
        ))
    if cert.ii < mii:
        add(CertIssue(
            "CERT602", "ii",
            f"achieved II {cert.ii} is below the certified MII {mii}",
        ))
    for tag, value in (
        ("sched_recmii", cert.sched_recmii.value),
        ("sched_resources", cert.sched_resources.value),
    ):
        if value > cert.ii:
            add(CertIssue(
                "CERT602", tag,
                f"lower bound {value} exceeds the achieved II {cert.ii} — "
                f"the schedule witness cannot be valid",
            ))


def _sched_resource_demand(
    cert: Certificate, ddg, machine
) -> Dict[str, Tuple[int, int]]:
    """Uses per resource pool of the annotated graph, with capacities."""
    capacities = _capacity_strings(machine)
    cluster_of = _cluster_map(cert)
    copies = _copy_ids(cert)
    uses: Dict[str, int] = {}
    for node_id, opcode, _ in cert.graph.nodes:
        if node_id in copies:
            keys = _copy_resources(cert, machine, copies[node_id])
        else:
            keys = _op_keys(machine, ddg, opcode, cluster_of[node_id])
        for key in keys:
            uses[key] = uses.get(key, 0) + 1
    return {
        key: (count, capacities.get(key, 0))
        for key, count in sorted(uses.items())
    }


# ----------------------------------------------------------------------
# CERT603 — cluster assignment + copy-routing legality
# ----------------------------------------------------------------------
def _check_assignment(cert: Certificate, ddg, machine, issues) -> None:
    add = issues.append
    cluster_of = _cluster_map(cert)
    copies = _copy_ids(cert)
    witness_nodes = {node_id for node_id, _, _ in cert.graph.nodes}

    for node_id in witness_nodes:
        cluster = cluster_of.get(node_id)
        if cluster is None:
            add(CertIssue(
                "CERT603", f"node {node_id}", "no cluster assignment"
            ))
        elif not 0 <= cluster < machine.n_clusters:
            add(CertIssue(
                "CERT603", f"node {node_id}",
                f"assigned to nonexistent cluster {cluster}",
            ))

    # Copies: declared home/source cluster consistent, hops reachable,
    # resource claims identical to the machine's own accounting.
    for copy in cert.assignment.copies:
        where = f"copy {copy.copy_id}"
        if cluster_of.get(copy.copy_id) != copy.src_cluster:
            add(CertIssue(
                "CERT603", where,
                f"declared source cluster {copy.src_cluster} but assigned "
                f"to {cluster_of.get(copy.copy_id)}",
            ))
        if not copy.targets:
            add(CertIssue("CERT603", where, "copy has no target clusters"))
            continue
        for target in copy.targets:
            if not machine.interconnect.reachable(copy.src_cluster, target):
                add(CertIssue(
                    "CERT603", where,
                    f"hop {copy.src_cluster}->{target} is not legal on "
                    f"this interconnect",
                ))
                break
        else:
            recomputed = _copy_resources(cert, machine, copy)
            if list(copy.resources) != recomputed:
                add(CertIssue(
                    "CERT603", where,
                    f"claims resources {list(copy.resources)}, machine "
                    f"accounting gives {recomputed}",
                ))

    # Edge-level legality: a value edge may only cross clusters when its
    # source is a copy that targets the consumer's cluster.
    produces = {node.node_id: node.produces_value for node in ddg.nodes}
    for src, dst, _ in cert.graph.edges:
        src_cluster = cluster_of.get(src)
        dst_cluster = cluster_of.get(dst)
        if src_cluster is None or dst_cluster is None:
            continue  # already reported above
        if src_cluster == dst_cluster:
            continue
        if src in copies:
            # A copy may only feed clusters it writes to — including the
            # source cluster of the next copy in a chain.
            if dst_cluster not in copies[src].targets:
                add(CertIssue(
                    "CERT603", f"edge {src}->{dst}",
                    f"copy feeds cluster {dst_cluster} but only targets "
                    f"{list(copies[src].targets)}",
                ))
            continue
        if produces.get(src, True):
            add(CertIssue(
                "CERT603", f"edge {src}->{dst}",
                f"value crosses clusters {src_cluster}->{dst_cluster} "
                f"without a copy",
            ))

    # Route witnesses: every chain must start at the producer's home,
    # stay value-consistent, and deliver to the consumer's cluster.
    route_index = set()
    for route in cert.assignment.routes:
        where = f"route {route.producer}->{route.consumer}"
        route_index.add((route.producer, route.consumer))
        if cluster_of.get(route.producer) != route.producer_cluster:
            add(CertIssue(
                "CERT603", where,
                f"declares producer cluster {route.producer_cluster}, "
                f"assignment says {cluster_of.get(route.producer)}",
            ))
        if cluster_of.get(route.consumer) != route.consumer_cluster:
            add(CertIssue(
                "CERT603", where,
                f"declares consumer cluster {route.consumer_cluster}, "
                f"assignment says {cluster_of.get(route.consumer)}",
            ))
        if not route.chain:
            add(CertIssue(
                "CERT603", where,
                "cross-cluster route with an empty copy chain",
            ))
            continue
        available = {route.producer_cluster}
        legal = True
        for copy_id in route.chain:
            copy = copies.get(copy_id)
            if copy is None or copy.value_of != route.producer:
                add(CertIssue(
                    "CERT603", where,
                    f"chain element {copy_id} is not a copy of value "
                    f"{route.producer}",
                ))
                legal = False
                break
            if copy.src_cluster not in available:
                add(CertIssue(
                    "CERT603", where,
                    f"chain reads cluster {copy.src_cluster} before the "
                    f"value arrives there",
                ))
                legal = False
                break
            available.update(copy.targets)
        if legal and route.consumer_cluster not in available:
            add(CertIssue(
                "CERT603", where,
                f"chain never delivers the value to cluster "
                f"{route.consumer_cluster}",
            ))

    # Every cross-cluster value flow carried by a copy must be routed.
    for src, dst, _ in cert.graph.edges:
        if src in copies and dst not in copies:
            producer = copies[src].value_of
            if (producer, dst) not in route_index:
                add(CertIssue(
                    "CERT603", f"edge {src}->{dst}",
                    f"cross-cluster flow {producer}->{dst} has no route "
                    f"witness",
                ))


# ----------------------------------------------------------------------
# CERT604 — per-edge timing
# ----------------------------------------------------------------------
def _check_timing(cert: Certificate, ddg, machine, issues) -> None:
    add = issues.append
    start = _start_map(cert)
    latency_of = _node_latency(cert)
    witness_nodes = {node_id for node_id, _, _ in cert.graph.nodes}
    ii = cert.schedule.ii
    if ii < 1:
        add(CertIssue("CERT604", "schedule", f"II must be >= 1, got {ii}"))
        return
    if set(start) != witness_nodes:
        missing = sorted(witness_nodes - set(start))
        extra = sorted(set(start) - witness_nodes)
        add(CertIssue(
            "CERT604", "schedule",
            f"start cycles do not cover the graph exactly "
            f"(missing {missing}, extra {extra})",
        ))
        return
    for node_id, cycle in start.items():
        if cycle < 0:
            add(CertIssue(
                "CERT604", f"node {node_id}",
                f"negative start cycle {cycle}",
            ))
    if len(cert.schedule.edge_slack) != len(cert.graph.edges):
        add(CertIssue(
            "CERT604", "schedule",
            f"{len(cert.schedule.edge_slack)} slack entries for "
            f"{len(cert.graph.edges)} edges",
        ))
        return
    for index, (src, dst, distance) in enumerate(cert.graph.edges):
        slack = start[dst] + ii * distance - start[src] - latency_of[src]
        if slack < 0:
            add(CertIssue(
                "CERT604", f"edge {src}->{dst}",
                f"dependence violated: start[{dst}]={start[dst]} + "
                f"{ii}*{distance} < start[{src}]={start[src]} + "
                f"latency {latency_of[src]}",
            ))
        if slack != cert.schedule.edge_slack[index]:
            add(CertIssue(
                "CERT604", f"edge {src}->{dst}",
                f"witnessed slack {cert.schedule.edge_slack[index]} != "
                f"actual {slack}",
            ))


# ----------------------------------------------------------------------
# CERT605 — per-slot occupancy
# ----------------------------------------------------------------------
def _check_occupancy(cert: Certificate, ddg, machine, issues) -> None:
    add = issues.append
    ii = cert.schedule.ii
    if ii < 1:
        return  # reported by CERT604
    capacities = _capacity_strings(machine)
    cluster_of = _cluster_map(cert)
    copies = _copy_ids(cert)
    start = _start_map(cert)

    actual: Dict[Tuple[str, int], List[int]] = {}
    for node_id, opcode, _ in cert.graph.nodes:
        cycle = start.get(node_id)
        cluster = cluster_of.get(node_id)
        if cycle is None or cluster is None:
            return  # structure already reported elsewhere
        if node_id in copies:
            keys = _copy_resources(cert, machine, copies[node_id])
        else:
            keys = _op_keys(machine, ddg, opcode, cluster)
        row = cycle % ii
        for key in keys:
            actual.setdefault((key, row), []).append(node_id)

    witnessed = {
        (slot.resource, slot.row): slot for slot in cert.schedule.slots
    }
    for (resource, row), ops in sorted(actual.items()):
        ops.sort()
        capacity = capacities.get(resource)
        if capacity is None:
            add(CertIssue(
                "CERT605", f"{resource} row {row}",
                "occupied resource does not exist on this machine",
            ))
            continue
        if len(ops) > capacity:
            add(CertIssue(
                "CERT605", f"{resource} row {row}",
                f"slot double-booked: ops {ops} exceed capacity {capacity}",
            ))
        slot = witnessed.get((resource, row))
        if slot is None:
            add(CertIssue(
                "CERT605", f"{resource} row {row}",
                f"occupancy by ops {ops} missing from the witness",
            ))
        else:
            if list(slot.ops) != ops:
                add(CertIssue(
                    "CERT605", f"{resource} row {row}",
                    f"witness lists ops {list(slot.ops)}, recount gives "
                    f"{ops}",
                ))
            if slot.capacity != capacity:
                add(CertIssue(
                    "CERT605", f"{resource} row {row}",
                    f"witness claims capacity {slot.capacity}, machine "
                    f"has {capacity}",
                ))
    for (resource, row), slot in sorted(witnessed.items()):
        if (resource, row) not in actual:
            add(CertIssue(
                "CERT605", f"{resource} row {row}",
                f"witness slot (ops {list(slot.ops)}) has no occupancy "
                f"in the schedule",
            ))


# ----------------------------------------------------------------------
# CERT606 — register-allocation lifetime witnesses
# ----------------------------------------------------------------------
def _check_regalloc(cert: Certificate, ddg, machine, issues) -> None:
    add = issues.append
    ii = cert.schedule.ii
    if ii < 1:
        return  # reported by CERT604
    start = _start_map(cert)
    latency_of = _node_latency(cert)
    cluster_of = _cluster_map(cert)
    copies = _copy_ids(cert)
    # produces_value is a pure function of the opcode; resolve each
    # opcode's flag once instead of per node.
    produced_by_op: Dict[object, bool] = {}
    produces: Dict[int, bool] = {}
    for node in ddg.nodes:
        flag = produced_by_op.get(node.opcode)
        if flag is None:
            flag = node.produces_value
            produced_by_op[node.opcode] = flag
        produces[node.node_id] = flag

    # Recompute lifetimes from scratch: a value is born at producer
    # completion and dies at its last read per consuming cluster
    # (loop-carried reads die II*distance later).
    last_read: Dict[Tuple[int, int], int] = {}
    for src, dst, distance in cert.graph.edges:
        death = start[dst] + ii * distance
        key = (src, cluster_of[dst])
        if death > last_read.get(key, death - 1):
            last_read[key] = death
    expected = set()
    for node_id, _, _ in cert.graph.nodes:
        if node_id in copies:
            clusters = copies[node_id].targets
        elif produces.get(node_id, False):
            clusters = (cluster_of[node_id],)
        else:
            continue
        birth = start[node_id] + latency_of[node_id]
        for cluster in clusters:
            death = last_read.get((node_id, cluster))
            if death is not None:
                expected.add((node_id, cluster, birth, death))
    witnessed = set(cert.regalloc.lifetimes)
    for lifetime in sorted(witnessed - expected):
        add(CertIssue(
            "CERT606", f"value {lifetime[0]}",
            f"witness lifetime {lifetime} does not match the schedule",
        ))
    for lifetime in sorted(expected - witnessed):
        add(CertIssue(
            "CERT606", f"value {lifetime[0]}",
            f"live range {lifetime} missing from the witness",
        ))
    if witnessed != expected:
        return

    # MVE arithmetic: the unroll factor must cover the longest value.
    unroll = 1
    for _, _, birth, death in expected:
        unroll = max(unroll, _ceil_div(max(0, death - birth), ii) or 1)
    if cert.regalloc.unroll != unroll:
        add(CertIssue(
            "CERT606", "unroll",
            f"claimed unroll {cert.regalloc.unroll}, lifetimes require "
            f"{unroll}",
        ))
        return
    span = unroll * ii
    full = (1 << span) - 1
    files = dict(cert.regalloc.registers_per_cluster)

    # Each lifetime owns one register slot per unroll instance; pack all
    # claimed intervals and demand zero collisions inside each register.
    needed = {}
    for producer, cluster, birth, death in expected:
        for instance in range(unroll):
            needed[(producer, cluster, instance)] = (
                (birth + instance * ii) % span,
                max(0, death - birth),
            )
    busy: Dict[Tuple[int, int], int] = {}
    seen = set()
    for entry in cert.regalloc.assignments:
        producer, cluster, instance, register, start_cycle, length = entry
        key = (producer, cluster, instance)
        shape = needed.get(key)
        if shape is None or key in seen:
            add(CertIssue(
                "CERT606", f"value {producer}.{instance} @C{cluster}",
                "assignment does not correspond to exactly one lifetime "
                "instance",
            ))
            continue
        seen.add(key)
        if (start_cycle, length) != shape:
            add(CertIssue(
                "CERT606", f"value {producer}.{instance} @C{cluster}",
                f"assignment interval ({start_cycle}, {length}) != "
                f"lifetime instance interval {shape}",
            ))
            continue
        if register < 0 or register >= files.get(cluster, 0):
            add(CertIssue(
                "CERT606", f"value {producer}.{instance} @C{cluster}",
                f"register r{register} outside cluster C{cluster}'s file "
                f"of {files.get(cluster, 0)}",
            ))
            continue
        block = ((1 << max(1, min(length, span))) - 1) << (start_cycle % span)
        mask = (block >> span) | (block & full)
        slot = (cluster, register)
        occupied = busy.get(slot, 0)
        if occupied & mask:
            add(CertIssue(
                "CERT606", f"value {producer}.{instance} @C{cluster}",
                f"overlapping lifetimes in register r{register} of "
                f"cluster C{cluster}",
            ))
        busy[slot] = occupied | mask
    for key in sorted(needed.keys() - seen):
        add(CertIssue(
            "CERT606", f"value {key[0]}.{key[2]} @C{key[1]}",
            "lifetime instance has no register assignment",
        ))
