"""The ``--certify`` gate: emit, verify, and optionally probe tightness.

:func:`certify_compiled` is the one-call form the driver, the
experiment runners, and the CLI all share: emit the certificate for a
:class:`~repro.core.driver.CompiledLoop`, hand it to the independent
checker, and (when the config asks) run the exact tightness oracle.
The result is a :class:`CertifiedArtifact` — certificate, verifier
issues, and the optional exact verdict — which
:func:`artifact_diagnostics` bridges into the lint diagnostic stream so
certificate failures render through the same text/JSON/SARIF renderers
as every other finding.

:class:`CertifyConfig` is frozen and picklable, so it crosses the
parallel engine's process boundary exactly like
:class:`~repro.lint.registry.LintConfig` does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from .. import obs
from ..lint.diagnostics import SEVERITY_ERROR, SEVERITY_WARNING, Diagnostic
from .check import CertIssue, check_certificate
from .emit import emit_certificate
from .exact import (
    STATUS_BUDGET,
    STATUS_LOOSE,
    ExactBudget,
    ExactResult,
    probe_tightness,
)
from .witness import Certificate

#: Diagnostic code of a loose-II finding (exact oracle beat the
#: heuristic scheduler).  Warning severity: a loose II is a missed
#: optimization, not a wrong compile.
CODE_LOOSE_II = "CERT690"

#: Artifact family each checker section reports against (mirrors the
#: lint families so mixed reports group naturally).
SECTION_ARTIFACTS = {
    "CERT600": "annotated",
    "CERT601": "ddg",
    "CERT602": "machine",
    "CERT603": "annotated",
    "CERT604": "schedule",
    "CERT605": "schedule",
    "CERT606": "regalloc",
    CODE_LOOSE_II: "schedule",
}

#: Human-readable rule slugs per checker section.
SECTION_RULES = {
    "CERT600": "cert-graph-fidelity",
    "CERT601": "cert-recurrence-witness",
    "CERT602": "cert-resource-witness",
    "CERT603": "cert-copy-routing",
    "CERT604": "cert-timing",
    "CERT605": "cert-occupancy",
    "CERT606": "cert-lifetimes",
    CODE_LOOSE_II: "cert-loose-ii",
}


@dataclass(frozen=True)
class CertifyConfig:
    """Knobs of the certify gate (frozen, picklable).

    ``strict`` makes a certificate failure abort the compile (mirroring
    the strict lint gate); ``exact`` additionally runs the bounded
    tightness oracle, budgeted by the two ``exact_*`` limits.
    """

    strict: bool = False
    exact: bool = False
    exact_node_budget: int = 12
    exact_backtrack_budget: int = 20000

    def budget(self) -> ExactBudget:
        """The oracle budget this config describes."""
        return ExactBudget(
            node_budget=self.exact_node_budget,
            backtrack_budget=self.exact_backtrack_budget,
        )


DEFAULT_CERTIFY = CertifyConfig()


@dataclass(frozen=True)
class CertifiedArtifact:
    """One compile's certificate plus its verification outcome."""

    certificate: Certificate
    issues: Tuple[CertIssue, ...]
    exact: Optional[ExactResult] = None

    @property
    def ok(self) -> bool:
        """True when the independent checker found no issue."""
        return not self.issues

    @property
    def exact_status(self) -> str:
        """The oracle's verdict, or '' when the oracle did not run."""
        return self.exact.status if self.exact is not None else ""

    def codes(self) -> Tuple[str, ...]:
        """Distinct diagnostic codes this artifact carries, sorted."""
        codes = {issue.code for issue in self.issues}
        if self.exact is not None and self.exact.status == STATUS_LOOSE:
            codes.add(CODE_LOOSE_II)
        return tuple(sorted(codes))


def certify_compiled(
    compiled, config: CertifyConfig = DEFAULT_CERTIFY
) -> CertifiedArtifact:
    """Emit and verify the certificate of one compiled loop."""
    with obs.span("certify", loop=compiled.ddg.name):
        certificate = emit_certificate(compiled)
        issues = tuple(
            check_certificate(certificate, compiled.ddg, compiled.machine)
        )
        obs.count("certify.checked")
        if issues:
            obs.count("certify.failures", len(issues))
        exact = None
        if config.exact:
            exact = probe_tightness(
                certificate, compiled.ddg, compiled.machine,
                config.budget(),
            )
            if exact.proved:
                obs.count("certify.exact_proved")
            elif exact.status == STATUS_BUDGET:
                obs.count("certify.exact_budget_exhausted")
            if exact.status == STATUS_LOOSE:
                obs.count("certify.loose_ii")
    return CertifiedArtifact(certificate, issues, exact)


def artifact_diagnostics(artifact: CertifiedArtifact) -> List[Diagnostic]:
    """Bridge one certified artifact into lint-style diagnostics.

    Checker issues become error-severity CERT600–606 diagnostics; a
    ``loose`` exact verdict becomes a warning-severity CERT690 citing
    the II the oracle scheduled at.
    """
    loop = artifact.certificate.loop
    diagnostics = [
        Diagnostic(
            code=issue.code,
            severity=SEVERITY_ERROR,
            message=issue.message,
            rule=SECTION_RULES.get(issue.code, "certificate"),
            loop=loop,
            artifact=SECTION_ARTIFACTS.get(issue.code, "certificate"),
            location=issue.location,
        )
        for issue in artifact.issues
    ]
    exact = artifact.exact
    if exact is not None and exact.status == STATUS_LOOSE:
        diagnostics.append(
            Diagnostic(
                code=CODE_LOOSE_II,
                severity=SEVERITY_WARNING,
                message=(
                    f"achieved II={artifact.certificate.ii} is loose: "
                    f"the exact oracle found a valid schedule at "
                    f"II={exact.probed_ii}"
                ),
                rule=SECTION_RULES[CODE_LOOSE_II],
                loop=loop,
                artifact=SECTION_ARTIFACTS[CODE_LOOSE_II],
                hint=(
                    "the heuristic scheduler missed a feasible schedule "
                    "under this cluster assignment"
                ),
            )
        )
    return diagnostics


def certify_loop_report(ddg, machine, variant, certify_config, severity):
    """Compile + certify one loop into a lint-style report.

    The ``repro certify`` per-loop unit, shared by the serial path and
    the worker pool's ``certify_loop`` task.  A loop that fails to
    compile surfaces as a ``LINT002`` diagnostic (severity-overridable,
    like deep lint); checker issues and the exact oracle's verdict flow
    through :func:`artifact_diagnostics` with any ``--severity
    CODE=LEVEL`` overrides applied afterwards, so exit codes track
    effective severities only.
    """
    import dataclasses

    from ..core.driver import CompilationError, compile_loop
    from ..lint.diagnostics import (
        CODE_COMPILE_FAILURE,
        compile_failure,
    )
    from ..lint.engine import LintReport

    report = LintReport(n_targets=1)
    try:
        compiled = compile_loop(ddg, machine, config=variant)
    except (CompilationError, ValueError) as exc:
        report.diagnostics.append(
            compile_failure(
                ddg.name or "loop", exc,
                severity=severity.get(
                    CODE_COMPILE_FAILURE, SEVERITY_ERROR
                ),
            )
        )
        return report
    artifact = certify_compiled(compiled, certify_config)
    report.rules_run = 7 + (1 if certify_config.exact else 0)
    for diagnostic in artifact_diagnostics(artifact):
        override = severity.get(diagnostic.code)
        if override is not None and override != diagnostic.severity:
            diagnostic = dataclasses.replace(
                diagnostic, severity=override
            )
        report.diagnostics.append(diagnostic)
    return report
