"""Exact bounded II-tightness oracle.

Given a verified certificate, :func:`probe_tightness` decides whether
the achieved II was *tight* for this annotated graph: it searches
exhaustively for a valid modulo schedule at ``II - 1`` under the same
cluster assignment and copy placement.  Either a schedule is exhibited
(the II was loose — the heuristic scheduler left a cycle on the table;
reported as CERT690) or the search proves infeasibility.

The search is a CP-style decomposition over ``t(n) = sigma(n) * II +
rho(n)``: resource conflicts depend only on the kernel row ``rho(n) =
t(n) mod II``, so the oracle enumerates row assignments depth-first with
incremental per-(resource, row) usage pruning, and at each complete row
assignment decides the remaining *stage* placement ``sigma`` exactly as
a system of difference constraints (``sigma(v) - sigma(u) >=
ceil((latency(u) - II*d + rho(u) - rho(v)) / II)``) via Bellman–Ford
longest paths — polynomial, so the exponential part is rows only.

Budgets keep the oracle honest about scale: loops above
``node_budget`` nodes are skipped outright, and the DFS charges one
unit per row binding against ``backtrack_budget``; exceeding it yields
``budget_exhausted``, never a wrong verdict.

Like :mod:`repro.certify.check`, this module is independent of the
pipeline — it imports only its sibling checker helpers and the witness
schema, and is enforced by the same module-graph test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .check import (
    _copy_ids,
    _copy_resources,
    _node_latency,
    _opcode_member,
    _positive_cycle,
    _sched_resource_demand,
)
from .witness import Certificate, resource_key_str

#: Verdicts of :func:`probe_tightness`.
STATUS_TIGHT = "tight"
STATUS_LOOSE = "loose"
STATUS_BUDGET = "budget_exhausted"
STATUS_SKIPPED = "skipped"

#: Reasons accompanying a ``tight`` verdict.
REASON_MINIMAL = "ii_is_minimal"
REASON_RECURRENCE = "recurrence_bound"
REASON_RESOURCE = "resource_bound"
REASON_EXHAUSTED = "search_exhausted"


@dataclass(frozen=True)
class ExactBudget:
    """Limits bounding the exact search.

    ``node_budget`` caps the annotated-graph size the oracle will touch
    at all (the row DFS is exponential in it); ``backtrack_budget`` caps
    row bindings tried before giving up with ``budget_exhausted``.
    """

    node_budget: int = 12
    backtrack_budget: int = 20000


DEFAULT_BUDGET = ExactBudget()


@dataclass(frozen=True)
class ExactResult:
    """Outcome of one tightness probe at ``probed_ii = II - 1``."""

    status: str
    reason: str
    probed_ii: int
    backtracks: int = 0
    schedule: Optional[Tuple[Tuple[int, int], ...]] = None

    @property
    def proved(self) -> bool:
        """True when the probe reached a definite verdict."""
        return self.status in (STATUS_TIGHT, STATUS_LOOSE)


def probe_tightness(
    cert: Certificate,
    ddg,
    machine,
    budget: ExactBudget = DEFAULT_BUDGET,
) -> ExactResult:
    """Decide whether ``cert.ii`` was tight for its annotated graph.

    The verdict is relative to the *fixed* cluster assignment and copy
    placement the certificate records: the driver re-runs assignment per
    candidate II, so a ``loose`` verdict means the scheduler missed a
    feasible schedule at ``II - 1`` on this graph, not that the whole
    pipeline's II is necessarily improvable.
    """
    target = cert.ii - 1
    if target < 1:
        return ExactResult(STATUS_TIGHT, REASON_MINIMAL, target)
    node_ids = [node_id for node_id, _, _ in cert.graph.nodes]
    if len(node_ids) > budget.node_budget:
        return ExactResult(
            STATUS_SKIPPED,
            f"loop has {len(node_ids)} nodes, budget is "
            f"{budget.node_budget}",
            target,
        )

    latency_of = _node_latency(cert)
    edges = [
        (src, dst, latency_of[src], distance)
        for src, dst, distance in cert.graph.edges
    ]
    # Recurrence pre-check: one positive-cycle probe kills most targets
    # without touching the DFS (the dominant case — recurrences bound
    # almost every tight loop).
    if _positive_cycle(node_ids, edges, target):
        return ExactResult(STATUS_TIGHT, REASON_RECURRENCE, target)

    # Resource pre-check: pure counting, independent of placement.
    for uses, capacity in _sched_resource_demand(cert, ddg, machine).values():
        if capacity > 0 and -(-uses // capacity) > target:
            return ExactResult(STATUS_TIGHT, REASON_RESOURCE, target)

    resources = _node_resources(cert, ddg, machine)
    capacities = {
        resource_key_str(key): cap
        for key, cap in machine.resource_capacities().items()
    }

    # Most-constrained-first ordering shrinks the DFS: nodes holding more
    # resource pools collide earlier, so bind them first.
    order = sorted(
        node_ids, key=lambda n: (-len(resources[n]), n)
    )
    usage: Dict[Tuple[str, int], int] = {}
    rho: Dict[int, int] = {}
    backtracks = 0
    found: List[Tuple[Tuple[int, int], ...]] = []

    def place(depth: int) -> Optional[str]:
        """DFS over row assignments; returns a terminal status or None."""
        nonlocal backtracks
        if depth == len(order):
            starts = _solve_stages(node_ids, edges, rho, target)
            if starts is None:
                return None
            found.append(tuple(sorted(starts.items())))
            return STATUS_LOOSE
        node = order[depth]
        for row in range(target):
            backtracks += 1
            if backtracks > budget.backtrack_budget:
                return STATUS_BUDGET
            blocked = False
            for key in resources[node]:
                slot = (key, row)
                if usage.get(slot, 0) + 1 > capacities.get(key, 0):
                    blocked = True
                    break
            if blocked:
                continue
            for key in resources[node]:
                slot = (key, row)
                usage[slot] = usage.get(slot, 0) + 1
            rho[node] = row
            outcome = place(depth + 1)
            del rho[node]
            for key in resources[node]:
                usage[(key, row)] -= 1
            if outcome is not None:
                return outcome
        return None

    outcome = place(0)

    if outcome == STATUS_LOOSE:
        return ExactResult(
            STATUS_LOOSE,
            f"valid schedule exists at II={target}",
            target,
            backtracks,
            found[-1],
        )
    if outcome == STATUS_BUDGET:
        return ExactResult(
            STATUS_BUDGET,
            f"row search exceeded {budget.backtrack_budget} bindings",
            target,
            backtracks,
        )
    return ExactResult(STATUS_TIGHT, REASON_EXHAUSTED, target, backtracks)


def _node_resources(cert: Certificate, ddg, machine) -> Dict[int, List[str]]:
    """Resource-pool strings each annotated node occupies per issue."""
    copies = _copy_ids(cert)
    cluster_of = cert.assignment.cluster_map()
    resources: Dict[int, List[str]] = {}
    for node_id, opcode, _ in cert.graph.nodes:
        if node_id in copies:
            resources[node_id] = _copy_resources(cert, machine, copies[node_id])
        else:
            resources[node_id] = [
                resource_key_str(key)
                for key in machine.op_resources(
                    _opcode_member(ddg, opcode), cluster_of[node_id]
                )
            ]
    return resources


def _solve_stages(
    nodes: List[int],
    edges: List[Tuple[int, int, int, int]],
    rho: Dict[int, int],
    ii: int,
) -> Optional[Dict[int, int]]:
    """Stage placement for a fixed row assignment, or None if infeasible.

    With rows fixed, each dependence ``u -> v`` becomes the difference
    constraint ``sigma(v) - sigma(u) >= ceil((latency(u) - ii*distance +
    rho(u) - rho(v)) / ii)``; the system is feasible iff longest-path
    relaxation converges, and the converged distances are themselves a
    valid (non-negative) ``sigma``.  Returns the full start map
    ``t = sigma * ii + rho``.
    """
    constraints = [
        (
            src,
            dst,
            -(-(latency - ii * distance + rho[src] - rho[dst]) // ii),
        )
        for src, dst, latency, distance in edges
    ]
    sigma = {node: 0 for node in nodes}
    for _ in range(len(nodes)):
        changed = False
        for src, dst, bound in constraints:
            candidate = sigma[src] + bound
            if candidate > sigma[dst]:
                sigma[dst] = candidate
                changed = True
        if not changed:
            return {node: sigma[node] * ii + rho[node] for node in nodes}
    return None
