"""Certificate schema: the witnesses a compile carries as its proof.

A :class:`Certificate` is pure data — tuples of ints and strings, JSON
round-trippable — describing *why* one compiled loop is correct:

* :class:`RecMiiWitness` — a critical dependence cycle (explicit edge
  list) whose ``ceil(sum latency / sum distance)`` attains the claimed
  recurrence bound;
* :class:`ResMiiWitness` — resource-counting evidence for the
  resource bound (``ceil(uses / capacity)`` per pool);
* :class:`GraphWitness` — the annotated (copy-carrying) graph the
  schedule was built for, so the checker can prove it is a faithful
  extension of the original DDG;
* :class:`AssignmentWitness` — per cross-cluster value flow, the copy
  chain that carries it (:class:`RouteWitness`) plus every copy's
  communication resources (:class:`CopyWitness`);
* :class:`ScheduleWitness` — start cycles, per-edge timing slack, and
  per-(resource, kernel-row) occupancy slots;
* :class:`RegallocWitness` — lifetime intervals and the MVE register
  assignment packed from them.

This module is deliberately import-free (stdlib only): it is shared by
the pipeline-side emitter and by the independent checker, and must not
drag pipeline code into the checker's module graph (see
``docs/CERTIFICATES.md`` for the independence contract).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, Tuple


def resource_key_str(key: object) -> str:
    """Canonical string form of a machine resource key.

    Resource keys are hashable tuples/strings whose ``repr`` is already
    deterministic (``('issue', 0, 'gp')``, ``('rd', 1)``, ``'bus'``,
    ``('link', 0, 1)``, ``('issue', 0, FuClass.MEMORY)``); certificates
    store the string form so the schema stays JSON-serializable.
    """
    return str(key)


@dataclass(frozen=True)
class RecMiiWitness:
    """A recurrence bound with the cycle that attains it.

    ``cycle`` holds ``(src, dst, latency, distance)`` edge tuples in
    traversal order (``latency`` is the source node's latency, matching
    the scheduling constraint form); empty when ``value`` is 0 (acyclic
    graph — no recurrence constrains the II).
    """

    value: int
    cycle: Tuple[Tuple[int, int, int, int], ...] = ()

    @property
    def cycle_latency(self) -> int:
        """Total latency around the witness cycle."""
        return sum(edge[2] for edge in self.cycle)

    @property
    def cycle_distance(self) -> int:
        """Total dependence distance around the witness cycle."""
        return sum(edge[3] for edge in self.cycle)


@dataclass(frozen=True)
class ResMiiWitness:
    """A resource bound with its counting evidence.

    ``demand`` holds ``(pool, uses, capacity)`` triples — ``pool`` is a
    function-unit class name for the unified bound or a canonical
    resource-key string for the per-cluster bound; ``value`` must equal
    the max of ``ceil(uses / capacity)`` over the entries (1 when there
    are none).
    """

    value: int
    demand: Tuple[Tuple[str, int, int], ...] = ()


@dataclass(frozen=True)
class GraphWitness:
    """The annotated graph: ``(id, opcode, latency)`` nodes (opcode as
    its string value) and ``(src, dst, distance)`` edges in insertion
    order."""

    nodes: Tuple[Tuple[int, str, int], ...]
    edges: Tuple[Tuple[int, int, int], ...]

    def latency_of(self) -> Dict[int, int]:
        """Node id -> latency map."""
        return {node_id: latency for node_id, _, latency in self.nodes}

    def opcode_of(self) -> Dict[int, str]:
        """Node id -> opcode string map."""
        return {node_id: opcode for node_id, opcode, _ in self.nodes}


@dataclass(frozen=True)
class CopyWitness:
    """One inserted copy: which value it transports, which clusters it
    bridges, and the communication resources it occupies per issue."""

    copy_id: int
    value_of: int
    src_cluster: int
    targets: Tuple[int, ...]
    resources: Tuple[str, ...]


@dataclass(frozen=True)
class RouteWitness:
    """One cross-cluster value flow: producer cluster -> copy chain ->
    consumer cluster.  ``chain`` lists copy node ids in hop order; the
    first reads the producer's home cluster and the last targets the
    consumer's cluster."""

    producer: int
    consumer: int
    producer_cluster: int
    consumer_cluster: int
    chain: Tuple[int, ...]


@dataclass(frozen=True)
class AssignmentWitness:
    """The cluster assignment: node -> cluster pairs, every inserted
    copy, and one route per (producer, consumer) cross-cluster flow."""

    cluster_of: Tuple[Tuple[int, int], ...]
    copies: Tuple[CopyWitness, ...] = ()
    routes: Tuple[RouteWitness, ...] = ()

    def cluster_map(self) -> Dict[int, int]:
        """Node id -> cluster index map."""
        return dict(self.cluster_of)


@dataclass(frozen=True)
class SlotWitness:
    """Occupancy of one (resource, kernel row) slot: the ops holding it
    (sorted ids) against the pool's per-cycle capacity."""

    resource: str
    row: int
    ops: Tuple[int, ...]
    capacity: int


@dataclass(frozen=True)
class ScheduleWitness:
    """The modulo schedule: start cycles, per-edge timing slack (aligned
    with the graph witness's edge order; each must be >= 0), and every
    nonempty per-(resource, row) occupancy slot."""

    ii: int
    start: Tuple[Tuple[int, int], ...]
    edge_slack: Tuple[int, ...] = ()
    slots: Tuple[SlotWitness, ...] = ()

    def start_map(self) -> Dict[int, int]:
        """Node id -> start cycle map."""
        return dict(self.start)


@dataclass(frozen=True)
class RegallocWitness:
    """The MVE register allocation: lifetime intervals
    ``(producer, cluster, birth, death)``, per-instance assignments
    ``(producer, cluster, instance, register, start_cycle, length)``
    over the ``unroll * ii`` span, and per-cluster file sizes."""

    unroll: int
    lifetimes: Tuple[Tuple[int, int, int, int], ...] = ()
    assignments: Tuple[Tuple[int, int, int, int, int, int], ...] = ()
    registers_per_cluster: Tuple[Tuple[int, int], ...] = ()


@dataclass(frozen=True)
class Certificate:
    """Everything one compiled loop claims, with witnesses.

    ``recmii`` / ``resmii`` certify the unified-machine MII claim
    (``mii == max(recmii, resmii, 1)``, computed on the *original* DDG);
    ``sched_recmii`` / ``sched_resources`` certify the achieved-II lower
    bound on the *annotated* graph under the fixed cluster assignment
    (their max is the floor the exact tightness oracle starts from).
    """

    loop: str
    machine: str
    ii: int
    mii: int
    recmii: RecMiiWitness
    resmii: ResMiiWitness
    sched_recmii: RecMiiWitness
    sched_resources: ResMiiWitness
    graph: GraphWitness
    assignment: AssignmentWitness
    schedule: ScheduleWitness
    regalloc: RegallocWitness

    @property
    def ii_floor(self) -> int:
        """Certified lower bound on the achieved II (fixed assignment)."""
        return max(self.sched_recmii.value, self.sched_resources.value, 1)

    def to_dict(self) -> Dict:
        """Plain-dict (JSON-ready) form; inverse of :func:`from_dict`."""
        return _to_plain(self)


def _to_plain(value):
    if isinstance(value, (RecMiiWitness, ResMiiWitness, GraphWitness,
                          CopyWitness, RouteWitness, AssignmentWitness,
                          SlotWitness, ScheduleWitness, RegallocWitness,
                          Certificate)):
        return {
            f.name: _to_plain(getattr(value, f.name))
            for f in fields(value)
        }
    if isinstance(value, tuple):
        return [_to_plain(item) for item in value]
    return value


def _tuples(items):
    """Recursively freeze JSON lists back into tuples."""
    return tuple(
        _tuples(item) if isinstance(item, list) else item
        for item in items
    )


def from_dict(doc: Dict) -> Certificate:
    """Rebuild a :class:`Certificate` from its :meth:`to_dict` form."""
    return Certificate(
        loop=doc["loop"],
        machine=doc["machine"],
        ii=int(doc["ii"]),
        mii=int(doc["mii"]),
        recmii=_recmii(doc["recmii"]),
        resmii=_resmii(doc["resmii"]),
        sched_recmii=_recmii(doc["sched_recmii"]),
        sched_resources=_resmii(doc["sched_resources"]),
        graph=GraphWitness(
            nodes=_tuples(doc["graph"]["nodes"]),
            edges=_tuples(doc["graph"]["edges"]),
        ),
        assignment=AssignmentWitness(
            cluster_of=_tuples(doc["assignment"]["cluster_of"]),
            copies=tuple(
                CopyWitness(
                    copy_id=c["copy_id"], value_of=c["value_of"],
                    src_cluster=c["src_cluster"],
                    targets=tuple(c["targets"]),
                    resources=tuple(c["resources"]),
                )
                for c in doc["assignment"]["copies"]
            ),
            routes=tuple(
                RouteWitness(
                    producer=r["producer"], consumer=r["consumer"],
                    producer_cluster=r["producer_cluster"],
                    consumer_cluster=r["consumer_cluster"],
                    chain=tuple(r["chain"]),
                )
                for r in doc["assignment"]["routes"]
            ),
        ),
        schedule=ScheduleWitness(
            ii=int(doc["schedule"]["ii"]),
            start=_tuples(doc["schedule"]["start"]),
            edge_slack=tuple(doc["schedule"]["edge_slack"]),
            slots=tuple(
                SlotWitness(
                    resource=s["resource"], row=s["row"],
                    ops=tuple(s["ops"]), capacity=s["capacity"],
                )
                for s in doc["schedule"]["slots"]
            ),
        ),
        regalloc=RegallocWitness(
            unroll=int(doc["regalloc"]["unroll"]),
            lifetimes=_tuples(doc["regalloc"]["lifetimes"]),
            assignments=_tuples(doc["regalloc"]["assignments"]),
            registers_per_cluster=_tuples(
                doc["regalloc"]["registers_per_cluster"]
            ),
        ),
    )


def _recmii(doc: Dict) -> RecMiiWitness:
    return RecMiiWitness(value=int(doc["value"]),
                         cycle=_tuples(doc["cycle"]))


def _resmii(doc: Dict) -> ResMiiWitness:
    return ResMiiWitness(value=int(doc["value"]),
                         demand=_tuples(doc["demand"]))
