"""Certificate-carrying compilation.

Every compile can emit a machine-checkable :class:`Certificate`
(:mod:`repro.certify.witness`) that an independent verifier
(:mod:`repro.certify.check`) validates against nothing but the input
DDG and the machine description, and whose achieved II a bounded exact
oracle (:mod:`repro.certify.exact`) can prove tight or loose.

The checker-side modules (``witness``, ``check``, ``exact``) import
nothing from the pipeline — a test inspects their module graph to keep
it that way.  The pipeline-side modules (``emit``, ``gate``) are loaded
lazily here so importing the checker never drags the pipeline in.
"""

from .check import COPY_LATENCY, CertIssue, check_certificate
from .exact import (
    DEFAULT_BUDGET,
    STATUS_BUDGET,
    STATUS_LOOSE,
    STATUS_SKIPPED,
    STATUS_TIGHT,
    ExactBudget,
    ExactResult,
    probe_tightness,
)
from .witness import (
    AssignmentWitness,
    Certificate,
    CopyWitness,
    GraphWitness,
    RecMiiWitness,
    RegallocWitness,
    ResMiiWitness,
    RouteWitness,
    ScheduleWitness,
    SlotWitness,
    from_dict,
    resource_key_str,
)

_PIPELINE_EXPORTS = {
    "emit_certificate": ("emit", "emit_certificate"),
    "certificate_for": ("emit", "certificate_for"),
    "CertifyConfig": ("gate", "CertifyConfig"),
    "DEFAULT_CERTIFY": ("gate", "DEFAULT_CERTIFY"),
    "CertifiedArtifact": ("gate", "CertifiedArtifact"),
    "certify_compiled": ("gate", "certify_compiled"),
    "artifact_diagnostics": ("gate", "artifact_diagnostics"),
    "certify_loop_report": ("gate", "certify_loop_report"),
    "CODE_LOOSE_II": ("gate", "CODE_LOOSE_II"),
}


def __getattr__(name: str):
    """Lazily resolve the pipeline-side (emitter/gate) exports."""
    try:
        module_name, attribute = _PIPELINE_EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    return getattr(module, attribute)


__all__ = [
    "AssignmentWitness",
    "COPY_LATENCY",
    "CODE_LOOSE_II",
    "CertIssue",
    "Certificate",
    "CertifiedArtifact",
    "CertifyConfig",
    "CopyWitness",
    "DEFAULT_BUDGET",
    "DEFAULT_CERTIFY",
    "ExactBudget",
    "ExactResult",
    "GraphWitness",
    "RecMiiWitness",
    "RegallocWitness",
    "ResMiiWitness",
    "RouteWitness",
    "STATUS_BUDGET",
    "STATUS_LOOSE",
    "STATUS_SKIPPED",
    "STATUS_TIGHT",
    "ScheduleWitness",
    "SlotWitness",
    "artifact_diagnostics",
    "certificate_for",
    "certify_compiled",
    "check_certificate",
    "emit_certificate",
    "from_dict",
    "probe_tightness",
    "resource_key_str",
]
