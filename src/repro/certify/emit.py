"""Pipeline-side certificate emitter.

:func:`emit_certificate` turns one :class:`~repro.core.driver.
CompiledLoop` into a :class:`~repro.certify.witness.Certificate`: it
re-derives each claim *with its witness attached* — the critical cycle
behind RecMII (Bellman–Ford parent tracking at ``II - 1``), the
counting evidence behind ResMII, the copy chains behind the assignment,
the slack/occupancy tables behind the schedule, and the lifetime
intervals behind the register allocation.

Unlike :mod:`repro.certify.check`, this module lives firmly on the
pipeline side and uses the pipeline's own accounting
(``AnnotatedDdg.resources_of``, ``extract_lifetimes``,
``allocate_mve``); the independent checker then recounts everything
from the machine description, so systematic pipeline bugs surface as
witness/recount disagreements.
"""

from __future__ import annotations

import weakref
from typing import Dict, List, Optional, Tuple

from ..ddg.graph import Ddg
from ..ddg.mii import rec_mii
from ..ddg.transform import AnnotatedDdg
from ..regalloc.lifetimes import extract_lifetimes
from ..regalloc.mve import allocate_mve
from ..scheduling.schedule import Schedule
from .witness import (
    AssignmentWitness,
    Certificate,
    CopyWitness,
    GraphWitness,
    RecMiiWitness,
    RegallocWitness,
    ResMiiWitness,
    RouteWitness,
    ScheduleWitness,
    SlotWitness,
    resource_key_str,
)

EdgeSpec = Tuple[int, int, int, int]


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


#: Per-machine lookup tables (capacity strings, per-opcode resource
#: keys), keyed by identity with a weakref guard so a recycled id can
#: never alias a collected machine.  A corpus run certifies dozens of
#: loops against one machine; without this the same resource tables
#: would be stringified once per loop.
_MACHINE_MEMO: Dict[int, Tuple[object, dict]] = {}


def _memo_for(machine) -> dict:
    key = id(machine)
    entry = _MACHINE_MEMO.get(key)
    if entry is not None and entry[0]() is machine:
        return entry[1]
    if len(_MACHINE_MEMO) >= 16:
        _MACHINE_MEMO.clear()
    memo: dict = {}
    _MACHINE_MEMO[key] = (weakref.ref(machine), memo)
    return memo


def _capacity_strings(machine) -> Dict[str, int]:
    memo = _memo_for(machine)
    caps = memo.get("caps")
    if caps is None:
        caps = {
            resource_key_str(key): capacity
            for key, capacity in machine.resource_capacities().items()
        }
        memo["caps"] = caps
    return caps


def _resource_strings(annotated: AnnotatedDdg) -> Dict[int, List[str]]:
    """Resource-key strings of every node, via the pipeline's own
    accounting (cached per machine for the opcode-derived part)."""
    machine = annotated.machine
    op_memo = _memo_for(machine).setdefault("op", {})
    out: Dict[int, List[str]] = {}
    for node in annotated.ddg.nodes:
        node_id = node.node_id
        cluster = annotated.cluster_of[node_id]
        if node.is_copy:
            key = (cluster, tuple(annotated.copy_targets[node_id]))
            memo = _memo_for(machine).setdefault("copy", {})
        else:
            key = (node.opcode, cluster)
            memo = op_memo
        keys = memo.get(key)
        if keys is None:
            keys = [
                resource_key_str(k)
                for k in annotated.resources_of(node_id)
            ]
            memo[key] = keys
        out[node_id] = keys
    return out


def emit_certificate(compiled) -> Certificate:
    """The certificate of one :class:`CompiledLoop`."""
    return certificate_for(
        compiled.ddg,
        compiled.machine,
        compiled.annotated,
        compiled.schedule,
        compiled.mii,
    )


def certificate_for(
    ddg: Ddg,
    machine,
    annotated: AnnotatedDdg,
    schedule: Schedule,
    mii: int,
) -> Certificate:
    """Build the certificate from the pipeline artifacts directly."""
    memo = _memo_for(machine)
    unified = memo.get("unified")
    if unified is None:
        unified = machine.unified_equivalent()
        memo["unified"] = unified
    res_keys = _resource_strings(annotated)
    capacities = _capacity_strings(machine)
    return Certificate(
        loop=ddg.name or "loop",
        machine=machine.name or "machine",
        ii=schedule.ii,
        mii=mii,
        recmii=_recmii_witness(ddg),
        resmii=_resmii_witness(ddg, unified),
        sched_recmii=_recmii_witness(annotated.ddg),
        sched_resources=_sched_resources_witness(res_keys, capacities),
        graph=_graph_witness(annotated.ddg),
        assignment=_assignment_witness(annotated, res_keys),
        schedule=_schedule_witness(annotated, schedule, res_keys,
                                   capacities),
        regalloc=_regalloc_witness(schedule),
    )


# ----------------------------------------------------------------------
# Recurrence witnesses
# ----------------------------------------------------------------------
def _recmii_witness(ddg: Ddg) -> RecMiiWitness:
    value = rec_mii(ddg)
    if value == 0:
        return RecMiiWitness(value=0)
    edges: List[EdgeSpec] = [
        (edge.src, edge.dst, ddg.node(edge.src).latency, edge.distance)
        for edge in ddg.edges
    ]
    cycle = _critical_cycle(ddg.node_ids, edges, value)
    if cycle is None:  # pragma: no cover - rec_mii guarantees a cycle
        raise RuntimeError(
            f"rec_mii={value} but no critical cycle found in {ddg.name!r}"
        )
    return RecMiiWitness(value=value, cycle=cycle)


def _critical_cycle(
    nodes: List[int], edges: List[EdgeSpec], value: int
) -> Optional[Tuple[EdgeSpec, ...]]:
    """A cycle attaining ``ceil(latency / distance) == value``.

    At ``II = value - 1`` the critical recurrence has strictly positive
    weight, so Bellman–Ford longest-path relaxation keeps improving some
    node after ``len(nodes)`` passes; walking the parent-edge chain
    ``len(nodes)`` steps back from that node must land inside the
    positive cycle, which the final walk extracts.  Because
    ``rec_mii == value`` bounds every cycle's ratio from above, the
    extracted cycle's ratio is exactly ``value``.
    """
    ii = value - 1
    dist = {node: 0 for node in nodes}
    parent: Dict[int, EdgeSpec] = {}
    improved: Optional[int] = None
    for _ in range(len(nodes)):
        improved = None
        for spec in edges:
            src, dst, latency, distance = spec
            candidate = dist[src] + latency - ii * distance
            if candidate > dist[dst]:
                dist[dst] = candidate
                parent[dst] = spec
                improved = dst
    if improved is None:
        return None
    # Follow parent edges until a node repeats; the repeated suffix is
    # the positive cycle (a node still improving after n passes always
    # has one upstream of it).
    visited: Dict[int, int] = {}
    path: List[int] = []
    node = improved
    while node not in visited:
        if node not in parent:  # pragma: no cover - theory says no
            return None
        visited[node] = len(path)
        path.append(node)
        node = parent[node][0]
    cycle = [parent[member] for member in path[visited[node]:]]
    cycle.reverse()
    return tuple(cycle)


# ----------------------------------------------------------------------
# Resource witnesses
# ----------------------------------------------------------------------
def _resmii_witness(ddg: Ddg, unified) -> ResMiiWitness:
    real_ops = [node for node in ddg.nodes if not node.is_copy]
    demand: List[Tuple[str, int, int]] = []
    if real_ops:
        if unified.general_purpose:
            demand.append(
                (
                    "gp",
                    len(real_ops),
                    unified.issue_capacity(real_ops[0].fu_class),
                )
            )
        else:
            per_class: Dict[object, int] = {}
            for node in real_ops:
                per_class[node.fu_class] = per_class.get(node.fu_class, 0) + 1
            demand.extend(
                (fu_class.value, uses, unified.issue_capacity(fu_class))
                for fu_class, uses in sorted(
                    per_class.items(), key=lambda item: item[0].value
                )
            )
    # ResMII is exactly the counting bound the demand table encodes
    # (``max(ceil(uses / capacity))``, floor 1) — deriving the value
    # from the table keeps claim and evidence consistent by
    # construction and skips a second pass over the graph.
    value = max(
        [_ceil_div(uses, cap) for _, uses, cap in demand if cap > 0]
        or [1]
    )
    return ResMiiWitness(value=max(value, 1), demand=tuple(demand))


def _sched_resources_witness(
    res_keys: Dict[int, List[str]], capacities: Dict[str, int]
) -> ResMiiWitness:
    uses: Dict[str, int] = {}
    for names in res_keys.values():
        for name in names:
            uses[name] = uses.get(name, 0) + 1
    demand = tuple(
        (name, count, capacities[name])
        for name, count in sorted(uses.items())
    )
    value = max(
        [-(-count // capacity) for _, count, capacity in demand if capacity]
        or [1]
    )
    return ResMiiWitness(value=max(value, 1), demand=demand)


# ----------------------------------------------------------------------
# Graph + assignment witnesses
# ----------------------------------------------------------------------
def _graph_witness(graph: Ddg) -> GraphWitness:
    return GraphWitness(
        nodes=tuple(
            (node.node_id, node.opcode.value, node.latency)
            for node in graph.nodes
        ),
        edges=tuple(
            (edge.src, edge.dst, edge.distance) for edge in graph.edges
        ),
    )


def _assignment_witness(
    annotated: AnnotatedDdg, res_keys: Dict[int, List[str]]
) -> AssignmentWitness:
    copies = tuple(
        CopyWitness(
            copy_id=copy_id,
            value_of=annotated.copy_value_of[copy_id],
            src_cluster=annotated.cluster_of[copy_id],
            targets=tuple(annotated.copy_targets[copy_id]),
            resources=tuple(res_keys[copy_id]),
        )
        for copy_id in annotated.copy_nodes
    )
    return AssignmentWitness(
        cluster_of=tuple(sorted(annotated.cluster_of.items())),
        copies=copies,
        routes=_routes(annotated),
    )


def _routes(annotated: AnnotatedDdg) -> Tuple[RouteWitness, ...]:
    """One route per (producer, consumer) flow a copy chain carries.

    Each copy has exactly one feed edge (:func:`build_annotated`
    invariant), so walking feeds backwards from the carrier recovers the
    hop chain producer-side first.
    """
    graph = annotated.ddg
    routes: List[RouteWitness] = []
    seen = set()
    for edge in graph.edges:
        carrier = edge.src
        if not graph.node(carrier).is_copy or graph.node(edge.dst).is_copy:
            continue
        producer = annotated.copy_value_of[carrier]
        key = (producer, edge.dst)
        if key in seen:
            continue
        seen.add(key)
        chain = [carrier]
        node = carrier
        while True:
            feed = graph.in_edges(node)[0].src
            if not graph.node(feed).is_copy:
                break
            chain.append(feed)
            node = feed
        chain.reverse()
        routes.append(
            RouteWitness(
                producer=producer,
                consumer=edge.dst,
                producer_cluster=annotated.cluster_of[producer],
                consumer_cluster=annotated.cluster_of[edge.dst],
                chain=tuple(chain),
            )
        )
    return tuple(routes)


# ----------------------------------------------------------------------
# Schedule + regalloc witnesses
# ----------------------------------------------------------------------
def _schedule_witness(
    annotated: AnnotatedDdg,
    schedule: Schedule,
    res_keys: Dict[int, List[str]],
    capacities: Dict[str, int],
) -> ScheduleWitness:
    graph = annotated.ddg
    ii = schedule.ii
    start = schedule.start
    latency = {node.node_id: node.latency for node in graph.nodes}
    slack = tuple(
        start[edge.dst]
        + ii * edge.distance
        - start[edge.src]
        - latency[edge.src]
        for edge in graph.edges
    )
    occupancy: Dict[Tuple[str, int], List[int]] = {}
    for node_id, names in res_keys.items():
        row = start[node_id] % ii
        for name in names:
            occupancy.setdefault((name, row), []).append(node_id)
    slots = tuple(
        SlotWitness(
            resource=resource,
            row=row,
            ops=tuple(sorted(ops)),
            capacity=capacities[resource],
        )
        for (resource, row), ops in sorted(occupancy.items())
    )
    return ScheduleWitness(
        ii=ii,
        start=tuple(sorted(start.items())),
        edge_slack=slack,
        slots=slots,
    )


def _regalloc_witness(schedule: Schedule) -> RegallocWitness:
    lifetimes = extract_lifetimes(schedule)
    allocation = allocate_mve(schedule, lifetimes)
    return RegallocWitness(
        unroll=allocation.unroll,
        lifetimes=tuple(sorted(map(tuple, lifetimes))),
        assignments=tuple(sorted(map(tuple, allocation.assignments))),
        registers_per_cluster=tuple(
            sorted(allocation.registers_per_cluster.items())
        ),
    )
