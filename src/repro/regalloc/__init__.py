"""Register allocation for software-pipelined loops (MVE packing)."""

from .lifetimes import Lifetime, extract_lifetimes
from .mve import (
    MveAllocation,
    RegisterAssignment,
    allocate_mve,
    verify_allocation,
)
from .rotating import (
    RotatingAllocation,
    RotatingAssignment,
    allocate_rotating,
    verify_rotating,
)

__all__ = [
    "Lifetime",
    "MveAllocation",
    "RegisterAssignment",
    "RotatingAllocation",
    "RotatingAssignment",
    "allocate_mve",
    "allocate_rotating",
    "extract_lifetimes",
    "verify_allocation",
    "verify_rotating",
]
