"""Value lifetimes of a modulo schedule.

A value is born when its producer completes and dies at its last read
(``II × distance`` later for loop-carried reads).  Because the kernel
repeats every II cycles, a lifetime is a *cyclic* interval once the
schedule reaches steady state; register allocation for software
pipelines is therefore cyclic-interval packing (Rau et al., PLDI'92 —
the paper's reference [21]).
"""

from __future__ import annotations

from typing import List, NamedTuple

from ..scheduling.schedule import Schedule


class Lifetime(NamedTuple):
    """One value's live range in absolute cycles of iteration 0.

    A ``NamedTuple`` rather than a dataclass: the lint gate re-extracts
    lifetimes for every compiled loop, and tuple construction is the
    bulk of that cost.
    """

    producer: int
    cluster: int
    birth: int
    death: int

    @property
    def length(self) -> int:
        """Cycles the value stays live (0 = consumed as produced)."""
        return max(0, self.death - self.birth)

    def instances(self, ii: int) -> int:
        """Simultaneously-live copies of this value in steady state."""
        return max(1, -(-self.length // ii))


def extract_lifetimes(schedule: Schedule) -> List[Lifetime]:
    """Lifetimes of every value the loop produces and consumes.

    Copies count as producers too: the transported value occupies a
    register in each *target* cluster's file from the copy's completion
    to its last read there — exactly the per-cluster storage the
    clustered hardware provides.  Values with no consumers need no
    register and are omitted.
    """
    annotated = schedule.annotated
    ddg = annotated.ddg
    ii = schedule.ii
    start = schedule.start
    cluster_of = annotated.cluster_of
    # One sweep over the edges: last read of each producer's value per
    # consuming cluster.  (The value dies at its last read *on this
    # cluster* — a broadcast copy's value may retire earlier on one
    # target than another.)
    last_read: dict = {}
    for edge in ddg.edges:
        death = start[edge.dst] + ii * edge.distance
        key = (edge.src, cluster_of[edge.dst])
        prior = last_read.get(key)
        if prior is None or death > prior:
            last_read[key] = death
    lifetimes: List[Lifetime] = []
    for node in ddg.nodes:
        if not node.produces_value:
            continue
        birth = start[node.node_id] + node.latency
        if node.is_copy:
            clusters = annotated.copy_targets[node.node_id]
        else:
            clusters = (cluster_of[node.node_id],)
        for cluster in clusters:
            death = last_read.get((node.node_id, cluster))
            if death is None:
                continue
            lifetimes.append(
                Lifetime(node.node_id, cluster, birth, death)
            )
    return lifetimes
