"""Value lifetimes of a modulo schedule.

A value is born when its producer completes and dies at its last read
(``II × distance`` later for loop-carried reads).  Because the kernel
repeats every II cycles, a lifetime is a *cyclic* interval once the
schedule reaches steady state; register allocation for software
pipelines is therefore cyclic-interval packing (Rau et al., PLDI'92 —
the paper's reference [21]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..scheduling.schedule import Schedule


@dataclass(frozen=True)
class Lifetime:
    """One value's live range in absolute cycles of iteration 0."""

    producer: int
    cluster: int
    birth: int
    death: int

    @property
    def length(self) -> int:
        """Cycles the value stays live (0 = consumed as produced)."""
        return max(0, self.death - self.birth)

    def instances(self, ii: int) -> int:
        """Simultaneously-live copies of this value in steady state."""
        return max(1, -(-self.length // ii))


def extract_lifetimes(schedule: Schedule) -> List[Lifetime]:
    """Lifetimes of every value the loop produces and consumes.

    Copies count as producers too: the transported value occupies a
    register in each *target* cluster's file from the copy's completion
    to its last read there — exactly the per-cluster storage the
    clustered hardware provides.  Values with no consumers need no
    register and are omitted.
    """
    annotated = schedule.annotated
    ddg = annotated.ddg
    ii = schedule.ii
    lifetimes: List[Lifetime] = []
    for node in ddg.nodes:
        if not node.produces_value:
            continue
        uses = ddg.out_edges(node.node_id)
        if not uses:
            continue
        birth = schedule.start[node.node_id] + node.latency
        if node.is_copy:
            clusters = list(annotated.copy_targets[node.node_id])
        else:
            clusters = [annotated.cluster_of[node.node_id]]
        for cluster in clusters:
            # The value dies at its last read *on this cluster* (a
            # broadcast copy's value may retire earlier on one target
            # than another).
            reads = [
                schedule.start[edge.dst] + ii * edge.distance
                for edge in uses
                if annotated.cluster_of[edge.dst] == cluster
            ]
            if not reads:
                continue
            lifetimes.append(
                Lifetime(
                    producer=node.node_id,
                    cluster=cluster,
                    birth=birth,
                    death=max(reads),
                )
            )
    return lifetimes
