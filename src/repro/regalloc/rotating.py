"""Rotating register file allocation (Rau et al., PLDI'92).

The Cydra 5 — the machine whose compiler produced the paper's input
loops — renamed software-pipeline values in hardware: a *rotating*
register file decrements its base every kernel iteration, so iteration
``i``'s instance of a value automatically lands in a different physical
register than iteration ``i+1``'s, with **no kernel unrolling at all**
(the alternative, modulo variable expansion, is in
:mod:`repro.regalloc.mve`).

Allocation model: unroll the (register × time) plane along the rotation
into a single circle of circumference ``R × II``, where ``R`` is the
rotating file's size.  A value born at cycle ``b`` with lifetime ``L``
and allocated rotating index ``s`` occupies the arc
``[b + s*II, b + s*II + L)`` (mod ``R*II``); two values conflict exactly
when their arcs overlap.  Allocation is therefore circular-arc packing:
we search the smallest ``R`` for which first-fit-decreasing placement
succeeds, per cluster.  An independent verifier re-checks arc
disjointness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..scheduling.schedule import Schedule
from .lifetimes import Lifetime, extract_lifetimes


@dataclass(frozen=True)
class RotatingAssignment:
    """One value mapped to a rotating register index."""

    producer: int
    cluster: int
    rotating_index: int
    arc_start: int
    length: int


@dataclass
class RotatingAllocation:
    """Complete rotating-file allocation of one schedule."""

    ii: int
    assignments: List[RotatingAssignment] = field(default_factory=list)
    file_size_per_cluster: Dict[int, int] = field(default_factory=dict)

    def file_size(self, cluster: int) -> int:
        """Rotating registers the allocation uses on one cluster."""
        return self.file_size_per_cluster.get(cluster, 0)

    @property
    def total_registers(self) -> int:
        """Rotating registers across all clusters."""
        return sum(self.file_size_per_cluster.values())


def _arc_cycles(start: int, length: int, circumference: int) -> List[int]:
    """Circle positions an arc occupies (length clamped to the circle)."""
    length = max(1, length)
    return [
        (start + offset) % circumference
        for offset in range(min(length, circumference))
    ]


def _try_pack(
    lifetimes: List[Lifetime], ii: int, file_size: int
) -> Optional[List[RotatingAssignment]]:
    """First-fit-decreasing arc packing at one candidate file size."""
    circumference = file_size * ii
    occupied = [False] * circumference
    assignments: List[RotatingAssignment] = []
    for lifetime in lifetimes:
        if lifetime.length >= circumference:
            return None  # arc would lap itself: file too small
        placed = False
        for index in range(file_size):
            start = (lifetime.birth + index * ii) % circumference
            cycles = _arc_cycles(start, lifetime.length, circumference)
            if all(not occupied[c] for c in cycles):
                for c in cycles:
                    occupied[c] = True
                assignments.append(
                    RotatingAssignment(
                        producer=lifetime.producer,
                        cluster=lifetime.cluster,
                        rotating_index=index,
                        arc_start=start,
                        length=lifetime.length,
                    )
                )
                placed = True
                break
        if not placed:
            return None
    return assignments


def allocate_rotating(
    schedule: Schedule, max_file_size: int = 512
) -> RotatingAllocation:
    """Allocate rotating registers for ``schedule`` per cluster."""
    ii = schedule.ii
    allocation = RotatingAllocation(ii=ii)
    by_cluster: Dict[int, List[Lifetime]] = {}
    for lifetime in extract_lifetimes(schedule):
        by_cluster.setdefault(lifetime.cluster, []).append(lifetime)
    for cluster, lifetimes in sorted(by_cluster.items()):
        lifetimes.sort(key=lambda lt: (-lt.length, lt.producer))
        # Lower bound: total occupied cycles cannot exceed R * II.
        total = sum(max(1, lt.length) for lt in lifetimes)
        lower = max(1, -(-total // ii))
        chosen = None
        for file_size in range(lower, max_file_size + 1):
            assignments = _try_pack(lifetimes, ii, file_size)
            if assignments is not None:
                chosen = (file_size, assignments)
                break
        if chosen is None:
            raise RuntimeError(
                f"rotating allocation exceeded {max_file_size} registers "
                f"on cluster {cluster}"
            )
        file_size, assignments = chosen
        allocation.file_size_per_cluster[cluster] = file_size
        allocation.assignments.extend(assignments)
    return allocation


def verify_rotating(allocation: RotatingAllocation) -> List[str]:
    """Independent arc-disjointness check (empty list = valid)."""
    problems: List[str] = []
    by_cluster: Dict[int, List[RotatingAssignment]] = {}
    for assignment in allocation.assignments:
        by_cluster.setdefault(assignment.cluster, []).append(assignment)
    for cluster, assignments in by_cluster.items():
        circumference = allocation.file_size(cluster) * allocation.ii
        owner: Dict[int, RotatingAssignment] = {}
        for assignment in assignments:
            for cycle in _arc_cycles(
                assignment.arc_start, assignment.length, circumference
            ):
                other = owner.get(cycle)
                if other is not None:
                    problems.append(
                        f"C{cluster} circle cycle {cycle}: value "
                        f"{assignment.producer} collides with "
                        f"{other.producer}"
                    )
                owner[cycle] = assignment
    return problems
