"""Register allocation via modulo variable expansion (MVE).

Without rotating register files, a value whose lifetime exceeds II would
be clobbered by the next iteration's instance.  MVE (Rau et al.,
PLDI'92 — the paper's reference [21]) unrolls the kernel ``k`` times,
where ``k`` is the maximum number of simultaneously live instances of
any value, and renames: instance ``j`` of a value gets its own register.

Allocation is then *cyclic-interval packing* over the unrolled span of
``k × II`` cycles: every lifetime contributes ``k`` intervals (one per
unroll instance, shifted by II each), and a first-fit scan packs them
into the fewest registers per cluster.  The result is checked by an
independent overlap verifier and reported next to the MaxLive lower
bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..scheduling.schedule import Schedule
from .lifetimes import Lifetime, extract_lifetimes


@dataclass(frozen=True)
class RegisterAssignment:
    """One unroll instance of one value mapped to a physical register."""

    producer: int
    cluster: int
    instance: int
    register: int
    start_cycle: int
    length: int


@dataclass
class MveAllocation:
    """Complete MVE register allocation of one schedule."""

    ii: int
    unroll: int
    assignments: List[RegisterAssignment] = field(default_factory=list)
    registers_per_cluster: Dict[int, int] = field(default_factory=dict)

    @property
    def span(self) -> int:
        """Cycles of the unrolled kernel."""
        return self.unroll * self.ii

    def registers(self, cluster: int) -> int:
        """Physical registers the allocation uses on one cluster."""
        return self.registers_per_cluster.get(cluster, 0)

    @property
    def total_registers(self) -> int:
        """Registers across all clusters."""
        return sum(self.registers_per_cluster.values())


def _occupied_cycles(start: int, length: int, span: int) -> List[int]:
    """Cycles (mod span) a lifetime instance occupies.

    Zero-length lifetimes (value read the cycle it appears) still hold a
    register for that single cycle.
    """
    length = max(1, length)
    return [(start + offset) % span for offset in range(min(length, span))]


def allocate_mve(schedule: Schedule) -> MveAllocation:
    """Allocate registers for ``schedule`` by MVE + first-fit packing."""
    ii = schedule.ii
    lifetimes = extract_lifetimes(schedule)
    unroll = max((lt.instances(ii) for lt in lifetimes), default=1)
    span = unroll * ii
    allocation = MveAllocation(ii=ii, unroll=unroll)

    by_cluster: Dict[int, List[Lifetime]] = {}
    for lifetime in lifetimes:
        by_cluster.setdefault(lifetime.cluster, []).append(lifetime)

    for cluster, cluster_lifetimes in sorted(by_cluster.items()):
        # Longest lifetimes first: classic first-fit-decreasing.
        cluster_lifetimes.sort(key=lambda lt: (-lt.length, lt.producer))
        register_busy: List[List[bool]] = []
        for lifetime in cluster_lifetimes:
            for instance in range(unroll):
                start = lifetime.birth + instance * ii
                cycles = _occupied_cycles(start, lifetime.length, span)
                chosen = None
                for register, busy in enumerate(register_busy):
                    if all(not busy[c] for c in cycles):
                        chosen = register
                        break
                if chosen is None:
                    register_busy.append([False] * span)
                    chosen = len(register_busy) - 1
                for c in cycles:
                    register_busy[chosen][c] = True
                allocation.assignments.append(
                    RegisterAssignment(
                        producer=lifetime.producer,
                        cluster=cluster,
                        instance=instance,
                        register=chosen,
                        start_cycle=start % span,
                        length=lifetime.length,
                    )
                )
        allocation.registers_per_cluster[cluster] = len(register_busy)
    return allocation


def verify_allocation(allocation: MveAllocation) -> List[str]:
    """Independent overlap check; returns violations (empty = valid)."""
    problems: List[str] = []
    span = allocation.span
    occupancy: Dict[Tuple[int, int, int], RegisterAssignment] = {}
    for assignment in allocation.assignments:
        for cycle in _occupied_cycles(
            assignment.start_cycle, assignment.length, span
        ):
            key = (assignment.cluster, assignment.register, cycle)
            other = occupancy.get(key)
            if other is not None and (
                other.producer != assignment.producer
                or other.instance != assignment.instance
            ):
                problems.append(
                    f"C{assignment.cluster} r{assignment.register} cycle "
                    f"{cycle}: value {assignment.producer}.{assignment.instance}"
                    f" collides with {other.producer}.{other.instance}"
                )
            occupancy[key] = assignment
    for assignment in allocation.assignments:
        if assignment.register >= allocation.registers(assignment.cluster):
            problems.append(
                f"assignment uses register {assignment.register} beyond "
                f"cluster C{assignment.cluster}'s file"
            )
    return problems
