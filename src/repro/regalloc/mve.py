"""Register allocation via modulo variable expansion (MVE).

Without rotating register files, a value whose lifetime exceeds II would
be clobbered by the next iteration's instance.  MVE (Rau et al.,
PLDI'92 — the paper's reference [21]) unrolls the kernel ``k`` times,
where ``k`` is the maximum number of simultaneously live instances of
any value, and renames: instance ``j`` of a value gets its own register.

Allocation is then *cyclic-interval packing* over the unrolled span of
``k × II`` cycles: every lifetime contributes ``k`` intervals (one per
unroll instance, shifted by II each), and a first-fit scan packs them
into the fewest registers per cluster.  The result is checked by an
independent overlap verifier and reported next to the MaxLive lower
bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, NamedTuple, Optional, Tuple

from ..scheduling.schedule import Schedule
from .lifetimes import Lifetime, extract_lifetimes


class RegisterAssignment(NamedTuple):
    """One unroll instance of one value mapped to a physical register.

    A ``NamedTuple``: allocations are rebuilt per compiled loop on the
    lint gate's hot path, and one assignment exists per unroll instance
    per lifetime.
    """

    producer: int
    cluster: int
    instance: int
    register: int
    start_cycle: int
    length: int


@dataclass
class MveAllocation:
    """Complete MVE register allocation of one schedule."""

    ii: int
    unroll: int
    assignments: List[RegisterAssignment] = field(default_factory=list)
    registers_per_cluster: Dict[int, int] = field(default_factory=dict)

    @property
    def span(self) -> int:
        """Cycles of the unrolled kernel."""
        return self.unroll * self.ii

    def registers(self, cluster: int) -> int:
        """Physical registers the allocation uses on one cluster."""
        return self.registers_per_cluster.get(cluster, 0)

    @property
    def total_registers(self) -> int:
        """Registers across all clusters."""
        return sum(self.registers_per_cluster.values())


def _occupied_cycles(start: int, length: int, span: int) -> List[int]:
    """Cycles (mod span) a lifetime instance occupies.

    Zero-length lifetimes (value read the cycle it appears) still hold a
    register for that single cycle.
    """
    length = max(1, length)
    return [(start + offset) % span for offset in range(min(length, span))]


def _occupied_mask(start: int, length: int, span: int) -> int:
    """Bitmask form of :func:`_occupied_cycles` (bit c = cycle c busy).

    A full-span lifetime wraps onto every cycle, so the mask saturates
    at ``span`` set bits.  Built as one contiguous bit block shifted to
    ``start mod span``; since ``length <= span`` the block wraps around
    the kernel end at most once, so folding the overflow back with a
    single shift is exact.
    """
    length = max(1, min(length, span))
    block = ((1 << length) - 1) << (start % span)
    return (block >> span) | (block & ((1 << span) - 1))


def allocate_mve(
    schedule: Schedule, lifetimes: Optional[List[Lifetime]] = None
) -> MveAllocation:
    """Allocate registers for ``schedule`` by MVE + first-fit packing.

    ``lifetimes`` lets a caller that already extracted the schedule's
    lifetimes (the REG5xx lint rules do) skip the second extraction.
    """
    ii = schedule.ii
    if lifetimes is None:
        lifetimes = extract_lifetimes(schedule)
    unroll = 1
    for lifetime in lifetimes:
        instances = -(-(lifetime.death - lifetime.birth) // ii)
        if instances > unroll:
            unroll = instances
    span = unroll * ii
    allocation = MveAllocation(ii=ii, unroll=unroll)

    by_cluster: Dict[int, List[Lifetime]] = {}
    for lifetime in lifetimes:
        by_cluster.setdefault(lifetime.cluster, []).append(lifetime)

    for cluster, cluster_lifetimes in sorted(by_cluster.items()):
        # Longest lifetimes first: classic first-fit-decreasing.  Each
        # register's occupancy is one int bitmask over the span, so the
        # fit probe is a single AND instead of a per-cycle scan.
        cluster_lifetimes.sort(key=lambda lt: (-lt.length, lt.producer))
        register_busy: List[int] = []
        emit = allocation.assignments.append
        full = (1 << span) - 1
        for lifetime in cluster_lifetimes:
            length = lifetime.death - lifetime.birth
            if length < 0:
                length = 0
            # _occupied_mask inlined: the bit block is built once per
            # lifetime, and each unroll instance shifts the start row
            # by II (mod span) rather than recomputing it.
            block_bits = (1 << max(1, min(length, span))) - 1
            row = lifetime.birth % span
            for instance in range(unroll):
                block = block_bits << row
                mask = (block >> span) | (block & full)
                chosen = None
                for register, busy in enumerate(register_busy):
                    if not busy & mask:
                        chosen = register
                        break
                if chosen is None:
                    register_busy.append(0)
                    chosen = len(register_busy) - 1
                register_busy[chosen] |= mask
                emit(
                    RegisterAssignment(
                        lifetime.producer, cluster, instance,
                        chosen, row, length,
                    )
                )
                row += ii
                if row >= span:
                    row -= span
        allocation.registers_per_cluster[cluster] = len(register_busy)
    return allocation


def verify_allocation(allocation: MveAllocation) -> List[str]:
    """Independent overlap check; returns violations (empty = valid).

    The clean path is a bitmask sweep per (cluster, register); only
    when some mask collides (or a register escapes its file) does the
    slow cycle-by-cycle walk run to name the offending value pairs.
    """
    span = allocation.span
    masks: Dict[Tuple[int, int], int] = {}
    file_sizes = allocation.registers_per_cluster
    full = (1 << span) - 1
    clean = True
    for _, cluster, _, register, start_cycle, length in (
        allocation.assignments
    ):
        key = (cluster, register)
        block = ((1 << max(1, min(length, span))) - 1) << (
            start_cycle % span
        )
        mask = (block >> span) | (block & full)
        busy = masks.get(key, 0)
        if busy & mask or register >= file_sizes.get(cluster, 0):
            clean = False
            break
        masks[key] = busy | mask
    if clean:
        return []
    problems: List[str] = []
    occupancy: Dict[Tuple[int, int, int], RegisterAssignment] = {}
    for assignment in allocation.assignments:
        for cycle in _occupied_cycles(
            assignment.start_cycle, assignment.length, span
        ):
            key = (assignment.cluster, assignment.register, cycle)
            other = occupancy.get(key)
            if other is not None and (
                other.producer != assignment.producer
                or other.instance != assignment.instance
            ):
                problems.append(
                    f"C{assignment.cluster} r{assignment.register} cycle "
                    f"{cycle}: value {assignment.producer}.{assignment.instance}"
                    f" collides with {other.producer}.{other.instance}"
                )
            occupancy[key] = assignment
    for assignment in allocation.assignments:
        if assignment.register >= allocation.registers(assignment.cluster):
            problems.append(
                f"assignment uses register {assignment.register} beyond "
                f"cluster C{assignment.cluster}'s file"
            )
    return problems
