"""Saving and loading loop corpora as plain text.

A corpus file stores any number of loops in the
:mod:`repro.ddg.parse` textual format, separated by headers::

    == lk5_tridiag ==
    ld_y: load
    ...

    == synth0001 ==
    ...

This makes the evaluation suite shareable as data: researchers can
regenerate exactly the loops behind EXPERIMENTS.md (``save_corpus`` of
``paper_suite(1327)``), hand-edit cases, or import loops from another
tool without touching Python.
"""

from __future__ import annotations

import os
import re
from typing import List

from ..ddg.graph import Ddg
from ..ddg.parse import format_loop, parse_loop

_HEADER = re.compile(r"^==\s*(?P<name>.+?)\s*==\s*$")


def dumps_corpus(loops: List[Ddg]) -> str:
    """Serialize loops to the corpus text format.

    Loop names must be unique and non-empty.
    """
    names = [loop.name for loop in loops]
    if any(not name for name in names):
        raise ValueError("every loop in a corpus needs a name")
    if len(set(names)) != len(names):
        raise ValueError("loop names in a corpus must be unique")
    chunks = []
    for loop in loops:
        chunks.append(f"== {loop.name} ==\n{format_loop(loop)}")
    return "\n".join(chunks)


def loads_corpus(text: str) -> List[Ddg]:
    """Parse a corpus back into loops (inverse of :func:`dumps_corpus`)."""
    loops: List[Ddg] = []
    name: str = ""
    body: List[str] = []
    seen = set()

    def flush() -> None:
        if not name:
            return
        if name in seen:
            raise ValueError(f"duplicate loop name {name!r} in corpus")
        seen.add(name)
        loops.append(parse_loop("\n".join(body), name=name))

    for line in text.splitlines():
        match = _HEADER.match(line)
        if match:
            flush()
            name = match.group("name")
            body = []
        else:
            body.append(line)
    flush()
    return loops


def save_corpus(loops: List[Ddg], path: str) -> None:
    """Write a corpus file."""
    with open(path, "w") as handle:
        handle.write(dumps_corpus(loops))


def load_corpus(path: str) -> List[Ddg]:
    """Read a corpus file."""
    with open(path) as handle:
        return loads_corpus(handle.read())


def bundled_corpus_path() -> str:
    """Path of the corpus file shipped inside the package.

    A frozen snapshot of ``paper_suite(64)`` (every hand-written kernel
    plus deterministic synthetic fill) — the fixed input set the
    ``repro lint`` CI gate and quick local runs analyze.
    """
    return os.path.join(
        os.path.dirname(__file__), "data", "bundled_corpus.txt"
    )


def bundled_corpus() -> List[Ddg]:
    """Load the corpus bundled with the package."""
    return load_corpus(bundled_corpus_path())
