"""Loop workloads: synthetic suite, hand-written kernels, statistics."""

from .corpus import (
    bundled_corpus,
    bundled_corpus_path,
    dumps_corpus,
    load_corpus,
    loads_corpus,
    save_corpus,
)
from .fingerprint import (
    compile_fingerprint,
    config_fingerprint,
    ddg_fingerprint,
    machine_fingerprint,
)
from .kernels import all_kernels, build_kernel, kernel_names
from .stats import StatRow, SuiteStatistics, suite_statistics
from .suite import DEFAULT_SEED, PAPER_SUITE_SIZE, paper_suite
from .synthetic import GeneratorProfile, generate_loop, generate_suite
from .unroll import unroll_ddg

__all__ = [
    "DEFAULT_SEED",
    "GeneratorProfile",
    "PAPER_SUITE_SIZE",
    "StatRow",
    "SuiteStatistics",
    "all_kernels",
    "build_kernel",
    "bundled_corpus",
    "bundled_corpus_path",
    "compile_fingerprint",
    "config_fingerprint",
    "ddg_fingerprint",
    "dumps_corpus",
    "generate_loop",
    "generate_suite",
    "kernel_names",
    "load_corpus",
    "loads_corpus",
    "machine_fingerprint",
    "paper_suite",
    "save_corpus",
    "suite_statistics",
    "unroll_ddg",
]
