"""Hand-written loop kernels modelled on the Livermore FORTRAN Kernels.

Each function returns the DDG a Cydra-style compiler would see for the
kernel's innermost loop after load-store elimination, back-substitution
and IF-conversion: loads for the streamed arrays, the arithmetic dataflow,
stores for the results, an induction/branch pair, and loop-carried edges
for true recurrences (first-order linear recurrences appear exactly as in
the source since back-substitution only removes the false ones).

These kernels serve three purposes: realistic fixtures for tests and
examples, seeds of the full evaluation suite, and documented ground truth
for RecMII (each builder's docstring states the critical recurrence).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from ..ddg.graph import Ddg, build_ddg
from ..ddg.opcodes import Opcode

KernelBuilder = Callable[[], Ddg]

_REGISTRY: "Dict[str, KernelBuilder]" = {}


def _kernel(func: KernelBuilder) -> KernelBuilder:
    """Register a kernel builder under its function name."""
    _REGISTRY[func.__name__] = func
    return func


def kernel_names() -> List[str]:
    """All registered kernel names, in registration order."""
    return list(_REGISTRY)


def build_kernel(name: str) -> Ddg:
    """Build one kernel DDG by name."""
    return _REGISTRY[name]()


def all_kernels() -> List[Ddg]:
    """Build every registered kernel."""
    return [builder() for builder in _REGISTRY.values()]


def _loop_overhead() -> Tuple[List, List]:
    """Induction-variable update + loop branch shared by most kernels.

    The induction ALU forms a trivial distance-1 self-recurrence
    (i = i + 1), RecMII contribution 1.
    """
    ops = [("i_upd", Opcode.ALU), ("br", Opcode.BRANCH)]
    deps = [("i_upd", "i_upd", 1), ("i_upd", "br", 0)]
    return ops, deps


@_kernel
def lk1_hydro() -> Ddg:
    """LFK 1, hydro fragment: ``x[k] = q + y[k]*(r*z[k+10] + t*z[k+11])``.

    Pure streaming — no recurrence beyond the induction variable.
    """
    ops, deps = _loop_overhead()
    ops += [
        ("ld_y", Opcode.LOAD), ("ld_z10", Opcode.LOAD),
        ("ld_z11", Opcode.LOAD),
        ("m_rz", Opcode.FP_MULT), ("m_tz", Opcode.FP_MULT),
        ("a_in", Opcode.FP_ADD), ("m_y", Opcode.FP_MULT),
        ("a_q", Opcode.FP_ADD), ("st_x", Opcode.STORE),
    ]
    deps += [
        ("ld_z10", "m_rz", 0), ("ld_z11", "m_tz", 0),
        ("m_rz", "a_in", 0), ("m_tz", "a_in", 0),
        ("a_in", "m_y", 0), ("ld_y", "m_y", 0),
        ("m_y", "a_q", 0), ("a_q", "st_x", 0),
        ("i_upd", "ld_y", 0),
    ]
    return build_ddg(ops, deps, name="lk1_hydro")


@_kernel
def lk2_iccg() -> Ddg:
    """LFK 2, ICCG excerpt: ``x[i] = x[i] - z[i]*x[i+1]`` style update.

    Streaming with two loads and a multiply-subtract chain.
    """
    ops, deps = _loop_overhead()
    ops += [
        ("ld_x", Opcode.LOAD), ("ld_z", Opcode.LOAD),
        ("ld_x1", Opcode.LOAD),
        ("mul", Opcode.FP_MULT), ("sub", Opcode.FP_ADD),
        ("st_x", Opcode.STORE),
    ]
    deps += [
        ("ld_z", "mul", 0), ("ld_x1", "mul", 0),
        ("ld_x", "sub", 0), ("mul", "sub", 0),
        ("sub", "st_x", 0), ("i_upd", "ld_x", 0),
    ]
    return build_ddg(ops, deps, name="lk2_iccg")


@_kernel
def lk3_inner_product() -> Ddg:
    """LFK 3: ``q += z[k]*x[k]``.

    Critical recurrence: the accumulator add (distance 1, latency 1),
    RecMII 1 — trivially pipelinable, but the accumulator value lives in a
    register that every iteration updates.
    """
    ops, deps = _loop_overhead()
    ops += [
        ("ld_z", Opcode.LOAD), ("ld_x", Opcode.LOAD),
        ("mul", Opcode.FP_MULT), ("acc", Opcode.FP_ADD),
    ]
    deps += [
        ("ld_z", "mul", 0), ("ld_x", "mul", 0),
        ("mul", "acc", 0), ("acc", "acc", 1),
    ]
    return build_ddg(ops, deps, name="lk3_inner_product")


@_kernel
def lk5_tridiag() -> Ddg:
    """LFK 5, tri-diagonal elimination: ``x[i] = z[i]*(y[i] - x[i-1])``.

    Critical recurrence: sub → mult → (next) sub over distance 1, so
    RecMII = latency(FP_ADD) + latency(FP_MULT) = 1 + 3 = 4.
    """
    ops, deps = _loop_overhead()
    ops += [
        ("ld_y", Opcode.LOAD), ("ld_z", Opcode.LOAD),
        ("sub", Opcode.FP_ADD), ("mul", Opcode.FP_MULT),
        ("st_x", Opcode.STORE),
    ]
    deps += [
        ("ld_y", "sub", 0), ("mul", "sub", 1),
        ("ld_z", "mul", 0), ("sub", "mul", 0),
        ("mul", "st_x", 0), ("i_upd", "ld_y", 0),
    ]
    return build_ddg(ops, deps, name="lk5_tridiag")


@_kernel
def lk6_linear_recurrence() -> Ddg:
    """LFK 6 inner step: ``w[i] += b[i,k] * w[i-k]`` general recurrence.

    The accumulate chain is loop-carried through an FP add and multiply.
    """
    ops, deps = _loop_overhead()
    ops += [
        ("ld_b", Opcode.LOAD), ("ld_w", Opcode.LOAD),
        ("mul", Opcode.FP_MULT), ("acc", Opcode.FP_ADD),
        ("st_w", Opcode.STORE),
    ]
    deps += [
        ("ld_b", "mul", 0), ("ld_w", "mul", 0),
        ("mul", "acc", 0), ("acc", "acc", 1),
        ("acc", "st_w", 0), ("i_upd", "ld_b", 0),
    ]
    return build_ddg(ops, deps, name="lk6_linear_recurrence")


@_kernel
def lk7_equation_of_state() -> Ddg:
    """LFK 7 (equation-of-state fragment): wide FP dataflow, no
    recurrence — the classic ILP stress test."""
    ops, deps = _loop_overhead()
    ops += [
        ("ld_u", Opcode.LOAD), ("ld_z", Opcode.LOAD), ("ld_y", Opcode.LOAD),
        ("m1", Opcode.FP_MULT), ("m2", Opcode.FP_MULT),
        ("m3", Opcode.FP_MULT), ("m4", Opcode.FP_MULT),
        ("a1", Opcode.FP_ADD), ("a2", Opcode.FP_ADD),
        ("a3", Opcode.FP_ADD), ("a4", Opcode.FP_ADD),
        ("st_x", Opcode.STORE),
    ]
    deps += [
        ("ld_u", "m1", 0), ("ld_z", "m1", 0),
        ("ld_y", "m2", 0), ("m1", "a1", 0), ("m2", "a1", 0),
        ("a1", "m3", 0), ("ld_u", "m3", 0),
        ("m3", "a2", 0), ("ld_y", "a2", 0),
        ("a2", "m4", 0), ("ld_z", "m4", 0),
        ("m4", "a3", 0), ("a1", "a3", 0),
        ("a3", "a4", 0), ("ld_u", "a4", 0),
        ("a4", "st_x", 0), ("i_upd", "ld_u", 0),
    ]
    return build_ddg(ops, deps, name="lk7_equation_of_state")


@_kernel
def lk11_first_sum() -> Ddg:
    """LFK 11, prefix sum: ``x[k] = x[k-1] + y[k]``.

    Critical recurrence: the FP add at distance 1, RecMII 1.
    """
    ops, deps = _loop_overhead()
    ops += [
        ("ld_y", Opcode.LOAD), ("acc", Opcode.FP_ADD),
        ("st_x", Opcode.STORE),
    ]
    deps += [
        ("ld_y", "acc", 0), ("acc", "acc", 1),
        ("acc", "st_x", 0), ("i_upd", "ld_y", 0),
    ]
    return build_ddg(ops, deps, name="lk11_first_sum")


@_kernel
def lk12_first_difference() -> Ddg:
    """LFK 12: ``x[k] = y[k+1] - y[k]`` — streaming, no recurrence."""
    ops, deps = _loop_overhead()
    ops += [
        ("ld_y0", Opcode.LOAD), ("ld_y1", Opcode.LOAD),
        ("sub", Opcode.FP_ADD), ("st_x", Opcode.STORE),
    ]
    deps += [
        ("ld_y0", "sub", 0), ("ld_y1", "sub", 0),
        ("sub", "st_x", 0), ("i_upd", "ld_y0", 0),
    ]
    return build_ddg(ops, deps, name="lk12_first_difference")


@_kernel
def daxpy() -> Ddg:
    """BLAS daxpy: ``y[i] = y[i] + a*x[i]`` — streaming."""
    ops, deps = _loop_overhead()
    ops += [
        ("ld_x", Opcode.LOAD), ("ld_y", Opcode.LOAD),
        ("mul", Opcode.FP_MULT), ("add", Opcode.FP_ADD),
        ("st_y", Opcode.STORE),
    ]
    deps += [
        ("ld_x", "mul", 0), ("ld_y", "add", 0),
        ("mul", "add", 0), ("add", "st_y", 0),
        ("i_upd", "ld_x", 0),
    ]
    return build_ddg(ops, deps, name="daxpy")


@_kernel
def dot_product_unrolled2() -> Ddg:
    """Dot product unrolled twice with two accumulators (a common
    Cydra-era transformation to relax the accumulate recurrence)."""
    ops, deps = _loop_overhead()
    ops += [
        ("ld_x0", Opcode.LOAD), ("ld_y0", Opcode.LOAD),
        ("ld_x1", Opcode.LOAD), ("ld_y1", Opcode.LOAD),
        ("m0", Opcode.FP_MULT), ("m1", Opcode.FP_MULT),
        ("acc0", Opcode.FP_ADD), ("acc1", Opcode.FP_ADD),
    ]
    deps += [
        ("ld_x0", "m0", 0), ("ld_y0", "m0", 0),
        ("ld_x1", "m1", 0), ("ld_y1", "m1", 0),
        ("m0", "acc0", 0), ("m1", "acc1", 0),
        ("acc0", "acc0", 1), ("acc1", "acc1", 1),
        ("i_upd", "ld_x0", 0),
    ]
    return build_ddg(ops, deps, name="dot_product_unrolled2")


@_kernel
def fir_filter_4tap() -> Ddg:
    """4-tap FIR filter: ``y[n] = sum(c[k]*x[n-k])`` — four multiplies
    feeding an add tree, streaming."""
    ops, deps = _loop_overhead()
    ops += [
        ("ld_x0", Opcode.LOAD), ("ld_x1", Opcode.LOAD),
        ("ld_x2", Opcode.LOAD), ("ld_x3", Opcode.LOAD),
        ("m0", Opcode.FP_MULT), ("m1", Opcode.FP_MULT),
        ("m2", Opcode.FP_MULT), ("m3", Opcode.FP_MULT),
        ("a01", Opcode.FP_ADD), ("a23", Opcode.FP_ADD),
        ("sum", Opcode.FP_ADD), ("st_y", Opcode.STORE),
    ]
    deps += [
        ("ld_x0", "m0", 0), ("ld_x1", "m1", 0),
        ("ld_x2", "m2", 0), ("ld_x3", "m3", 0),
        ("m0", "a01", 0), ("m1", "a01", 0),
        ("m2", "a23", 0), ("m3", "a23", 0),
        ("a01", "sum", 0), ("a23", "sum", 0),
        ("sum", "st_y", 0), ("i_upd", "ld_x0", 0),
    ]
    return build_ddg(ops, deps, name="fir_filter_4tap")


@_kernel
def horner_poly() -> Ddg:
    """Horner polynomial evaluation: ``p = p*x + c[i]``.

    Critical recurrence: multiply + add at distance 1, RecMII 4.
    """
    ops, deps = _loop_overhead()
    ops += [
        ("ld_c", Opcode.LOAD), ("mul", Opcode.FP_MULT),
        ("add", Opcode.FP_ADD),
    ]
    deps += [
        ("add", "mul", 1), ("mul", "add", 0),
        ("ld_c", "add", 0), ("i_upd", "ld_c", 0),
    ]
    return build_ddg(ops, deps, name="horner_poly")


@_kernel
def stencil_3pt() -> Ddg:
    """3-point stencil: ``b[i] = w0*a[i-1] + w1*a[i] + w2*a[i+1]``."""
    ops, deps = _loop_overhead()
    ops += [
        ("ld_a0", Opcode.LOAD), ("ld_a1", Opcode.LOAD),
        ("ld_a2", Opcode.LOAD),
        ("m0", Opcode.FP_MULT), ("m1", Opcode.FP_MULT),
        ("m2", Opcode.FP_MULT),
        ("a01", Opcode.FP_ADD), ("sum", Opcode.FP_ADD),
        ("st_b", Opcode.STORE),
    ]
    deps += [
        ("ld_a0", "m0", 0), ("ld_a1", "m1", 0), ("ld_a2", "m2", 0),
        ("m0", "a01", 0), ("m1", "a01", 0),
        ("a01", "sum", 0), ("m2", "sum", 0),
        ("sum", "st_b", 0), ("i_upd", "ld_a0", 0),
    ]
    return build_ddg(ops, deps, name="stencil_3pt")


@_kernel
def matmul_inner() -> Ddg:
    """Matrix-multiply inner loop: ``c += a[i,k]*b[k,j]`` with address
    arithmetic for the strided ``b`` access."""
    ops, deps = _loop_overhead()
    ops += [
        ("addr_b", Opcode.ALU), ("ld_a", Opcode.LOAD),
        ("ld_b", Opcode.LOAD), ("mul", Opcode.FP_MULT),
        ("acc", Opcode.FP_ADD),
    ]
    deps += [
        ("addr_b", "addr_b", 1), ("addr_b", "ld_b", 0),
        ("ld_a", "mul", 0), ("ld_b", "mul", 0),
        ("mul", "acc", 0), ("acc", "acc", 1),
        ("i_upd", "ld_a", 0),
    ]
    return build_ddg(ops, deps, name="matmul_inner")


@_kernel
def complex_multiply() -> Ddg:
    """Streaming complex multiply: 4 multiplies, 2 adds, 2 stores."""
    ops, deps = _loop_overhead()
    ops += [
        ("ld_ar", Opcode.LOAD), ("ld_ai", Opcode.LOAD),
        ("ld_br", Opcode.LOAD), ("ld_bi", Opcode.LOAD),
        ("m_rr", Opcode.FP_MULT), ("m_ii", Opcode.FP_MULT),
        ("m_ri", Opcode.FP_MULT), ("m_ir", Opcode.FP_MULT),
        ("sub_r", Opcode.FP_ADD), ("add_i", Opcode.FP_ADD),
        ("st_r", Opcode.STORE), ("st_i", Opcode.STORE),
    ]
    deps += [
        ("ld_ar", "m_rr", 0), ("ld_br", "m_rr", 0),
        ("ld_ai", "m_ii", 0), ("ld_bi", "m_ii", 0),
        ("ld_ar", "m_ri", 0), ("ld_bi", "m_ri", 0),
        ("ld_ai", "m_ir", 0), ("ld_br", "m_ir", 0),
        ("m_rr", "sub_r", 0), ("m_ii", "sub_r", 0),
        ("m_ri", "add_i", 0), ("m_ir", "add_i", 0),
        ("sub_r", "st_r", 0), ("add_i", "st_i", 0),
        ("i_upd", "ld_ar", 0),
    ]
    return build_ddg(ops, deps, name="complex_multiply")


@_kernel
def newton_division_step() -> Ddg:
    """Newton–Raphson reciprocal refinement with a long-latency divide in
    a loop-carried chain: RecMII dominated by FP_DIV latency 9."""
    ops, deps = _loop_overhead()
    ops += [
        ("ld_d", Opcode.LOAD), ("div", Opcode.FP_DIV),
        ("mul", Opcode.FP_MULT), ("sub", Opcode.FP_ADD),
        ("st_r", Opcode.STORE),
    ]
    deps += [
        ("ld_d", "div", 0), ("sub", "div", 1),
        ("div", "mul", 0), ("mul", "sub", 0),
        ("sub", "st_r", 0), ("i_upd", "ld_d", 0),
    ]
    return build_ddg(ops, deps, name="newton_division_step")


@_kernel
def vector_norm() -> Ddg:
    """Vector 2-norm accumulation with an FP square root on the stream."""
    ops, deps = _loop_overhead()
    ops += [
        ("ld_x", Opcode.LOAD), ("sq", Opcode.FP_MULT),
        ("acc", Opcode.FP_ADD), ("sqrt", Opcode.FP_SQRT),
        ("st_n", Opcode.STORE),
    ]
    deps += [
        ("ld_x", "sq", 0), ("sq", "acc", 0), ("acc", "acc", 1),
        ("acc", "sqrt", 0), ("sqrt", "st_n", 0),
        ("i_upd", "ld_x", 0),
    ]
    return build_ddg(ops, deps, name="vector_norm")


@_kernel
def ema_filter() -> Ddg:
    """Exponential moving average: ``s = alpha*x[i] + (1-alpha)*s``.

    Critical recurrence: multiply + add at distance 1, RecMII 4.
    """
    ops, deps = _loop_overhead()
    ops += [
        ("ld_x", Opcode.LOAD), ("m_x", Opcode.FP_MULT),
        ("m_s", Opcode.FP_MULT), ("add", Opcode.FP_ADD),
        ("st_s", Opcode.STORE),
    ]
    deps += [
        ("ld_x", "m_x", 0), ("add", "m_s", 1),
        ("m_x", "add", 0), ("m_s", "add", 0),
        ("add", "st_s", 0), ("i_upd", "ld_x", 0),
    ]
    return build_ddg(ops, deps, name="ema_filter")


@_kernel
def saxpy_strided() -> Ddg:
    """Strided saxpy with explicit address arithmetic on both streams."""
    ops, deps = _loop_overhead()
    ops += [
        ("addr_x", Opcode.ALU), ("addr_y", Opcode.ALU),
        ("ld_x", Opcode.LOAD), ("ld_y", Opcode.LOAD),
        ("mul", Opcode.FP_MULT), ("add", Opcode.FP_ADD),
        ("st_y", Opcode.STORE),
    ]
    deps += [
        ("addr_x", "addr_x", 1), ("addr_y", "addr_y", 1),
        ("addr_x", "ld_x", 0), ("addr_y", "ld_y", 0),
        ("ld_x", "mul", 0), ("mul", "add", 0), ("ld_y", "add", 0),
        ("add", "st_y", 0), ("addr_y", "st_y", 0),
    ]
    return build_ddg(ops, deps, name="saxpy_strided")


@_kernel
def butterfly_fft() -> Ddg:
    """One radix-2 FFT butterfly per iteration: twiddle multiply plus
    add/sub pairs on complex data — copy-pressure heavy when split."""
    ops, deps = _loop_overhead()
    ops += [
        ("ld_ar", Opcode.LOAD), ("ld_ai", Opcode.LOAD),
        ("ld_br", Opcode.LOAD), ("ld_bi", Opcode.LOAD),
        ("m_rr", Opcode.FP_MULT), ("m_ii", Opcode.FP_MULT),
        ("m_ri", Opcode.FP_MULT), ("m_ir", Opcode.FP_MULT),
        ("t_r", Opcode.FP_ADD), ("t_i", Opcode.FP_ADD),
        ("o0r", Opcode.FP_ADD), ("o0i", Opcode.FP_ADD),
        ("o1r", Opcode.FP_ADD), ("o1i", Opcode.FP_ADD),
        ("st0r", Opcode.STORE), ("st0i", Opcode.STORE),
        ("st1r", Opcode.STORE), ("st1i", Opcode.STORE),
    ]
    deps += [
        ("ld_br", "m_rr", 0), ("ld_bi", "m_ii", 0),
        ("ld_br", "m_ri", 0), ("ld_bi", "m_ir", 0),
        ("m_rr", "t_r", 0), ("m_ii", "t_r", 0),
        ("m_ri", "t_i", 0), ("m_ir", "t_i", 0),
        ("ld_ar", "o0r", 0), ("t_r", "o0r", 0),
        ("ld_ai", "o0i", 0), ("t_i", "o0i", 0),
        ("ld_ar", "o1r", 0), ("t_r", "o1r", 0),
        ("ld_ai", "o1i", 0), ("t_i", "o1i", 0),
        ("o0r", "st0r", 0), ("o0i", "st0i", 0),
        ("o1r", "st1r", 0), ("o1i", "st1i", 0),
        ("i_upd", "ld_ar", 0),
    ]
    return build_ddg(ops, deps, name="butterfly_fft")


@_kernel
def wavefront_sweep() -> Ddg:
    """A wavefront update ``a[i] = f(a[i-1], a[i-2])`` with two carried
    dependences of different distances in one SCC."""
    ops, deps = _loop_overhead()
    ops += [
        ("ld_c", Opcode.LOAD), ("m1", Opcode.FP_MULT),
        ("m2", Opcode.FP_MULT), ("add", Opcode.FP_ADD),
        ("st_a", Opcode.STORE),
    ]
    deps += [
        ("add", "m1", 1), ("add", "m2", 2),
        ("m1", "add", 0), ("m2", "add", 0),
        ("ld_c", "add", 0), ("add", "st_a", 0),
        ("i_upd", "ld_c", 0),
    ]
    return build_ddg(ops, deps, name="wavefront_sweep")


@_kernel
def integer_checksum() -> Ddg:
    """Integer-only rolling checksum: shifts and ALU ops with a carried
    accumulator — exercises integer unit pressure on FS machines."""
    ops, deps = _loop_overhead()
    ops += [
        ("ld_b", Opcode.LOAD), ("sh1", Opcode.SHIFT),
        ("xor1", Opcode.ALU), ("sh2", Opcode.SHIFT),
        ("add", Opcode.ALU),
    ]
    deps += [
        ("ld_b", "sh1", 0), ("sh1", "xor1", 0),
        ("add", "xor1", 1), ("xor1", "sh2", 0),
        ("sh2", "add", 0), ("i_upd", "ld_b", 0),
    ]
    return build_ddg(ops, deps, name="integer_checksum")


@_kernel
def table_lookup_interp() -> Ddg:
    """Table lookup with linear interpolation: integer index arithmetic
    feeding dependent loads, then FP blend — mixed-class pressure."""
    ops, deps = _loop_overhead()
    ops += [
        ("ld_u", Opcode.LOAD), ("idx", Opcode.ALU),
        ("sh", Opcode.SHIFT), ("ld_t0", Opcode.LOAD),
        ("ld_t1", Opcode.LOAD), ("sub", Opcode.FP_ADD),
        ("mul", Opcode.FP_MULT), ("add", Opcode.FP_ADD),
        ("st_v", Opcode.STORE),
    ]
    deps += [
        ("ld_u", "idx", 0), ("idx", "sh", 0),
        ("sh", "ld_t0", 0), ("sh", "ld_t1", 0),
        ("ld_t1", "sub", 0), ("ld_t0", "sub", 0),
        ("sub", "mul", 0), ("ld_u", "mul", 0),
        ("mul", "add", 0), ("ld_t0", "add", 0),
        ("add", "st_v", 0), ("i_upd", "ld_u", 0),
    ]
    return build_ddg(ops, deps, name="table_lookup_interp")


@_kernel
def bilinear_blend() -> Ddg:
    """Bilinear pixel blend: four loads, three lerps — wide and flat."""
    ops, deps = _loop_overhead()
    ops += [
        ("ld_p00", Opcode.LOAD), ("ld_p01", Opcode.LOAD),
        ("ld_p10", Opcode.LOAD), ("ld_p11", Opcode.LOAD),
        ("l0_sub", Opcode.FP_ADD), ("l0_mul", Opcode.FP_MULT),
        ("l0_add", Opcode.FP_ADD),
        ("l1_sub", Opcode.FP_ADD), ("l1_mul", Opcode.FP_MULT),
        ("l1_add", Opcode.FP_ADD),
        ("l2_sub", Opcode.FP_ADD), ("l2_mul", Opcode.FP_MULT),
        ("l2_add", Opcode.FP_ADD),
        ("st_q", Opcode.STORE),
    ]
    deps += [
        ("ld_p00", "l0_sub", 0), ("ld_p01", "l0_sub", 0),
        ("l0_sub", "l0_mul", 0), ("l0_mul", "l0_add", 0),
        ("ld_p00", "l0_add", 0),
        ("ld_p10", "l1_sub", 0), ("ld_p11", "l1_sub", 0),
        ("l1_sub", "l1_mul", 0), ("l1_mul", "l1_add", 0),
        ("ld_p10", "l1_add", 0),
        ("l0_add", "l2_sub", 0), ("l1_add", "l2_sub", 0),
        ("l2_sub", "l2_mul", 0), ("l2_mul", "l2_add", 0),
        ("l0_add", "l2_add", 0),
        ("l2_add", "st_q", 0), ("i_upd", "ld_p00", 0),
    ]
    return build_ddg(ops, deps, name="bilinear_blend")


@_kernel
def givens_rotation() -> Ddg:
    """Givens rotation applied to two streamed vectors: two combined
    outputs share all four inputs — high communication if split."""
    ops, deps = _loop_overhead()
    ops += [
        ("ld_x", Opcode.LOAD), ("ld_y", Opcode.LOAD),
        ("m_cx", Opcode.FP_MULT), ("m_sy", Opcode.FP_MULT),
        ("m_sx", Opcode.FP_MULT), ("m_cy", Opcode.FP_MULT),
        ("add_x", Opcode.FP_ADD), ("add_y", Opcode.FP_ADD),
        ("st_x", Opcode.STORE), ("st_y", Opcode.STORE),
    ]
    deps += [
        ("ld_x", "m_cx", 0), ("ld_y", "m_sy", 0),
        ("ld_x", "m_sx", 0), ("ld_y", "m_cy", 0),
        ("m_cx", "add_x", 0), ("m_sy", "add_x", 0),
        ("m_sx", "add_y", 0), ("m_cy", "add_y", 0),
        ("add_x", "st_x", 0), ("add_y", "st_y", 0),
        ("i_upd", "ld_x", 0),
    ]
    return build_ddg(ops, deps, name="givens_rotation")


@_kernel
def mandelbrot_step() -> Ddg:
    """One Mandelbrot iteration: ``z = z^2 + c`` on complex values — the
    body is one SCC of FP operations; critical cycle add → mult → sub →
    add over distance 1 gives RecMII 1 + 3 + 1 = 5."""
    ops, deps = _loop_overhead()
    ops += [
        ("m_rr", Opcode.FP_MULT), ("m_ii", Opcode.FP_MULT),
        ("m_ri", Opcode.FP_MULT),
        ("sub_r", Opcode.FP_ADD), ("dbl_i", Opcode.FP_ADD),
        ("add_cr", Opcode.FP_ADD), ("add_ci", Opcode.FP_ADD),
    ]
    deps += [
        ("add_cr", "m_rr", 1), ("add_ci", "m_ii", 1),
        ("add_cr", "m_ri", 1), ("add_ci", "m_ri", 1),
        ("m_rr", "sub_r", 0), ("m_ii", "sub_r", 0),
        ("m_ri", "dbl_i", 0),
        ("sub_r", "add_cr", 0), ("dbl_i", "add_ci", 0),
    ]
    return build_ddg(ops, deps, name="mandelbrot_step")


@_kernel
def pointer_chase_reduce() -> Ddg:
    """Linked-list style reduction: the next address comes from memory,
    putting a 2-cycle load on the critical recurrence (RecMII 3)."""
    ops, deps = _loop_overhead()
    ops += [
        ("ld_next", Opcode.LOAD), ("ld_val", Opcode.LOAD),
        ("addr", Opcode.ALU), ("acc", Opcode.FP_ADD),
    ]
    deps += [
        ("ld_next", "addr", 0), ("addr", "ld_next", 1),
        ("addr", "ld_val", 0), ("ld_val", "acc", 0),
        ("acc", "acc", 1),
    ]
    return build_ddg(ops, deps, name="pointer_chase_reduce")


@_kernel
def lk4_banded_linear() -> Ddg:
    """LFK 4, banded linear equations inner step: multiply-subtract
    against a banded matrix — streaming with address arithmetic."""
    ops, deps = _loop_overhead()
    ops += [
        ("addr", Opcode.ALU), ("ld_xz", Opcode.LOAD),
        ("ld_y", Opcode.LOAD), ("mul", Opcode.FP_MULT),
        ("sub", Opcode.FP_ADD), ("st", Opcode.STORE),
    ]
    deps += [
        ("addr", "addr", 1), ("addr", "ld_xz", 0),
        ("ld_xz", "mul", 0), ("ld_y", "mul", 0),
        ("mul", "sub", 0), ("sub", "st", 0),
        ("i_upd", "ld_y", 0),
    ]
    return build_ddg(ops, deps, name="lk4_banded_linear")


@_kernel
def lk8_adi_integration() -> Ddg:
    """LFK 8, ADI integration fragment: long FP expression over six
    streamed inputs — high ILP, heavy load pressure."""
    ops, deps = _loop_overhead()
    ops += [
        ("ld_u1", Opcode.LOAD), ("ld_u2", Opcode.LOAD),
        ("ld_u3", Opcode.LOAD), ("ld_du1", Opcode.LOAD),
        ("ld_du2", Opcode.LOAD), ("ld_du3", Opcode.LOAD),
        ("m1", Opcode.FP_MULT), ("m2", Opcode.FP_MULT),
        ("m3", Opcode.FP_MULT),
        ("a1", Opcode.FP_ADD), ("a2", Opcode.FP_ADD),
        ("a3", Opcode.FP_ADD),
        ("st1", Opcode.STORE), ("st2", Opcode.STORE),
    ]
    deps += [
        ("ld_u1", "m1", 0), ("ld_du1", "m1", 0),
        ("ld_u2", "m2", 0), ("ld_du2", "m2", 0),
        ("ld_u3", "m3", 0), ("ld_du3", "m3", 0),
        ("m1", "a1", 0), ("m2", "a1", 0),
        ("a1", "a2", 0), ("m3", "a2", 0),
        ("a2", "a3", 0), ("ld_u1", "a3", 0),
        ("a2", "st1", 0), ("a3", "st2", 0),
        ("i_upd", "ld_u1", 0),
    ]
    return build_ddg(ops, deps, name="lk8_adi_integration")


@_kernel
def lk9_numerical_integration() -> Ddg:
    """LFK 9, integrate predictors: a long weighted sum of ten streamed
    terms — a pure add/multiply tree."""
    ops, deps = _loop_overhead()
    terms = []
    for k in range(5):
        ops += [(f"ld{k}", Opcode.LOAD), (f"m{k}", Opcode.FP_MULT)]
        deps += [(f"ld{k}", f"m{k}", 0)]
        terms.append(f"m{k}")
    ops += [
        ("a0", Opcode.FP_ADD), ("a1", Opcode.FP_ADD),
        ("a2", Opcode.FP_ADD), ("a3", Opcode.FP_ADD),
        ("st", Opcode.STORE),
    ]
    deps += [
        ("m0", "a0", 0), ("m1", "a0", 0),
        ("m2", "a1", 0), ("m3", "a1", 0),
        ("a0", "a2", 0), ("a1", "a2", 0),
        ("a2", "a3", 0), ("m4", "a3", 0),
        ("a3", "st", 0), ("i_upd", "ld0", 0),
    ]
    return build_ddg(ops, deps, name="lk9_numerical_integration")


@_kernel
def lk10_difference_predictors() -> Ddg:
    """LFK 10, difference predictors: a cascade of running differences,
    each feeding the next and a store — long intra-iteration chain."""
    ops, deps = _loop_overhead()
    ops += [("ld_cx", Opcode.LOAD)]
    prev = "ld_cx"
    for k in range(4):
        ops += [(f"ld_py{k}", Opcode.LOAD), (f"d{k}", Opcode.FP_ADD),
                (f"st{k}", Opcode.STORE)]
        deps += [(prev, f"d{k}", 0), (f"ld_py{k}", f"d{k}", 0),
                 (f"d{k}", f"st{k}", 0)]
        prev = f"d{k}"
    deps += [("i_upd", "ld_cx", 0)]
    return build_ddg(ops, deps, name="lk10_difference_predictors")


@_kernel
def lk13_particle_in_cell() -> Ddg:
    """LFK 13 fragment: particle push — indexed loads through computed
    grid positions, FP update, indexed store."""
    ops, deps = _loop_overhead()
    ops += [
        ("ld_vx", Opcode.LOAD), ("ld_x", Opcode.LOAD),
        ("idx", Opcode.ALU), ("sh", Opcode.SHIFT),
        ("ld_e", Opcode.LOAD), ("add_v", Opcode.FP_ADD),
        ("add_x", Opcode.FP_ADD),
        ("st_vx", Opcode.STORE), ("st_x", Opcode.STORE),
    ]
    deps += [
        ("ld_x", "idx", 0), ("idx", "sh", 0), ("sh", "ld_e", 0),
        ("ld_vx", "add_v", 0), ("ld_e", "add_v", 0),
        ("ld_x", "add_x", 0), ("add_v", "add_x", 0),
        ("add_v", "st_vx", 0), ("add_x", "st_x", 0),
        ("i_upd", "ld_vx", 0),
    ]
    return build_ddg(ops, deps, name="lk13_particle_in_cell")


@_kernel
def lk18_hydro_2d() -> Ddg:
    """LFK 18, 2-D explicit hydro fragment: five-point neighborhood with
    two outputs per point."""
    ops, deps = _loop_overhead()
    ops += [
        ("ld_c", Opcode.LOAD), ("ld_n", Opcode.LOAD),
        ("ld_s", Opcode.LOAD), ("ld_e", Opcode.LOAD),
        ("ld_w", Opcode.LOAD),
        ("m_ns", Opcode.FP_MULT), ("m_ew", Opcode.FP_MULT),
        ("a_ns", Opcode.FP_ADD), ("a_ew", Opcode.FP_ADD),
        ("a_z", Opcode.FP_ADD), ("m_z", Opcode.FP_MULT),
        ("st_za", Opcode.STORE), ("st_zb", Opcode.STORE),
    ]
    deps += [
        ("ld_n", "a_ns", 0), ("ld_s", "a_ns", 0),
        ("ld_e", "a_ew", 0), ("ld_w", "a_ew", 0),
        ("a_ns", "m_ns", 0), ("a_ew", "m_ew", 0),
        ("m_ns", "a_z", 0), ("m_ew", "a_z", 0),
        ("a_z", "m_z", 0), ("ld_c", "m_z", 0),
        ("a_z", "st_za", 0), ("m_z", "st_zb", 0),
        ("i_upd", "ld_c", 0),
    ]
    return build_ddg(ops, deps, name="lk18_hydro_2d")


@_kernel
def lk21_matrix_product_fragment() -> Ddg:
    """LFK 21 fragment: ``px[i,j] += vy[i,k] * cx[k,j]`` with both
    strided addresses carried across iterations."""
    ops, deps = _loop_overhead()
    ops += [
        ("adr_v", Opcode.ALU), ("adr_c", Opcode.ALU),
        ("ld_v", Opcode.LOAD), ("ld_c", Opcode.LOAD),
        ("ld_p", Opcode.LOAD), ("mul", Opcode.FP_MULT),
        ("add", Opcode.FP_ADD), ("st_p", Opcode.STORE),
    ]
    deps += [
        ("adr_v", "adr_v", 1), ("adr_c", "adr_c", 1),
        ("adr_v", "ld_v", 0), ("adr_c", "ld_c", 0),
        ("ld_v", "mul", 0), ("ld_c", "mul", 0),
        ("ld_p", "add", 0), ("mul", "add", 0),
        ("add", "st_p", 0), ("i_upd", "ld_p", 0),
    ]
    return build_ddg(ops, deps, name="lk21_matrix_product_fragment")


@_kernel
def lk22_planckian() -> Ddg:
    """LFK 22, Planckian distribution: a divide on the streaming path
    (``w = x / (exp(y) - 1)`` with exp pre-tabulated)."""
    ops, deps = _loop_overhead()
    ops += [
        ("ld_x", Opcode.LOAD), ("ld_expy", Opcode.LOAD),
        ("sub1", Opcode.FP_ADD), ("div", Opcode.FP_DIV),
        ("st_w", Opcode.STORE),
    ]
    deps += [
        ("ld_expy", "sub1", 0), ("ld_x", "div", 0),
        ("sub1", "div", 0), ("div", "st_w", 0),
        ("i_upd", "ld_x", 0),
    ]
    return build_ddg(ops, deps, name="lk22_planckian")


@_kernel
def vector_triad_div() -> Ddg:
    """STREAM-style triad with a divide: ``a[i] = b[i] + c[i] / d[i]``."""
    ops, deps = _loop_overhead()
    ops += [
        ("ld_b", Opcode.LOAD), ("ld_c", Opcode.LOAD),
        ("ld_d", Opcode.LOAD), ("div", Opcode.FP_DIV),
        ("add", Opcode.FP_ADD), ("st_a", Opcode.STORE),
    ]
    deps += [
        ("ld_c", "div", 0), ("ld_d", "div", 0),
        ("ld_b", "add", 0), ("div", "add", 0),
        ("add", "st_a", 0), ("i_upd", "ld_b", 0),
    ]
    return build_ddg(ops, deps, name="vector_triad_div")


@_kernel
def convolution_8tap() -> Ddg:
    """8-tap convolution: eight multiplies into a binary add tree —
    the widest streaming kernel in the library."""
    ops, deps = _loop_overhead()
    for k in range(8):
        ops += [(f"ld{k}", Opcode.LOAD), (f"m{k}", Opcode.FP_MULT)]
        deps += [(f"ld{k}", f"m{k}", 0)]
    ops += [(f"a{k}", Opcode.FP_ADD) for k in range(7)]
    deps += [
        ("m0", "a0", 0), ("m1", "a0", 0),
        ("m2", "a1", 0), ("m3", "a1", 0),
        ("m4", "a2", 0), ("m5", "a2", 0),
        ("m6", "a3", 0), ("m7", "a3", 0),
        ("a0", "a4", 0), ("a1", "a4", 0),
        ("a2", "a5", 0), ("a3", "a5", 0),
        ("a4", "a6", 0), ("a5", "a6", 0),
    ]
    ops += [("st", Opcode.STORE)]
    deps += [("a6", "st", 0), ("i_upd", "ld0", 0)]
    return build_ddg(ops, deps, name="convolution_8tap")


@_kernel
def cholesky_update() -> Ddg:
    """Cholesky column update: divide + multiply-subtract with the
    divisor carried across iterations (div + add in one SCC)."""
    ops, deps = _loop_overhead()
    ops += [
        ("ld_a", Opcode.LOAD), ("div", Opcode.FP_DIV),
        ("mul", Opcode.FP_MULT), ("sub", Opcode.FP_ADD),
        ("st", Opcode.STORE),
    ]
    deps += [
        ("ld_a", "div", 0), ("sub", "div", 1),
        ("div", "mul", 0), ("mul", "sub", 0),
        ("sub", "st", 0), ("i_upd", "ld_a", 0),
    ]
    return build_ddg(ops, deps, name="cholesky_update")


@_kernel
def rgb_to_yuv() -> Ddg:
    """Pixel color conversion: three weighted sums of three loads — a
    classic media kernel with shared inputs across outputs."""
    ops, deps = _loop_overhead()
    ops += [
        ("ld_r", Opcode.LOAD), ("ld_g", Opcode.LOAD),
        ("ld_b", Opcode.LOAD),
    ]
    for out in ("y", "u", "v"):
        ops += [
            (f"m{out}r", Opcode.FP_MULT), (f"m{out}g", Opcode.FP_MULT),
            (f"m{out}b", Opcode.FP_MULT),
            (f"a{out}1", Opcode.FP_ADD), (f"a{out}2", Opcode.FP_ADD),
            (f"st_{out}", Opcode.STORE),
        ]
        deps += [
            ("ld_r", f"m{out}r", 0), ("ld_g", f"m{out}g", 0),
            ("ld_b", f"m{out}b", 0),
            (f"m{out}r", f"a{out}1", 0), (f"m{out}g", f"a{out}1", 0),
            (f"a{out}1", f"a{out}2", 0), (f"m{out}b", f"a{out}2", 0),
            (f"a{out}2", f"st_{out}", 0),
        ]
    deps += [("i_upd", "ld_r", 0)]
    return build_ddg(ops, deps, name="rgb_to_yuv")


@_kernel
def fixed_point_quantize() -> Ddg:
    """Integer quantization: shift/round/clamp pipeline — pure integer
    pressure for FS machines."""
    ops, deps = _loop_overhead()
    ops += [
        ("ld_x", Opcode.LOAD), ("sh1", Opcode.SHIFT),
        ("rnd", Opcode.ALU), ("sh2", Opcode.SHIFT),
        ("clamp_lo", Opcode.ALU), ("clamp_hi", Opcode.ALU),
        ("st_q", Opcode.STORE),
    ]
    deps += [
        ("ld_x", "sh1", 0), ("sh1", "rnd", 0), ("rnd", "sh2", 0),
        ("sh2", "clamp_lo", 0), ("clamp_lo", "clamp_hi", 0),
        ("clamp_hi", "st_q", 0), ("i_upd", "ld_x", 0),
    ]
    return build_ddg(ops, deps, name="fixed_point_quantize")


@_kernel
def hash_mix_stream() -> Ddg:
    """Streaming hash mix: the running state threads shift/xor/add per
    element — a 3-op integer recurrence (RecMII 3)."""
    ops, deps = _loop_overhead()
    ops += [
        ("ld_k", Opcode.LOAD), ("xor_in", Opcode.ALU),
        ("sh", Opcode.SHIFT), ("mixadd", Opcode.ALU),
    ]
    deps += [
        ("ld_k", "xor_in", 0), ("mixadd", "xor_in", 1),
        ("xor_in", "sh", 0), ("sh", "mixadd", 0),
        ("i_upd", "ld_k", 0),
    ]
    return build_ddg(ops, deps, name="hash_mix_stream")


@_kernel
def lennard_jones_force() -> Ddg:
    """Pairwise Lennard-Jones force: square root and divide on the
    streaming path — the longest-latency ILP kernel here."""
    ops, deps = _loop_overhead()
    ops += [
        ("ld_dx", Opcode.LOAD), ("ld_dy", Opcode.LOAD),
        ("sqx", Opcode.FP_MULT), ("sqy", Opcode.FP_MULT),
        ("r2", Opcode.FP_ADD), ("r", Opcode.FP_SQRT),
        ("inv", Opcode.FP_DIV), ("f", Opcode.FP_MULT),
        ("st_f", Opcode.STORE),
    ]
    deps += [
        ("ld_dx", "sqx", 0), ("ld_dy", "sqy", 0),
        ("sqx", "r2", 0), ("sqy", "r2", 0),
        ("r2", "r", 0), ("r", "inv", 0),
        ("inv", "f", 0), ("r2", "f", 0),
        ("f", "st_f", 0), ("i_upd", "ld_dx", 0),
    ]
    return build_ddg(ops, deps, name="lennard_jones_force")


@_kernel
def alpha_blend() -> Ddg:
    """Alpha compositing: ``out = a*src + (1-a)*dst`` per pixel."""
    ops, deps = _loop_overhead()
    ops += [
        ("ld_a", Opcode.LOAD), ("ld_src", Opcode.LOAD),
        ("ld_dst", Opcode.LOAD), ("one_minus", Opcode.FP_ADD),
        ("m_src", Opcode.FP_MULT), ("m_dst", Opcode.FP_MULT),
        ("blend", Opcode.FP_ADD), ("st", Opcode.STORE),
    ]
    deps += [
        ("ld_a", "one_minus", 0), ("ld_a", "m_src", 0),
        ("ld_src", "m_src", 0), ("one_minus", "m_dst", 0),
        ("ld_dst", "m_dst", 0), ("m_src", "blend", 0),
        ("m_dst", "blend", 0), ("blend", "st", 0),
        ("i_upd", "ld_a", 0),
    ]
    return build_ddg(ops, deps, name="alpha_blend")


@_kernel
def max_reduction_argmax() -> Ddg:
    """Max + argmax reduction: two interlocked integer/FP recurrences
    sharing the comparison — a dual-SCC stress case."""
    ops, deps = _loop_overhead()
    ops += [
        ("ld_x", Opcode.LOAD), ("cmp", Opcode.FP_ADD),
        ("sel_max", Opcode.FP_ADD), ("sel_idx", Opcode.ALU),
    ]
    deps += [
        ("ld_x", "cmp", 0), ("sel_max", "cmp", 1),
        ("cmp", "sel_max", 0), ("cmp", "sel_idx", 0),
        ("sel_idx", "sel_idx", 1), ("i_upd", "ld_x", 0),
    ]
    return build_ddg(ops, deps, name="max_reduction_argmax")
