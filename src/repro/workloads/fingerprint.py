"""Stable content hashing for compile requests and their parts.

The experiment engine's on-disk result cache, the unified-baseline
duplicate guard, and the compile service's sharded result cache all
need *content* identities: two requests hash equal iff they would
compile identically.  Three ingredient fingerprints cover everything
the compiler reads —

* :func:`ddg_fingerprint` — node ids, opcodes, (possibly overridden)
  latencies, and the full edge list with distances; the loop's display
  name is deliberately excluded so a renamed-but-identical loop keeps
  its identity;
* :func:`machine_fingerprint` — cluster count, unit mix capacities,
  interconnect kind, GP flag;
* :func:`config_fingerprint` — every knob of an
  :class:`~repro.core.variants.AssignmentConfig`;

and :func:`compile_fingerprint` combines them into the identity of one
(loop, machine, config, verify) compile request — the key shape shared
by :mod:`repro.analysis.engine`'s outcome cache and
:mod:`repro.service.cache`'s sharded store.

Fingerprints are hex SHA-256 digests of canonical JSON documents, so
they are stable across processes, Python versions, and hash seeds —
safe to use as cache file names.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json

from ..ddg.graph import Ddg


def _digest(doc) -> str:
    payload = json.dumps(doc, separators=(",", ":"), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def ddg_fingerprint(ddg: Ddg) -> str:
    """Hex digest of the loop's compiler-visible content.

    Node names are included (they are part of the canonical textual
    format) but the loop's own ``name`` is not: identity follows the
    graph, not the label.
    """
    return _digest({
        "nodes": [
            [node.node_id, node.opcode.value, node.latency, node.name]
            for node in ddg.nodes
        ],
        "edges": [
            [edge.src, edge.dst, edge.distance] for edge in ddg.edges
        ],
    })


def machine_fingerprint(machine) -> str:
    """Hex digest of everything the compiler reads from a machine."""
    return _digest({
        "name": machine.name,
        "clusters": machine.n_clusters,
        "gp": machine.general_purpose,
        "interconnect": type(machine.interconnect).__name__,
        "caps": sorted(
            (str(key), value)
            for key, value in machine.resource_capacities().items()
        ),
    })


def config_fingerprint(config) -> str:
    """Hex digest of an assignment configuration's knobs."""
    return _digest(dataclasses.asdict(config))


def compile_fingerprint(
    ddg: Ddg, machine, config, verify: bool = False, extra=None,
) -> str:
    """Identity of one compile request: loop + machine + config (+
    ``verify`` and any ``extra`` JSON-serializable gate facts).

    The loop's display name *is* included here (unlike
    :func:`ddg_fingerprint` alone): request-level caches key outcomes
    that carry the name, and two same-content loops under different
    names must not replay each other's records.
    """
    return _digest({
        "loop": ddg.name,
        "ddg": ddg_fingerprint(ddg),
        "machine": machine_fingerprint(machine),
        "config": config_fingerprint(config),
        "verify": bool(verify),
        "extra": extra,
    })
