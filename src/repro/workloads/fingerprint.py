"""Stable content hashing for loop DDGs.

The experiment engine's on-disk result cache and the unified-baseline
duplicate guard both need a *content* identity for a loop: two graphs
hash equal iff they would compile identically.  The fingerprint covers
everything the compiler reads — node ids, opcodes, (possibly
overridden) latencies, and the full edge list with distances — and
nothing it does not (the loop's display name is deliberately excluded
so a renamed-but-identical loop keeps its identity).

Fingerprints are hex SHA-256 digests of a canonical JSON document, so
they are stable across processes, Python versions, and hash seeds —
safe to use as cache file names.
"""

from __future__ import annotations

import hashlib
import json

from ..ddg.graph import Ddg


def ddg_fingerprint(ddg: Ddg) -> str:
    """Hex digest of the loop's compiler-visible content.

    Node names are included (they are part of the canonical textual
    format) but the loop's own ``name`` is not: identity follows the
    graph, not the label.
    """
    doc = {
        "nodes": [
            [node.node_id, node.opcode.value, node.latency, node.name]
            for node in ddg.nodes
        ],
        "edges": [
            [edge.src, edge.dst, edge.distance] for edge in ddg.edges
        ],
    }
    payload = json.dumps(doc, separators=(",", ":"), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
