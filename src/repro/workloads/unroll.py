"""Loop unrolling of DDGs.

The paper's Related Work notes that acyclic clustering approaches (BUG,
Desoli's partitioner) "can be extended to loops by performing loop
unrolling".  This transform produces the unrolled-by-``k`` loop body:
every operation is replicated ``k`` times, an edge ``(u, v, d)`` becomes,
for each copy ``j`` of ``u``, an edge to copy ``(j + d) mod k`` of ``v``
with distance ``(j + d) // k`` — intra-block when the consuming copy is
in the same unrolled body, loop-carried (around the unrolled loop)
otherwise.

Invariants (tested): node count and per-opcode counts scale by ``k``;
edge count scales by ``k``; the unrolled RecMII, which is in cycles per
*unrolled* iteration, satisfies ``RecMII_k <= k * RecMII_1`` and
``RecMII_k >= k * (ratio)`` rounded up — unrolling can only help
fractional recurrences.
"""

from __future__ import annotations

from typing import Dict, List

from ..ddg.graph import Ddg


def unroll_ddg(ddg: Ddg, factor: int, name: str = "") -> Ddg:
    """Unroll ``ddg`` by ``factor``; returns the new loop body."""
    if factor < 1:
        raise ValueError("unroll factor must be >= 1")
    if factor == 1:
        return ddg.copy(name=name or ddg.name)
    unrolled = Ddg(name=name or f"{ddg.name}x{factor}")
    # clone[j][original_id] -> new id of copy j.
    clone: List[Dict[int, int]] = []
    for j in range(factor):
        ids = {}
        for node in ddg.nodes:
            label = f"{node.name or 'n%d' % node.node_id}.{j}"
            ids[node.node_id] = unrolled.add_node(
                node.opcode, name=label, latency=node.latency
            )
        clone.append(ids)
    for edge in ddg.edges:
        for j in range(factor):
            target_copy = (j + edge.distance) % factor
            new_distance = (j + edge.distance) // factor
            unrolled.add_edge(
                clone[j][edge.src],
                clone[target_copy][edge.dst],
                distance=new_distance,
            )
    return unrolled
