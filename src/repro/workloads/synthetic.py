"""Synthetic loop DDG generation calibrated to the paper's Table 1.

The original 1327 loops (Perfect Club, SPEC-89, Livermore FORTRAN
Kernels, compiled by the Cydra 5 Fortran77 compiler) are proprietary and
unavailable; this generator produces a population with matching published
statistics:

=========================  ====  =====  ====
Statistic                  Min   Avg    Max
=========================  ====  =====  ====
Nodes                      2     17.5   161
SCCs per loop              0     0.4    6
Nodes in non-trivial SCCs  2     9.0    48
Edges                      1     22.5   232
=========================  ====  =====  ====

Structure mirrors what the Cydra pre-passes leave behind: a single basic
block of dataflow where loads feed arithmetic feeds stores, about 23 % of
loops carrying recurrences (301 of 1327), recurrences built as chains of
value operations closed by a distance-1 or distance-2 back edge, and one
loop-closing branch fed by induction arithmetic.

Everything is driven by an explicit :class:`random.Random` so suites are
fully deterministic given a seed.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..ddg.graph import Ddg
from ..ddg.opcodes import Opcode, produces_value


@dataclass(frozen=True)
class GeneratorProfile:
    """Calibration knobs of the synthetic generator.

    Defaults reproduce the paper's Table 1 statistics; tests assert the
    achieved population statistics stay inside tolerance bands.
    """

    #: Log-normal node-count distribution (median = exp(mu)).
    node_mu: float = math.log(12.2)
    node_sigma: float = 0.82
    node_min: int = 2
    node_max: int = 161

    #: Fraction of loops containing at least one non-trivial SCC
    #: (301 / 1327 in the paper's suite).
    scc_loop_fraction: float = 301.0 / 1327.0
    #: Extra SCCs beyond the first, geometric continuation probability,
    #: calibrated so the overall mean is ~0.4 SCCs per loop.
    scc_continue_probability: float = 0.52
    scc_max_per_loop: int = 6
    #: SCC chain length distribution (nodes per recurrence chain).
    scc_len_mean: float = 6.2
    scc_len_max: int = 24
    #: Cap on total recurrence nodes per loop (Table 1 max is 48).
    scc_nodes_cap: int = 48

    #: Predecessor count distribution of a non-source node.
    pred_weights: Tuple[float, ...] = (0.72, 0.23, 0.05)

    #: Opcode mix for interior (arithmetic) nodes.
    arith_mix: Tuple[Tuple[Opcode, float], ...] = (
        (Opcode.ALU, 0.42),
        (Opcode.SHIFT, 0.06),
        (Opcode.FP_ADD, 0.25),
        (Opcode.FP_MULT, 0.22),
        (Opcode.FP_DIV, 0.04),
        (Opcode.FP_SQRT, 0.01),
    )
    #: Fraction of nodes that are loads (sources) and stores (sinks).
    load_fraction: float = 0.24
    store_fraction: float = 0.11
    #: Probability that the loop carries an explicit back branch.
    branch_probability: float = 0.85
    #: Probability of one extra store→load memory ordering edge.
    memory_edge_probability: float = 0.25


def _reaching_set(ddg: Ddg, target: int) -> set:
    """Node ids from which ``target`` is reachable (including itself)."""
    reached = {target}
    stack = [target]
    while stack:
        node = stack.pop()
        for edge in ddg.in_edges(node):
            if edge.src not in reached:
                reached.add(edge.src)
                stack.append(edge.src)
    return reached


def _weighted_choice(
    rng: random.Random, pairs: Sequence[Tuple[Opcode, float]]
) -> Opcode:
    """Pick an opcode by weight."""
    total = sum(weight for _, weight in pairs)
    roll = rng.random() * total
    acc = 0.0
    for opcode, weight in pairs:
        acc += weight
        if roll <= acc:
            return opcode
    return pairs[-1][0]


def _draw_node_count(rng: random.Random, profile: GeneratorProfile) -> int:
    """Log-normal node count, clipped to the paper's observed range."""
    value = int(round(rng.lognormvariate(profile.node_mu, profile.node_sigma)))
    return max(profile.node_min, min(profile.node_max, value))


def _draw_scc_plan(
    rng: random.Random, profile: GeneratorProfile, n_nodes: int
) -> List[int]:
    """Chain lengths of the recurrences this loop will carry (possibly
    empty)."""
    if n_nodes < 2 or rng.random() >= profile.scc_loop_fraction:
        return []
    lengths: List[int] = []
    while True:
        length = 2 + int(rng.expovariate(1.0 / max(profile.scc_len_mean - 2, 0.5)))
        length = min(length, profile.scc_len_max, n_nodes)
        lengths.append(length)
        if len(lengths) >= profile.scc_max_per_loop:
            break
        if rng.random() >= profile.scc_continue_probability:
            break
    return lengths


def _fit_scc_plan(lengths: List[int], available: int) -> List[int]:
    """Shrink a recurrence plan to fit ``available`` interior nodes.

    Keeps as many chains as possible (each needs >= 2 nodes), trimming the
    longest chains first, so small loops still realize their drawn SCC
    count whenever they can.
    """
    plan = sorted(lengths, reverse=True)
    while plan and sum(plan) > available:
        if plan[0] > 2:
            plan[0] -= 1
            plan.sort(reverse=True)
        else:
            plan.pop()
    return plan


def generate_loop(
    rng: random.Random,
    profile: GeneratorProfile = GeneratorProfile(),
    name: str = "",
    n_nodes: Optional[int] = None,
) -> Ddg:
    """Generate one synthetic innermost-loop DDG.

    Nodes are created in a topological order: early positions are loads,
    late positions stores (plus an optional branch), interior positions
    arithmetic.  Dataflow edges connect each node to one-to-three earlier
    value producers with a locality bias; recurrences are chains of
    consecutive value nodes closed by a loop-carried back edge.
    """
    if n_nodes is None:
        n_nodes = _draw_node_count(rng, profile)
    n_nodes = max(2, n_nodes)

    # Recurrence plan is drawn up front: loops carrying recurrences are
    # grown, when needed, so their chains fit (in the real suite the
    # recurrence-bearing loops skew larger than the average loop).
    scc_plan = _draw_scc_plan(rng, profile, n_nodes)
    if scc_plan:
        n_nodes = min(
            profile.node_max, max(n_nodes, sum(scc_plan) + 4)
        )

    # --- opcode layout -------------------------------------------------
    n_loads = max(1, int(round(n_nodes * profile.load_fraction)))
    n_stores = max(1, int(round(n_nodes * profile.store_fraction)))
    has_branch = n_nodes >= 4 and rng.random() < profile.branch_probability
    n_tail = n_stores + (1 if has_branch else 0)
    while n_loads + n_tail > n_nodes:
        if n_loads > 1:
            n_loads -= 1
        elif n_stores > 1:
            n_stores -= 1
            n_tail -= 1
        else:
            has_branch = False
            n_tail = n_stores
    opcodes: List[Opcode] = [Opcode.LOAD] * n_loads
    for _ in range(n_nodes - n_loads - n_tail):
        opcodes.append(_weighted_choice(rng, profile.arith_mix))
    opcodes.extend([Opcode.STORE] * n_stores)
    if has_branch:
        opcodes.append(Opcode.BRANCH)

    ddg = Ddg(name=name)
    ids = [ddg.add_node(op, name=f"{op.value}{i}") for i, op in enumerate(opcodes)]

    # --- forward dataflow ----------------------------------------------
    def value_preds(limit: int) -> List[int]:
        return [ids[j] for j in range(limit) if produces_value(opcodes[j])]

    edge_set = set()

    def add_edge(src: int, dst: int, distance: int) -> None:
        if (src, dst, distance) not in edge_set:
            edge_set.add((src, dst, distance))
            ddg.add_edge(src, dst, distance=distance)

    weights = profile.pred_weights
    for i in range(1, n_nodes):
        pool = value_preds(i)
        if not pool:
            continue
        n_preds = rng.choices(range(1, len(weights) + 1), weights=weights)[0]
        for _ in range(min(n_preds, len(pool))):
            # Locality bias: recent producers are more likely inputs.
            offset = int(rng.expovariate(1.0 / 4.0))
            src = pool[max(0, len(pool) - 1 - offset)]
            add_edge(src, ids[i], 0)

    # --- recurrences ----------------------------------------------------
    # Each planned recurrence takes a *disjoint* window of value nodes
    # (disjointness keeps the drawn SCC count: overlapping chains would
    # merge into one component).  Loads participate too — recurrences
    # through loads model pointer chasing and indexed reuse.
    interior = [i for i in range(n_nodes) if produces_value(opcodes[i])]
    lengths = _fit_scc_plan(
        scc_plan, min(len(interior), profile.scc_nodes_cap)
    )
    cursor = 0
    for length in lengths:
        available = len(interior) - cursor
        if available < 2:
            break
        length = min(length, available)
        # A small random gap spreads recurrences over the loop body.
        gap_budget = available - length
        cursor += rng.randint(0, min(2, gap_budget)) if gap_budget else 0
        chain = interior[cursor:cursor + length]
        cursor += length
        for a, b in zip(chain, chain[1:]):
            add_edge(ids[a], ids[b], 0)
        distance = 1 if rng.random() < 0.8 else 2
        add_edge(ids[chain[-1]], ids[chain[0]], distance)

    # --- memory ordering ------------------------------------------------
    # A loop-carried store→load dependence models a cross-iteration
    # memory reuse; it must not close an accidental recurrence, so only
    # loads that do not (transitively) feed the chosen store qualify.
    if rng.random() < profile.memory_edge_probability:
        stores = [i for i in range(n_nodes) if opcodes[i] is Opcode.STORE]
        loads = [i for i in range(n_nodes) if opcodes[i] is Opcode.LOAD]
        if stores and loads:
            store = rng.choice(stores)
            reaches_store = _reaching_set(ddg, ids[store])
            safe_loads = [i for i in loads if ids[i] not in reaches_store]
            if safe_loads:
                add_edge(ids[store], ids[rng.choice(safe_loads)], 1)

    # Guarantee at least one edge (Table 1: min edges = 1).
    if ddg.edge_count() == 0:
        pool = value_preds(n_nodes - 1)
        if pool:
            add_edge(pool[-1], ids[n_nodes - 1], 0)
        else:
            add_edge(ids[0], ids[n_nodes - 1], 0)

    return ddg


def generate_suite(
    n_loops: int,
    seed: int = 1998,
    profile: GeneratorProfile = GeneratorProfile(),
    name_prefix: str = "synth",
) -> List[Ddg]:
    """Generate a deterministic suite of ``n_loops`` synthetic loops."""
    rng = random.Random(seed)
    return [
        generate_loop(rng, profile, name=f"{name_prefix}{i:04d}")
        for i in range(n_loops)
    ]
