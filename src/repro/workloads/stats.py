"""Suite statistics — the reproduction of the paper's Table 1."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

from ..ddg.graph import Ddg
from ..ddg.scc import find_sccs


@dataclass(frozen=True)
class StatRow:
    """Min / average / max of one suite statistic."""

    name: str
    minimum: float
    average: float
    maximum: float

    def format(self) -> str:
        """One Table 1 row."""
        return (
            f"{self.name:<28} {self.minimum:>6.0f} {self.average:>8.1f} "
            f"{self.maximum:>6.0f}"
        )


@dataclass(frozen=True)
class SuiteStatistics:
    """The four Table 1 rows plus suite-level counts."""

    n_loops: int
    n_loops_with_sccs: int
    nodes: StatRow
    sccs_per_loop: StatRow
    scc_nodes: StatRow
    edges: StatRow

    def rows(self) -> List[StatRow]:
        """All rows in Table 1 order."""
        return [self.nodes, self.sccs_per_loop, self.scc_nodes, self.edges]

    def format_table(self) -> str:
        """Render in the paper's Table 1 layout."""
        header = f"{'Statistic':<28} {'Min':>6} {'Avg':>8} {'Max':>6}"
        lines = [header, "-" * len(header)]
        lines.extend(row.format() for row in self.rows())
        lines.append(
            f"({self.n_loops} loops, {self.n_loops_with_sccs} containing "
            f"SCCs)"
        )
        return "\n".join(lines)


def _row(name: str, samples: Sequence[float]) -> StatRow:
    if not samples:
        return StatRow(name=name, minimum=0.0, average=0.0, maximum=0.0)
    return StatRow(
        name=name,
        minimum=min(samples),
        average=sum(samples) / len(samples),
        maximum=max(samples),
    )


def suite_statistics(loops: Iterable[Ddg]) -> SuiteStatistics:
    """Compute Table 1 statistics over ``loops``.

    Matching the paper's presentation: "SCCs per loop" averages over all
    loops; "Nodes in non-trivial SCCs" is computed over the loops that
    contain at least one SCC (its published minimum of 2 is only possible
    on that subpopulation).  Only multi-node SCCs count here — Table 1's
    minimum of 2 shows the paper's suite had no single-node recurrences
    left (recurrence back-substitution had been applied), so self-loop
    accumulators are excluded from the *statistics* even though the
    assignment algorithm still treats them as recurrences.
    """
    node_counts: List[int] = []
    edge_counts: List[int] = []
    scc_counts: List[int] = []
    scc_node_counts: List[int] = []
    for ddg in loops:
        partition = find_sccs(ddg)
        multi_node = [scc for scc in partition.sccs if len(scc) >= 2]
        node_counts.append(len(ddg))
        edge_counts.append(ddg.edge_count())
        scc_counts.append(len(multi_node))
        if multi_node:
            scc_node_counts.append(sum(len(s) for s in multi_node))
    return SuiteStatistics(
        n_loops=len(node_counts),
        n_loops_with_sccs=len(scc_node_counts),
        nodes=_row("Nodes", node_counts),
        sccs_per_loop=_row("SCCs per loop", scc_counts),
        scc_nodes=_row("Nodes in non-trivial SCCs", scc_node_counts),
        edges=_row("Edges", edge_counts),
    )
