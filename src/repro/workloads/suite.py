"""The evaluation loop suite.

``paper_suite`` reproduces the shape of the paper's 1327-loop input set:
every hand-written kernel (Livermore-style ground truth) plus synthetic
loops calibrated to Table 1, all fully deterministic for a given seed.

The suite size is parameterized so the benchmark harness can run quick
subsets (``REPRO_SUITE_SIZE`` environment variable, see
``benchmarks/conftest.py``) while tests of the Table 1 statistics use the
full 1327.
"""

from __future__ import annotations

from typing import List, Optional

from ..ddg.graph import Ddg
from .kernels import all_kernels
from .synthetic import GeneratorProfile, generate_suite

#: Size of the paper's suite.
PAPER_SUITE_SIZE = 1327

#: Seed fixed once for reproducibility of every number in EXPERIMENTS.md.
DEFAULT_SEED = 1998


def paper_suite(
    n_loops: int = PAPER_SUITE_SIZE,
    seed: int = DEFAULT_SEED,
    profile: Optional[GeneratorProfile] = None,
    include_kernels: bool = True,
) -> List[Ddg]:
    """Build the evaluation suite: kernels first, synthetic fill after.

    ``n_loops`` below the kernel count simply truncates the kernel list
    (useful for very quick smoke runs).
    """
    if n_loops < 1:
        raise ValueError("a suite needs at least one loop")
    loops: List[Ddg] = all_kernels() if include_kernels else []
    if len(loops) >= n_loops:
        return loops[:n_loops]
    synthetic = generate_suite(
        n_loops - len(loops),
        seed=seed,
        profile=profile if profile is not None else GeneratorProfile(),
    )
    return loops + synthetic
