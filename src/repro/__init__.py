"""repro — Effective Cluster Assignment for Modulo Scheduling.

A faithful reimplementation of Nystrom & Eichenberger (MICRO-31, 1998):
a pre-scheduling cluster assignment phase that lets any traditional
modulo scheduler produce efficient software pipelines for clustered VLIW
machines with explicit inter-cluster copies.

Quick start::

    from repro import build_ddg, Opcode, two_cluster_gp, compile_loop

    loop = build_ddg(
        ops=[("a", Opcode.LOAD), ("b", Opcode.FP_MULT), ("c", Opcode.STORE)],
        deps=[("a", "b", 0), ("b", "c", 0)],
    )
    result = compile_loop(loop, two_cluster_gp())
    print(result.ii, result.copy_count)
    print(result.schedule.format_kernel())
"""

from . import obs
from .core import (
    ALL_VARIANTS,
    HEURISTIC,
    HEURISTIC_ITERATIVE,
    SIMPLE,
    SIMPLE_ITERATIVE,
    AssignmentConfig,
    AssignmentStats,
    CompilationError,
    CompiledLoop,
    assign_clusters,
    compile_loop,
)
from .ddg import (
    AnnotatedDdg,
    Ddg,
    Edge,
    FuClass,
    Node,
    Opcode,
    build_ddg,
    find_sccs,
    mii,
    rec_mii,
    res_mii,
    trivial_annotation,
)
from .machine import (
    BusInterconnect,
    ClusterSpec,
    Machine,
    PointToPointInterconnect,
    UnitMix,
    bused_machine,
    four_cluster_fs,
    four_cluster_gp,
    four_cluster_grid,
    fs_units,
    gp_units,
    n_cluster_gp,
    two_cluster_fs,
    two_cluster_gp,
    unified_fs,
    unified_gp,
)
from .scheduling import (
    Schedule,
    stage_schedule,
    assert_valid,
    check_schedule,
    modulo_schedule,
    schedule_with_ii_search,
)
from .sim import assert_executes_correctly, simulate_schedule

__version__ = "1.0.0"

__all__ = [
    "ALL_VARIANTS",
    "AnnotatedDdg",
    "AssignmentConfig",
    "AssignmentStats",
    "BusInterconnect",
    "ClusterSpec",
    "CompilationError",
    "CompiledLoop",
    "Ddg",
    "Edge",
    "FuClass",
    "HEURISTIC",
    "HEURISTIC_ITERATIVE",
    "Machine",
    "Node",
    "Opcode",
    "PointToPointInterconnect",
    "SIMPLE",
    "SIMPLE_ITERATIVE",
    "Schedule",
    "UnitMix",
    "assert_executes_correctly",
    "assert_valid",
    "assign_clusters",
    "build_ddg",
    "bused_machine",
    "check_schedule",
    "compile_loop",
    "find_sccs",
    "four_cluster_fs",
    "four_cluster_gp",
    "four_cluster_grid",
    "fs_units",
    "gp_units",
    "mii",
    "modulo_schedule",
    "n_cluster_gp",
    "rec_mii",
    "res_mii",
    "schedule_with_ii_search",
    "simulate_schedule",
    "stage_schedule",
    "trivial_annotation",
    "two_cluster_fs",
    "two_cluster_gp",
    "unified_fs",
    "unified_gp",
]
