"""CONC9xx — interprocedural concurrency analysis of the sources.

Where the SRC8xx family inspects one file at a time, these rules
consume the whole-program view of :mod:`repro.lint.callgraph` — the
project symbol table, the resolved call graph, and the interprocedural
fixed points solved over its SCCs:

* ``CONC901`` — a coroutine calls a *sync* function from which a
  blocking operation is transitively reachable.  This is SRC804
  upgraded from "direct blocking call inside ``async def``" to
  "blocking call reachable from a coroutine": the helper that buries
  ``time.sleep`` two modules away stalls the event loop just the same.
* ``CONC902`` — module state is rebound inside a function reachable
  from a worker-pool task entry point.  Even a lock-guarded write (the
  SRC801-sanctioned parent-side pattern) diverges silently across the
  fork boundary: each worker mutates its own copy and nobody else sees
  it.  Advisory severity — per-process state is sometimes the point,
  but it must be an explicit decision.
* ``CONC903`` — a task payload transitively captures something that
  cannot pickle: the payload names a nested function, or calls a
  factory whose (transitive) return value contains a lambda, a
  generator expression, or an open file handle.
* ``CONC904`` — an explicit ``X.acquire()`` whose only ``X.release()``
  sits on ordinary (non-``finally``) paths: the happy path holds, and
  every exception path leaks the lock.
* ``CONC905`` — two locks acquired in both orders somewhere in the
  project (directly nested ``with`` blocks, or a call made while
  holding one lock into code that transitively takes the other) — the
  classic ABBA deadlock shape.

Findings can be suppressed with the same ``# lint: allow CODE`` pragma
the SRC8xx rules honor, either at the flagged line or at the enclosing
function's definition (a pragma above the first decorator covers the
whole function).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Set, Tuple

from .callgraph import FunctionSummary, ProjectAnalysis
from .registry import Finding, rule


def _suppressed(
    project: ProjectAnalysis,
    fn: FunctionSummary,
    lineno: int,
    code: str,
) -> bool:
    """Pragma check at the flagged line *or* the function definition."""
    source = project.source_for(fn)
    if source is None:
        return False
    return source.suppressed(lineno, code) or source.suppressed(
        fn.pragma_lineno, code
    )


def _where(fn: FunctionSummary, lineno: int) -> str:
    return f"{fn.path}:{lineno}"


@rule(
    "CONC901",
    "transitive-blocking-in-async",
    "error",
    "blocking operation transitively reachable from a coroutine",
    requires=("project",),
    artifact="project",
)
def check_transitive_blocking(target, config) -> Iterator[Finding]:
    project: ProjectAnalysis = target.project
    fns = project.functions
    for caller, callee, lineno in project.call_edges:
        caller_fn = fns[caller]
        callee_fn = fns[callee]
        if not caller_fn.is_async or callee_fn.is_async:
            continue
        reasons = project.blocking.get(callee, frozenset())
        if not reasons:
            continue
        if _suppressed(project, caller_fn, lineno, "CONC901"):
            continue
        detail = "; ".join(sorted(reasons)[:2])
        yield Finding(
            location=_where(caller_fn, lineno),
            message=(
                f"coroutine {caller!r} calls {callee!r}, from which a "
                f"blocking operation is reachable ({detail})"
            ),
            hint="push the call through run_in_executor/to_thread, or "
                 "make the helper chain async",
        )


@rule(
    "CONC902",
    "worker-global-escape",
    "warning",
    "module state rebound inside code reachable from a pool task entry",
    requires=("project",),
    artifact="project",
)
def check_worker_global_escape(target, config) -> Iterator[Finding]:
    project: ProjectAnalysis = target.project
    for name in sorted(project.functions):
        fn = project.functions[name]
        if not fn.global_writes:
            continue
        entries = project.entry_reach.get(name, frozenset())
        if not entries:
            continue
        witness = sorted(entries)[0]
        for lineno, global_name, _locked in fn.global_writes:
            if _suppressed(project, fn, lineno, "CONC902"):
                continue
            yield Finding(
                location=_where(fn, lineno),
                message=(
                    f"{name!r} rebinds module global {global_name!r} and "
                    f"is reachable from task entry {witness!r}; the write "
                    f"lands in one worker process only"
                ),
                hint="return the state to the parent instead, or add "
                     "'# lint: allow CONC902' if per-process state is "
                     "intentional",
            )


@rule(
    "CONC903",
    "transitive-unpicklable-payload",
    "error",
    "task payload transitively captures an unpicklable value",
    requires=("project",),
    artifact="project",
)
def check_transitive_unpicklable(target, config) -> Iterator[Finding]:
    project: ProjectAnalysis = target.project
    for name in sorted(project.functions):
        fn = project.functions[name]
        for lineno, display, name_refs, call_refs in fn.payload_sites:
            if _suppressed(project, fn, lineno, "CONC903"):
                continue
            for ref in name_refs:
                resolved = project.resolve(fn.module, ref, scope=name)
                if resolved is None:
                    continue
                if project.functions[resolved].nested:
                    yield Finding(
                        location=_where(fn, lineno),
                        message=(
                            f"{display}() payload references "
                            f"{resolved!r}, a nested function that "
                            f"cannot pickle into a worker"
                        ),
                        hint="hoist the function to module level or "
                             "register it as a named task",
                    )
            for ref in call_refs:
                resolved = project.resolve(fn.module, ref, scope=name)
                if resolved is None:
                    continue
                reasons = project.unpicklable.get(resolved, frozenset())
                if not reasons:
                    continue
                detail = ", ".join(sorted(reasons)[:2])
                yield Finding(
                    location=_where(fn, lineno),
                    message=(
                        f"{display}() payload calls {resolved!r}, whose "
                        f"return value transitively contains {detail}"
                    ),
                    hint="materialize the value into plain data before "
                         "dispatching",
                )


@rule(
    "CONC904",
    "lock-release-discipline",
    "error",
    "lock acquired without a release guaranteed on exception paths",
    requires=("project",),
    artifact="project",
)
def check_lock_release_discipline(target, config) -> Iterator[Finding]:
    project: ProjectAnalysis = target.project
    for name in sorted(project.functions):
        fn = project.functions[name]
        for lineno, lock_id, guaranteed in fn.lock_acquires:
            if guaranteed:
                continue
            if _suppressed(project, fn, lineno, "CONC904"):
                continue
            yield Finding(
                location=_where(fn, lineno),
                message=(
                    f"{name!r} acquires {_lock_display(lock_id)} but "
                    f"releases it on ordinary paths only; an exception "
                    f"leaks the lock"
                ),
                hint="use `with lock:` or move the release into a "
                     "`finally` block",
            )


def _lock_display(lock_id: str) -> str:
    """Human form of a lock identity (strip local-scope brackets)."""
    return lock_id.replace("<", "").replace(">", "")


@rule(
    "CONC905",
    "lock-order-inversion",
    "warning",
    "two locks acquired in both orders somewhere in the project",
    requires=("project",),
    artifact="project",
)
def check_lock_order_inversion(target, config) -> Iterator[Finding]:
    project: ProjectAnalysis = target.project
    #: ordered pair -> earliest witness (path, lineno, fn, via).
    pairs: Dict[Tuple[str, str], Tuple[FunctionSummary, int, str]] = {}

    def record(
        fn: FunctionSummary, lineno: int, outer: str, inner: str, via: str
    ) -> None:
        key = (outer, inner)
        existing = pairs.get(key)
        if existing is None or (fn.path, lineno) < (
            existing[0].path, existing[1]
        ):
            pairs[key] = (fn, lineno, via)

    for name in sorted(project.functions):
        fn = project.functions[name]
        for lineno, outer, inner in fn.lock_pairs:
            record(fn, lineno, outer, inner, "directly nested")
        for lineno, held, ref in fn.held_calls:
            resolved = project.resolve(fn.module, ref, scope=name)
            if resolved is None:
                continue
            for inner in project.locks_held.get(resolved, frozenset()):
                if inner != held:
                    record(
                        fn, lineno, held, inner,
                        f"via call to {resolved!r}",
                    )
    reported: Set[Tuple[str, str]] = set()
    for (outer, inner) in sorted(pairs):
        unordered = (min(outer, inner), max(outer, inner))
        if unordered in reported:
            continue
        if (inner, outer) not in pairs:
            continue
        reported.add(unordered)
        findings: List[Finding] = []
        suppressed = False
        for first, second in ((outer, inner), (inner, outer)):
            fn, lineno, via = pairs[(first, second)]
            if _suppressed(project, fn, lineno, "CONC905"):
                suppressed = True
                break
            findings.append(
                Finding(
                    location=_where(fn, lineno),
                    message=(
                        f"{fn.qualname!r} acquires "
                        f"{_lock_display(first)} then "
                        f"{_lock_display(second)} ({via}); the "
                        f"opposite order also exists — ABBA deadlock "
                        f"risk"
                    ),
                    hint="pick one global acquisition order for the "
                         "two locks and enforce it everywhere",
                )
            )
        if not suppressed:
            yield from findings
