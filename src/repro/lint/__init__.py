"""``repro.lint`` — pipeline-wide static analysis with stable codes.

Every invariant the assign->schedule->regalloc pipeline relies on is
re-derived from scratch by an independent rule, registered under a
stable diagnostic code grouped by artifact family (``DDG1xx``,
``MACH2xx``, ``ASSIGN3xx``, ``SCHED4xx``, ``REG5xx``, ``CERT6xx``,
``DF7xx``, ``SRC8xx``).  See ``docs/LINTING.md`` for the full catalog
and ``docs/DATAFLOW.md`` for the fixed-point engine the DF7xx family
is built on.

Entry points:

* :func:`lint_corpus_deep` / :func:`lint_loop_deep` — compile-and-lint
  (what ``repro lint`` runs);
* :func:`lint_compiled` — lint an already compiled loop (what the
  ``--lint`` pipeline gate runs);
* :func:`lint_machine` — machine description alone;
* :func:`lint_source_paths` — SRC8xx self-analysis of Python sources;
* :func:`df_mii_floor` / :func:`pressure_floor` — the static bounds as
  a library (exact-backend pruning, ROADMAP item 1);
* :func:`render` — text / JSON / SARIF 2.1.0 output.
"""

from .anacache import AnalysisCache
from .baseline import (
    apply_baseline,
    fingerprint,
    load_baseline,
    write_baseline,
)
from .callgraph import (
    FunctionSummary,
    ModuleSummary,
    ProjectAnalysis,
    build_project,
    extract_module,
    link_project,
    module_name_for,
)
from .dataflow import (
    DataflowProblem,
    DataflowResult,
    df_mii_floor,
    df_rec_mii,
    df_res_mii,
    pressure_floor,
    solve,
    solve_ddg,
)

from .diagnostics import (
    CODE_COMPILE_FAILURE,
    CODE_RULE_CRASH,
    SEVERITY_ERROR,
    SEVERITY_INFO,
    SEVERITY_WARNING,
    Diagnostic,
)
from .engine import (
    LintReport,
    LintTarget,
    lint_compiled,
    lint_corpus_deep,
    lint_loop_deep,
    lint_machine,
    lint_project,
    lint_source_file,
    lint_source_paths,
    lint_target,
    run_lint,
)
from .registry import (
    DEFAULT_CONFIG,
    FAMILIES,
    Finding,
    LintConfig,
    Rule,
    all_rules,
    rule,
    rules_in_family,
)
from .render import (
    format_json,
    format_sarif,
    format_text,
    render,
    to_json_doc,
    to_sarif,
)
from .source import SourceFile, collect_source_files

__all__ = [
    "AnalysisCache",
    "CODE_COMPILE_FAILURE",
    "CODE_RULE_CRASH",
    "DEFAULT_CONFIG",
    "DataflowProblem",
    "DataflowResult",
    "Diagnostic",
    "FAMILIES",
    "Finding",
    "FunctionSummary",
    "LintConfig",
    "LintReport",
    "LintTarget",
    "ModuleSummary",
    "ProjectAnalysis",
    "Rule",
    "SEVERITY_ERROR",
    "SEVERITY_INFO",
    "SEVERITY_WARNING",
    "SourceFile",
    "all_rules",
    "apply_baseline",
    "build_project",
    "collect_source_files",
    "extract_module",
    "fingerprint",
    "link_project",
    "load_baseline",
    "module_name_for",
    "write_baseline",
    "df_mii_floor",
    "df_rec_mii",
    "df_res_mii",
    "format_json",
    "format_sarif",
    "format_text",
    "lint_compiled",
    "lint_corpus_deep",
    "lint_loop_deep",
    "lint_machine",
    "lint_project",
    "lint_source_file",
    "lint_source_paths",
    "lint_target",
    "pressure_floor",
    "render",
    "rule",
    "rules_in_family",
    "run_lint",
    "solve",
    "solve_ddg",
    "to_json_doc",
    "to_sarif",
]
