"""Tiny graph helpers used by the lint rules.

The rules re-derive every invariant from scratch, so this module keeps
its own iterative SCC / cycle machinery instead of reusing the pipeline's
compiled views (:mod:`repro.ddg.view`) — a divergence between the two
implementations is exactly what the lint layer exists to catch.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple


def strongly_connected_components(
    nodes: Sequence[int], succs: Dict[int, List[int]]
) -> List[List[int]]:
    """Iterative Tarjan SCCs of an adjacency-dict digraph.

    Returns every component (including singletons) as a list of node
    ids in discovery order.
    """
    index: Dict[int, int] = {}
    lowlink: Dict[int, int] = {}
    on_stack: Dict[int, bool] = {}
    stack: List[int] = []
    components: List[List[int]] = []
    counter = 0

    for root in nodes:
        if root in index:
            continue
        work: List[Tuple[int, int]] = [(root, 0)]
        while work:
            node, child_index = work[-1]
            if child_index == 0:
                index[node] = lowlink[node] = counter
                counter += 1
                stack.append(node)
                on_stack[node] = True
            advanced = False
            children = succs.get(node, [])
            while child_index < len(children):
                child = children[child_index]
                child_index += 1
                if child not in index:
                    work[-1] = (node, child_index)
                    work.append((child, 0))
                    advanced = True
                    break
                if on_stack.get(child):
                    lowlink[node] = min(lowlink[node], index[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: List[int] = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return components


def has_self_loop(node: int, succs: Dict[int, List[int]]) -> bool:
    """True when ``node`` has an edge to itself in ``succs``."""
    return node in succs.get(node, [])


def cyclic_components(
    nodes: Sequence[int], succs: Dict[int, List[int]]
) -> List[List[int]]:
    """SCCs that actually contain a cycle (size > 1, or a self-loop)."""
    return [
        component
        for component in strongly_connected_components(nodes, succs)
        if len(component) > 1 or has_self_loop(component[0], succs)
    ]


def adjacency(
    edges: Iterable[Tuple[int, int]]
) -> Dict[int, List[int]]:
    """Successor adjacency dict of an edge list."""
    succs: Dict[int, List[int]] = {}
    for src, dst in edges:
        succs.setdefault(src, []).append(dst)
    return succs
