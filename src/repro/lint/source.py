"""Python-source lint targets for the SRC8xx self-analysis family.

The service layer (fork-server pool, async front door) made a class of
hazards real that no DDG rule can see: module state mutated in workers,
payloads that cannot pickle, scripts that re-execute on ``spawn``
import, blocking calls inside coroutines.  The SRC8xx rules analyze the
repro codebase itself — a :class:`SourceFile` is the lint artifact, an
``ast`` tree the graph.

Findings can be suppressed in place with a pragma comment on the
flagged line (or the line directly above it)::

    _WARM = True  # lint: allow SRC801

which mirrors how the DDG rules are silenced per-run with ``--disable``
but survives in the source where the justification belongs.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from typing import Iterable, List, Optional

_PRAGMA = re.compile(r"#\s*lint:\s*allow\s+([A-Z0-9,\s]+)")


@dataclass
class SourceFile:
    """One Python file under self-analysis.

    The AST is parsed lazily and memoized; a syntax error surfaces as a
    rule crash (``LINT001``), which is the right severity for a file
    the interpreter itself would reject.
    """

    path: str
    text: str
    _tree: Optional[ast.AST] = field(default=None, repr=False)
    _lines: Optional[List[str]] = field(default=None, repr=False)

    @property
    def name(self) -> str:
        """Display name (the path as given)."""
        return self.path

    @property
    def tree(self) -> ast.AST:
        """The parsed module AST (cached)."""
        if self._tree is None:
            self._tree = ast.parse(self.text, filename=self.path)
        return self._tree

    @property
    def lines(self) -> List[str]:
        """Source lines for pragma lookups (cached)."""
        if self._lines is None:
            self._lines = self.text.splitlines()
        return self._lines

    def suppressed(self, lineno: int, code: str) -> bool:
        """True when a ``# lint: allow CODE`` pragma covers ``lineno``.

        The pragma's code list splits on commas/whitespace and each
        token must match *exactly*: ``# lint: allow SRC8014`` does not
        silence ``SRC801``, and ``# lint: allow SRC801, CONC902``
        silences both listed codes and nothing else.
        """
        for line_index in (lineno - 1, lineno - 2):
            if 0 <= line_index < len(self.lines):
                match = _PRAGMA.search(self.lines[line_index])
                if match and code in re.split(r"[,\s]+", match.group(1)):
                    return True
        return False


def load_source_file(path: str, root: str = "") -> SourceFile:
    """Read one file into a :class:`SourceFile` with a repo-relative name."""
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    display = os.path.relpath(path, root) if root else path
    return SourceFile(path=display.replace(os.sep, "/"), text=text)


#: Directory names os.walk never descends into: caches, VCS metadata,
#: virtualenvs, and build output — ``repro lint --src .`` must not
#: spend its budget walking a virtualenv's site-packages.
_SKIP_DIRS = frozenset(
    {"__pycache__", ".git", ".hg", ".svn", ".venv", "venv",
     "build", "dist", "node_modules"}
)


def _skip_dir(name: str) -> bool:
    """Junk directories excluded from source collection."""
    return (
        name in _SKIP_DIRS
        or name.startswith(".")
        or name.endswith(".egg-info")
    )


def collect_source_files(paths: Iterable[str]) -> List[SourceFile]:
    """Expand files and directories into sorted :class:`SourceFile` s.

    Directories are walked recursively for ``*.py``, skipping hidden
    directories and common junk (``__pycache__``, ``.git``, ``.venv``/
    ``venv``, ``build``, ``dist``, ``*.egg-info``); explicit file
    paths are taken as given.  Order is deterministic so reports and
    SARIF output are stable.
    """
    found: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames if not _skip_dir(d)
                )
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        found.append(os.path.join(dirpath, filename))
        else:
            found.append(path)
    return [load_source_file(path) for path in sorted(set(found))]
