"""``MACH2xx`` — machine-description consistency.

A machine that fails these rules can silently make whole opcode
classes unschedulable or strand values on clusters they can never
leave, which surfaces much later as mysterious II blow-ups.  The rules
re-derive everything from the public machine protocol (clusters,
interconnect, resource capacities) rather than trusting the preset
constructors.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from ..machine.units import REAL_FU_CLASSES
from .registry import Finding, rule

#: (rule code, machine id) -> (machine, findings).  Machine rules are
#: pure functions of an immutable machine description, and the ``--lint``
#: pipeline gate re-lints the *same* machine once per compiled loop, so
#: the derived findings are memoized per machine object.  The machine
#: itself is kept in the entry so its ``id`` cannot be recycled while
#: the memo is alive; the memo is bounded (experiments use a handful of
#: machines at most).
_MACHINE_MEMO: Dict[Tuple[str, int], Tuple[object, tuple]] = {}


def _per_machine(code: str, machine, derive: Callable) -> tuple:
    key = (code, id(machine))
    entry = _MACHINE_MEMO.get(key)
    if entry is not None and entry[0] is machine:
        return entry[1]
    findings = tuple(derive(machine))
    if len(_MACHINE_MEMO) >= 256:
        _MACHINE_MEMO.clear()
    _MACHINE_MEMO[key] = (machine, findings)
    return findings


@rule(
    "MACH201", "empty-cluster", "error",
    "a cluster with zero function units can execute nothing",
    requires=["machine"], artifact="machine",
)
def check_empty_clusters(target, config):
    return _per_machine(
        "MACH201", target.effective_machine, _derive_empty_clusters
    )


def _derive_empty_clusters(machine):
    for cluster in machine.clusters:
        if cluster.width <= 0:
            yield Finding(
                location=f"cluster {cluster.index}",
                message=f"{cluster.name} has issue width "
                        f"{cluster.width}",
            )


@rule(
    "MACH202", "unsupported-fu-class", "warning",
    "no cluster has a unit for some function-unit class, so every "
    "loop using that class is unschedulable on this machine",
    requires=["machine"], artifact="machine",
)
def check_unsupported_fu_classes(target, config):
    return _per_machine(
        "MACH202", target.effective_machine, _derive_unsupported_fu
    )


def _derive_unsupported_fu(machine):
    if machine.general_purpose:
        return
    for fu_class in REAL_FU_CLASSES:
        if machine.issue_capacity(fu_class) <= 0:
            yield Finding(
                location=f"fu-class {fu_class.value}",
                message=(
                    f"machine-wide capacity for {fu_class.value} "
                    f"operations is 0"
                ),
                hint="loops with this opcode class can never compile",
            )


@rule(
    "MACH203", "unroutable-cluster-pair", "error",
    "the interconnect has no route between some cluster pair, so a "
    "value produced on one can never reach the other",
    requires=["machine"], artifact="machine",
)
def check_unroutable_pairs(target, config):
    return _per_machine(
        "MACH203", target.effective_machine, _derive_unroutable_pairs
    )


def _derive_unroutable_pairs(machine):
    indices = machine.cluster_indices
    for a in indices:
        for b in indices:
            if a >= b:
                continue
            try:
                machine.interconnect.route(a, b)
            except ValueError:
                yield Finding(
                    location=f"clusters {a}<->{b}",
                    message=f"no interconnect route between cluster "
                            f"{a} and cluster {b}",
                    hint="add a link, or drop the stranded cluster",
                )


@rule(
    "MACH204", "portless-cluster", "warning",
    "a clustered machine where some cluster has zero communication "
    "read or write ports cannot move values in or out of it",
    requires=["machine"], artifact="machine",
)
def check_portless_clusters(target, config):
    return _per_machine(
        "MACH204", target.effective_machine, _derive_portless_clusters
    )


def _derive_portless_clusters(machine):
    if machine.is_unified:
        return
    for cluster in machine.clusters:
        if cluster.read_ports <= 0:
            yield Finding(
                location=f"cluster {cluster.index}",
                message=f"{cluster.name} has no read ports: it can "
                        f"never send a value to another cluster",
            )
        if cluster.write_ports <= 0:
            yield Finding(
                location=f"cluster {cluster.index}",
                message=f"{cluster.name} has no write ports: it can "
                        f"never receive a value from another cluster",
            )


@rule(
    "MACH205", "channel-inconsistency", "error",
    "the interconnect's hop channels and its advertised channel pools "
    "disagree (bus vs point-to-point bookkeeping mismatch)",
    requires=["machine"], artifact="machine",
)
def check_channel_consistency(target, config):
    return _per_machine(
        "MACH205", target.effective_machine, _derive_channel_consistency
    )


def _derive_channel_consistency(machine):
    if machine.is_unified:
        return
    fabric = machine.interconnect
    pools = fabric.channel_resources()
    if fabric.broadcast and not pools:
        yield Finding(
            location="interconnect",
            message="broadcast fabric advertises no channel pools",
        )
        return
    indices = machine.cluster_indices
    for a in indices:
        for b in indices:
            if a == b or not fabric.reachable(a, b):
                continue
            try:
                channel = fabric.channel_for_hop(a, b)
            except ValueError as exc:
                yield Finding(
                    location=f"hop {a}->{b}",
                    message=f"reachable hop has no channel: {exc}",
                )
                continue
            if channel not in pools:
                yield Finding(
                    location=f"hop {a}->{b}",
                    message=(
                        f"hop channel {channel!r} is not in the "
                        f"advertised channel pools"
                    ),
                    hint="channel_for_hop and channel_resources must "
                         "agree",
                )


@rule(
    "MACH206", "zero-capacity-channel", "error",
    "a channel pool with per-cycle capacity <= 0 blocks every copy "
    "routed through it",
    requires=["machine"], artifact="machine",
)
def check_zero_capacity_channels(target, config):
    return _per_machine(
        "MACH206", target.effective_machine, _derive_zero_capacity
    )


def _derive_zero_capacity(machine):
    for channel, capacity in sorted(
        machine.interconnect.channel_resources().items(), key=str
    ):
        if capacity <= 0:
            yield Finding(
                location=f"channel {channel!r}",
                message=f"channel pool {channel!r} has capacity "
                        f"{capacity}",
            )
