"""Fixed-point dataflow analysis over cyclic kernel DDGs.

Modulo-scheduled loops are *cyclic* programs: a distance-``d`` edge
connects iteration ``i`` to iteration ``i + d``, and once an initiation
interval II is fixed, crossing it shifts time by ``II * d`` cycles.
Classic dataflow frameworks assume an acyclic CFG with loop headers;
here every strongly connected component of the DDG is a recurrence and
the transfer functions themselves depend on II.  This module provides

* a generic worklist engine (:func:`solve`) that iterates each SCC of
  the dependence graph to a fixed point in condensation topological
  order — forward or backward, may (join) or must (meet) confluence —
  with optional widening so non-Noetherian lattices still terminate;
* the standard lattices the DF rules use (:class:`BoolLattice`,
  :class:`SetLattice`, :class:`LongestPathLattice`);
* concrete analyses built on the engine: cyclic liveness
  (:func:`live_values` / :func:`dead_values`), inter-cluster
  reachability closure (:func:`cluster_reachability`), modulo-II
  longest paths (:func:`longest_paths`), and the static bounds
  :func:`df_mii_floor` (a sound MII tightening) and
  :func:`pressure_floor` (a per-cluster register lower bound).

The engine consumes the compiled CSR views of :mod:`repro.ddg.view`
(``edge_array`` tuples ``(src, dst, latency(src), distance)``) but keeps
its own SCC machinery (:mod:`repro.lint._graph`): the DF rules are lint
rules, and re-deriving structure independently of the pipeline is the
point.

Soundness of the static bounds
------------------------------
All lower bounds here are *relaxations*: they ignore some constraints a
real schedule must satisfy, so they can only under-approximate the true
minimum.  ``df_mii_floor`` counts issue slots of operations whose
relative kernel rows are already *forced* by zero-slack recurrences
(see :func:`forced_row_groups`); ``pressure_floor`` lower-bounds each
value's lifetime by the longest dependence path to its consumers.  Both
are cross-checked against the real pipeline by the differential tests
in ``tests/lint/test_dataflow.py``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..obs.trace import count as obs_count
from ._graph import strongly_connected_components

#: An edge spec as the compiled views carry it.
EdgeSpec = Tuple[int, int, int, int]  # (src, dst, latency(src), distance)

FORWARD = "forward"
BACKWARD = "backward"

#: Longest-path lattice extremes.  ``NEG_INF`` is unreachable (bottom),
#: ``POS_INF`` is the widened top: a positive-weight cycle pumps the
#: path length without bound, i.e. the candidate II is infeasible.
NEG_INF = float("-inf")
POS_INF = float("inf")


# ----------------------------------------------------------------------
# Lattices
# ----------------------------------------------------------------------
class BoolLattice:
    """Two-point lattice: ``False`` (bottom) below ``True`` (top)."""

    bottom = False
    top = True

    @staticmethod
    def join(a: bool, b: bool) -> bool:
        return a or b

    @staticmethod
    def meet(a: bool, b: bool) -> bool:
        return a and b

    @staticmethod
    def widen(old: bool, new: bool) -> bool:
        return True


class SetLattice:
    """Powerset lattice over a fixed universe (may = union joins)."""

    def __init__(self, universe: Iterable) -> None:
        self.bottom: FrozenSet = frozenset()
        self.top: FrozenSet = frozenset(universe)

    @staticmethod
    def join(a: FrozenSet, b: FrozenSet) -> FrozenSet:
        return a | b

    @staticmethod
    def meet(a: FrozenSet, b: FrozenSet) -> FrozenSet:
        return a & b

    def widen(self, old: FrozenSet, new: FrozenSet) -> FrozenSet:
        return self.top


class LongestPathLattice:
    """Max-plus path lengths: ``-inf`` < integers < ``+inf``.

    The integer chain is unbounded, so fixed-point iteration inside an
    SCC needs *widening*: after ``|SCC|`` improvements a node's value
    can only still be rising because a positive-weight cycle feeds it,
    and the honest answer is ``+inf`` (the Bellman–Ford argument).
    """

    bottom = NEG_INF
    top = POS_INF

    @staticmethod
    def join(a, b):
        return a if a >= b else b

    @staticmethod
    def meet(a, b):
        return a if a <= b else b

    @staticmethod
    def widen(old, new):
        return POS_INF


# ----------------------------------------------------------------------
# Problems and results
# ----------------------------------------------------------------------
@dataclass
class DataflowProblem:
    """One analysis: a lattice plus direction, confluence, and transfer.

    ``init(node)`` is the boundary value: the value of a node with no
    incoming flow edges, and (for may problems) a generated value joined
    into every node's confluence.  ``transfer(edge, value)`` pushes a
    value across one dependence edge — the edge spec carries the
    distance, so modulo-II wraparound lives entirely in the transfer
    function (weight ``latency - II * distance`` for path problems;
    identity for reachability-style problems, where a cross-iteration
    edge is an ordinary flow edge once the kernel reaches steady state).

    ``may=True`` joins flow-in values (union/max/or — "along *some*
    path"); ``may=False`` meets them ("along *every* path").  ``widen``
    bounds per-node updates inside an SCC at ``widen_after * |SCC|``
    before jumping to the lattice's top.

    ``condense=False`` skips the Tarjan condensation and runs one
    worklist over the whole graph.  Monotone problems converge either
    way; condensation only tightens the visit order (and the widening
    window), so reachability-style analyses whose transfer is the
    identity — liveness, closure — can skip its cost.
    """

    lattice: object
    direction: str = FORWARD
    may: bool = True
    init: Callable = None
    transfer: Callable = None
    widen: bool = False
    widen_after: int = 1
    condense: bool = True

    def __post_init__(self) -> None:
        if self.direction not in (FORWARD, BACKWARD):
            raise ValueError(f"unknown direction {self.direction!r}")
        if self.init is None:
            bottom = self.lattice.bottom
            self.init = lambda node: bottom
        if self.transfer is None:
            self.transfer = lambda edge, value: value


@dataclass
class DataflowResult:
    """Fixed-point values plus convergence statistics.

    ``node_visits`` counts worklist pops (one recompute each) and is
    deterministic for a given graph — the convergence tests pin it.
    ``widened`` holds the nodes forced to the lattice top; for the
    longest-path lattice a non-empty set is a positive-cycle proof.
    """

    values: Dict[int, object] = field(default_factory=dict)
    node_visits: int = 0
    scc_count: int = 0
    widened: Set[int] = field(default_factory=set)

    @property
    def converged(self) -> bool:
        """True when the fixed point was reached without widening."""
        return not self.widened


# ----------------------------------------------------------------------
# The worklist engine
# ----------------------------------------------------------------------
def solve(
    nodes: Sequence[int],
    edges: Sequence[EdgeSpec],
    problem: DataflowProblem,
) -> DataflowResult:
    """Solve ``problem`` to a fixed point over ``(nodes, edges)``.

    The graph is condensed into SCCs (the lint layer's own Tarjan) and
    the components are solved in topological order of the condensation
    — flipped for backward problems — so each SCC sees final values
    from everything upstream and iterates only over its own members.
    Within an SCC a FIFO worklist (seeded in ascending node order)
    recomputes confluence + transfer until nothing changes; monotone
    transfer functions on a finite-height lattice converge, and
    ``problem.widen`` handles the infinite-height ones.
    """
    lattice = problem.lattice
    forward = problem.direction == FORWARD
    # Flow edges: (flow_src, flow_dst, original spec).  Backward
    # problems traverse dependence edges against their direction.
    flow_in: Dict[int, List[Tuple[int, EdgeSpec]]] = {n: [] for n in nodes}
    flow_out: Dict[int, List[int]] = {n: [] for n in nodes}
    for spec in edges:
        src, dst = (spec[0], spec[1]) if forward else (spec[1], spec[0])
        flow_in[dst].append((src, spec))
        flow_out[src].append(dst)

    if problem.condense:
        sccs = strongly_connected_components(list(nodes), flow_out)
        # Tarjan emits components children-first (reverse topological
        # order of the condensation over ``flow_out``), so flipping the
        # list gives the sources-first order the propagation needs.
        sccs = list(reversed(sccs))
    else:
        sccs = [list(nodes)]

    result = DataflowResult(scc_count=len(sccs))
    values = result.values
    may = problem.may
    join = lattice.join if may else lattice.meet
    transfer = problem.transfer
    init = problem.init
    visits = 0

    for component in sccs:
        # Singleton without a self-loop: its fixed point is a single
        # confluence + transfer step (the worklist would pop it exactly
        # once), so skip the queue machinery.  Mostly-acyclic DDGs put
        # nearly every node on this path.
        if len(component) == 1:
            (node,) = component
            if node not in flow_out[node]:
                visits += 1
                incoming = flow_in[node]
                if incoming:
                    acc = None
                    for flow_src, spec in incoming:
                        value = transfer(spec, values[flow_src])
                        acc = value if acc is None else join(acc, value)
                    if may:
                        acc = join(acc, init(node))
                else:
                    acc = init(node)
                values[node] = acc
                continue
        members = sorted(component)
        member_set = frozenset(members)
        for node in members:
            values[node] = init(node)
        limit = max(1, problem.widen_after) * len(members) + 1
        updates = {node: 0 for node in members}
        pending = deque(members)
        queued = set(members)
        while pending:
            node = pending.popleft()
            queued.discard(node)
            visits += 1
            incoming = flow_in[node]
            if incoming:
                acc = None
                for flow_src, spec in incoming:
                    value = transfer(spec, values[flow_src])
                    acc = value if acc is None else join(acc, value)
                if may:
                    acc = join(acc, init(node))
            else:
                acc = init(node)
            if acc == values[node]:
                continue
            updates[node] += 1
            if problem.widen and updates[node] > limit:
                acc = lattice.widen(values[node], acc)
                result.widened.add(node)
            values[node] = acc
            for succ in flow_out[node]:
                if succ in member_set and succ not in queued:
                    pending.append(succ)
                    queued.add(succ)
    result.node_visits = visits
    obs_count("lint.dataflow_solves")
    obs_count("lint.dataflow_node_visits", result.node_visits)
    return result


def solve_ddg(ddg, problem: DataflowProblem) -> DataflowResult:
    """:func:`solve` over a DDG's compiled view."""
    view = ddg.view()
    return solve(view.node_ids, view.edge_array, problem)


# ----------------------------------------------------------------------
# Liveness
# ----------------------------------------------------------------------
def live_values(ddg) -> DataflowResult:
    """Backward may-analysis: which nodes (transitively) feed an effect.

    A node is *live* when it performs an observable effect itself
    (stores, branches — anything that produces no register value) or
    when its value flows, through any chain of value edges, into a live
    consumer.  Cross-iteration uses count: the recurrence edges of an
    SCC keep a value live across the modulo kernel's wraparound.  A
    pure self-dependence does **not** keep a value alive — an
    accumulator nobody reads is still dead code.
    """
    view = ddg.view()
    produces = view.produces_value
    out_specs = view.out_specs
    value_edges = [
        (src, dst, 0, 0)
        for src in view.node_ids
        if produces[src]
        for dst, _distance in out_specs[src]
        if dst != src
    ]
    problem = DataflowProblem(
        lattice=BoolLattice,
        direction=BACKWARD,
        may=True,
        init=lambda node: not produces[node],
        condense=False,  # plain reachability: Tarjan buys nothing
    )
    return solve(view.node_ids, value_edges, problem)


#: id(ddg) -> (weakref to the graph, its liveness map).  Liveness
#: depends on the graph alone, so a multi-machine sweep linting the
#: same loop against every preset pays for the fixed point once.
_LIVE_CACHE: Dict[int, tuple] = {}


def cached_live_values(ddg) -> Dict[int, bool]:
    """The :func:`live_values` map, memoized per graph object."""
    return _object_memo(
        _LIVE_CACHE, ddg, lambda graph: live_values(graph).values
    )


def dead_values(ddg) -> List[int]:
    """Value-producing nodes whose results never reach any effect."""
    live = live_values(ddg).values
    return [n for n in ddg.view().node_ids if not live[n]]


# ----------------------------------------------------------------------
# Per-object memoization
# ----------------------------------------------------------------------
def _object_memo(cache: Dict[int, tuple], obj, compute):
    """Memoize ``compute(obj)`` keyed by object identity.

    Entries hold a weakref alongside the value so a recycled ``id``
    can never serve a stale result; objects that refuse weakrefs are
    computed but stay uncached.  The ``--lint`` gate hits these caches
    once per compiled loop against long-lived machines and graphs.
    """
    import weakref

    key = id(obj)
    hit = cache.get(key)
    if hit is not None and hit[0]() is obj:
        return hit[1]
    value = compute(obj)
    try:
        ref = weakref.ref(obj)
    except TypeError:  # uncachable: still return the fresh value
        return value
    if len(cache) > 64:
        cache.clear()
    cache[key] = (ref, value)
    return value


# ----------------------------------------------------------------------
# Cluster reachability
# ----------------------------------------------------------------------
#: id(machine) -> (weakref to the machine, its reachability closure).
_REACH_CACHE: Dict[int, tuple] = {}


def cluster_reachability(machine) -> Dict[int, FrozenSet[int]]:
    """Transitive inter-cluster closure: ``senders[c]`` can reach ``c``.

    Forward may-analysis over the cluster graph whose arcs are the
    interconnect's one-hop ``reachable`` pairs — a value can ride a
    chain of copies, so multi-hop point-to-point routes count.  Every
    cluster reaches itself.  Memoized per machine object.
    """
    return _object_memo(_REACH_CACHE, machine, _compute_reachability)


def _compute_reachability(machine) -> Dict[int, FrozenSet[int]]:
    clusters = machine.cluster_indices
    hops: List[EdgeSpec] = [
        (a, b, 0, 0)
        for a in clusters
        for b in clusters
        if a != b and machine.interconnect.reachable(a, b)
    ]
    problem = DataflowProblem(
        lattice=SetLattice(clusters),
        direction=FORWARD,
        may=True,
        init=lambda c: frozenset((c,)),
    )
    return solve(clusters, hops, problem).values


# ----------------------------------------------------------------------
# Modulo-II longest paths
# ----------------------------------------------------------------------
def longest_paths(
    nodes: Sequence[int],
    edges: Sequence[EdgeSpec],
    sources: Iterable[int],
    ii: int,
) -> Optional[Dict[int, float]]:
    """Longest dependence paths from ``sources`` at candidate ``ii``.

    Edge weights are ``latency - II * distance`` — the modulo-II
    wraparound of cross-iteration edges.  For any legal schedule at
    this II, ``start[v] - start[u] >= lp(u -> v)``.  Returns ``None``
    when widening fires: a strictly positive cycle is reachable, so no
    schedule exists at ``ii`` (this is the RecMII infeasibility proof).
    Unreachable nodes sit at ``NEG_INF``.
    """
    source_set = frozenset(sources)
    problem = DataflowProblem(
        lattice=LongestPathLattice,
        direction=FORWARD,
        may=True,
        init=lambda node: 0 if node in source_set else NEG_INF,
        transfer=lambda spec, value: (
            NEG_INF if value == NEG_INF
            else value + spec[2] - ii * spec[3]
        ),
        widen=True,
    )
    result = solve(nodes, edges, problem)
    if not result.converged:
        return None
    return result.values


def df_rec_mii(ddg) -> int:
    """Recurrence MII, re-derived through the dataflow engine.

    Binary search over candidate IIs; a candidate is feasible iff the
    widening longest-path analysis converges with every node as a
    source (no positive cycle anywhere).  Positive cycles live entirely
    inside SCCs, so each nontrivial component is searched over its own
    subgraph — the ``--lint`` gate runs this per compiled loop, and
    probing the whole graph per candidate would dominate the budget.
    Deliberately independent of :mod:`repro.ddg.mii` — agreement
    between the two is a differential test, not an import.
    """
    view = ddg.view()
    edges = view.edge_array
    if not edges:
        return 0
    succs: Dict[int, List[int]] = {}
    for spec in edges:
        succs.setdefault(spec[0], []).append(spec[1])
    bound = 0
    for component in strongly_connected_components(
        list(view.node_ids), succs
    ):
        if len(component) == 1 and component[0] not in view.self_loops:
            continue
        members = sorted(component)
        member_set = set(members)
        scc_edges = [
            spec for spec in edges
            if spec[0] in member_set and spec[1] in member_set
        ]
        upper = max(sum(view.latency[n] for n in members), 1)
        if longest_paths(members, scc_edges, members, upper) is None:
            raise ValueError(
                "dependence cycle with zero total distance: "
                "no II makes the kernel feasible"
            )
        # A component already feasible at the running bound cannot
        # raise it; skip its search outright.
        if longest_paths(members, scc_edges, members, bound) is not None:
            continue
        low, high = bound, upper  # infeasible at low, feasible at high
        while high - low > 1:
            mid = (low + high) // 2
            if longest_paths(members, scc_edges, members, mid) is None:
                low = mid
            else:
                high = mid
        bound = high
    return bound


def df_res_mii(ddg, machine) -> int:
    """Resource MII, re-derived: per-class demand over capacity."""
    demand: Dict[object, int] = {}
    for node in ddg.nodes:
        if node.is_copy:
            continue
        demand[node.fu_class] = demand.get(node.fu_class, 0) + 1
    if not demand:
        return 1
    if machine.general_purpose:
        total = sum(demand.values())
        width = machine.total_width
        if width <= 0:
            raise ValueError("machine has no function units")
        return max(1, -(-total // width))
    bound = 1
    for fu_class, count in demand.items():
        capacity = machine.issue_capacity(fu_class)
        if capacity <= 0:
            raise ValueError(f"machine cannot execute {fu_class} ops")
        bound = max(bound, -(-count // capacity))
    return bound


# ----------------------------------------------------------------------
# Forced kernel rows and the MII floor
# ----------------------------------------------------------------------
def forced_row_groups(
    ddg, ii: int
) -> Optional[List[Dict[int, int]]]:
    """Groups of nodes whose *relative* kernel rows ``ii`` forces.

    Within an SCC, nodes ``u`` and ``v`` are mutually tight at ``ii``
    when ``lp(u->v) + lp(v->u) == 0``: the schedule inequalities pin
    ``start[v] - start[u]`` to exactly ``lp(u->v)``, so the two occupy
    kernel rows a fixed ``lp(u->v) mod II`` apart.  Mutual tightness is
    transitive (path concatenation), so it partitions each SCC into
    groups; each group is returned as ``{node: forced offset}`` with an
    arbitrary member anchored at 0.  Returns ``None`` when some SCC has
    a positive cycle at ``ii`` (infeasible outright).
    """
    view = ddg.view()
    succs: Dict[int, List[int]] = {}
    for src, dst, _lat, _dist in view.edge_array:
        succs.setdefault(src, []).append(dst)
    groups: List[Dict[int, int]] = []
    for component in strongly_connected_components(
        list(view.node_ids), succs
    ):
        if len(component) == 1 and component[0] not in view.self_loops:
            continue
        members = sorted(component)
        member_set = set(members)
        scc_edges = [
            spec for spec in view.edge_array
            if spec[0] in member_set and spec[1] in member_set
        ]
        lp: Dict[int, Dict[int, float]] = {}
        for source in members:
            row = longest_paths(members, scc_edges, (source,), ii)
            if row is None:
                return None
            lp[source] = row
        grouped: Set[int] = set()
        for anchor in members:
            if anchor in grouped:
                continue
            group = {
                node: int(lp[anchor][node])
                for node in members
                if lp[anchor][node] != NEG_INF
                and lp[node][anchor] != NEG_INF
                and lp[anchor][node] + lp[node][anchor] == 0
            }
            grouped.update(group)
            groups.append(group)
    return groups


def _forced_rows_fit(ddg, machine, ii: int) -> bool:
    """Can the rows forced at ``ii`` fit the machine's issue rows?

    A sound relaxation of the full scheduling problem: only *machine-
    wide* per-row capacity is checked (cluster assignment can shuffle
    ops between clusters but cannot mint issue slots), different forced
    groups may still slide relative to each other (so their counts are
    never added), and copies are exempt from issue rows (the paper's
    copies consume communication resources only) but do contend for a
    broadcast bus row slot.
    """
    groups = forced_row_groups(ddg, ii)
    if groups is None:
        return False
    bus_capacity = (
        machine.interconnect.channel_resources().get("bus")
        if machine.interconnect.broadcast else None
    )
    for group in groups:
        rows: Dict[Tuple[int, object], int] = {}
        bus_rows: Dict[int, int] = {}
        for node_id, offset in group.items():
            node = ddg.node(node_id)
            row = offset % ii
            if node.is_copy:
                if bus_capacity is not None:
                    bus_rows[row] = bus_rows.get(row, 0) + 1
                continue
            key = (row, "gp" if machine.general_purpose else node.fu_class)
            rows[key] = rows.get(key, 0) + 1
        for (row, fu_class), used in rows.items():
            capacity = (
                machine.total_width if fu_class == "gp"
                else machine.issue_capacity(fu_class)
            )
            if used > capacity:
                return False
        if bus_capacity is not None:
            for row, used in bus_rows.items():
                if used > bus_capacity:
                    return False
    return True


def df_mii_floor(ddg, machine, max_tighten: int = 8) -> int:
    """A sound static lower bound on the initiation interval.

    Starts from ``max(RecMII, ResMII)`` (both re-derived here, not
    imported from the pipeline) and tightens upward: any candidate II
    whose forced-row groups overflow a machine-wide issue row is proven
    infeasible, so the floor rises to the next candidate.  Tightening
    stops after ``max_tighten`` steps — every returned value is backed
    by an explicit infeasibility proof for all smaller IIs, so the
    result never exceeds the true minimum (the property the exact-
    oracle differential test pins).
    """
    base = max(df_rec_mii(ddg), df_res_mii(ddg, machine), 1)
    floor = base
    for _ in range(max(0, max_tighten)):
        if _forced_rows_fit(ddg, machine, floor):
            return floor
        floor += 1
        obs_count("lint.df_mii_tightened")
    return floor


# ----------------------------------------------------------------------
# Register-pressure floor
# ----------------------------------------------------------------------
def min_lifetimes(annotated, ii: int) -> Optional[Dict[Tuple[int, int], int]]:
    """Static minimum lifetime of each ``(producer, cluster)`` register.

    Mirrors :func:`repro.regalloc.lifetimes.extract_lifetimes` with the
    schedule replaced by its dataflow relaxation: a value born at
    ``start[v] + lat(v)`` and last read at ``start[u] + II * d`` lives
    at least ``lp(v->u) + II * d - lat(v)`` cycles, because any legal
    schedule keeps ``start[u] - start[v] >= lp(v->u)``.  Pairs with no
    consumer in the cluster are omitted, exactly as the allocator omits
    them.  Returns ``None`` when ``ii`` is infeasible outright.
    """
    ddg = annotated.ddg
    view = ddg.view()
    cluster_of = annotated.cluster_of
    produced_into: Dict[int, Tuple[int, ...]] = {}
    for node in ddg.nodes:
        if not node.produces_value:
            continue
        if node.is_copy:
            produced_into[node.node_id] = tuple(
                annotated.copy_targets[node.node_id]
            )
        else:
            produced_into[node.node_id] = (cluster_of[node.node_id],)
    floors: Dict[Tuple[int, int], int] = {}
    nodes = view.node_ids
    edges = view.edge_array
    for producer, clusters in produced_into.items():
        lp = longest_paths(nodes, edges, (producer,), ii)
        if lp is None:
            return None
        latency = view.latency[producer]
        for dst, distance in view.out_specs[producer]:
            length = int(lp[dst]) + ii * distance - latency
            key = (producer, cluster_of[dst])
            if key[1] not in clusters:
                continue
            prior = floors.get(key)
            if prior is None or length > prior:
                floors[key] = max(0, length)
    return floors


def pressure_floor(annotated, ii: int) -> Optional[Dict[int, int]]:
    """Per-cluster lower bound on MVE registers at ``ii``.

    Each live value occupies its register file for ``max(1, length)``
    cycles per iteration (a zero-length value still holds its register
    for the producing cycle), and one register supplies II cycles per
    iteration, so cluster ``c`` needs at least
    ``ceil(sum(max(1, L_min)) / II)`` registers — for *every* schedule
    at this II, not just the one the pipeline found.  ``None`` when the
    II is infeasible.
    """
    floors = min_lifetimes(annotated, ii)
    if floors is None:
        return None
    demand: Dict[int, int] = {}
    for (_producer, cluster), length in floors.items():
        demand[cluster] = demand.get(cluster, 0) + max(1, length)
    return {
        cluster: -(-cycles // ii) for cluster, cycles in demand.items()
    }
