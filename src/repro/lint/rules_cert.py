"""CERT6xx — certificate verification bridged into the lint stream.

These rules emit and verify a full compilation certificate
(:mod:`repro.certify`) for a compiled target and re-report each checker
section's issues under its stable code, so certificate failures flow
through the same report/render/gate machinery as every other finding.

Certification re-derives MII witnesses, routes, occupancy tables, and
lifetimes, so the family is default-off; ``repro certify`` and the
``--certify`` pipeline gate enable it implicitly, and ``repro lint
--enable CERT600 ...`` opts in explicitly.  The certified artifact is
memoized on the target cache, so enabling several CERT rules still
certifies once.
"""

from __future__ import annotations

from typing import Iterable, List

from .registry import Finding, rule

_CACHE_KEY = "certify.artifact"

_REQUIRES = ("graph", "machine", "annotated", "schedule")


def _certified(target):
    """The target's certified artifact, computed once per target."""
    artifact = target.cache.get(_CACHE_KEY)
    if artifact is None:
        from ..certify.check import check_certificate
        from ..certify.emit import certificate_for
        from ..certify.gate import CertifiedArtifact
        from ..ddg.mii import mii

        graph = target.graph
        machine = target.effective_machine
        certificate = certificate_for(
            graph,
            machine,
            target.annotated,
            target.schedule,
            mii(graph, machine.unified_equivalent()),
        )
        artifact = CertifiedArtifact(
            certificate,
            tuple(check_certificate(certificate, graph, machine)),
        )
        target.cache[_CACHE_KEY] = artifact
    return artifact


def _section(target, code: str) -> List[Finding]:
    return [
        Finding(location=issue.location, message=issue.message)
        for issue in _certified(target).issues
        if issue.code == code
    ]


@rule(
    "CERT600",
    "cert-graph-fidelity",
    "error",
    "annotated graph witness is a faithful extension of the input DDG",
    requires=_REQUIRES,
    artifact="annotated",
    default_enabled=False,
)
def check_cert_graph(target, config) -> Iterable[Finding]:
    return _section(target, "CERT600")


@rule(
    "CERT601",
    "cert-recurrence-witness",
    "error",
    "RecMII witness cycle exists, is maximal, and attains its bound",
    requires=_REQUIRES,
    artifact="ddg",
    default_enabled=False,
)
def check_cert_recurrence(target, config) -> Iterable[Finding]:
    return _section(target, "CERT601")


@rule(
    "CERT602",
    "cert-resource-witness",
    "error",
    "ResMII counting evidence matches an independent recount",
    requires=_REQUIRES,
    artifact="machine",
    default_enabled=False,
)
def check_cert_resources(target, config) -> Iterable[Finding]:
    return _section(target, "CERT602")


@rule(
    "CERT603",
    "cert-copy-routing",
    "error",
    "every cross-cluster value flow rides a legal witnessed copy route",
    requires=_REQUIRES,
    artifact="annotated",
    default_enabled=False,
)
def check_cert_assignment(target, config) -> Iterable[Finding]:
    return _section(target, "CERT603")


@rule(
    "CERT604",
    "cert-timing",
    "error",
    "per-edge timing slack witnesses are correct and non-negative",
    requires=_REQUIRES,
    artifact="schedule",
    default_enabled=False,
)
def check_cert_timing(target, config) -> Iterable[Finding]:
    return _section(target, "CERT604")


@rule(
    "CERT605",
    "cert-occupancy",
    "error",
    "per-(resource, row) occupancy slots match capacity and recount",
    requires=_REQUIRES,
    artifact="schedule",
    default_enabled=False,
)
def check_cert_occupancy(target, config) -> Iterable[Finding]:
    return _section(target, "CERT605")


@rule(
    "CERT606",
    "cert-lifetimes",
    "error",
    "lifetime intervals and MVE register assignment are overlap-free",
    requires=_REQUIRES,
    artifact="regalloc",
    default_enabled=False,
)
def check_cert_regalloc(target, config) -> Iterable[Finding]:
    return _section(target, "CERT606")


@rule(
    "CERT690",
    "cert-loose-ii",
    "warning",
    "exact bounded oracle found a valid schedule below the achieved II",
    requires=_REQUIRES,
    artifact="schedule",
    default_enabled=False,
)
def check_cert_loose_ii(target, config) -> Iterable[Finding]:
    from ..certify.exact import STATUS_LOOSE, probe_tightness

    artifact = _certified(target)
    if artifact.issues:
        # A forged certificate proves nothing about tightness.
        return []
    result = probe_tightness(
        artifact.certificate, target.graph, target.effective_machine
    )
    if result.status != STATUS_LOOSE:
        return []
    return [
        Finding(
            location=f"ii {artifact.certificate.ii}",
            message=(
                f"achieved II={artifact.certificate.ii} is loose: the "
                f"exact oracle found a valid schedule at "
                f"II={result.probed_ii}"
            ),
            hint=(
                "the heuristic scheduler missed a feasible schedule "
                "under this cluster assignment"
            ),
        )
    ]
