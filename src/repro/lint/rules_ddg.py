"""``DDG1xx`` — well-formedness of the input dependence graph.

These rules trust nothing the :class:`~repro.ddg.graph.Ddg` builders
enforce: endpoints, distances, and latencies are all re-checked so a
graph assembled (or mutated) outside the constructor API is caught at
the phase boundary.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..ddg.opcodes import latency_of
from ._graph import adjacency, cyclic_components
from .dataflow import _object_memo
from .registry import Finding, rule

#: id(graph) -> (weakref, cyclic components).  The decomposition only
#: depends on the graph, so sweeps linting one loop against several
#: machines run Tarjan once.
_CYCLIC_CACHE: Dict[int, tuple] = {}


def _compute_cyclic_components(graph):
    succs = adjacency(
        (edge.src, edge.dst)
        for edge in graph.edges
        if edge.src in graph and edge.dst in graph
    )
    return cyclic_components(graph.node_ids, succs)


def _edge_label(graph, edge) -> str:
    return f"edge {edge.src}->{edge.dst}@{edge.distance}"


def _full_cyclic_components(target):
    """Cyclic SCCs of the whole graph, computed once per target.

    Shared by the cycle rules: DDG104 inspects these directly, and any
    zero-distance cycle (DDG103) is necessarily contained in one of
    them, so DDG103 only re-runs SCC inside these (usually tiny, often
    absent) components instead of over the whole graph.
    """
    if "ddg_cyclic" not in target.cache:
        target.cache["ddg_cyclic"] = _object_memo(
            _CYCLIC_CACHE, target.graph, _compute_cyclic_components
        )
    return target.cache["ddg_cyclic"]


@rule(
    "DDG101", "dangling-edge", "error",
    "an edge endpoint references a node that is not in the graph",
    requires=["graph"], artifact="ddg",
)
def check_dangling_edges(target, config):
    graph = target.graph
    for index, edge in enumerate(graph.edges):
        for endpoint, role in ((edge.src, "source"),
                               (edge.dst, "destination")):
            if endpoint not in graph:
                yield Finding(
                    location=f"edge[{index}]",
                    message=(
                        f"{role} node {endpoint} of "
                        f"{_edge_label(graph, edge)} does not exist"
                    ),
                    hint="edges must be added through Ddg.add_edge",
                )


@rule(
    "DDG102", "duplicate-edge", "warning",
    "the same (src, dst, distance) dependence appears more than once",
    requires=["graph"], artifact="ddg",
)
def check_duplicate_edges(target, config):
    graph = target.graph
    seen: Dict[Tuple[int, int, int], int] = {}
    for edge in graph.edges:
        key = (edge.src, edge.dst, edge.distance)
        seen[key] = seen.get(key, 0) + 1
    for (src, dst, distance), count in seen.items():
        if count > 1:
            yield Finding(
                location=f"edge {src}->{dst}@{distance}",
                message=(
                    f"dependence repeated {count} times; duplicates "
                    f"never tighten the schedule"
                ),
                hint="drop the redundant edges",
            )


@rule(
    "DDG103", "zero-distance-cycle", "error",
    "a dependence cycle with total iteration distance 0 "
    "(a combinational loop no II can satisfy)",
    requires=["graph"], artifact="ddg",
)
def check_zero_distance_cycles(target, config):
    graph = target.graph
    for enclosing in _full_cyclic_components(target):
        scope = set(enclosing)
        succs = adjacency(
            (edge.src, edge.dst)
            for edge in graph.edges
            if edge.distance == 0
            and edge.src in scope and edge.dst in scope
        )
        for component in cyclic_components(enclosing, succs):
            members = sorted(component)
            yield Finding(
                location=f"nodes {members}",
                message=(
                    "cycle of distance-0 dependences: the loop body "
                    "depends on its own same-iteration result"
                ),
                hint="at least one edge on the cycle needs "
                     "distance >= 1",
            )


@rule(
    "DDG104", "zero-latency-recurrence", "warning",
    "a recurrence whose cycle latency sums to 0 contributes nothing "
    "to RecMII and is almost certainly a modelling mistake",
    requires=["graph"], artifact="ddg",
)
def check_zero_latency_recurrences(target, config):
    graph = target.graph
    for component in _full_cyclic_components(target):
        if all(graph.latency(node) == 0 for node in component):
            members = sorted(component)
            yield Finding(
                location=f"nodes {members}",
                message="every operation on this recurrence has "
                        "latency 0, so its RecMII contribution is 0",
                hint="check the latency overrides on these nodes",
            )


@rule(
    "DDG105", "isolated-node", "warning",
    "a node with no dependence edges at all is unreachable from the "
    "rest of the loop body",
    requires=["graph"], artifact="ddg",
)
def check_isolated_nodes(target, config):
    graph = target.graph
    touched = set()
    for edge in graph.edges:
        touched.add(edge.src)
        touched.add(edge.dst)
    for node_id in graph.node_ids:
        if node_id not in touched and len(graph) > 1:
            yield Finding(
                location=f"node {node_id}",
                message=f"{graph.node(node_id)} has no predecessors "
                        f"and no successors",
                hint="dead code, or a missing dependence edge",
            )


@rule(
    "DDG106", "latency-table-mismatch", "info",
    "a node's latency differs from the paper's Table 2 value for its "
    "opcode (overrides are legal for synthetic graphs, but worth "
    "knowing about)",
    requires=["graph"], artifact="ddg",
)
def check_latency_table(target, config):
    graph = target.graph
    for node in graph.nodes:
        expected = latency_of(node.opcode)
        if node.latency != expected:
            yield Finding(
                location=f"node {node.node_id}",
                message=(
                    f"{node} has latency {node.latency}, Table 2 says "
                    f"{expected} for {node.opcode.value}"
                ),
            )


@rule(
    "DDG107", "negative-distance", "error",
    "a dependence distance below 0 is meaningless (values cannot flow "
    "to earlier iterations)",
    requires=["graph"], artifact="ddg",
)
def check_negative_distances(target, config):
    graph = target.graph
    for index, edge in enumerate(graph.edges):
        if edge.distance < 0:
            yield Finding(
                location=f"edge[{index}]",
                message=f"{_edge_label(graph, edge)} has negative "
                        f"distance {edge.distance}",
            )


@rule(
    "DDG108", "negative-latency", "error",
    "a node latency below 0 breaks every timing inequality",
    requires=["graph"], artifact="ddg",
)
def check_negative_latencies(target, config):
    graph = target.graph
    for node in graph.nodes:
        if node.latency < 0:
            yield Finding(
                location=f"node {node.node_id}",
                message=f"{node} has negative latency {node.latency}",
            )
