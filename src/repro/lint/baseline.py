"""Warn-first adoption baselines for new lint rule families.

Landing a new rule family on a living tree faces a bootstrap problem:
the first run reports findings in code that predates the rule, and
gating CI on them would force fixing everything in the same PR that
introduces the analysis.  A *baseline* file records the fingerprints
of the findings that existed at adoption time; applying it demotes
exactly those findings from ``error`` to ``warning`` so they stay
visible without failing the gate, while any *new* finding — or an old
one whose message changed — gates at full severity.

Fingerprints hash ``code | loop | message`` and deliberately exclude
file line numbers: an unrelated edit that shifts a flagged line must
not un-baseline the finding.  Messages carry qualified names rather
than positions, so they are stable under reformatting but change when
the finding itself does — which is the desired behavior.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import replace
from typing import FrozenSet, Iterable, List

from .diagnostics import SEVERITY_ERROR, SEVERITY_WARNING, Diagnostic
from .engine import LintReport

BASELINE_VERSION = 1


def fingerprint(diagnostic: Diagnostic) -> str:
    """Stable identity of one finding (line-number-free)."""
    payload = f"{diagnostic.code}|{diagnostic.loop}|{diagnostic.message}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def load_baseline(path: str) -> FrozenSet[str]:
    """Fingerprints from a baseline file; empty when absent/corrupt."""
    try:
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, ValueError):
        return frozenset()
    if not isinstance(doc, dict) or doc.get("version") != BASELINE_VERSION:
        return frozenset()
    entries = doc.get("findings", [])
    if not isinstance(entries, list):
        return frozenset()
    return frozenset(
        entry["fingerprint"]
        for entry in entries
        if isinstance(entry, dict) and "fingerprint" in entry
    )


def write_baseline(path: str, diagnostics: Iterable[Diagnostic]) -> int:
    """Write a baseline covering the *error*-level diagnostics.

    Warnings and infos never gate, so baselining them would only hide
    information.  Entries carry the code and message alongside the
    fingerprint so the checked-in file reviews like a report, not an
    opaque hash list.  Returns the number of entries written.
    """
    entries = []
    seen = set()
    for diagnostic in diagnostics:
        if diagnostic.severity != SEVERITY_ERROR:
            continue
        print_ = fingerprint(diagnostic)
        if print_ in seen:
            continue
        seen.add(print_)
        entries.append(
            {
                "fingerprint": print_,
                "code": diagnostic.code,
                "loop": diagnostic.loop,
                "message": diagnostic.message,
            }
        )
    entries.sort(key=lambda entry: (entry["code"], entry["fingerprint"]))
    doc = {"version": BASELINE_VERSION, "findings": entries}
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return len(entries)


def apply_baseline(
    report: LintReport, baselined: FrozenSet[str]
) -> List[Diagnostic]:
    """Demote baselined errors to warnings, in place on the report.

    Returns the diagnostics that were demoted (for ``--verbose``-style
    accounting).  Non-error findings and unknown fingerprints pass
    through untouched, so a baseline can never *hide* a new finding.
    """
    if not baselined:
        return []
    demoted: List[Diagnostic] = []
    rewritten: List[Diagnostic] = []
    for diagnostic in report.diagnostics:
        if (
            diagnostic.severity == SEVERITY_ERROR
            and fingerprint(diagnostic) in baselined
        ):
            diagnostic = replace(diagnostic, severity=SEVERITY_WARNING)
            demoted.append(diagnostic)
        rewritten.append(diagnostic)
    report.diagnostics = rewritten
    return demoted
