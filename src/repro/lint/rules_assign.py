"""``ASSIGN3xx`` — legality of the cluster-annotated graph.

The annotated DDG is the paper's central hand-off: the scheduler is
allowed to be cluster-oblivious *only because* the annotated graph is
legal by construction.  These rules re-derive that legality from
scratch — every cross-cluster value flow must be carried by a copy
chain, every copy must route through the interconnect, and the copy
metadata (targets, transported value) must be internally consistent.
"""

from __future__ import annotations

from .registry import Finding, rule


def _node_label(annotated, node_id) -> str:
    return str(annotated.ddg.node(node_id))


@rule(
    "ASSIGN301", "unassigned-node", "error",
    "a node of the annotated graph has no cluster assignment",
    requires=["annotated"], artifact="annotated",
)
def check_unassigned_nodes(target, config):
    annotated = target.annotated
    for node_id in annotated.ddg.node_ids:
        if node_id not in annotated.cluster_of:
            yield Finding(
                location=f"node {node_id}",
                message=f"{_node_label(annotated, node_id)} is not in "
                        f"the cluster map",
            )


@rule(
    "ASSIGN302", "cluster-out-of-range", "error",
    "a node is assigned to a cluster index the machine does not have",
    requires=["annotated"], artifact="annotated",
)
def check_cluster_range(target, config):
    annotated = target.annotated
    valid = set(annotated.machine.cluster_indices)
    for node_id, cluster in sorted(annotated.cluster_of.items()):
        if cluster not in valid:
            yield Finding(
                location=f"node {node_id}",
                message=(
                    f"node {node_id} assigned to cluster {cluster}, "
                    f"machine has clusters {sorted(valid)}"
                ),
            )


@rule(
    "ASSIGN303", "cross-cluster-value-flow", "error",
    "a value edge crosses clusters without being carried by a copy",
    requires=["annotated"], artifact="annotated",
)
def check_cross_cluster_flow(target, config):
    annotated = target.annotated
    ddg = annotated.ddg
    cluster_of = annotated.cluster_of
    for edge in ddg.edges:
        src_cluster = cluster_of.get(edge.src)
        dst_cluster = cluster_of.get(edge.dst)
        if src_cluster is None or dst_cluster is None:
            continue  # ASSIGN301 reports the missing assignment
        if src_cluster == dst_cluster:
            continue
        src = ddg.node(edge.src)
        if src.is_copy:
            continue  # ASSIGN306 checks copy fan-out legality
        if not src.produces_value:
            continue  # memory/control ordering edges cross freely
        yield Finding(
            location=f"edge {edge.src}->{edge.dst}",
            message=(
                f"value of {src} (cluster {src_cluster}) consumed by "
                f"{ddg.node(edge.dst)} on cluster {dst_cluster} "
                f"without a copy"
            ),
            hint="the assignment phase must insert a copy chain here",
        )


@rule(
    "ASSIGN304", "copy-unroutable-hop", "error",
    "a copy's source and target clusters are not one interconnect hop "
    "apart",
    requires=["annotated"], artifact="annotated",
)
def check_copy_routability(target, config):
    annotated = target.annotated
    fabric = annotated.machine.interconnect
    for copy_id, targets in sorted(annotated.copy_targets.items()):
        src_cluster = annotated.cluster_of.get(copy_id)
        if src_cluster is None:
            continue
        for dst_cluster in targets:
            if dst_cluster == src_cluster:
                yield Finding(
                    location=f"copy {copy_id}",
                    message=f"copy {copy_id} targets its own cluster "
                            f"{src_cluster}",
                )
            elif not fabric.reachable(src_cluster, dst_cluster):
                yield Finding(
                    location=f"copy {copy_id}",
                    message=(
                        f"copy {copy_id} hops from cluster "
                        f"{src_cluster} to unreachable cluster "
                        f"{dst_cluster}"
                    ),
                    hint="multi-hop moves need one copy per hop",
                )


@rule(
    "ASSIGN305", "orphaned-copy", "warning",
    "a copy whose transported value is never consumed wastes ports "
    "and a channel slot every iteration",
    requires=["annotated"], artifact="annotated",
)
def check_orphaned_copies(target, config):
    annotated = target.annotated
    ddg = annotated.ddg
    for copy_id in annotated.copy_nodes:
        if not ddg.out_edges(copy_id):
            yield Finding(
                location=f"copy {copy_id}",
                message=f"copy {copy_id} has no consumers",
                hint="the assignment left a dead copy behind",
            )


@rule(
    "ASSIGN306", "copy-target-mismatch", "error",
    "a copy feeds a cluster that is not among its declared targets",
    requires=["annotated"], artifact="annotated",
)
def check_copy_target_mismatch(target, config):
    annotated = target.annotated
    ddg = annotated.ddg
    cluster_of = annotated.cluster_of
    for copy_id in annotated.copy_nodes:
        targets = annotated.copy_targets.get(copy_id)
        if targets is None:
            continue  # ASSIGN308 reports the missing metadata
        own = cluster_of.get(copy_id)
        for edge in ddg.out_edges(copy_id):
            consumer_cluster = cluster_of.get(edge.dst)
            if consumer_cluster is None or consumer_cluster == own:
                continue
            if consumer_cluster not in targets:
                yield Finding(
                    location=f"copy {copy_id}",
                    message=(
                        f"copy {copy_id} feeds "
                        f"{ddg.node(edge.dst)} on cluster "
                        f"{consumer_cluster} but only targets "
                        f"{tuple(targets)}"
                    ),
                )


@rule(
    "ASSIGN307", "broadcast-on-p2p", "error",
    "a multi-target copy on a fabric that cannot broadcast",
    requires=["annotated"], artifact="annotated",
)
def check_broadcast_legality(target, config):
    annotated = target.annotated
    if annotated.machine.interconnect.broadcast:
        return
    for copy_id, targets in sorted(annotated.copy_targets.items()):
        if len(targets) > 1:
            yield Finding(
                location=f"copy {copy_id}",
                message=(
                    f"copy {copy_id} targets {len(targets)} clusters "
                    f"{tuple(targets)} on a point-to-point fabric"
                ),
                hint="point-to-point copies deliver to exactly one "
                     "neighbor",
            )


@rule(
    "ASSIGN308", "copy-metadata-missing", "error",
    "a copy node without target/value metadata cannot be resourced or "
    "register-allocated",
    requires=["annotated"], artifact="annotated",
)
def check_copy_metadata(target, config):
    annotated = target.annotated
    for copy_id in annotated.copy_nodes:
        targets = annotated.copy_targets.get(copy_id)
        if not targets:
            yield Finding(
                location=f"copy {copy_id}",
                message=f"copy {copy_id} has no target clusters "
                        f"recorded",
            )
        if copy_id not in annotated.copy_value_of:
            yield Finding(
                location=f"copy {copy_id}",
                message=f"copy {copy_id} does not record which value "
                        f"it transports",
            )


@rule(
    "ASSIGN309", "copy-chain-break", "error",
    "a copy's dataflow input does not deliver the value it claims to "
    "transport in the same iteration",
    requires=["annotated"], artifact="annotated",
)
def check_copy_chains(target, config):
    annotated = target.annotated
    ddg = annotated.ddg
    for copy_id in annotated.copy_nodes:
        value = annotated.copy_value_of.get(copy_id)
        if value is None:
            continue  # ASSIGN308 reports the missing metadata
        in_edges = ddg.in_edges(copy_id)
        if not in_edges:
            yield Finding(
                location=f"copy {copy_id}",
                message=f"copy {copy_id} reads nothing",
            )
            continue
        for edge in in_edges:
            if edge.distance != 0:
                yield Finding(
                    location=f"copy {copy_id}",
                    message=(
                        f"copy {copy_id} reads its input at distance "
                        f"{edge.distance}; producers feed copies in "
                        f"the same iteration"
                    ),
                )
            carried = annotated.copy_value_of.get(edge.src, edge.src)
            if carried != value:
                yield Finding(
                    location=f"copy {copy_id}",
                    message=(
                        f"copy {copy_id} transports value {value} but "
                        f"reads node {edge.src} which carries value "
                        f"{carried}"
                    ),
                )
