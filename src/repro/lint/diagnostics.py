"""Diagnostic records emitted by the static-analysis rules.

Every finding is a :class:`Diagnostic` with a *stable* rule code
(``DDG103``, ``SCHED402``, ...) so tooling, CI gates, and test
assertions can match on codes instead of free-form prose.  Severities
follow the usual three-level model; only ``error`` makes a lint run
fail (nonzero exit, strict-gate abort).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

#: Severity levels, weakest to strongest.
SEVERITY_INFO = "info"
SEVERITY_WARNING = "warning"
SEVERITY_ERROR = "error"

SEVERITIES = (SEVERITY_INFO, SEVERITY_WARNING, SEVERITY_ERROR)

#: SARIF 2.1.0 ``level`` values per severity.
SARIF_LEVELS = {
    SEVERITY_INFO: "note",
    SEVERITY_WARNING: "warning",
    SEVERITY_ERROR: "error",
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one rule on one artifact.

    ``code`` is the stable rule code; ``rule`` its human-readable slug.
    ``loop`` names the artifact owner (loop name, or the machine name
    for machine-description findings), ``artifact`` the artifact family
    the rule inspected (``ddg``/``machine``/``annotated``/``schedule``/
    ``regalloc``), and ``location`` the finest-grained position inside
    it (``node 3``, ``edge 2->5``, ``cluster 1``, ...).
    """

    code: str
    severity: str
    message: str
    rule: str = ""
    loop: str = ""
    artifact: str = ""
    location: str = ""
    hint: str = ""

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    @property
    def is_error(self) -> bool:
        """True for error-severity findings (the only gating level)."""
        return self.severity == SEVERITY_ERROR

    def as_dict(self) -> Dict[str, str]:
        """Plain-dict form used by the JSON renderer (stable keys)."""
        doc = {
            "code": self.code,
            "severity": self.severity,
            "rule": self.rule,
            "loop": self.loop,
            "artifact": self.artifact,
            "location": self.location,
            "message": self.message,
        }
        if self.hint:
            doc["hint"] = self.hint
        return doc

    def __str__(self) -> str:
        where = self.loop or self.artifact
        if self.location:
            where = f"{where}:{self.location}" if where else self.location
        prefix = f"{self.code} {self.severity}"
        text = f"[{prefix}] {where}: {self.message}"
        if self.hint:
            text += f" (hint: {self.hint})"
        return text


#: Meta-diagnostic codes emitted by the engine itself (not by rules).
CODE_RULE_CRASH = "LINT001"
CODE_COMPILE_FAILURE = "LINT002"


def rule_crash(
    rule_code: str, loop: str, error: BaseException,
    severity: str = SEVERITY_ERROR,
) -> Diagnostic:
    """The engine's containment diagnostic for a crashing rule.

    ``severity`` lets a config override (``--severity LINT001=warning``)
    demote engine meta-diagnostics the same way it demotes rule
    findings, so exit codes track *effective* severities only.
    """
    return Diagnostic(
        code=CODE_RULE_CRASH,
        severity=severity,
        rule="rule-crash",
        loop=loop,
        artifact="lint",
        location=rule_code,
        message=f"rule {rule_code} crashed: {error!r}",
        hint="this is a lint bug, not an artifact defect",
    )


def compile_failure(
    loop: str, error: BaseException, severity: str = SEVERITY_ERROR
) -> Diagnostic:
    """Deep lint could not build the pipeline artifacts for a loop."""
    return Diagnostic(
        code=CODE_COMPILE_FAILURE,
        severity=severity,
        rule="compile-failure",
        loop=loop,
        artifact="pipeline",
        message=f"loop failed to compile: {error}",
        hint="fix the loop (or machine) before the pipeline rules can run",
    )
