"""Incremental analysis cache for the project call-graph pass.

Interprocedural analysis is the most expensive lint leg by
construction — it parses every file and solves fixed points over the
whole call graph — so it is the first leg that *must* be incremental
to stay inside the lint gate's 10% budget as the tree grows.  The
cache has two layers, both content-addressed:

* **file summaries**: ``path -> (sha256 of the text, ModuleSummary
  document)``.  An unchanged file is never re-parsed; its summary is
  deserialized straight from the cache.
* **SCC fixed points**: ``key -> solved values``, where the key hashes
  the analysis name, the component members' local facts, the
  intra-component edges, and the boundary values flowing in from
  upstream components.  Editing one file dirties only the components
  whose facts or inputs actually changed — everything downstream of an
  *unchanged* fixed point keys identically and reuses its entry.

Everything is one JSON file (``callgraph-cache.json``) inside the
cache directory, written atomically via rename so a crashed run can
never leave a torn cache — at worst the next run re-solves.  A
format-version stamp invalidates wholesale when the summary schema
changes.  Stale SCC entries (not touched by the latest run) are
dropped on save so the file does not grow without bound.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Dict, List, Optional, Set

from .callgraph import ModuleSummary

#: Bump when the ModuleSummary document schema or SCC key recipe
#: changes; mismatched caches are discarded wholesale.
CACHE_VERSION = 1

CACHE_FILENAME = "callgraph-cache.json"


class AnalysisCache:
    """Two-layer content-addressed cache for :func:`build_project`.

    ``load`` / ``save`` bracket one analysis run; ``get_summary`` /
    ``put_summary`` serve the extraction layer and ``get_scc`` /
    ``put_scc`` the fixed-point layer.  A missing or corrupt cache
    file degrades to an empty cache, never an error.
    """

    def __init__(self, directory: str) -> None:
        self.directory = directory
        self.path = os.path.join(directory, CACHE_FILENAME)
        self._files: Dict[str, Dict] = {}
        self._sccs: Dict[str, Dict[str, List[str]]] = {}
        self._touched_sccs: Set[str] = set()
        self._dirty = False
        self.load()

    # -- persistence ----------------------------------------------------
    def load(self) -> None:
        """Read the cache file; silently start empty when unusable."""
        try:
            with open(self.path, encoding="utf-8") as handle:
                doc = json.load(handle)
        except (OSError, ValueError):
            return
        if not isinstance(doc, dict) or doc.get("version") != CACHE_VERSION:
            return
        files = doc.get("files")
        sccs = doc.get("sccs")
        if isinstance(files, dict):
            self._files = files
        if isinstance(sccs, dict):
            self._sccs = sccs

    def save(self) -> None:
        """Atomically persist; drops SCC entries unused this run."""
        live_sccs = {
            key: self._sccs[key]
            for key in self._touched_sccs
            if key in self._sccs
        }
        if not self._dirty and live_sccs.keys() == self._sccs.keys():
            return
        self._sccs = live_sccs
        doc = {
            "version": CACHE_VERSION,
            "files": self._files,
            "sccs": self._sccs,
        }
        os.makedirs(self.directory, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(
            dir=self.directory, prefix=".cache-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(doc, handle, separators=(",", ":"))
            os.replace(tmp_path, self.path)
        except OSError:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
        self._dirty = False

    # -- file summaries -------------------------------------------------
    def get_summary(
        self, path: str, text_hash: str
    ) -> Optional[ModuleSummary]:
        """The cached summary for ``path`` iff the content hash matches."""
        entry = self._files.get(path)
        if entry is None or entry.get("hash") != text_hash:
            return None
        try:
            return ModuleSummary.from_doc(entry["summary"])
        except (KeyError, TypeError, ValueError):
            return None

    def put_summary(
        self, path: str, text_hash: str, summary: ModuleSummary
    ) -> None:
        self._files[path] = {"hash": text_hash, "summary": summary.to_doc()}
        self._dirty = True

    # -- SCC fixed points -----------------------------------------------
    def get_scc(self, key: str) -> Optional[Dict[str, List[str]]]:
        """Cached fixed-point values for an SCC key, if present."""
        values = self._sccs.get(key)
        if values is not None:
            self._touched_sccs.add(key)
        return values

    def put_scc(self, key: str, values: Dict[str, List[str]]) -> None:
        self._sccs[key] = values
        self._touched_sccs.add(key)
        self._dirty = True
