"""``SCHED4xx`` — modulo-schedule constraints and modulo properties.

The first three rules are the historical independent validator
(:mod:`repro.scheduling.verify`) re-expressed with stable codes; the
resource rule now accounts with the *same* compiled demand profiles the
scheduler's reservation table uses (:meth:`compile_demand`), so the
validator and the hot path can no longer drift apart silently.  The
remaining rules check modulo properties (schedule domain, II sanity,
pipeline depth), the MRT's double-entry occupancy bookkeeping, and — on
demand — a differential cross-check against the frozen slow-reference
pipeline.
"""

from __future__ import annotations

import zlib

from ..mrt.table import ModuloReservationTable
from .registry import Finding, rule


def _rebuilt_mrt(target):
    """Rebuild (once per target) the reservation table of a schedule.

    Every operation is placed with ``check=False`` so oversubscribed
    rows accumulate instead of raising; the placement problems found on
    the way are cached alongside.  Tests may pre-seed
    ``target.cache["mrt"]`` with a corrupted table to exercise the
    consistency rules.
    """
    if "mrt" in target.cache:
        return target.cache["mrt"], target.cache.get("mrt_problems", [])
    schedule = target.schedule
    annotated = schedule.annotated
    problems = []
    table = None
    if schedule.ii >= 1:
        table = ModuloReservationTable(annotated.machine, schedule.ii)
        ddg = annotated.ddg
        start_map = schedule.start
        cluster_of = annotated.cluster_of
        resources_of = annotated.resources_of
        # A non-copy node's demand — and whether the table can compile
        # it — depends only on (opcode, cluster): memoize the resolved
        # keys together with that verdict so the rebuild is O(distinct
        # demands) derivation work.  Copies route per node.
        resource_memo = {}
        demand_verdict = {}
        for node in ddg.nodes:
            node_id = node.node_id
            start = start_map.get(node_id)
            if start is None:
                continue  # SCHED404 reports the missing placement
            if node.is_copy:
                try:
                    keys = resources_of(node_id)
                except (ValueError, KeyError) as exc:
                    problems.append(
                        (node_id,
                         f"resource demand underivable: {exc}")
                    )
                    continue
                key_tuple = tuple(keys)
                verdict = demand_verdict.get(key_tuple)
                if verdict is None:
                    try:
                        # Same pre-compiled demand profile the
                        # scheduler probes with; a key unknown to the
                        # table surfaces here.
                        table.compile_demand(key_tuple)
                        verdict = True
                    except KeyError as exc:
                        verdict = f"unknown resource key: {exc}"
                    demand_verdict[key_tuple] = verdict
            else:
                try:
                    memo_key = (node.opcode, cluster_of[node_id])
                except KeyError as exc:
                    problems.append(
                        (node_id,
                         f"resource demand underivable: {exc}")
                    )
                    continue
                entry = resource_memo.get(memo_key)
                if entry is None:
                    try:
                        keys = resources_of(node_id)
                    except (ValueError, KeyError) as exc:
                        entry = (
                            None,
                            f"resource demand underivable: {exc}",
                        )
                    else:
                        try:
                            table.compile_demand(keys)
                            entry = (keys, True)
                        except KeyError as exc:
                            entry = (
                                keys,
                                f"unknown resource key: {exc}",
                            )
                    resource_memo[memo_key] = entry
                keys, verdict = entry
            if verdict is not True:
                problems.append((node_id, verdict))
                continue
            table.place(node_id, keys, start, check=False)
    target.cache["mrt"] = table
    target.cache["mrt_problems"] = problems
    return table, problems


@rule(
    "SCHED401", "dependence-violation", "error",
    "a dependence inequality start(dst) >= start(src) + latency(src) "
    "- II*distance is violated",
    requires=["schedule"], artifact="schedule",
)
def check_dependences(target, config):
    schedule = target.schedule
    ddg = schedule.annotated.ddg
    ii = schedule.ii
    for edge in ddg.edges:
        src_start = schedule.start.get(edge.src)
        dst_start = schedule.start.get(edge.dst)
        if src_start is None or dst_start is None:
            continue  # SCHED404 reports the missing placement
        lower = src_start + ddg.latency(edge.src) - ii * edge.distance
        if dst_start < lower:
            yield Finding(
                location=f"edge {edge.src}->{edge.dst}",
                message=(
                    f"{ddg.node(edge.src)} -> {ddg.node(edge.dst)} "
                    f"(distance {edge.distance}): start "
                    f"{dst_start} < required {lower}"
                ),
            )


@rule(
    "SCHED402", "resource-oversubscription", "error",
    "a kernel row uses more slots of some resource pool than its "
    "per-cycle capacity",
    requires=["schedule"], artifact="schedule",
)
def check_resources(target, config):
    table, _ = _rebuilt_mrt(target)
    if table is None:
        return
    for key, row, used, capacity in table.oversubscriptions():
        yield Finding(
            location=f"row {row}",
            message=(
                f"resource {key!r} oversubscribed in kernel row "
                f"{row}: {used} > {capacity}"
            ),
        )


@rule(
    "SCHED403", "annotated-structure", "error",
    "the scheduled annotated graph fails its structural legality "
    "re-validation",
    requires=["schedule"], artifact="schedule",
)
def check_structure(target, config):
    schedule = target.schedule
    try:
        schedule.annotated.validate()
    except ValueError as exc:
        yield Finding(location="annotated", message=str(exc))


@rule(
    "SCHED404", "schedule-domain-mismatch", "error",
    "the start map and the node set disagree (unscheduled node, or a "
    "start entry for a node that does not exist)",
    requires=["schedule"], artifact="schedule",
)
def check_schedule_domain(target, config):
    schedule = target.schedule
    node_ids = set(schedule.annotated.ddg.node_ids)
    start_ids = set(schedule.start)
    for node_id in sorted(node_ids - start_ids):
        yield Finding(
            location=f"node {node_id}",
            message=f"node {node_id} has no start cycle",
        )
    for node_id in sorted(start_ids - node_ids):
        yield Finding(
            location=f"node {node_id}",
            message=f"start map covers unknown node {node_id}",
        )


@rule(
    "SCHED405", "invalid-ii", "error",
    "an initiation interval below 1 has no kernel rows",
    requires=["schedule"], artifact="schedule",
)
def check_ii(target, config):
    if target.schedule.ii < 1:
        yield Finding(
            location="ii",
            message=f"II is {target.schedule.ii}, must be >= 1",
        )


@rule(
    "SCHED406", "excessive-schedule-span", "warning",
    "the schedule's makespan exceeds the serial-chain bound (sum of "
    "all latencies), signalling runaway start cycles",
    requires=["schedule"], artifact="schedule",
)
def check_schedule_span(target, config):
    schedule = target.schedule
    if schedule.ii < 1 or not schedule.start:
        return
    ddg = schedule.annotated.ddg
    # Executing every operation back to back is the worst sensible
    # schedule of one iteration; anything beyond it means some start
    # cycle drifted off (each op still occupies >= 1 issue cycle).
    serial_bound = sum(
        max(1, node.latency) for node in ddg.nodes
    )
    if schedule.makespan > serial_bound:
        yield Finding(
            location="makespan",
            message=(
                f"makespan {schedule.makespan} exceeds the "
                f"serial-chain bound {serial_bound}"
            ),
            hint="check for pathologically late start cycles",
        )


@rule(
    "SCHED407", "mrt-occupancy-divergence", "error",
    "the reservation table's counter-based occupancy (the probe fast "
    "path) disagrees with its holder lists (the REPRO_MRT_VALIDATE "
    "re-walk path)",
    requires=["schedule"], artifact="schedule",
)
def check_mrt_consistency(target, config):
    table, _ = _rebuilt_mrt(target)
    if table is None:
        return
    for problem in table.consistency_errors():
        yield Finding(location="mrt", message=problem)


@rule(
    "SCHED408", "unknown-resource-demand", "error",
    "an operation's resource demand cannot be derived or refers to a "
    "pool the machine does not provide",
    requires=["schedule"], artifact="schedule",
)
def check_resource_demands(target, config):
    _, problems = _rebuilt_mrt(target)
    for node_id, problem in problems:
        yield Finding(
            location=f"node {node_id}",
            message=f"node {node_id}: {problem}",
        )


@rule(
    "SCHED490", "differential-reference", "error",
    "the fast pipeline's result diverges from the frozen "
    "slow-reference pipeline (II, copy count, or start cycles)",
    requires=["graph", "machine"], artifact="pipeline",
    default_enabled=False,
)
def check_differential(target, config):
    """Cross-check against :mod:`repro.baselines` on sampled loops.

    Expensive (compiles the loop twice more), so it is default-off and
    honours ``config.differential_sample``: a loop runs when the CRC of
    its name falls in the sampled residue class, giving a deterministic
    corpus-stable sample.
    """
    name = target.name or (target.graph.name if target.graph else "")
    sample = config.differential_sample
    if sample > 1 and zlib.crc32(name.encode("utf-8")) % sample != 0:
        return
    from ..baselines import (
        ReferenceCompilationError,
        reference_compile_loop,
    )
    from ..core.driver import CompilationError, compile_loop

    ddg = target.graph
    machine = target.effective_machine
    try:
        fast = compile_loop(ddg, machine)
    except (CompilationError, ValueError) as exc:
        fast = None
        fast_error = str(exc)
    try:
        slow = reference_compile_loop(ddg, machine)
    except (ReferenceCompilationError, ValueError) as exc:
        slow = None
        slow_error = str(exc)
    if (fast is None) != (slow is None):
        which, error = (
            ("fast", fast_error) if fast is None
            else ("reference", slow_error)
        )
        yield Finding(
            location="pipeline",
            message=f"only the {which} pipeline failed to compile: "
                    f"{error}",
        )
        return
    if fast is None:
        return  # both failed identically: differential holds
    if fast.ii != slow.ii:
        yield Finding(
            location="ii",
            message=f"fast pipeline II {fast.ii} != reference II "
                    f"{slow.ii}",
        )
        return
    if fast.annotated.copy_count != slow.copy_count:
        yield Finding(
            location="copies",
            message=(
                f"fast pipeline inserted "
                f"{fast.annotated.copy_count} copies, reference "
                f"{slow.copy_count}"
            ),
        )
    if dict(fast.schedule.start) != slow.start:
        diff = [
            node_id
            for node_id in fast.schedule.start
            if slow.start.get(node_id) != fast.schedule.start[node_id]
        ]
        yield Finding(
            location="start-cycles",
            message=(
                f"start cycles diverge from the reference on "
                f"{len(diff)} node(s): {sorted(diff)[:8]}"
            ),
        )
