"""``REG5xx`` — register lifetime / MVE allocation consistency.

A modulo schedule is only executable once every value survives until
its last read, which for software pipelines means cyclic-interval
packing under modulo variable expansion (:mod:`repro.regalloc`).  These
rules re-derive the lifetime set and cross-check the allocator's
output: no two values may share a (cluster, register, cycle) slot, the
unroll factor must cover the longest lifetime, and lifetimes themselves
must be causally sane.
"""

from __future__ import annotations

from .registry import Finding, rule


def _lifetimes(target):
    """Extract (once per target) the schedule's value lifetimes."""
    if "lifetimes" not in target.cache:
        from ..regalloc.lifetimes import extract_lifetimes

        target.cache["lifetimes"] = extract_lifetimes(target.schedule)
    return target.cache["lifetimes"]


def _allocation(target):
    """Run (once per target) the MVE allocator on the schedule.

    Tests may pre-seed ``target.cache["allocation"]`` with a corrupted
    allocation to exercise the consistency rules.
    """
    if "allocation" not in target.cache:
        from ..regalloc.mve import allocate_mve

        target.cache["allocation"] = allocate_mve(
            target.schedule, _lifetimes(target)
        )
    return target.cache["allocation"]


@rule(
    "REG501", "register-overlap", "error",
    "two live values share a (cluster, register, cycle) slot in the "
    "MVE allocation",
    requires=["schedule"], artifact="regalloc",
)
def check_register_overlaps(target, config):
    from ..regalloc.mve import verify_allocation

    for problem in verify_allocation(_allocation(target)):
        yield Finding(location="allocation", message=problem)


@rule(
    "REG502", "mve-unroll-mismatch", "error",
    "the allocation's kernel unroll factor does not cover the longest "
    "value lifetime",
    requires=["schedule"], artifact="regalloc",
)
def check_unroll_factor(target, config):
    allocation = _allocation(target)
    ii = target.schedule.ii
    if ii < 1:
        return
    needed = 1
    for lt in _lifetimes(target):
        instances = -(-(lt.death - lt.birth) // ii)
        if instances > needed:
            needed = instances
    if allocation.unroll != needed:
        yield Finding(
            location="unroll",
            message=(
                f"allocation unrolls the kernel {allocation.unroll}x "
                f"but the longest lifetime needs {needed} "
                f"simultaneously live instance(s)"
            ),
            hint="an under-unrolled kernel clobbers live values",
        )


@rule(
    "REG503", "dead-value", "info",
    "a value-producing operation with no consumers occupies an issue "
    "slot for nothing",
    requires=["schedule"], artifact="regalloc",
)
def check_dead_values(target, config):
    ddg = target.schedule.annotated.ddg
    has_consumer = {edge.src for edge in ddg.edges}
    for node in ddg.nodes:
        if node.is_copy:
            continue  # ASSIGN305 covers dead copies
        if node.produces_value and node.node_id not in has_consumer:
            yield Finding(
                location=f"node {node.node_id}",
                message=f"{node} produces a value nothing reads",
            )


@rule(
    "REG504", "negative-lifetime", "error",
    "a value dies before it is born: some consumer reads it before "
    "the producer completes (implies a dependence violation)",
    requires=["schedule"], artifact="regalloc",
)
def check_negative_lifetimes(target, config):
    for lifetime in _lifetimes(target):
        if lifetime.death < lifetime.birth:
            yield Finding(
                location=f"node {lifetime.producer}",
                message=(
                    f"value of node {lifetime.producer} on cluster "
                    f"{lifetime.cluster} born at cycle "
                    f"{lifetime.birth} but last read at cycle "
                    f"{lifetime.death}"
                ),
            )


@rule(
    "REG505", "lifetime-exceeds-span", "error",
    "a lifetime longer than the unrolled kernel span would be "
    "clobbered by the next expanded iteration",
    requires=["schedule"], artifact="regalloc",
)
def check_lifetime_span(target, config):
    allocation = _allocation(target)
    span = allocation.span
    if span < 1:
        return
    for lifetime in _lifetimes(target):
        if lifetime.length > span:
            yield Finding(
                location=f"node {lifetime.producer}",
                message=(
                    f"value of node {lifetime.producer} lives "
                    f"{lifetime.length} cycles, longer than the "
                    f"{span}-cycle unrolled kernel"
                ),
            )
